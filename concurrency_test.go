package beas

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

// TestConcurrentMixedWorkload hammers one DB with bounded queries,
// streaming cursors, row inserts and access-schema DDL from many
// goroutines at once. It is primarily a -race exercise; beyond that it
// asserts the documented safety contract:
//
//   - no query or cursor ever returns a torn row — wrong arity, NULLs
//     that were never inserted, or values outside what writers wrote;
//   - a cursor whose scanned table is mutated mid-stream fails fast
//     with the "mutated during scan" error instead of tearing;
//   - DDL (constraint registration and removal) interleaves with all of
//     the above without deadlock or stale plan-cache entries.
func TestConcurrentMixedWorkload(t *testing.T) {
	db := NewDB()
	db.MustCreateTable("call", "pnum INT", "recnum INT", "date INT", "region STRING")
	for i := 0; i < 64; i++ {
		db.MustInsert("call", 1, i, 20240101, "north")
	}
	db.MustRegisterConstraint("call({pnum, date} -> {recnum, region}, 100000)")
	db.MustCreateTable("aux", "k INT", "v INT")
	for i := 0; i < 64; i++ {
		db.MustInsert("aux", i%8, i)
	}

	const (
		writers    = 4
		boundedQ   = 4
		cursors    = 3
		insertsPer = 200
		queriesPer = 100
	)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}
	var seq atomic.Int64
	seq.Store(64)

	// checkRow validates one bounded result row (recnum, region).
	checkRow := func(r Row) bool {
		return len(r) == 2 && r[0].K == value.Int && r[0].I >= 0 &&
			r[1].K == value.String && r[1].S == "north"
	}

	// Writers: monotone inserts into the scanned and probed table.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < insertsPer; i++ {
				if err := db.Insert("call", 1, seq.Add(1), 20240101, "north"); err != nil {
					fail("insert: %v", err)
					return
				}
			}
		}()
	}

	// Bounded readers: covered point query through the constraint index.
	for r := 0; r < boundedQ; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPer; i++ {
				res, err := db.Query("SELECT recnum, region FROM call WHERE pnum = 1 AND date = 20240101")
				if err != nil {
					fail("bounded query: %v", err)
					return
				}
				if len(res.Rows) < 64 {
					fail("bounded query lost rows: %d < 64", len(res.Rows))
					return
				}
				for _, row := range res.Rows {
					if !checkRow(row) {
						fail("torn row from Query: %v", row)
						return
					}
				}
			}
		}()
	}

	// Streaming cursors over an uncovered query: the fallback engine
	// scans call, so concurrent inserts may fail the cursor — but only
	// with the documented fast-fail error, and only after well-formed
	// rows.
	for c := 0; c < cursors; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPer; i++ {
				ri, err := db.QueryIter("SELECT recnum, region FROM call WHERE region = 'north'")
				if err != nil {
					fail("QueryIter: %v", err)
					return
				}
				for {
					batch, err := ri.NextBatch()
					if err != nil {
						if !strings.Contains(err.Error(), "mutated during scan") {
							fail("cursor failed with unexpected error: %v", err)
							ri.Close()
							return
						}
						break // fast-fail on mutation: the contract
					}
					if batch == nil {
						break
					}
					for _, row := range batch {
						if !checkRow(row) {
							fail("torn row from cursor: %v", row)
							ri.Close()
							return
						}
					}
				}
				ri.Close()
			}
		}()
	}

	// DDL: register and drop constraints in a loop — one on a quiet
	// table, one on the very table the writers are inserting into —
	// bumping the catalog version and invalidating the plan cache
	// underneath the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		specs := []string{
			"aux({k} -> {v}, 100000)",
			"call({date} -> {pnum}, 100000)",
		}
		for i := 0; i < 50; i++ {
			spec := specs[i%len(specs)]
			if err := db.RegisterConstraint(spec); err != nil {
				fail("register: %v", err)
				return
			}
			if _, err := db.Query("SELECT v FROM aux WHERE k = 3"); err != nil {
				fail("query during DDL: %v", err)
				return
			}
			if err := db.DropConstraint(spec); err != nil {
				fail("drop: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiescent state: bounded and conventional agree on the final count.
	want := int(seq.Load())
	res, err := db.Query("SELECT recnum, region FROM call WHERE pnum = 1 AND date = 20240101")
	if err != nil {
		t.Fatal(err)
	}
	conv, err := db.QueryBaseline("SELECT recnum, region FROM call WHERE pnum = 1 AND date = 20240101", BaselinePostgres)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want || len(conv.Rows) != want {
		t.Errorf("final rows: bounded %d, conventional %d, want %d", len(res.Rows), len(conv.Rows), want)
	}
}
