module github.com/bounded-eval/beas

go 1.24
