package beas

import (
	"math/rand"
	"strings"
	"testing"
)

// The cost-based optimizer must be invisible in results: optimizer on
// and off produce identical bags on every query, at every parallelism,
// while reporting the unchanged worst-case bound for admission control.
// These tests verify that on the randomized equivalence corpus and the
// TLC benchmark, and pin the optimizer's raison d'être: on Q12 — whose
// worst-case-greedy step order is suboptimal on the actual data — the
// optimized plan fetches at least 2× fewer tuples.

// TestOptimizerEquivalenceRandomized: optimizer on vs off over the
// randomized corpus, serial and parallel.
func TestOptimizerEquivalenceRandomized(t *testing.T) {
	const databases = 4
	const queriesPerDB = 30
	for d := 0; d < databases; d++ {
		rng := rand.New(rand.NewSource(int64(7000 + d)))
		dbOff := randomDB(t, rng)
		for qi := 0; qi < queriesPerDB; qi++ {
			sql := randomSQL(rng)
			off, err := dbOff.Query(sql)
			if err != nil {
				t.Fatalf("off Query(%q): %v", sql, err)
			}
			want := bag(off.Rows)
			info, err := dbOff.Check(sql)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4} {
				dbOff.SetOptimizer(true)
				dbOff.SetParallelism(par)
				on, err := dbOff.Query(sql)
				if err != nil {
					t.Fatalf("on(par=%d) Query(%q): %v", par, sql, err)
				}
				if got := bag(on.Rows); !equalBags(got, want) {
					t.Fatalf("optimizer changed the bag (par=%d) on %q:\non  = %v\noff = %v", par, sql, got, want)
				}
				// The reported admission bound is the unchanged worst case,
				// and the executor must still respect it.
				onInfo, err := dbOff.Check(sql)
				if err != nil {
					t.Fatal(err)
				}
				if onInfo.Bound != info.Bound {
					t.Fatalf("optimizer changed the reported bound on %q: %d vs %d", sql, onInfo.Bound, info.Bound)
				}
				if info.Covered && info.Bound != ^uint64(0) && uint64(on.Stats.TuplesFetched) > info.Bound {
					t.Fatalf("optimized plan fetched %d > bound %d on %q", on.Stats.TuplesFetched, info.Bound, sql)
				}
				dbOff.SetOptimizer(false)
				dbOff.SetParallelism(1)
			}
		}
	}
}

// TestOptimizerEquivalenceTLC: every built-in TLC query, optimizer on vs
// off, at parallelism 1 and 4.
func TestOptimizerEquivalenceTLC(t *testing.T) {
	db := MustNewTLCDB(1)
	for _, q := range TLCQueries() {
		db.SetOptimizer(false)
		db.SetParallelism(1)
		off, err := db.Query(q.SQL)
		if err != nil {
			t.Fatalf("%s off: %v", q.Name, err)
		}
		want := bag(off.Rows)
		for _, par := range []int{1, 4} {
			db.SetOptimizer(true)
			db.SetParallelism(par)
			on, err := db.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s on par=%d: %v", q.Name, par, err)
			}
			if got := bag(on.Rows); !equalBags(got, want) {
				t.Fatalf("%s: optimizer changed the bag at par=%d", q.Name, par)
			}
		}
	}
}

// TestOptimizerReducesQ12Fetches pins the acceptance criterion: on Q12
// the worst-case-greedy order fetches every bank's invoices before the
// selective call filter prunes the banks; the cost-based order fetches
// calls first and must cut the actually-fetched intermediate rows by at
// least 2×.
func TestOptimizerReducesQ12Fetches(t *testing.T) {
	db := MustNewTLCDB(2)
	sql, covered := tlcQuery("Q12")
	if !covered {
		t.Fatal("Q12 must be covered")
	}
	off, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	db.SetOptimizer(true)
	on, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !equalBags(bag(on.Rows), bag(off.Rows)) {
		t.Fatal("optimizer changed the Q12 bag")
	}
	if len(on.Rows) == 0 {
		t.Fatal("Q12 must have a non-empty answer")
	}
	if on.Stats.TuplesFetched*2 > off.Stats.TuplesFetched {
		t.Fatalf("optimizer should fetch >=2x fewer tuples on Q12: off=%d on=%d",
			off.Stats.TuplesFetched, on.Stats.TuplesFetched)
	}
	t.Logf("Q12 tuples fetched: greedy=%d optimized=%d (%.1fx fewer)",
		off.Stats.TuplesFetched, on.Stats.TuplesFetched,
		float64(off.Stats.TuplesFetched)/float64(on.Stats.TuplesFetched))
}

// TestExplainAnalyzeEstimatedVsActual: EXPLAIN ANALYZE must carry, per
// step, the worst-case bound, the optimizer's estimates and the actual
// counters — and the improvement on Q12 must be visible in it.
func TestExplainAnalyzeEstimatedVsActual(t *testing.T) {
	db := MustNewTLCDB(1)
	db.SetOptimizer(true)
	sql, _ := tlcQuery("Q12")
	ea, err := db.ExplainAnalyze(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !ea.Covered || !ea.Optimized {
		t.Fatalf("covered=%v optimized=%v, want true/true", ea.Covered, ea.Optimized)
	}
	if len(ea.Steps) != 3 {
		t.Fatalf("Q12 has 3 fetch steps, got %d", len(ea.Steps))
	}
	for i, s := range ea.Steps {
		if s.OutBound == 0 {
			t.Errorf("step %d: missing worst-case bound", i)
		}
		if s.EstKeys <= 0 || s.EstFetched < 0 {
			t.Errorf("step %d: missing estimates (estKeys=%v estFetched=%v)", i, s.EstKeys, s.EstFetched)
		}
		if s.ActualKeys <= 0 {
			t.Errorf("step %d: missing actual key counter", i)
		}
	}
	// The optimized order fetches call (the selective step) before
	// billing, visibly in the report.
	var order []string
	for _, s := range ea.Steps {
		order = append(order, s.Atom)
	}
	got := strings.Join(order, ",")
	if got != "business,call,billing" {
		t.Errorf("optimized Q12 step order = %s, want business,call,billing", got)
	}
	text := ea.String()
	for _, want := range []string{"est keys", "fetched", "worst-case bound"} {
		if !strings.Contains(text, want) {
			t.Errorf("ExplainAnalysis.String() missing %q:\n%s", want, text)
		}
	}
}

// TestExplainShowsEstimates: plain Explain (no execution) includes the
// per-step constraint, worst-case bound, and — optimizer on — estimates.
func TestExplainShowsEstimates(t *testing.T) {
	db := MustNewTLCDB(1)
	sql, _ := tlcQuery("Q1")
	off, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(off, "via business({type, region}") || !strings.Contains(off, "≤") {
		t.Errorf("Explain missing constraint/bound detail:\n%s", off)
	}
	if strings.Contains(off, "est ≈") {
		t.Errorf("Explain should not show estimates with the optimizer off:\n%s", off)
	}
	db.SetOptimizer(true)
	on, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(on, "est ≈") {
		t.Errorf("Explain should show estimates with the optimizer on:\n%s", on)
	}
}

// BenchmarkOptimizerQ12 demonstrates the acceptance criterion as a
// benchmark: the same TLC query with the greedy and the cost-based step
// order, reporting the actually-fetched intermediate rows per run.
func BenchmarkOptimizerQ12(b *testing.B) {
	sql, _ := tlcQuery("Q12")
	for _, mode := range []string{"greedy", "optimized"} {
		b.Run(mode, func(b *testing.B) {
			db := tlcDB(b, 2)
			db.SetOptimizer(mode == "optimized")
			defer db.SetOptimizer(false)
			var fetched int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Query(sql)
				if err != nil {
					b.Fatal(err)
				}
				fetched = res.Stats.TuplesFetched
			}
			b.ReportMetric(float64(fetched), "tuples-fetched")
		})
	}
}

// TestOptimizerOffIsDefault: a fresh DB runs without the optimizer and
// its step stats carry no estimates.
func TestOptimizerOffIsDefault(t *testing.T) {
	db := MustNewTLCDB(1)
	if db.OptimizerEnabled() {
		t.Fatal("optimizer must default to off")
	}
	sql, _ := tlcQuery("Q2")
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Optimized {
		t.Error("Stats.Optimized must be false by default")
	}
	for _, s := range res.Stats.FetchSteps {
		if s.EstKeys != 0 || s.EstFetched != 0 {
			t.Errorf("step %s carries estimates with the optimizer off", s.Atom)
		}
		if s.OutBound == 0 {
			t.Errorf("step %s missing worst-case bound", s.Atom)
		}
	}
}
