package beas

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// The exactness invariant of bounded evaluation is Q(D_Q) = Q(D): a
// bounded plan must return exactly what any conventional evaluation
// returns. This file checks it on randomized databases and queries,
// against an independent nested-loop oracle and all three emulated
// baselines.

// randomDB builds R(a,b,c,d,v,big,ok), S(b,e), T(e,f) with small value
// domains and registers an access-constraint library with exact
// (auto-widened) bounds. The v / big / ok columns deliberately carry the
// semantic edge cases: NULLs everywhere, NaN floats in v, and
// near-MaxInt64 magnitudes in big. The big values are powers of two (and
// MaxInt64-1, which converts to 2^63 exactly), so float-promoted SUMs
// stay exactly representable and bit-identical under any evaluation
// order — serial, parallel or the oracle's.
func randomDB(t *testing.T, rng *rand.Rand) *DB {
	t.Helper()
	db := NewDB()
	db.MustCreateTable("r", "a INT", "b INT", "c STRING", "d INT", "v FLOAT", "big INT", "ok BOOL")
	db.MustCreateTable("s", "b INT", "e INT")
	db.MustCreateTable("t", "e INT", "f STRING")

	randV := func() any {
		switch rng.Intn(6) {
		case 0:
			return nil
		case 1:
			return math.NaN()
		default:
			return float64(rng.Intn(33)-16) * 0.5 // dyadic: exact under any sum order
		}
	}
	bigVals := []any{int64(1) << 62, -(int64(1) << 62), int64(1) << 61, int64(math.MaxInt64) - 1, nil}
	randOK := func() any {
		switch rng.Intn(3) {
		case 0:
			return nil
		case 1:
			return true
		default:
			return false
		}
	}
	nr, ns, nt := 30+rng.Intn(60), 15+rng.Intn(30), 10+rng.Intn(20)
	for i := 0; i < nr; i++ {
		db.MustInsert("r",
			rng.Intn(8), rng.Intn(6), fmt.Sprintf("c%d", rng.Intn(4)), rng.Intn(10),
			randV(), bigVals[rng.Intn(len(bigVals))], randOK())
	}
	for i := 0; i < ns; i++ {
		db.MustInsert("s", rng.Intn(6), rng.Intn(5))
	}
	for i := 0; i < nt; i++ {
		db.MustInsert("t", rng.Intn(5), fmt.Sprintf("f%d", rng.Intn(3)))
	}
	mustAuto := func(rel string, x, y []string) {
		if _, err := db.RegisterConstraintAuto(rel, x, y, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAuto("r", []string{"a"}, []string{"b", "c", "d", "v", "big", "ok"})
	mustAuto("r", []string{"b"}, []string{"a", "c", "d", "v", "big", "ok"})
	mustAuto("s", []string{"b"}, []string{"e"})
	mustAuto("t", []string{"e"}, []string{"f"})
	return db
}

// randomSQL generates a query from a template family: a join chain over
// 1–3 atoms with random filters (including NULL-bearing IN lists and
// NULL-able boolean operands), random projections over the NaN / big-int
// columns and an optional aggregate.
func randomSQL(rng *rand.Rand) string {
	atoms := 1 + rng.Intn(3)
	var from, where []string
	from = append(from, "r")
	// Seed constants so that most single-chain queries are coverable.
	switch rng.Intn(4) {
	case 0:
		where = append(where, fmt.Sprintf("r.a = %d", rng.Intn(8)))
	case 1:
		where = append(where, fmt.Sprintf("r.a IN (%d, %d)", rng.Intn(8), rng.Intn(8)))
	case 2:
		where = append(where, fmt.Sprintf("r.b = %d", rng.Intn(6)))
	case 3:
		// NULL in a positive IN list: never a key candidate, never a match.
		where = append(where, fmt.Sprintf("r.a IN (%d, NULL, %d)", rng.Intn(8), rng.Intn(8)))
	}
	cols := []string{"r.a", "r.b", "r.c", "r.d", "r.v", "r.big"}
	if atoms >= 2 {
		from = append(from, "s")
		where = append(where, "r.b = s.b")
		cols = append(cols, "s.e")
	}
	if atoms >= 3 {
		from = append(from, "t")
		where = append(where, "s.e = t.e")
		cols = append(cols, "t.f")
	}
	// Extra filters.
	if rng.Intn(2) == 0 {
		where = append(where, fmt.Sprintf("r.d > %d", rng.Intn(9)))
	}
	if rng.Intn(3) == 0 {
		where = append(where, fmt.Sprintf("r.c <> 'c%d'", rng.Intn(4)))
	}
	if rng.Intn(4) == 0 {
		where = append(where, fmt.Sprintf("(r.d = %d OR r.d = %d)", rng.Intn(10), rng.Intn(10)))
	}
	if rng.Intn(4) == 0 {
		// NOT IN with a NULL in the list: three-valued logic collapses the
		// no-match case to false, never true.
		where = append(where, fmt.Sprintf("r.d NOT IN (%d, NULL)", rng.Intn(10)))
	}
	if rng.Intn(4) == 0 {
		// NULL boolean operands of NOT / AND / OR collapse instead of
		// erroring.
		switch rng.Intn(3) {
		case 0:
			where = append(where, "(r.ok OR r.d > 5)")
		case 1:
			where = append(where, fmt.Sprintf("(r.ok AND r.d < %d)", rng.Intn(10)))
		default:
			where = append(where, "NOT (r.ok)")
		}
	}

	if rng.Intn(4) == 0 { // aggregate query
		g := cols[rng.Intn(len(cols))]
		agg := "SUM(r.d) AS s"
		switch rng.Intn(4) {
		case 0:
			agg = "SUM(r.big) AS s" // overflows int64, promotes to float64
		case 1:
			agg = "MIN(r.v) AS s, MAX(r.v) AS m" // NaN under the total order
		case 2:
			agg = "SUM(r.v) AS s" // NaN-poisoned sums, dyadic otherwise
		}
		return fmt.Sprintf("SELECT %s, COUNT(*) AS n, %s FROM %s WHERE %s GROUP BY %s",
			g, agg, joinStrings(from, ", "), joinStrings(where, " AND "), g)
	}
	// Scalar query with random projection width.
	k := 1 + rng.Intn(len(cols))
	rng.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
	sel := joinStrings(cols[:k], ", ")
	if rng.Intn(4) == 0 {
		sel = "DISTINCT " + sel
	}
	order := ""
	if rng.Intn(3) == 0 {
		order = " ORDER BY 1" // NaN and NULL take deterministic positions
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s%s",
		sel, joinStrings(from, ", "), joinStrings(where, " AND "), order)
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// oracle evaluates the query by brute-force nested loops over the base
// tables, independently of both executors' join machinery.
func oracle(t *testing.T, db *DB, sql string) []value.Row {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, db.schema)
	if err != nil {
		t.Fatal(err)
	}
	layout := analyze.NewLayout()
	var widths []int
	for ai, atom := range q.Atoms {
		for attr := range atom.Rel.Attrs {
			layout.Add(analyze.ColID{Atom: ai, Attr: attr})
		}
		widths = append(widths, atom.Rel.Arity())
	}
	var joined []value.Row
	var rec func(ai int, acc value.Row)
	rec = func(ai int, acc value.Row) {
		if ai == len(q.Atoms) {
			for _, c := range q.Conjuncts {
				ok, err := analyze.EvalBool(c.Expr, acc, layout)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					return
				}
			}
			joined = append(joined, acc.Clone())
			return
		}
		tab, _ := db.store.Table(q.Atoms[ai].Rel.Name)
		for _, row := range tab.Rows() {
			rec(ai+1, append(acc, row...))
		}
	}
	rec(0, nil)
	out, err := exec.Finish(q, joined, layout)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func bag(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.Key(r)
	}
	sort.Strings(out)
	return out
}

func equalBags(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRandomizedCrossEngineEquivalence(t *testing.T) {
	const (
		databases        = 6
		queriesPerDB     = 40
		wantCoveredTotal = 30 // sanity: the constraint library must cover a decent share
	)
	coveredTotal := 0
	for d := 0; d < databases; d++ {
		rng := rand.New(rand.NewSource(int64(1000 + d)))
		db := randomDB(t, rng)
		for qi := 0; qi < queriesPerDB; qi++ {
			sql := randomSQL(rng)
			want := bag(oracle(t, db, sql))

			info, err := db.Check(sql)
			if err != nil {
				t.Fatalf("Check(%q): %v", sql, err)
			}
			if info.Covered {
				coveredTotal++
			}

			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("Query(%q): %v", sql, err)
			}
			if got := bag(res.Rows); !equalBags(got, want) {
				t.Fatalf("db %d query %q (covered=%v, mode=%s):\nbeas   = %v\noracle = %v",
					d, sql, info.Covered, res.Stats.Mode, got, want)
			}
			// Covered queries must also agree through the strict bounded
			// path and respect the deduced bound.
			if info.Covered {
				bres, err := db.QueryBounded(sql)
				if err != nil {
					t.Fatalf("QueryBounded(%q): %v", sql, err)
				}
				if got := bag(bres.Rows); !equalBags(got, want) {
					t.Fatalf("bounded path diverges on %q", sql)
				}
				if info.Bound != ^uint64(0) && uint64(bres.Stats.TuplesFetched) > info.Bound {
					t.Fatalf("%q fetched %d > deduced bound %d", sql, bres.Stats.TuplesFetched, info.Bound)
				}
			}
			for _, base := range []Baseline{BaselinePostgres, BaselineMySQL, BaselineMariaDB} {
				cres, err := db.QueryBaseline(sql, base)
				if err != nil {
					t.Fatalf("QueryBaseline(%q, %s): %v", sql, base, err)
				}
				if got := bag(cres.Rows); !equalBags(got, want) {
					t.Fatalf("baseline %s diverges on %q:\ngot  = %v\nwant = %v", base, sql, got, want)
				}
			}
		}
	}
	if coveredTotal < wantCoveredTotal {
		t.Errorf("only %d/%d random queries were covered; generator or checker drifted",
			coveredTotal, databases*queriesPerDB)
	}
}

// TestRandomizedApproxSubset checks on random covered queries that
// budgeted approximation always returns a subset of the exact answer and
// reaches exactness when the budget suffices.
func TestRandomizedApproxSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	db := randomDB(t, rng)
	checked := 0
	for qi := 0; qi < 60 && checked < 15; qi++ {
		sql := randomSQL(rng)
		info, err := db.Check(sql)
		if err != nil || !info.Covered {
			continue
		}
		checked++
		exact, err := db.QueryBounded(sql)
		if err != nil {
			t.Fatal(err)
		}
		exactSet := map[string]int{}
		for _, r := range exact.Rows {
			exactSet[value.Key(r)]++
		}
		for _, budget := range []int64{1, 5, 20, 1 << 40} {
			res, cov, err := db.QueryApprox(sql, budget)
			if err != nil {
				t.Fatalf("QueryApprox(%q, %d): %v", sql, budget, err)
			}
			if cov >= 1 && !equalBags(bag(res.Rows), bag(exact.Rows)) {
				t.Fatalf("coverage 1 must mean exact: %q", sql)
			}
			// Subset check only for non-aggregate queries: truncated
			// aggregates produce rows with smaller counts, which are
			// approximations rather than members of the exact answer.
			if !isAggregate(sql) {
				for _, r := range res.Rows {
					if exactSet[value.Key(r)] == 0 {
						t.Fatalf("budget %d on %q produced a row outside the exact answer", budget, sql)
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no covered queries sampled")
	}
}

func isAggregate(sql string) bool {
	return len(sql) > 0 && (containsFold(sql, "COUNT(") || containsFold(sql, "SUM("))
}

func containsFold(s, sub string) bool {
	return len(s) >= len(sub) && (stringIndexFold(s, sub) >= 0)
}

func stringIndexFold(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if 'a' <= a && a <= 'z' {
				a -= 32
			}
			if 'a' <= b && b <= 'z' {
				b -= 32
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
