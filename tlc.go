package beas

import (
	"fmt"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/engine"
	"github.com/bounded-eval/beas/internal/qcache"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/stats"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/tlc"
)

// TLCQuery is one built-in query of the TLC telecom benchmark.
type TLCQuery struct {
	Name        string
	Description string
	SQL         string
	// Covered is the expected BE Checker verdict under the reference
	// access schema.
	Covered bool
}

// TLCQueries returns the benchmark's 12 built-in analytical queries
// (Q1 is the paper's Example 2).
func TLCQueries() []TLCQuery {
	qs := tlc.Queries()
	out := make([]TLCQuery, len(qs))
	for i, q := range qs {
		out[i] = TLCQuery{Name: q.Name, Description: q.Description, SQL: q.SQL, Covered: q.Covered}
	}
	return out
}

// TLCAccessSchema returns the reference access schema of the benchmark in
// the paper's notation (ψ1–ψ3 of Example 1 plus extensions).
func TLCAccessSchema() []string { return tlc.AccessSchemaSpecs() }

// NewTLCDB generates a TLC benchmark database at the given scale factor
// (the stand-in for the paper's 1 GB → 200 GB sweep; row counts grow
// linearly with scale) and registers the reference access schema.
func NewTLCDB(scale int) (*DB, error) {
	sch := tlc.Database()
	store := storage.NewStore(sch)
	if err := tlc.Generate(store, tlc.Config{Scale: scale, Seed: 20170514}); err != nil {
		return nil, err
	}
	db := newTLCBackedDB(sch, store)
	for _, spec := range tlc.AccessSchemaSpecs() {
		if err := db.RegisterConstraint(spec); err != nil {
			return nil, fmt.Errorf("beas: registering TLC access schema: %w", err)
		}
	}
	return db, nil
}

// MustNewTLCDB is NewTLCDB that panics on error.
func MustNewTLCDB(scale int) *DB {
	db, err := NewTLCDB(scale)
	if err != nil {
		panic(err)
	}
	return db
}

// NewTLCSchemaDB creates an empty database with the TLC relation schemas
// but no data and no access schema — for loading CSVs written by tlcgen
// and registering constraints afterwards.
func NewTLCSchemaDB() *DB {
	sch := tlc.Database()
	return newTLCBackedDB(sch, storage.NewStore(sch))
}

// newTLCBackedDB assembles a DB over a pre-built schema and store with
// the same service wiring as NewDB (access schema, statistics catalog,
// fallback engine).
func newTLCBackedDB(sch *schema.Database, store *storage.Store) *DB {
	db := &DB{schema: sch, store: store}
	db.access = access.NewSchema(store)
	db.statsCat = stats.NewCatalog(store, db.access)
	db.fallback = engine.New(store, engine.ProfilePostgres)
	db.qc = qcache.New(0, 0, false)
	return db
}

// TableNames returns the database's table names.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.Names()
}

// LoadTLC populates an empty database with the TLC benchmark at the
// given scale and registers the reference access schema. On a durable
// database the generated rows bypass the write-ahead log — logging
// millions of bulk-load records would defeat the point — and the load
// is made durable by one snapshot at the end: a crash mid-load recovers
// the pre-load (empty) state, never a partial instance.
func (db *DB) LoadTLC(scale int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errClosed
	}
	if db.store.TotalRows() > 0 || db.access.Len() > 0 {
		return fmt.Errorf("beas: LoadTLC needs an empty database (found %d rows, %d constraints)",
			db.store.TotalRows(), db.access.Len())
	}
	ref := tlc.Database()
	for _, name := range ref.Names() {
		rel, _ := ref.Relation(name)
		if _, ok := db.schema.Relation(name); ok {
			continue // schema already present (e.g. NewTLCSchemaDB)
		}
		if _, err := db.createTableLocked(rel); err != nil {
			return err
		}
	}
	if err := tlc.Generate(db.store, tlc.Config{Scale: scale, Seed: 20170514}); err != nil {
		return err
	}
	for _, spec := range tlc.AccessSchemaSpecs() {
		c, err := access.ParseConstraint(db.schema, spec)
		if err != nil {
			return err
		}
		if _, err := db.access.Register(c, false); err != nil {
			return fmt.Errorf("beas: registering TLC access schema: %w", err)
		}
	}
	db.bumpCatalog()
	if db.wal != nil {
		return db.snapshotLocked()
	}
	return nil
}
