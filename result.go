package beas

import (
	"fmt"
	"strings"
	"time"

	"github.com/bounded-eval/beas/internal/value"
)

// Value is a typed SQL scalar. It is an alias so that callers outside
// this module can name result values directly.
type Value = value.Value

// Row is one result tuple.
type Row = value.Row

// Mode says how a query was evaluated.
type Mode string

// Evaluation modes.
const (
	// ModeBounded: the query was covered; the plan accessed data only
	// through constraint indices.
	ModeBounded Mode = "bounded"
	// ModePartial: not covered; the covered sub-query ran boundedly, the
	// rest conventionally.
	ModePartial Mode = "partially-bounded"
	// ModeConventional: no atom was fetchable; pure conventional plan.
	ModeConventional Mode = "conventional"
	// ModeEmpty: contradictory constants; the empty answer was returned
	// without touching data.
	ModeEmpty Mode = "empty-guaranteed"
)

// StepStat reports one fetch step of a bounded plan: its identity, the
// actual work counters, the a-priori worst-case bounds and (optimizer
// on) the statistics-based estimates — the estimated-vs-actual rows of
// EXPLAIN ANALYZE.
type StepStat struct {
	Atom        string
	Constraint  string
	DistinctKey int64
	Fetched     int64
	RowsOut     int64
	Duration    time.Duration

	// KeyBound / OutBound are the step's worst-case bounds deduced before
	// execution; EstKeys / EstFetched / EstRows the cost-based
	// optimizer's estimates (zero when the optimizer is off).
	KeyBound, OutBound           uint64
	EstKeys, EstFetched, EstRows float64
}

// OpStat reports one conventional physical operator.
type OpStat struct {
	Op       string
	RowsIn   int64
	RowsOut  int64
	Duration time.Duration
	// EstRows is the planner's cardinality estimate for the operator's
	// output (0 where no estimate applies).
	EstRows float64
}

// Stats describes how a query was executed — the data behind the demo's
// performance analyser (Fig. 3).
type Stats struct {
	Mode    Mode
	Covered bool
	// Optimized reports that the cost-based optimizer was consulted for
	// this query (its estimates then appear on the fetch steps).
	Optimized bool
	// Bound is the deduced a-priori bound M on tuples fetched (covered
	// queries only).
	Bound uint64
	// ConstraintsUsed is the number of distinct access constraints in the
	// plan.
	ConstraintsUsed int
	// TuplesFetched counts partial tuples fetched via constraint indices
	// (|D_Q|); TuplesScanned counts base rows read by conventional scans.
	TuplesFetched int64
	TuplesScanned int64
	// FetchSteps break down the bounded part; Ops the conventional part.
	FetchSteps []StepStat
	Ops        []OpStat
	Duration   time.Duration
	// Plan is a human-readable plan description.
	Plan string
	// CacheHit reports that the answer was served from the semantic
	// result cache rather than executed. Cache metadata only: a hit
	// carries the same rows, order and data-derived statistics the
	// execution would have produced, so equivalence comparisons must
	// ignore this field (and Duration).
	CacheHit bool
	// Fingerprint is the statement's canonical identity (shared by all
	// syntactic variants) — the key of the workload digests and the
	// capture log. Metadata only, like CacheHit: equivalence comparisons
	// must ignore it.
	Fingerprint string
}

// Result is a query result.
type Result struct {
	Columns []string
	Rows    []Row
	Stats   Stats
}

// String renders the result as an aligned text table (for the CLI and
// examples).
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			if v.IsNull() {
				s = "NULL"
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}

// CheckInfo is the BE Checker's verdict, available without executing the
// query (demo §4(1)(a)).
type CheckInfo struct {
	// Covered reports bounded evaluability under the registered access
	// schema.
	Covered bool
	// Reason explains the blocking atom when not covered.
	Reason string
	// Bound is the deduced bound M on tuples fetched.
	Bound uint64
	// OutputBound bounds the joined intermediate result size.
	OutputBound uint64
	// ConstraintsUsed counts distinct constraints in the derivation.
	ConstraintsUsed int
	// EmptyGuaranteed: constant contradiction, empty answer for free.
	EmptyGuaranteed bool
	// Plan describes the bounded (or partially bounded) plan.
	Plan string
}

// WithinBudget reports whether the query can be answered by fetching at
// most budget tuples (without executing it).
func (c *CheckInfo) WithinBudget(budget uint64) bool {
	if c.EmptyGuaranteed {
		return true
	}
	return c.Covered && c.Bound <= budget
}
