package beas

import (
	"strings"
	"testing"
)

// example2DB builds the three-relation schema of the paper's Example 1
// with the access schema A0 (ψ1, ψ2, ψ3) and a small dataset in which the
// Example 2 query has a known answer.
func example2DB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	db.MustCreateTable("call",
		"pnum INT", "recnum INT", "date INT", "region STRING")
	db.MustCreateTable("package",
		"pnum INT", "pid STRING", "start INT", "end INT", "year INT")
	db.MustCreateTable("business",
		"pnum INT", "type STRING", "region STRING")

	// Businesses: banks in region "r0", plus noise.
	db.MustInsert("business", 100, "bank", "r0")
	db.MustInsert("business", 101, "bank", "r0")
	db.MustInsert("business", 102, "hospital", "r0")
	db.MustInsert("business", 103, "bank", "r9")

	// Packages: 100 and 101 hold package c0 in 2016 covering month 3;
	// 101 also holds a different package.
	db.MustInsert("package", 100, "c0", 1, 6, 2016)
	db.MustInsert("package", 101, "c0", 2, 4, 2016)
	db.MustInsert("package", 101, "c9", 7, 12, 2016)
	db.MustInsert("package", 102, "c0", 1, 12, 2016)
	db.MustInsert("package", 103, "c0", 1, 12, 2015)

	// Calls on date 3 (stand-in for d0): pnum 100 called two regions,
	// pnum 101 called one; noise on other dates/callers.
	db.MustInsert("call", 100, 555, 3, "east")
	db.MustInsert("call", 100, 556, 3, "west")
	db.MustInsert("call", 101, 557, 3, "east")
	db.MustInsert("call", 102, 558, 3, "north")
	db.MustInsert("call", 100, 559, 4, "south")

	db.MustRegisterConstraint("call({pnum, date} -> {recnum, region}, 500)")
	db.MustRegisterConstraint("package({pnum, year} -> {pid, start, end}, 12)")
	db.MustRegisterConstraint("business({type, region} -> pnum, 2000)")
	return db
}

// example2SQL is the query Q of the paper's Example 2 with t0 = 'bank',
// r0 = 'r0', d0 = 3, c0 = 'c0'.
const example2SQL = `
SELECT call.region
FROM call, package, business
WHERE business.type = 'bank' AND business.region = 'r0'
  AND business.pnum = call.pnum AND call.date = 3
  AND call.pnum = package.pnum AND package.year = 2016
  AND package.start <= 3 AND package.end >= 3
  AND package.pid = 'c0'`

func TestExample2Covered(t *testing.T) {
	db := example2DB(t)
	info, err := db.Check(example2SQL)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !info.Covered {
		t.Fatalf("Example 2 query must be covered under A0; reason: %s", info.Reason)
	}
	if info.ConstraintsUsed != 3 {
		t.Errorf("ConstraintsUsed = %d, want 3", info.ConstraintsUsed)
	}
	// Dedup-key bound: business ≤ 1·2000, package ≤ 2000·12 = 24000,
	// call ≤ 2000·500 = 1e6; total 1_026_000. (The paper quotes the looser
	// row-driven call bound 2000·12·500 = 12e6.)
	if info.Bound != 2000+24000+1000000 {
		t.Errorf("Bound = %d, want 1026000", info.Bound)
	}
	if !info.WithinBudget(2_000_000) {
		t.Errorf("query should fit a 2M-tuple budget")
	}
	if info.WithinBudget(1000) {
		t.Errorf("query should not fit a 1k-tuple budget")
	}
}

func TestExample2BoundedAnswer(t *testing.T) {
	db := example2DB(t)
	res, err := db.QueryBounded(example2SQL)
	if err != nil {
		t.Fatalf("QueryBounded: %v", err)
	}
	got := rowsToStrings(res)
	want := map[string]bool{"east": true, "west": true}
	if len(got) != 3 {
		t.Fatalf("got %d rows (%v), want 3 (east, west, east)", len(got), got)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected region %q", g)
		}
	}
	if res.Stats.Mode != ModeBounded {
		t.Errorf("Mode = %s, want %s", res.Stats.Mode, ModeBounded)
	}
	if res.Stats.TuplesFetched == 0 {
		t.Errorf("expected fetch accounting, got 0")
	}
	// The plan must touch only a handful of tuples in this tiny dataset.
	if res.Stats.TuplesFetched > 20 {
		t.Errorf("TuplesFetched = %d, want a small bounded number", res.Stats.TuplesFetched)
	}
}

func TestExample2MatchesBaselines(t *testing.T) {
	db := example2DB(t)
	bounded, err := db.QueryBounded(example2SQL)
	if err != nil {
		t.Fatalf("QueryBounded: %v", err)
	}
	for _, base := range []Baseline{BaselinePostgres, BaselineMySQL, BaselineMariaDB} {
		conv, err := db.QueryBaseline(example2SQL, base)
		if err != nil {
			t.Fatalf("QueryBaseline(%s): %v", base, err)
		}
		if !sameBag(rowsToStrings(bounded), rowsToStrings(conv)) {
			t.Errorf("%s result differs: bounded=%v conventional=%v",
				base, rowsToStrings(bounded), rowsToStrings(conv))
		}
	}
}

func TestExplainExample2(t *testing.T) {
	db := example2DB(t)
	text, err := db.Explain(example2SQL)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for _, want := range []string{"boundedly evaluable", "fetch business", "fetch package", "fetch call"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain output missing %q:\n%s", want, text)
		}
	}
}

// rowsToStrings flattens single-column results.
func rowsToStrings(r *Result) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func sameBag(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int)
	for _, x := range a {
		count[x]++
	}
	for _, x := range b {
		count[x]--
		if count[x] < 0 {
			return false
		}
	}
	return true
}
