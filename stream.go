package beas

import (
	"context"
	"fmt"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/qcache"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// RowIter is a streaming cursor over a query result: batches of rows are
// produced on demand by the same pull pipeline Query uses, so the full
// result — and the intermediate relations feeding it — are never
// materialised at once. Iterate with NextBatch (or the per-row Next) and
// always Close when done; abandoning the cursor early (e.g. after the
// first batch of a huge join) stops the underlying scans and index
// probes.
//
// The cursor holds the catalog read lock until Close (DDL and
// access-schema changes block), but row writes do not: inserting into
// or deleting from a table an open cursor is scanning fails the cursor
// with a "mutated during scan" error on its next pull rather than
// tearing the stream, and bounded cursors probe the live constraint
// indices. Close is idempotent and is called automatically when the
// stream is exhausted or errors.
type RowIter struct {
	db      *DB
	columns []string
	it      iter.Iterator
	res     *Result
	final   []func() // fold per-branch execution stats into res at close
	finish  func()   // finish the trace this cursor started (nil-safe set)
	start   time.Time

	batch  iter.Batch
	rows   []Row // per-row cursor state for Next
	pos    int
	opened bool
	closed bool
	err    error

	// Workload-digest state: the set installed when the cursor opened,
	// the statement text and a count of rows actually streamed. The
	// observation happens once, at Close, with the terminal outcome.
	digests *obs.DigestSet
	sql     string
	rowsOut int64

	// Store-on-drain state for the semantic result cache. A cursor that
	// streams a fully covered statement to exhaustion has materialised
	// the complete bounded answer anyway (it is at most the deduced
	// bound M rows), so Close admits it exactly like Query does; an
	// abandoned or failed cursor has a partial answer and never stores.
	cacheOK   bool
	cacheKey  string
	cacheTvs  []qcache.TableVersion
	cacheBr   []cachedBranch
	branches  int
	cacheRows []value.Row
	drained   bool
}

// cachedBranch pins one covered branch's plan, analysis and executor
// statistics for result-cache registration at Close.
type cachedBranch struct {
	plan *core.Plan
	q    *analyze.Query
	st   *core.Stats
}

// QueryIter evaluates sql exactly like Query — bounded when covered,
// partially bounded or conventional otherwise, per UNION branch — but
// returns a streaming cursor instead of a materialised Result. The two
// produce identical row bags; QueryIter additionally guarantees that a
// consumer which stops early never pays for the rows it did not read.
func (db *DB) QueryIter(sql string) (*RowIter, error) {
	return db.QueryIterContext(context.Background(), sql)
}

// QueryIterContext is QueryIter under a context: once ctx is cancelled
// or its deadline passes, the cursor's next pull fails with ctx's error
// and the underlying fetch loops, scans and joins stop at the next batch
// boundary. The cursor still must be Closed (cancellation does not
// release the catalog read lock); its statistics then reflect only the
// work performed before the cancellation.
func (db *DB) QueryIterContext(ctx context.Context, sql string) (*RowIter, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, finishTrace := db.startTrace(ctx, "query", sql)
	db.mu.RLock()
	ok := false
	defer func() {
		if !ok {
			db.mu.RUnlock()
			finishTrace()
		}
	}()
	tmpl, err := db.parseSpanLocked(ctx, sql)
	if err != nil {
		return nil, err
	}
	p := tmpl.Parsed.(*parsed)

	ri := &RowIter{
		db:      db,
		columns: p.branches[0].OutputNames(),
		start:   time.Now(),
		res:     &Result{Columns: p.branches[0].OutputNames(), Stats: Stats{Mode: ModeBounded, Covered: true, Optimized: db.optzr != nil, Fingerprint: tmpl.Fingerprint}},
		digests: db.digests.Load(),
		sql:     sql,
	}
	ri.finish = finishTrace

	// Semantic result cache: a fresh materialized answer streams from the
	// snapshot instead of re-executing. On a miss the cursor accumulates
	// the bounded answer as it drains and stores it at Close — but only
	// when the consumer read the stream to exhaustion without error.
	if db.qc.ResultsEnabled() {
		_, sp := obs.StartSpan(ctx, "cache")
		if cr, hit := db.qc.GetResult(tmpl.ResultKey); hit {
			sp.Set("hit", true)
			sp.End()
			ri.res.Stats.Bound = cr.Bound
			ri.res.Stats.ConstraintsUsed = cr.ConstraintsUsed
			ri.res.Stats.Plan = cr.Plan
			ri.res.Stats.CacheHit = true
			tf := cr.TuplesFetched
			steps := cr.Steps
			ri.final = append(ri.final, func() {
				ri.res.Stats.TuplesFetched += tf
				for _, s := range steps {
					ri.res.Stats.FetchSteps = append(ri.res.Stats.FetchSteps, StepStat(s))
				}
			})
			ri.it = iter.FromRows(cr.Rows, nil)
			ok = true
			return ri, nil
		}
		sp.Set("hit", false)
		sp.End()
	}

	// Storing needs every base-table version from *before* execution:
	// Store re-checks them so a mutation interleaved with the drain can
	// never be double-counted (once in the answer, once as a patch).
	cacheable := db.qc.ResultsEnabled()
	var tvs []qcache.TableVersion
	if cacheable {
		seen := make(map[*storage.Table]bool)
		for _, q := range p.branches {
			for _, a := range q.Atoms {
				t, ok := db.store.Table(a.Rel.Name)
				if !ok {
					cacheable = false
					break
				}
				if !seen[t] {
					seen[t] = true
					tvs = append(tvs, qcache.TableVersion{Table: t, Version: t.Version()})
				}
			}
		}
	}

	parts := make([]iter.Iterator, 0, len(p.branches))
	for _, q := range p.branches {
		chk := db.checkSpanLocked(ctx, q)
		if chk.Covered {
			plan, err := core.NewPlan(q, chk)
			if err != nil {
				return nil, err
			}
			plan.CollectKeys = cacheable
			var it iter.Iterator
			var cst *core.Stats
			if db.par > 1 {
				// Parallel mode: the bounded branch executes eagerly across
				// the worker pool (its size is bounded by the deduced bound
				// M) and the cursor streams the materialised result. A
				// consumer that stops early has already paid the bounded
				// cost — which is exactly what the checker promised.
				rows, pst, err := core.RunParallelContext(ctx, plan, db.par)
				if err != nil {
					return nil, err
				}
				it, cst = iter.FromRows(rows, nil), pst
			} else {
				db.vecPlanLocked(plan)
				it, cst = core.StreamContext(ctx, plan)
			}
			ri.res.Stats.Bound = satAdd(ri.res.Stats.Bound, chk.TotalBound)
			ri.res.Stats.ConstraintsUsed += chk.ConstraintsUsed
			ri.res.Stats.Plan += plan.Describe()
			ri.final = append(ri.final, func() {
				ri.res.Stats.TuplesFetched += cst.Fetched
				for _, s := range cst.Steps {
					ri.res.Stats.FetchSteps = append(ri.res.Stats.FetchSteps, StepStat(s))
				}
			})
			if cacheable {
				ri.cacheBr = append(ri.cacheBr, cachedBranch{plan: plan, q: q, st: cst})
			}
			parts = append(parts, it)
			continue
		}
		cacheable = false
		// Not covered: partially bounded plan. The bounded sub-query runs
		// eagerly here (its size is bounded by the access schema); the
		// conventional join over it streams.
		pp, err := core.NewPartialPlan(q, chk)
		if err != nil {
			return nil, err
		}
		it, subStats, engStats, err := core.StreamPartialContext(ctx, pp, q, db.fallback, db.par)
		if err != nil {
			return nil, err
		}
		ri.res.Stats.Covered = false
		if pp.Sub != nil {
			ri.res.Stats.Mode = ModePartial
		} else {
			ri.res.Stats.Mode = ModeConventional
		}
		ri.res.Stats.TuplesFetched += subStats.Fetched
		for _, s := range subStats.Steps {
			ri.res.Stats.FetchSteps = append(ri.res.Stats.FetchSteps, StepStat(s))
		}
		ri.res.Stats.Plan += pp.Describe(q)
		ri.final = append(ri.final, func() {
			ri.res.Stats.TuplesScanned += engStats.Scanned
			for _, o := range engStats.Ops {
				ri.res.Stats.Ops = append(ri.res.Stats.Ops, OpStat(o))
			}
		})
		parts = append(parts, it)
	}

	// UNION semantics: every branch up to the last plain (non-ALL) UNION
	// shares one duplicate-elimination set; branches after it append
	// freely. This matches Query's fold of exec.Dedup over the branches.
	dedupThrough := -1
	for i := 1; i < len(p.branches); i++ {
		if !p.unionAll[i] {
			dedupThrough = i
		}
	}
	ri.it = &unionIter{parts: parts, dedupThrough: dedupThrough}
	ri.cacheOK = cacheable
	ri.cacheKey = tmpl.ResultKey
	ri.cacheTvs = tvs
	ri.branches = len(p.branches)
	if tr, parent := obs.FromContext(ctx); tr != nil {
		// The stream span measures time spent pulling result batches
		// through the cursor — including the upstream pipeline; the fetch
		// and operator spans break out where it went.
		streamStart := time.Now()
		ri.it = iter.Timed(ri.it, func(batches, rows int64, d time.Duration) {
			tr.AddSpan(parent, "stream", streamStart, d,
				obs.Attr{Key: "batches", Val: batches},
				obs.Attr{Key: "rows", Val: rows},
			)
		})
	}
	ok = true
	return ri, nil
}

// Columns returns the output column names.
func (ri *RowIter) Columns() []string { return ri.columns }

// NextBatch returns the next batch of result rows, or nil when the
// stream is exhausted (the cursor closes itself then). The returned
// slice is only valid until the next NextBatch call.
func (ri *RowIter) NextBatch() ([]Row, error) {
	if ri.closed {
		return nil, ri.err
	}
	if !ri.opened {
		if err := ri.it.Open(); err != nil {
			ri.fail(err)
			return nil, err
		}
		ri.opened = true
	}
	ok, err := ri.it.Next(&ri.batch)
	if err != nil {
		ri.fail(err)
		return nil, err
	}
	if !ok {
		ri.drained = true
		ri.Close()
		return nil, nil
	}
	ri.rowsOut += int64(len(ri.batch.Rows))
	if ri.cacheOK {
		// Batch storage is reused between pulls; the cache keeps its own
		// copy of each row.
		for _, r := range ri.batch.Rows {
			ri.cacheRows = append(ri.cacheRows, append(value.Row(nil), r...))
		}
	}
	return ri.batch.Rows, nil
}

// Next returns the next single row; ok is false once the stream is
// exhausted. Use either Next or NextBatch on a cursor, not both.
func (ri *RowIter) Next() (Row, bool, error) {
	for ri.pos >= len(ri.rows) {
		rows, err := ri.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if rows == nil {
			return nil, false, nil
		}
		ri.rows, ri.pos = rows, 0
	}
	r := ri.rows[ri.pos]
	ri.pos++
	return r, true, nil
}

// Close releases the cursor: the pipeline is shut down (stopping any
// remaining scans and index probes), execution statistics are finalised
// and the database read lock is released. Idempotent.
func (ri *RowIter) Close() error {
	if ri.closed {
		return nil
	}
	ri.closed = true
	// Close even when Open failed partway: iterators tolerate Close
	// without Open, and a half-opened pipeline must be shut down whole.
	err := ri.it.Close()
	for _, f := range ri.final {
		f()
	}
	st := &ri.res.Stats
	st.Duration = time.Since(ri.start)
	if st.Mode == ModeBounded && st.TuplesFetched == 0 && st.Bound == 0 {
		st.Mode = ModeEmpty
	}
	if ri.cacheOK && ri.drained && err == nil && ri.err == nil {
		ri.storeDrainedLocked()
	}
	ri.db.mu.RUnlock()
	if ri.finish != nil {
		ri.finish()
	}
	if ri.err == nil {
		ri.err = err
	}
	if ri.digests != nil {
		// Outside the catalog lock: the digest set has its own mutex and
		// the cursor is single-consumer, so its stats are stable here.
		ri.digests.Observe(digestObservation(st.Fingerprint, ri.sql, st, ri.rowsOut, ri.err, st.Duration))
	}
	return err
}

// storeDrainedLocked admits the fully drained answer into the result
// cache, registering the same per-step probed-key sets, base-table
// versions and bound guards Query's store path does. Called under
// db.mu (read) from Close, with execution statistics already folded.
func (ri *RowIter) storeDrainedLocked() {
	var cacheSteps []core.StepStat
	var regs []qcache.StepReg
	for _, cb := range ri.cacheBr {
		for si := range cb.plan.Steps {
			t, ok := ri.db.store.Table(cb.q.Atoms[cb.plan.Steps[si].Atom].Rel.Name)
			if !ok {
				return
			}
			var keys []string
			if cb.st.StepKeys != nil {
				keys = cb.st.StepKeys[si]
			}
			regs = append(regs, qcache.StepReg{Table: t, Step: &cb.plan.Steps[si], Keys: keys, StatIdx: len(cacheSteps) + si})
		}
		cacheSteps = append(cacheSteps, cb.st.Steps...)
	}
	st := &ri.res.Stats
	var firstPlan *core.Plan
	var q0 *analyze.Query
	if len(ri.cacheBr) > 0 {
		firstPlan, q0 = ri.cacheBr[0].plan, ri.cacheBr[0].q
	}
	ri.db.qc.Store(&qcache.StoreRequest{
		Key: ri.cacheKey,
		Result: &qcache.CachedResult{
			Columns:         ri.res.Columns,
			Rows:            ri.cacheRows,
			Bound:           st.Bound,
			ConstraintsUsed: st.ConstraintsUsed,
			TuplesFetched:   st.TuplesFetched,
			Steps:           cacheSteps,
			Plan:            st.Plan,
			Optimized:       st.Optimized,
		},
		Branches:    ri.branches,
		Query:       q0,
		Plan:        firstPlan,
		Steps:       regs,
		Tables:      ri.cacheTvs,
		OptimizerOn: ri.db.optzr != nil,
	})
}

// Stats returns the execution statistics. Counters accrue while the
// cursor streams and are final once it is exhausted or closed; with
// early termination they reflect only the work actually performed.
func (ri *RowIter) Stats() *Stats { return &ri.res.Stats }

// Err returns the first error the cursor encountered, if any.
func (ri *RowIter) Err() error { return ri.err }

func (ri *RowIter) fail(err error) {
	if ri.err == nil {
		ri.err = fmt.Errorf("beas: streaming query: %w", err)
	}
	ri.Close()
}

// unionIter concatenates the UNION branches of a statement. Branches up
// to and including dedupThrough share one seen-set (plain UNION
// semantics: iterated dedup over the concatenation keeps first
// occurrences); branches after it are UNION ALL tails and append freely.
type unionIter struct {
	parts        []iter.Iterator
	dedupThrough int // index of last deduplicated branch; -1 = none

	cur    int
	opened int // how many parts have been opened
	seen   map[string]struct{}
	kb     []byte
	buf    iter.Batch
}

func (u *unionIter) Open() error {
	if u.dedupThrough >= 0 {
		u.seen = make(map[string]struct{})
	}
	// Branches open lazily as the cursor reaches them, so a consumer that
	// stops inside branch 0 never starts branch 1's pipeline.
	return u.openTo(0)
}

func (u *unionIter) openTo(i int) error {
	for u.opened <= i && u.opened < len(u.parts) {
		if err := u.parts[u.opened].Open(); err != nil {
			return err
		}
		u.opened++
	}
	return nil
}

func (u *unionIter) Next(b *iter.Batch) (bool, error) {
	b.Reset()
	for b.Len() == 0 {
		if u.cur >= len(u.parts) {
			return false, nil
		}
		if err := u.openTo(u.cur); err != nil {
			return false, err
		}
		ok, err := u.parts[u.cur].Next(&u.buf)
		if err != nil {
			return false, err
		}
		if !ok {
			u.cur++
			continue
		}
		for i, r := range u.buf.Rows {
			if u.cur <= u.dedupThrough {
				u.kb = value.AppendRowKey(u.kb[:0], r, nil)
				if _, dup := u.seen[string(u.kb)]; dup {
					continue
				}
				u.seen[string(u.kb)] = struct{}{}
			}
			b.Append(r, u.buf.Weight(i))
		}
	}
	return true, nil
}

func (u *unionIter) Close() error {
	var err error
	for _, p := range u.parts {
		if cerr := p.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
