package beas

// End-to-end observability tests over the public facade: a traced TLC
// query must yield a span tree covering the whole lifecycle with
// estimated-vs-actual fetch counters, and SetMetrics must expose a
// lintable Prometheus page whose counters track query work. The
// benchmarks at the bottom quantify the cost of leaving tracing and
// metrics installed (the tracing-off case is the one the perf gate
// holds to PR 6 numbers).

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/obs"
)

// walkSpans flattens a span tree depth-first.
func walkSpans(n *obs.SpanNode, visit func(*obs.SpanNode)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		walkSpans(c, visit)
	}
}

func TestTracedQueryLifecycle(t *testing.T) {
	db := MustNewTLCDB(1)
	db.SetOptimizer(true)
	defer db.SetOptimizer(false)
	tc := NewTracer(TracerOptions{SampleRate: 1, RingSize: 8})
	db.SetTracer(tc)

	sql := tlcSQLFor(t, "Q1")
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mode != ModeBounded {
		t.Fatalf("Q1 ran in mode %v, want bounded", res.Stats.Mode)
	}

	recent := tc.Recent()
	if len(recent) != 1 {
		t.Fatalf("tracer retained %d traces, want 1", len(recent))
	}
	tr := tc.Get(recent[0].ID)
	if tr == nil {
		t.Fatal("retained trace not resolvable by ID")
	}
	tree := tr.Tree()
	if tree.Root == nil || tree.Root.Name != "query" {
		t.Fatalf("root span = %+v, want query", tree.Root)
	}
	if tree.DurationMS <= 0 {
		t.Errorf("trace duration = %v, want > 0", tree.DurationMS)
	}
	if got := tree.Root.Attrs["sql"]; got != sql {
		t.Errorf("root sql attr = %v", got)
	}

	// The lifecycle stages must all appear somewhere in the tree.
	seen := map[string]int{}
	var fetchSpans []*obs.SpanNode
	walkSpans(tree.Root, func(n *obs.SpanNode) {
		switch {
		case strings.HasPrefix(n.Name, "fetch "):
			seen["fetch"]++
			fetchSpans = append(fetchSpans, n)
		default:
			seen[n.Name]++
		}
	})
	for _, want := range []string{"parse", "check", "optimize", "fetch"} {
		if seen[want] == 0 {
			t.Errorf("no %q span in trace (saw %v)", want, seen)
		}
	}
	if len(fetchSpans) != len(res.Stats.FetchSteps) {
		t.Fatalf("%d fetch spans for %d fetch steps", len(fetchSpans), len(res.Stats.FetchSteps))
	}

	// Fetch spans carry the estimated-vs-actual breakdown. Actual
	// counters must match Stats exactly; estimates appear because the
	// optimizer ran (they may still be absent for a step it had no
	// statistics for, so require them on at least one span).
	var sawEstimates bool
	var fetched int64
	for i, n := range fetchSpans {
		st := res.Stats.FetchSteps[i]
		if n.Attrs["constraint"] != st.Constraint {
			t.Errorf("fetch span %d constraint = %v, want %v", i, n.Attrs["constraint"], st.Constraint)
		}
		if n.Attrs["keys"] != st.DistinctKey || n.Attrs["fetched"] != st.Fetched || n.Attrs["rows"] != st.RowsOut {
			t.Errorf("fetch span %d actuals = %v, want keys=%d fetched=%d rows=%d",
				i, n.Attrs, st.DistinctKey, st.Fetched, st.RowsOut)
		}
		if _, ok := n.Attrs["estFetched"]; ok {
			sawEstimates = true
		}
		fetched += st.Fetched
	}
	if !sawEstimates {
		t.Error("optimizer ran but no fetch span carries estimates")
	}
	if fetched != res.Stats.TuplesFetched {
		t.Errorf("fetch steps sum to %d tuples, Stats says %d", fetched, res.Stats.TuplesFetched)
	}

	// Removing the tracer stops retention.
	db.SetTracer(nil)
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	if got := len(tc.Recent()); got != 1 {
		t.Errorf("query after SetTracer(nil) retained a trace: %d", got)
	}
}

func TestSetMetricsTracksQueries(t *testing.T) {
	db := MustNewTLCDB(1)
	reg := NewMetricsRegistry()
	db.SetMetrics(reg)

	scrape := func() map[string]float64 {
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		exp, err := obs.ParsePrometheus(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("parse exposition: %v", err)
		}
		if err := obs.Lint(exp); err != nil {
			t.Fatalf("lint exposition: %v", err)
		}
		vals := map[string]float64{}
		for _, s := range exp.Samples {
			vals[s.Key()] = s.Value
		}
		return vals
	}

	before := scrape()
	sql := tlcSQLFor(t, "Q3")
	if _, err := db.Query(sql); err != nil { // fresh statement: cache miss
		t.Fatal(err)
	}
	if _, err := db.Query(sql); err != nil { // repeat: cache hit
		t.Fatal(err)
	}
	after := scrape()

	if d := after["beas_plan_cache_misses_total"] - before["beas_plan_cache_misses_total"]; d != 1 {
		t.Errorf("plan-cache misses grew by %v, want 1", d)
	}
	if d := after["beas_plan_cache_hits_total"] - before["beas_plan_cache_hits_total"]; d < 1 {
		t.Errorf("plan-cache hits grew by %v, want >= 1", d)
	}
	// In-memory database: WAL series exist (the page is stable whether
	// or not durability is on) and stay zero.
	for _, name := range []string{"beas_wal_size_bytes", "beas_wal_last_lsn", "beas_wal_appends_total"} {
		v, ok := after[name]
		if !ok {
			t.Errorf("%s missing from exposition", name)
		} else if v != 0 {
			t.Errorf("%s = %v on an in-memory store, want 0", name, v)
		}
	}
}

// BenchmarkTracedQuery prices the tracer on the hot query path: off
// (the default every query pays), installed-but-unsampled (spans are
// recorded, retention skipped) and sampled (full retention). The "off"
// series is what the PR 6 perf gate compares against.
func BenchmarkTracedQuery(b *testing.B) {
	sql := tlcSQLFor(b, "Q1")
	for _, mode := range []struct {
		name string
		tc   *Tracer
	}{
		{"off", nil},
		{"unsampled", NewTracer(TracerOptions{SampleRate: 0, RingSize: 8})},
		{"sampled", NewTracer(TracerOptions{SampleRate: 1, RingSize: 8})},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := tlcDB(b, 1)
			db.SetTracer(mode.tc)
			defer db.SetTracer(nil) // tlcCache instances are shared
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryBounded(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetricsOverhead prices an installed metrics registry on the
// same path. DB-level metrics are scrape-time (CounterFunc/GaugeFunc
// over existing internal counters), so "on" should be indistinguishable
// from "off".
func BenchmarkMetricsOverhead(b *testing.B) {
	sql := tlcSQLFor(b, "Q1")
	b.Run("off", func(b *testing.B) {
		db := tlcDB(b, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryBounded(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		db := tlcDB(b, 1)
		db.SetMetrics(NewMetricsRegistry())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryBounded(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}
