package beas

import (
	"context"
	"errors"
	"time"

	"github.com/bounded-eval/beas/internal/obs"
)

// DigestSet aggregates per-fingerprint workload statistics: calls,
// error/cancel counts, latency quantiles, deduced bound vs actual
// fetch volume, optimizer-estimate honesty and result-cache hit
// ratios, bounded to the top-K statements by total execution time.
type DigestSet = obs.DigestSet

// DigestSnapshot is the rendered aggregate of one fingerprint.
type DigestSnapshot = obs.DigestSnapshot

// NewDigestSet creates a digest set retaining the top topK fingerprints
// by total execution time (topK <= 0 selects the default of 128).
func NewDigestSet(topK int) *DigestSet { return obs.NewDigestSet(topK) }

// SetDigests installs (or, with nil, removes) the workload digest set.
// Every finished Query/QueryIter/QueryApprox execution — including
// cancellations and failures after analysis — folds into it. Like
// SetTracer this is atomic: it never blocks queries in flight, and a
// disabled digest layer costs the query path one atomic load.
func (db *DB) SetDigests(d *DigestSet) { db.digests.Store(d) }

// Digests returns the installed digest set, or nil when disabled.
func (db *DB) Digests() *DigestSet { return db.digests.Load() }

// digestOutcome classifies a terminal error for the digest layer.
func digestOutcome(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeCanceled
	default:
		return obs.OutcomeError
	}
}

// digestObservation assembles the digest view of one finished
// execution. st may be nil (statement failed before producing stats);
// fp may be empty (failed before analysis), in which case the set falls
// back to a text fingerprint.
func digestObservation(fp, sql string, st *Stats, rows int64, err error, dur time.Duration) obs.DigestObservation {
	o := obs.DigestObservation{
		Fingerprint: fp,
		SQL:         sql,
		Outcome:     digestOutcome(err),
		Rows:        rows,
		Duration:    dur,
	}
	if st != nil {
		o.Mode = string(st.Mode)
		o.CacheHit = st.CacheHit
		o.Bound = st.Bound
		o.Fetched = st.TuplesFetched
		o.Scanned = st.TuplesScanned
		if st.Optimized && !st.CacheHit {
			for _, s := range st.FetchSteps {
				o.EstKeys += s.EstKeys
				o.EstFetched += s.EstFetched
				o.ActualKeys += s.DistinctKey
			}
		}
	}
	return o
}

// observeQueryDigest folds a materialized Result (or its terminal
// error) into the digests.
func observeQueryDigest(d *obs.DigestSet, fp, sql string, res *Result, err error, dur time.Duration) {
	var st *Stats
	var rows int64
	if res != nil {
		st = &res.Stats
		rows = int64(len(res.Rows))
	}
	d.Observe(digestObservation(fp, sql, st, rows, err, dur))
}
