package beas

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

// The statistics catalog must stay exact — row counts, per-constraint
// distinct-X counts, tuple counts and fan-out maxima — under an
// arbitrary interleaving of Insert, Delete and Retighten, because the
// cost-based optimizer plans with it and the fan-out histograms are
// maintained incrementally (O(1) per mutation) rather than recomputed.
// This property test runs a randomized workload against a durable
// database, checks the catalog against a naive recomputation from a
// mirrored row set at every step, and re-checks after a simulated crash
// (WAL replay) and after a clean close/reopen (snapshot load).

type statsOracle struct {
	rows []value.Row // mirror of table w(a, b, c)
}

func (o *statsOracle) insert(a, b int64, c string) {
	o.rows = append(o.rows, value.Row{value.NewInt(a), value.NewInt(b), value.NewString(c)})
}

func (o *statsOracle) deleteA(a int64) {
	kept := o.rows[:0]
	for _, r := range o.rows {
		if r[0].I != a {
			kept = append(kept, r)
		}
	}
	o.rows = kept
}

// fanout recomputes (distinctX, tuples, maxFanout) for X = the given
// column positions, Y = the remaining columns, from the mirror.
func (o *statsOracle) fanout(xPos []int) (keys int64, tuples int64, maxF int) {
	perKey := make(map[string]map[string]bool)
	var yPos []int
	for i := 0; i < 3; i++ {
		inX := false
		for _, x := range xPos {
			if x == i {
				inX = true
			}
		}
		if !inX {
			yPos = append(yPos, i)
		}
	}
	for _, r := range o.rows {
		xk := value.Key(r.Project(xPos))
		yk := value.Key(r.Project(yPos))
		if perKey[xk] == nil {
			perKey[xk] = make(map[string]bool)
		}
		perKey[xk][yk] = true
	}
	for _, ys := range perKey {
		tuples += int64(len(ys))
		if len(ys) > maxF {
			maxF = len(ys)
		}
	}
	return int64(len(perKey)), tuples, maxF
}

// checkCatalog compares the database's catalog dump against the mirror.
func checkCatalog(t *testing.T, db *DB, o *statsOracle, context string) {
	t.Helper()
	tables, cons := db.DataStats()
	for _, tb := range tables {
		if tb.Name == "w" && tb.Rows != len(o.rows) {
			t.Fatalf("%s: catalog rows = %d, mirror = %d", context, tb.Rows, len(o.rows))
		}
	}
	xFor := map[string][]int{
		"w({a} -> {b, c}": {0},
		"w({a, b} -> {c}": {0, 1},
	}
	matched := 0
	for _, cs := range cons {
		for prefix, xPos := range xFor {
			if len(cs.Spec) < len(prefix) || cs.Spec[:len(prefix)] != prefix {
				continue
			}
			matched++
			keys, tuples, maxF := o.fanout(xPos)
			if cs.DistinctKeys != keys {
				t.Fatalf("%s: %s distinct keys = %d, want %d", context, cs.Spec, cs.DistinctKeys, keys)
			}
			if cs.Tuples != tuples {
				t.Fatalf("%s: %s tuples = %d, want %d", context, cs.Spec, cs.Tuples, tuples)
			}
			if cs.MaxFanout != maxF {
				t.Fatalf("%s: %s max fanout = %d, want %d", context, cs.Spec, cs.MaxFanout, maxF)
			}
			if keys > 0 {
				wantMean := float64(tuples) / float64(keys)
				if diff := cs.MeanFanout - wantMean; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s: %s mean fanout = %v, want %v", context, cs.Spec, cs.MeanFanout, wantMean)
				}
				if cs.P50Fanout > cs.P95Fanout || cs.P95Fanout > cs.MaxFanout {
					t.Fatalf("%s: %s quantiles disordered: p50=%d p95=%d max=%d",
						context, cs.Spec, cs.P50Fanout, cs.P95Fanout, cs.MaxFanout)
				}
			}
		}
	}
	if matched < 2 {
		t.Fatalf("%s: catalog dump matched only %d of the 2 constraints", context, matched)
	}
}

func TestStatsCatalogExactUnderWorkload(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, &Options{SnapshotEvery: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("w", "a INT", "b INT", "c STRING"); err != nil {
		t.Fatal(err)
	}
	o := &statsOracle{}
	// Seed a few rows so the auto-widened registrations see data.
	rng := rand.New(rand.NewSource(20260730))
	seed := func() (int64, int64, string) {
		return int64(rng.Intn(7)), int64(rng.Intn(5)), fmt.Sprintf("c%d", rng.Intn(4))
	}
	for i := 0; i < 20; i++ {
		a, b, c := seed()
		db.MustInsert("w", a, b, c)
		o.insert(a, b, c)
	}
	if _, err := db.RegisterConstraintAuto("w", []string{"a"}, []string{"b", "c"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RegisterConstraintAuto("w", []string{"a", "b"}, []string{"c"}, 1); err != nil {
		t.Fatal(err)
	}
	checkCatalog(t, db, o, "after seed")

	const ops = 400
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0: // delete every row with one a-value
			a := int64(rng.Intn(7))
			if _, err := db.Delete("w", map[string]any{"a": a}); err != nil {
				t.Fatal(err)
			}
			o.deleteA(a)
		case 1: // retighten the bounds to the observed maxima
			if _, err := db.Retighten(); err != nil {
				t.Fatal(err)
			}
		default:
			a, b, c := seed()
			db.MustInsert("w", a, b, c)
			o.insert(a, b, c)
		}
		if i%25 == 0 {
			checkCatalog(t, db, o, fmt.Sprintf("after op %d", i))
		}
	}
	checkCatalog(t, db, o, "after workload")

	// Crash simulation: copy the live directory (WAL only, no snapshot —
	// SnapshotEvery is disabled) and recover. The recovered catalog must
	// be exactly as exact as the live one.
	crashDir := copyDir(t, dir)
	crashed, err := Open(crashDir, nil)
	if err != nil {
		t.Fatalf("recovering crash copy: %v", err)
	}
	checkCatalog(t, crashed, o, "after crash recovery (WAL replay)")
	if err := crashed.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean close + reopen: recovery from the final snapshot.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkCatalog(t, re, o, "after snapshot reopen")
}
