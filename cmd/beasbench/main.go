// Command beasbench regenerates the paper's evaluation artefacts (figures
// and tables) on the synthetic TLC benchmark. Each experiment is
// described in DESIGN.md §4 and EXPERIMENTS.md.
//
// Usage:
//
//	beasbench -exp example2|fig3|fig4|queries|budget|partial|discovery|approx|maint|vector|cache|digest|all
//	          [-scale N] [-scales 1,2,5,10,20] [-runs 3]
//
// Scale factors stand in for the paper's 1 GB → 200 GB sweep: row counts
// grow linearly with scale (see DESIGN.md §5, Substitutions).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	beas "github.com/bounded-eval/beas"
)

func main() {
	exp := flag.String("exp", "all", "experiment: example2, fig3, fig4, queries, budget, partial, discovery, approx, maint, vector, cache, digest, all")
	scale := flag.Int("scale", 5, "TLC scale factor for single-scale experiments")
	scales := flag.String("scales", "1,2,5,10,20", "comma-separated scale factors for the fig4 sweep")
	runs := flag.Int("runs", 3, "timing repetitions (the minimum is reported)")
	jsonOut := flag.String("json", "", "also write machine-readable per-experiment timings (name, scale, runs, ns/op, rows fetched) to this file")
	jsonBase := flag.String("json-baseline", "", "write the digest experiment's digests-off timings to this file; with -json it forms the baseline/current pair cmd/benchgate compares")
	noVec := flag.Bool("novec", false, "disable vectorized (columnar) execution; use to record the scalar baseline")
	rcache := flag.Bool("rcache", false, "enable the semantic result cache on the benchmark databases; use to record the warm-cache run the cache experiment compares against")
	digests := flag.Bool("digests", false, "enable workload digests on the benchmark databases; use to measure the digest layer's overhead against a digests-off run")
	flag.Parse()

	sc, err := parseScales(*scales)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beasbench:", err)
		os.Exit(2)
	}
	h := &harness{scale: *scale, scales: sc, runs: *runs, novec: *noVec, rcache: *rcache, digests: *digests}
	defer func() {
		write := func(path string, recs []benchRecord) {
			if path == "" {
				return
			}
			if err := writeJSON(path, recs); err != nil {
				fmt.Fprintln(os.Stderr, "beasbench:", err)
				os.Exit(1)
			}
			fmt.Printf("\nwrote %d timing records to %s\n", len(recs), path)
		}
		write(*jsonOut, h.records)
		write(*jsonBase, h.baseRecords)
	}()

	all := map[string]func(){
		"example2":  h.example2,
		"fig3":      h.fig3,
		"fig4":      h.fig4,
		"queries":   h.queries,
		"budget":    h.budget,
		"partial":   h.partial,
		"discovery": h.discovery,
		"approx":    h.approx,
		"maint":     h.maint,
		"vector":    h.vector,
		"cache":     h.cache,
		"digest":    h.digest,
	}
	if *exp == "all" {
		for _, name := range []string{"example2", "fig3", "fig4", "queries", "budget", "partial", "discovery", "approx", "maint", "vector", "cache", "digest"} {
			all[name]()
		}
		return
	}
	fn, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "beasbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

func parseScales(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad scale %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

type harness struct {
	scale   int
	scales  []int
	runs    int
	novec   bool
	rcache  bool
	digests bool

	dbCache map[int]*beas.DB
	records []benchRecord
	// baseRecords is the -json-baseline sink: the digests-off half of
	// the digest experiment's interleaved comparison.
	baseRecords []benchRecord
}

// benchRecord is one machine-readable timing: the -json output feeds the
// BENCH_*.json performance trajectory.
type benchRecord struct {
	Experiment    string `json:"experiment"`
	Name          string `json:"name"`
	Scale         int    `json:"scale"`
	Runs          int    `json:"runs"`
	NsPerOp       int64  `json:"nsPerOp"`
	Rows          int    `json:"rows"`
	TuplesFetched int64  `json:"tuplesFetched"`
	TuplesScanned int64  `json:"tuplesScanned"`
	// CacheHits / CacheMisses snapshot the database's cumulative
	// result-cache counters when the record was filed (cache experiment
	// only) — the hit-rate evidence behind the warm-vs-cold speedups.
	CacheHits   uint64 `json:"cacheHits,omitempty"`
	CacheMisses uint64 `json:"cacheMisses,omitempty"`
}

// record files one timing into the -json output.
func (h *harness) record(exp, name string, scale int, d time.Duration, res *beas.Result) {
	h.records = append(h.records, h.makeRecord(exp, name, scale, d, res))
}

// recordBaseline files one timing into the -json-baseline output.
func (h *harness) recordBaseline(exp, name string, scale int, d time.Duration, res *beas.Result) {
	h.baseRecords = append(h.baseRecords, h.makeRecord(exp, name, scale, d, res))
}

func (h *harness) makeRecord(exp, name string, scale int, d time.Duration, res *beas.Result) benchRecord {
	rec := benchRecord{Experiment: exp, Name: name, Scale: scale, Runs: h.runs, NsPerOp: d.Nanoseconds()}
	if res != nil {
		rec.Rows = len(res.Rows)
		rec.TuplesFetched = res.Stats.TuplesFetched
		rec.TuplesScanned = res.Stats.TuplesScanned
	}
	return rec
}

// recordCache is record plus the database's cumulative result-cache
// counters as hit-rate evidence.
func (h *harness) recordCache(exp, name string, scale int, d time.Duration, res *beas.Result, db *beas.DB) {
	h.record(exp, name, scale, d, res)
	s := db.ResultCacheStats()
	r := &h.records[len(h.records)-1]
	r.CacheHits, r.CacheMisses = s.Hits, s.Misses
}

// benchOutput is the top-level -json document.
type benchOutput struct {
	Schema  string        `json:"schema"`
	Records []benchRecord `json:"records"`
}

func writeJSON(path string, recs []benchRecord) error {
	out, err := json.MarshalIndent(benchOutput{Schema: "beasbench/v1", Records: recs}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func (h *harness) db(scale int) *beas.DB {
	if h.dbCache == nil {
		h.dbCache = make(map[int]*beas.DB)
	}
	if db, ok := h.dbCache[scale]; ok {
		return db
	}
	fmt.Printf("  [generating TLC at scale %d ...]\n", scale)
	db := beas.MustNewTLCDB(scale)
	if h.novec {
		db.SetVectorized(false)
	}
	if h.rcache {
		db.SetResultCache(true)
	}
	if h.digests {
		db.SetDigests(beas.NewDigestSet(128))
	}
	h.dbCache[scale] = db
	return db
}

func (h *harness) banner(title string) {
	fmt.Println()
	fmt.Println("=" + strings.Repeat("=", 74))
	fmt.Println("== " + title)
	fmt.Println("=" + strings.Repeat("=", 74))
}

// timeQuery reports the minimum duration and the last result over h.runs
// repetitions, after one untimed warm-up run (the warm-up pays one-time
// costs such as table-statistics computation, which a production system
// would amortise across queries).
func (h *harness) timeQuery(run func() (*beas.Result, error)) (time.Duration, *beas.Result, error) {
	if _, err := run(); err != nil {
		return 0, nil, err
	}
	var best time.Duration
	var res *beas.Result
	for i := 0; i < h.runs; i++ {
		r, err := run()
		if err != nil {
			return 0, nil, err
		}
		if i == 0 || r.Stats.Duration < best {
			best = r.Stats.Duration
		}
		res = r
	}
	return best, res, nil
}

func (h *harness) timeBounded(db *beas.DB, sql string) (time.Duration, *beas.Result, error) {
	return h.timeQuery(func() (*beas.Result, error) { return db.QueryBounded(sql) })
}

func (h *harness) timeAuto(db *beas.DB, sql string) (time.Duration, *beas.Result, error) {
	return h.timeQuery(func() (*beas.Result, error) { return db.Query(sql) })
}

func (h *harness) timeBaseline(db *beas.DB, sql string, base beas.Baseline) (time.Duration, *beas.Result, error) {
	return h.timeQuery(func() (*beas.Result, error) { return db.QueryBaseline(sql, base) })
}

// table prints an aligned text table.
func table(headers []string, rows [][]string) {
	w := make([]int, len(headers))
	for i, hd := range headers {
		w[i] = len(hd)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", w[i], c)
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

func ratio(base, beasD time.Duration) string {
	if beasD <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0fx", float64(base)/float64(beasD))
}

func tlcSQL(name string) string {
	for _, q := range beas.TLCQueries() {
		if q.Name == name {
			return q.SQL
		}
	}
	panic("unknown TLC query " + name)
}
