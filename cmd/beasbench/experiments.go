package main

import (
	"fmt"
	"time"

	beas "github.com/bounded-eval/beas"
)

// example2 (E1): the bound deduction of the paper's Example 2 — the plan
// steps and the deduced bound M, before any execution.
func (h *harness) example2() {
	h.banner("E1: Example 2 — bound deduction (paper §2, Example 2)")
	db := h.db(h.scale)
	sql := tlcSQL("Q1")
	info, err := db.Check(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("  covered: %v  constraints used: %d\n", info.Covered, info.ConstraintsUsed)
	fmt.Printf("  deduced bound M (dedup-key semantics): %d tuples\n", info.Bound)
	fmt.Printf("  paper's row-driven bound for comparison: 2000 + 2000*12 + 2000*12*500 = %d tuples\n",
		2000+2000*12+2000*12*500)
	fmt.Println("  bounded plan (cf. steps (1)-(4) of Example 2):")
	fmt.Print(indent(info.Plan, "    "))
	res, err := db.QueryBounded(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("  executed: %d rows, %d tuples actually fetched (<= M), %.3f ms\n",
		len(res.Rows), res.Stats.TuplesFetched, float64(res.Stats.Duration.Microseconds())/1000)
	h.record("example2", "Q1-bounded", h.scale, res.Stats.Duration, res)
}

// fig3 (E2): performance analysis of Q1 — per-operation breakdown and
// acceleration ratios vs the three conventional baselines (paper Fig. 3).
func (h *harness) fig3() {
	h.banner(fmt.Sprintf("E2: Fig. 3 — performance analysis of Q (Example 2) at scale %d", h.scale))
	db := h.db(h.scale)
	sql := tlcSQL("Q1")

	bd, bres, err := h.timeBounded(db, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	h.record("fig3", "Q1-beas", h.scale, bd, bres)
	type baseRun struct {
		name beas.Baseline
		dur  time.Duration
		res  *beas.Result
	}
	var bases []baseRun
	for _, b := range []beas.Baseline{beas.BaselinePostgres, beas.BaselineMySQL, beas.BaselineMariaDB} {
		d, r, err := h.timeBaseline(db, sql, b)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		bases = append(bases, baseRun{b, d, r})
		h.record("fig3", "Q1-"+string(b), h.scale, d, r)
	}

	fmt.Printf("\n  overall execution (paper: BEAS 96.13 ms vs PG 187.8 s => 1953x at 20 GB):\n")
	rows := [][]string{{"BEAS (bounded)", ms(bd), "1x",
		fmt.Sprintf("%d fetched", bres.Stats.TuplesFetched),
		fmt.Sprintf("%d constraints", bres.Stats.ConstraintsUsed)}}
	for _, b := range bases {
		rows = append(rows, []string{string(b.name), ms(b.dur), ratio(b.dur, bd),
			fmt.Sprintf("%d scanned", b.res.Stats.TuplesScanned), ""})
	}
	table([]string{"engine", "time (ms)", "speedup", "data accessed", "plan"}, rows)

	fmt.Println("\n  BEAS per-operation breakdown (fetch steps):")
	var srows [][]string
	for i, s := range bres.Stats.FetchSteps {
		srows = append(srows, []string{
			fmt.Sprintf("(%d) fetch %s", i+1, s.Atom),
			s.Constraint,
			fmt.Sprintf("%d", s.DistinctKey),
			fmt.Sprintf("%d", s.Fetched),
			fmt.Sprintf("%d", s.RowsOut),
			ms(s.Duration),
		})
	}
	table([]string{"operation", "access constraint", "keys", "tuples fetched", "rows out", "time (ms)"}, srows)

	for _, b := range bases {
		fmt.Printf("\n  %s per-operation breakdown:\n", b.name)
		var orows [][]string
		for _, o := range b.res.Stats.Ops {
			orows = append(orows, []string{o.Op,
				fmt.Sprintf("%d", o.RowsIn), fmt.Sprintf("%d", o.RowsOut), ms(o.Duration)})
		}
		table([]string{"operation", "rows in", "rows out", "time (ms)"}, orows)
	}
}

// fig4 (E3): scalability — query time of Q1 while the database scales up
// (paper Fig. 4: BEAS flat ~1 s; PG/MySQL/MariaDB grow to 1932/6187/5243 s).
func (h *harness) fig4() {
	h.banner("E3: Fig. 4 — scalability of Q (Example 2) over the TLC scale sweep")
	fmt.Println("  scale factors stand in for the paper's 1 GB -> 200 GB x-axis")
	headers := []string{"scale", "rows(call)", "BEAS (ms)", "postgresql (ms)", "mysql (ms)", "mariadb (ms)", "pg/BEAS"}
	var rows [][]string
	for _, s := range h.scales {
		db := h.db(s)
		sql := tlcSQL("Q1")
		bd, bres, err := h.timeBounded(db, sql)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		h.record("fig4", "Q1-beas", s, bd, bres)
		var durs []time.Duration
		for _, b := range []beas.Baseline{beas.BaselinePostgres, beas.BaselineMySQL, beas.BaselineMariaDB} {
			d, r, err := h.timeBaseline(db, sql, b)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			durs = append(durs, d)
			h.record("fig4", "Q1-"+string(b), s, d, r)
		}
		n, _ := db.RowCount("call")
		rows = append(rows, []string{
			fmt.Sprintf("%d", s), fmt.Sprintf("%d", n),
			ms(bd), ms(durs[0]), ms(durs[1]), ms(durs[2]), ratio(durs[0], bd),
		})
	}
	table(headers, rows)
	fmt.Println("  expected shape: BEAS column flat (scale-independent); baselines grow linearly.")
}

// queries (E4): the 12 built-in TLC queries — coverage, bounds and
// speedups (paper §4(2): \">90% of queries boundedly evaluable, orders of
// magnitude faster\").
func (h *harness) queries() {
	h.banner(fmt.Sprintf("E4: the 12 built-in TLC queries at scale %d", h.scale))
	db := h.db(h.scale)
	headers := []string{"query", "covered", "bound M", "fetched", "scanned", "BEAS (ms)", "postgresql (ms)", "speedup"}
	var rows [][]string
	covered := 0
	for _, q := range beas.TLCQueries() {
		info, err := db.Check(q.SQL)
		if err != nil {
			fmt.Printf("  %s: check error: %v\n", q.Name, err)
			continue
		}
		bd, bres, err := h.timeAuto(db, q.SQL)
		if err != nil {
			fmt.Printf("  %s: error: %v\n", q.Name, err)
			continue
		}
		pd, pres, err := h.timeBaseline(db, q.SQL, beas.BaselinePostgres)
		if err != nil {
			fmt.Printf("  %s: baseline error: %v\n", q.Name, err)
			continue
		}
		h.record("queries", q.Name+"-beas", h.scale, bd, bres)
		h.record("queries", q.Name+"-postgresql", h.scale, pd, pres)
		bound := fmt.Sprintf("%d", info.Bound)
		if !info.Covered {
			bound = "-"
		} else {
			covered++
		}
		rows = append(rows, []string{
			q.Name, fmt.Sprintf("%v", info.Covered), bound,
			fmt.Sprintf("%d", bres.Stats.TuplesFetched),
			fmt.Sprintf("%d", bres.Stats.TuplesScanned),
			ms(bd), ms(pd), ratio(pd, bd),
		})
	}
	table(headers, rows)
	fmt.Printf("  %d/12 queries covered (paper: >90%%)\n", covered)
}

// budget (E5): deciding \"can Q be answered within a budget\" without
// executing it (demo §4(1)(a)).
func (h *harness) budget() {
	h.banner("E5: budgeted evaluability check (no execution)")
	db := h.db(h.scale)
	sql := tlcSQL("Q1")
	info, err := db.Check(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var rows [][]string
	for _, b := range []uint64{1000, 10000, 100000, 1000000, 2000000, 20000000} {
		rows = append(rows, []string{fmt.Sprintf("%d", b), fmt.Sprintf("%v", info.WithinBudget(b))})
	}
	table([]string{"budget (tuples)", "answerable within budget"}, rows)
	fmt.Printf("  deduced bound M = %d\n", info.Bound)
}

// partial (E6): partially bounded evaluation of the non-covered Q11
// (demo §4(1)(b)).
func (h *harness) partial() {
	h.banner(fmt.Sprintf("E6: partially bounded plan for the non-covered Q11 at scale %d", h.scale))
	db := h.db(h.scale)
	sql := tlcSQL("Q11")
	info, err := db.Check(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("  covered: %v\n  reason: %s\n  plan:\n%s", info.Covered, info.Reason, indent(info.Plan, "    "))
	pd, pres, err := h.timeAuto(db, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cd, cres, err := h.timeBaseline(db, sql, beas.BaselinePostgres)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	h.record("partial", "Q11-beas", h.scale, pd, pres)
	h.record("partial", "Q11-postgresql", h.scale, cd, cres)
	table([]string{"engine", "time (ms)", "fetched", "scanned", "rows"}, [][]string{
		{"BEAS (partially bounded)", ms(pd), fmt.Sprintf("%d", pres.Stats.TuplesFetched),
			fmt.Sprintf("%d", pres.Stats.TuplesScanned), fmt.Sprintf("%d", len(pres.Rows))},
		{"postgresql (conventional)", ms(cd), "0",
			fmt.Sprintf("%d", cres.Stats.TuplesScanned), fmt.Sprintf("%d", len(cres.Rows))},
	})
	fmt.Println("  the bounded sub-query replaces the business scan with an index fetch.")
}

// discovery (E7): access-schema discovery on TLC data + query load under
// storage budgets (demo §4(1)(d)).
func (h *harness) discovery() {
	h.banner("E7: access schema discovery (AS Catalog, Discovery module)")
	db := h.db(1) // discovery profiles the data; scale 1 keeps it quick
	var workload []string
	for _, q := range beas.TLCQueries()[:10] {
		workload = append(workload, q.SQL)
	}
	for _, budget := range []int64{0, 20000, 5000} {
		specs, report, err := db.Discover(beas.DiscoverOptions{
			Workload: workload,
			Budget:   budget,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		label := "unlimited"
		if budget > 0 {
			label = fmt.Sprintf("%d entries", budget)
		}
		fmt.Printf("\n  storage budget: %s -> %d constraints selected\n", label, len(specs))
		fmt.Print(indent(report, "    "))
	}
}

// approx (E8): resource-bounded approximation — accuracy lower bound vs
// fetch budget (paper §3).
func (h *harness) approx() {
	h.banner(fmt.Sprintf("E8: resource-bounded approximation of Q1 at scale %d", h.scale))
	db := h.db(h.scale)
	sql := tlcSQL("Q1")
	exact, err := db.QueryBounded(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	headers := []string{"budget (tuples)", "rows returned", "coverage >=", "exact?"}
	var rows [][]string
	for _, b := range []int64{4, 32, 64, 96, 112, 128, 160, 256, 4096} {
		res, cov, err := db.QueryApprox(sql, b)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", b), fmt.Sprintf("%d", len(res.Rows)),
			fmt.Sprintf("%.3f", cov), fmt.Sprintf("%v", cov >= 1),
		})
	}
	table(headers, rows)
	fmt.Printf("  exact answer: %d rows; coverage grows monotonically with budget\n", len(exact.Rows))
}

// maint (E9): incremental index maintenance vs rebuilding under updates
// (AS Catalog, Maintenance module).
func (h *harness) maint() {
	h.banner(fmt.Sprintf("E9: incremental index maintenance at scale %d", h.scale))
	db := h.db(h.scale)
	const updates = 5000
	start := time.Now()
	for i := 0; i < updates; i++ {
		db.MustInsert("call",
			9_000_000+i, 1000, 20160401, i%86400, 60,
			"r1", "voice", "mo", "volte", "DE",
			7000, 100+i, 900+i, 1, 2, 3, 0, 120, 1, 2, 1, 10_000_000+i, 0,
			"", "flat", "EUR", 3.5, 0.1, 0, 0)
	}
	incr := time.Since(start)
	h.record("maint", "incremental-5000-inserts", h.scale, incr, nil)
	ok, viols := db.Conforms()
	fmt.Printf("  %d inserts with 1 constraint index maintained incrementally: %.3f ms (%.2f us/row)\n",
		updates, float64(incr.Microseconds())/1000, float64(incr.Microseconds())/updates)
	fmt.Printf("  access schema still conforms: %v (violations: %d)\n", ok, len(viols))
	n, _ := db.RowCount("call")
	fmt.Printf("  (a full rebuild would re-scan all %d call rows per update batch)\n", n)
}

// vector (E10): the vectorized execution micro-suite — the three operator
// shapes the columnar executor targets (filter-heavy scan, hash-join
// probe, grouped aggregate), run through the conventional engine where
// the columnar scan, vectorized filters and columnar join/aggregate
// tails engage. Run once with -novec to record BENCH_baseline.json and
// once without for BENCH_columnar.json; cmd/benchgate compares the two.
// vectorQueries are the E10 shapes: a selective scan, a join probe and a
// grouped aggregate. The digest-overhead experiment (E12) times the same
// shapes, so the two stay one list.
var vectorQueries = []struct{ name, sql string }{
	{"scan-filter", "SELECT pnum, duration, charge FROM call WHERE duration > 30 AND charge > 1.0 AND roaming_flag = 0"},
	{"join-probe", "SELECT call.region, package.pid FROM call, package WHERE call.pnum = package.pnum"},
	{"agg-group", "SELECT region, COUNT(*) AS calls, SUM(duration) AS total_s, MAX(charge) AS top FROM call GROUP BY region"},
}

func (h *harness) vector() {
	mode := "vectorized"
	if h.novec {
		mode = "scalar (-novec)"
	}
	h.banner(fmt.Sprintf("E10: vectorized execution suite at scale %d — %s", h.scale, mode))
	db := h.db(h.scale)
	var rows [][]string
	for _, q := range vectorQueries {
		d, res, err := h.timeBaseline(db, q.sql, beas.BaselinePostgres)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		h.record("vector", q.name, h.scale, d, res)
		rows = append(rows, []string{q.name, ms(d),
			fmt.Sprintf("%d", res.Stats.TuplesScanned), fmt.Sprintf("%d", len(res.Rows))})
	}
	table([]string{"shape", "time (ms)", "scanned", "rows"}, rows)
	fmt.Printf("  vectorized execution enabled: %v\n", db.VectorizedEnabled())
}

// cache (E11): the semantic result cache — cold first pass vs warm
// steady state over the covered TLC queries. Run once without -rcache
// (cache-off baseline: both passes execute) and once with -rcache
// (first pass executes and stores, steady state serves hits);
// cmd/benchgate then compares the two files: the `cache` record
// (workload aggregate) gates the cold-pass overhead of enabling the
// cache, the `cachewarm` records gate the warm-serving speedup, and the
// per-query `cachecold` records are informational.
func (h *harness) cache() {
	mode := "result cache off (baseline)"
	if h.rcache {
		mode = "result cache on (-rcache)"
	}
	h.banner(fmt.Sprintf("E11: semantic result cache at scale %d — %s", h.scale, mode))
	// A fresh database, not h.db's shared one: the first pass must be
	// genuinely cold, and other experiments must not have warmed it.
	db := beas.MustNewTLCDB(h.scale)
	if h.novec {
		db.SetVectorized(false)
	}
	if h.rcache {
		db.SetResultCache(true)
	}

	var rows [][]string
	var workloadCold, workloadWarm time.Duration
	for _, q := range beas.TLCQueries() {
		info, err := db.Check(q.SQL)
		if err != nil || !info.Covered {
			continue // only covered statements are cacheable
		}
		// Cold pass, min over h.runs: toggling the cache off and back on
		// between repetitions drops every stored answer, so each timed
		// run pays the full execute (+ key-collection + store) cost.
		var cold time.Duration
		var coldRes *beas.Result
		for i := 0; i < h.runs; i++ {
			if h.rcache {
				db.SetResultCache(false)
				db.SetResultCache(true)
			}
			r, err := db.Query(q.SQL)
			if err != nil {
				fmt.Printf("  %s: error: %v\n", q.Name, err)
				return
			}
			if i == 0 || r.Stats.Duration < cold {
				cold = r.Stats.Duration
			}
			coldRes = r
		}
		// Per-query cold timings are informational (sub-millisecond
		// records are too noisy to gate at a tight threshold); the gated
		// cold-overhead record is the workload aggregate below.
		h.recordCache("cachecold", q.Name+"-first-pass", h.scale, cold, coldRes, db)

		// Steady state: repeats of the exact statement. With the cache on
		// the first repetition above already stored the answer, so every
		// run here serves a hit; off, every run re-executes.
		var warm time.Duration
		var warmRes *beas.Result
		for i := 0; i < h.runs; i++ {
			r, err := db.Query(q.SQL)
			if err != nil {
				fmt.Printf("  %s: error: %v\n", q.Name, err)
				return
			}
			if i == 0 || r.Stats.Duration < warm {
				warm = r.Stats.Duration
			}
			warmRes = r
		}
		h.recordCache("cachewarm", q.Name+"-steady", h.scale, warm, warmRes, db)
		workloadCold += cold
		workloadWarm += warm
		rows = append(rows, []string{
			q.Name, ms(cold), ms(warm), ratio(cold, warm),
			fmt.Sprintf("%v", warmRes.Stats.CacheHit), fmt.Sprintf("%d", len(warmRes.Rows)),
		})
	}
	h.recordCache("cache", "workload-first-pass", h.scale, workloadCold, nil, db)
	h.recordCache("cachewarm", "workload-steady", h.scale, workloadWarm, nil, db)
	table([]string{"query", "cold (ms)", "steady (ms)", "speedup", "served from cache", "rows"}, rows)
	s := db.ResultCacheStats()
	fmt.Printf("  cache counters: %d hits, %d misses, %d stores, %d invalidations, %d entries (%d bytes)\n",
		s.Hits, s.Misses, s.Stores, s.Invalidations, s.Entries, s.Bytes)
	fmt.Printf("  workload: cold %s ms, steady %s ms (%s)\n", ms(workloadCold), ms(workloadWarm), ratio(workloadCold, workloadWarm))
}

// digest (E12): workload-digest overhead — the vectorized suite shapes
// timed with digests off and on, interleaved run by run in one process.
// Separate processes differ by far more than the 2% the overhead gate
// allows (allocator layout, CPU frequency, co-tenancy), so both
// configurations share a process: -json receives the digests-on records
// and -json-baseline the digests-off records under identical keys,
// exactly the pair cmd/benchgate compares. Per-shape records are filed
// under `digestshape` (informational); the gated record is the `digest`
// suite aggregate.
func (h *harness) digest() {
	h.banner(fmt.Sprintf("E12: workload-digest overhead at scale %d — off vs on, interleaved", h.scale))
	// A fresh database, not h.db's shared one: -digests must not leak a
	// digest set into the off half of the comparison.
	db := beas.MustNewTLCDB(h.scale)
	if h.novec {
		db.SetVectorized(false)
	}
	set := beas.NewDigestSet(128)

	var rows [][]string
	var totalOff, totalOn time.Duration
	for _, q := range vectorQueries {
		// db.Query, not QueryBaseline: the digest wrapper sits on the
		// product query path, and the off half must pay exactly the same
		// path minus one atomic load.
		run := func(d *beas.DigestSet) (*beas.Result, error) {
			db.SetDigests(d)
			return db.Query(q.sql)
		}
		// One untimed warm-up per configuration.
		for _, d := range []*beas.DigestSet{nil, set} {
			if _, err := run(d); err != nil {
				fmt.Println("error:", err)
				return
			}
		}
		offMin, onMin := time.Duration(1<<62), time.Duration(1<<62)
		var offRes, onRes *beas.Result
		for i := 0; i < h.runs; i++ {
			// Alternate which configuration goes first: the second run of
			// a pair tends to absorb the first run's GC debt, and that
			// bias must not land on one side of the comparison.
			order := []*beas.DigestSet{nil, set}
			if i%2 == 1 {
				order[0], order[1] = order[1], order[0]
			}
			for _, d := range order {
				r, err := run(d)
				if err != nil {
					fmt.Println("error:", err)
					return
				}
				if d == nil {
					if r.Stats.Duration < offMin {
						offMin = r.Stats.Duration
					}
					offRes = r
				} else {
					if r.Stats.Duration < onMin {
						onMin = r.Stats.Duration
					}
					onRes = r
				}
			}
		}
		h.recordBaseline("digestshape", q.name, h.scale, offMin, offRes)
		h.record("digestshape", q.name, h.scale, onMin, onRes)
		totalOff += offMin
		totalOn += onMin
		rows = append(rows, []string{q.name, ms(offMin), ms(onMin),
			fmt.Sprintf("%.3fx", float64(onMin)/float64(offMin))})
	}
	h.recordBaseline("digest", "suite-total", h.scale, totalOff, nil)
	h.record("digest", "suite-total", h.scale, totalOn, nil)
	rows = append(rows, []string{"suite-total", ms(totalOff), ms(totalOn),
		fmt.Sprintf("%.3fx", float64(totalOn)/float64(totalOff))})
	table([]string{"shape", "digests off (ms)", "digests on (ms)", "on/off"}, rows)
	fmt.Printf("  digest set after the on-runs: %d fingerprints, %d observations\n",
		set.Len(), set.Observations())
}

func indent(s, pad string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += pad + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
