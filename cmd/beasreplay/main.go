// Command beasreplay re-executes a flight-recorder capture (written by
// beasd -capture) and verifies the answers are bit-identical to the
// recorded baselines: row count, order-sensitive row hash, deduced
// bound and evaluation mode. It replays either against a running beasd
// (-addr) or an embedded database built the same way the daemon builds
// one (-tlc / -data), making it usable both as a regression oracle
// ("does this build still answer yesterday's workload identically?")
// and as a replica-consistency check.
//
// Usage:
//
//	beasreplay -capture ./capture -addr http://127.0.0.1:7171
//	beasreplay -capture ./capture/capture-000001.jsonl -tlc 2
//	beasreplay -capture ./capture -data ./beasdata -speed 10 -concurrency 4
//
// Only records with outcome "ok" are baselines; failures, cancels,
// disconnects and approximated answers are skipped. Exit status: 0 when
// every baseline matched, 1 on any mismatch or replay error, 2 on usage
// errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/cliutil"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/replay"
)

func main() {
	capturePath := flag.String("capture", "", "capture directory or single capture-*.jsonl segment (required)")
	addr := flag.String("addr", "", "replay against a running beasd at this base URL (e.g. http://127.0.0.1:7171)")
	tlcScale := flag.Int("tlc", 0, "replay against an embedded TLC instance at this scale")
	dataDir := flag.String("data", "", "replay against an embedded database opened from this data directory")
	optimizer := flag.Bool("optimizer", false, "enable the cost-based optimizer on the embedded database")
	speed := flag.Float64("speed", 0, "pace dispatch by recorded timestamps scaled by this factor (1 = real time, 2 = twice as fast; 0 = as fast as possible)")
	concurrency := flag.Int("concurrency", 1, "statements in flight at once")
	maxRecords := flag.Int("max", 0, "replay at most this many baseline records (0 = all)")
	verbose := flag.Bool("v", false, "print every mismatch in full")
	flag.Parse()

	if *capturePath == "" {
		fmt.Fprintln(os.Stderr, "beasreplay: -capture is required")
		flag.Usage()
		os.Exit(2)
	}
	if *addr != "" && (*dataDir != "" || *tlcScale > 0) {
		fmt.Fprintln(os.Stderr, "beasreplay: -addr and -tlc/-data are mutually exclusive")
		os.Exit(2)
	}

	recs, err := obs.LoadCapture(*capturePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beasreplay: loading capture:", err)
		os.Exit(2)
	}
	fmt.Printf("beasreplay: loaded %d records from %s\n", len(recs), *capturePath)

	var target replay.Target
	if *addr != "" {
		target = &replay.HTTPTarget{Base: *addr, Client: &http.Client{Timeout: time.Minute}}
	} else {
		db, err := cliutil.OpenDB(*tlcScale, *dataDir, &beas.Options{}, func(format string, args ...any) {
			fmt.Printf("beasreplay: "+format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "beasreplay:", err)
			os.Exit(2)
		}
		defer db.Close()
		if *optimizer {
			db.SetOptimizer(true)
		}
		target = &replay.DBTarget{DB: db}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep := replay.Run(ctx, recs, target, replay.Options{
		Speed:       *speed,
		Concurrency: *concurrency,
		Limit:       *maxRecords,
	})

	fmt.Println("beasreplay:", rep.Summary())
	if *verbose || len(rep.Mismatches) <= 10 {
		for _, mm := range rep.Mismatches {
			fmt.Printf("beasreplay: seq %d %s: want %s, got %s\n    %s\n", mm.Seq, mm.Field, mm.Want, mm.Got, mm.SQL)
		}
	} else {
		for _, mm := range rep.Mismatches[:10] {
			fmt.Printf("beasreplay: seq %d %s: want %s, got %s\n    %s\n", mm.Seq, mm.Field, mm.Want, mm.Got, mm.SQL)
		}
		fmt.Printf("beasreplay: ... and %d more (rerun with -v)\n", len(rep.Mismatches)-10)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
