// Command promtext validates Prometheus text-exposition scrapes — the
// lint half of the restart/soak CI job. It parses and lints a scrape
// (TYPE/HELP placement, sample syntax, histogram +Inf completeness and
// bucket monotonicity, duplicate series), and can diff two scrapes for
// counter regressions: a counter that went backwards across a
// kill-9/recovery cycle means monitoring state was partially lost.
//
// Usage:
//
//	promtext lint [FILE]                 # lint a scrape ("-" or no arg = stdin)
//	promtext compare BEFORE AFTER        # lint both, fail on counter regressions
//	promtext compare -allow-reset B A    # a full reset to 0 is fine (process restart)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/bounded-eval/beas/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "lint":
		path := "-"
		if len(os.Args) > 2 {
			path = os.Args[2]
		}
		exp := load(path)
		if err := obs.Lint(exp); err != nil {
			fail(err)
		}
		fmt.Printf("promtext: %s: %d samples in %d families, lint clean\n", path, len(exp.Samples), len(exp.Types))
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		allowReset := fs.Bool("allow-reset", false, "tolerate counters that reset to exactly 0 (fresh process)")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		before, after := load(fs.Arg(0)), load(fs.Arg(1))
		if err := obs.Lint(before); err != nil {
			fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
		}
		if err := obs.Lint(after); err != nil {
			fail(fmt.Errorf("%s: %w", fs.Arg(1), err))
		}
		if err := obs.CompareCounters(before, after, *allowReset); err != nil {
			fail(err)
		}
		fmt.Println("promtext: both scrapes lint clean, no counter regressions")
	default:
		usage()
	}
}

func load(path string) *obs.Exposition {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	exp, err := obs.ParsePrometheus(r)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return exp
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "promtext:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  promtext lint [FILE]                    lint a text-exposition scrape (default stdin)
  promtext compare [-allow-reset] B A     lint both scrapes and fail on counter regressions`)
	os.Exit(2)
}
