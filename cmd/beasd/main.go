// Command beasd is the BEAS query daemon: it serves a database over
// HTTP/JSON with bound-based admission control (internal/server). Every
// request is checked first — the access bound is deduced from the query
// and the access schema before any data is touched — and queries over
// the budget are rejected, serialised, or downgraded to approximation
// per the configured policy.
//
// Usage:
//
//	beasd -tlc 2 -addr :7171 -budget 100000 -policy reject
//	beasd -data ./tlcdata -budget 50000 -policy approx -approx-budget 10000
//
// Endpoints: POST /query, POST /check, GET /stats, GET /healthz — see
// package internal/server for the wire format, and the README for an
// example curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bounded-eval/beas/internal/cliutil"
	"github.com/bounded-eval/beas/internal/server"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	tlcScale := flag.Int("tlc", 0, "generate a TLC instance at this scale and serve it")
	dataDir := flag.String("data", "", "directory of CSVs + access_schema.txt (from tlcgen)")
	budget := flag.Uint64("budget", 0, "admission budget on the deduced access bound, in tuples (0 = unlimited)")
	policy := flag.String("policy", "reject", "over-budget policy: reject, queue or approx")
	approxBudget := flag.Int64("approx-budget", 0, "fetch budget for approx downgrades (default: -budget)")
	workers := flag.Int("workers", 0, "max concurrent query executions (default: GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max requests waiting for a worker (default 64)")
	timeout := flag.Duration("timeout", time.Minute, "per-query execution deadline; 0 disables it (a stalled client then holds the catalog read lock indefinitely)")
	allowUncovered := flag.Bool("allow-uncovered", false, "admit queries not covered by the access schema (no a-priori bound)")
	flag.Parse()

	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beasd:", err)
		os.Exit(2)
	}
	db, err := cliutil.OpenDB(*tlcScale, *dataDir, func(format string, args ...any) {
		fmt.Printf("beasd: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "beasd:", err)
		os.Exit(1)
	}

	srv := server.New(db, server.Config{
		MaxConcurrent:  *workers,
		QueueDepth:     *queueDepth,
		BoundBudget:    *budget,
		OverBudget:     pol,
		AllowUncovered: *allowUncovered,
		ApproxBudget:   *approxBudget,
		QueryTimeout:   *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Shutdown makes ListenAndServe return immediately; drained signals
	// when in-flight requests have actually finished (or the grace
	// window expired), and main must wait for it before exiting.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()

	fmt.Printf("beasd: %d rows, %d constraints; budget=%s policy=%s; listening on %s\n",
		db.TotalRows(), len(db.Constraints()), budgetStr(*budget), pol, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "beasd:", err)
		os.Exit(1)
	}
	<-drained
	fmt.Println("beasd: shut down")
}

func budgetStr(b uint64) string {
	if b == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", b)
}
