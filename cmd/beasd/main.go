// Command beasd is the BEAS query daemon: it serves a database over
// HTTP/JSON with bound-based admission control (internal/server). Every
// request is checked first — the access bound is deduced from the query
// and the access schema before any data is touched — and queries over
// the budget are rejected, serialised, or downgraded to approximation
// per the configured policy.
//
// With -data the daemon is durable: the directory holds a write-ahead
// log plus snapshots (see the README's Durability section), every
// mutation is logged before it is acknowledged, boot recovers the last
// durable state (surviving kill -9), and SIGTERM/SIGINT take a final
// snapshot before exit. A directory of CSVs written by cmd/tlcgen is
// still recognised and served in-memory, as before.
//
// Usage:
//
//	beasd -tlc 2 -addr :7171 -budget 100000 -policy reject
//	beasd -data ./beasdata -tlc 2            # durable store, TLC-seeded once
//	beasd -data ./beasdata -snapshot-every 50000
//
// Observability: -trace records query-lifecycle span traces (GET /trace,
// /trace/<id>; every traced response carries an X-Beas-Trace-Id header),
// GET /metrics serves Prometheus text exposition, -slow-query-ms /
// -slow-query-fetch write a JSON-lines slow-query log, and -debug-addr
// serves net/http/pprof on a separate listener. Workload digests are on
// by default (-digest-topk; GET /digests aggregates per-fingerprint
// latency, bound utilisation and estimate drift), and -capture turns on
// the flight recorder: every admitted query is appended to a
// size-rotated JSON-lines capture that cmd/beasreplay can re-execute
// and diff against the recorded answers.
//
// Endpoints: POST /query, POST /check, POST /explain, GET /stats,
// GET /metrics, GET /trace, GET /digests, GET /healthz — see package
// internal/server for the wire format, and the README for an example
// curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only via -debug-addr
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/cliutil"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/server"
)

func main() {
	addr := flag.String("addr", ":7171", "listen address")
	tlcScale := flag.Int("tlc", 0, "generate a TLC instance at this scale and serve it")
	dataDir := flag.String("data", "", "durable data directory (WAL + snapshots; created if missing); a directory of tlcgen CSVs is loaded in-memory instead")
	snapEvery := flag.Int("snapshot-every", 0, "take a snapshot and truncate the WAL every N records (0 = default 100000, negative disables)")
	noSync := flag.Bool("nosync", false, "skip the per-record WAL fsync (faster; an OS crash may lose the newest writes)")
	budget := flag.Uint64("budget", 0, "admission budget on the deduced access bound, in tuples (0 = unlimited)")
	policy := flag.String("policy", "reject", "over-budget policy: reject, queue or approx")
	approxBudget := flag.Int64("approx-budget", 0, "fetch budget for approx downgrades (default: -budget)")
	workers := flag.Int("workers", 0, "max concurrent query executions (default: GOMAXPROCS)")
	parallelism := flag.Int("parallelism", 1, "intra-query parallelism: worker goroutines per query for bounded fetch steps and hash joins (1 = serial, 0 = GOMAXPROCS)")
	optimizer := flag.Bool("optimizer", false, "enable the cost-based plan optimizer (statistics-driven fetch-step ordering and join planning; results are identical, admission bounds unchanged)")
	batchSize := flag.Int("batch-size", 0, "columnar batch row capacity for vectorized execution (0 = default 256)")
	noVec := flag.Bool("novec", false, "disable vectorized (columnar) execution; results are identical, only speed changes")
	resultCache := flag.Bool("result-cache", false, "enable the semantic result cache: repeat covered queries (and syntactic variants) are served from fresh materialized answers, kept fresh incrementally under mutations; results are identical")
	resultCacheBytes := flag.Int64("result-cache-bytes", 0, "byte budget of the result-cache answer tier (0 = default 64 MiB)")
	planCacheBytes := flag.Int64("plan-cache-bytes", 0, "byte budget of the parsed-template (plan) cache tier (0 = default 16 MiB)")
	queueDepth := flag.Int("queue-depth", 0, "max requests waiting for a worker (default 64)")
	timeout := flag.Duration("timeout", time.Minute, "per-query execution deadline; 0 disables it (a stalled client then holds the catalog read lock indefinitely)")
	allowUncovered := flag.Bool("allow-uncovered", false, "admit queries not covered by the access schema (no a-priori bound)")
	trace := flag.Bool("trace", false, "record query-lifecycle span traces (GET /trace, X-Beas-Trace-Id headers)")
	traceSample := flag.Float64("trace-sample", 0.01, "fraction of traces retained in the ring; slow and rejected queries are always kept (with -trace)")
	traceRing := flag.Int("trace-ring", 256, "number of recent traces retained for GET /trace/<id>")
	slowMS := flag.Int("slow-query-ms", 0, "log queries at least this slow as JSON lines (0 disables the latency test)")
	slowFetch := flag.Int64("slow-query-fetch", 0, "log queries fetching at least this many tuples (0 disables the volume test)")
	slowLogPath := flag.String("slow-query-log", "", "slow-query log file, appended to (default: stderr)")
	captureDir := flag.String("capture", "", "flight-recorder directory: every admitted query is appended as a JSON line for replay with beasreplay (empty disables)")
	captureBytes := flag.Int64("capture-bytes", 0, "capture segment rotation size in bytes (0 = default 8 MiB; the newest 8 segments are kept)")
	digestTopK := flag.Int("digest-topk", 128, "workload digests: retain the top K statement fingerprints by total execution time (GET /digests; <= 0 disables)")
	digestDrift := flag.Float64("digest-drift", 0, "flag a fingerprint as drifting when actual fetch volume differs from the optimizer estimate by this factor (0 = default 2)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables profiling)")
	flag.Parse()

	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beasd:", err)
		os.Exit(2)
	}
	db, err := cliutil.OpenDB(*tlcScale, *dataDir, &beas.Options{
		SnapshotEvery: *snapEvery,
		NoSync:        *noSync,
	}, func(format string, args ...any) {
		fmt.Printf("beasd: "+format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "beasd:", err)
		os.Exit(1)
	}
	par := *parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	db.SetParallelism(par)
	if *optimizer {
		db.SetOptimizer(true)
	}
	if *batchSize > 0 {
		db.SetBatchSize(*batchSize)
	}
	if *noVec {
		db.SetVectorized(false)
	}
	if *resultCacheBytes > 0 || *planCacheBytes > 0 {
		db.SetResultCacheLimits(*planCacheBytes, *resultCacheBytes)
	}
	if *resultCache {
		db.SetResultCache(true)
	}

	var tracer *beas.Tracer
	if *trace {
		tracer = beas.NewTracer(beas.TracerOptions{
			SampleRate:    *traceSample,
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
			RingSize:      *traceRing,
		})
		// Queries that bypass the HTTP layer (none today, but embedders
		// share the DB) get traced too.
		db.SetTracer(tracer)
	}
	if *digestTopK > 0 {
		d := beas.NewDigestSet(*digestTopK)
		if *digestDrift > 0 {
			d.SetDriftThreshold(*digestDrift)
		}
		db.SetDigests(d)
	}
	var capture *obs.Recorder
	if *captureDir != "" {
		capture, err = obs.NewRecorder(*captureDir, *captureBytes, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beasd: opening capture dir:", err)
			os.Exit(1)
		}
		defer capture.Close()
		fmt.Printf("beasd: flight recorder on, capturing to %s\n", *captureDir)
	}
	var slowLog *obs.SlowLog
	if *slowMS > 0 || *slowFetch > 0 {
		slowW := os.Stderr
		if *slowLogPath != "" {
			f, err := os.OpenFile(*slowLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "beasd: opening slow-query log:", err)
				os.Exit(1)
			}
			defer f.Close()
			slowW = f
		}
		slowLog = obs.NewSlowLog(slowW, time.Duration(*slowMS)*time.Millisecond, *slowFetch, nil)
	}

	srv := server.New(db, server.Config{
		MaxConcurrent:  *workers,
		QueueDepth:     *queueDepth,
		BoundBudget:    *budget,
		OverBudget:     pol,
		AllowUncovered: *allowUncovered,
		ApproxBudget:   *approxBudget,
		QueryTimeout:   *timeout,
		Tracer:         tracer,
		SlowQueryLog:   slowLog,
		Capture:        capture,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// The pprof listener is separate from the service address on purpose:
	// profiles stay off the public surface unless explicitly exposed.
	if *debugAddr != "" {
		go func() {
			fmt.Printf("beasd: pprof on %s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "beasd: debug listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Shutdown makes ListenAndServe return immediately; drained signals
	// when in-flight requests have actually finished (or the grace
	// window expired), and main must wait for it before exiting.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()

	fmt.Printf("beasd: %d rows, %d constraints; budget=%s policy=%s parallelism=%d optimizer=%v; listening on %s\n",
		db.TotalRows(), len(db.Constraints()), budgetStr(*budget), pol, par, db.OptimizerEnabled(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "beasd:", err)
		os.Exit(1)
	}
	<-drained
	// Snapshot-on-SIGTERM: Close writes a final snapshot of everything
	// not yet covered by one, so the next boot recovers instantly.
	if st := db.Durability(); st.Durable {
		fmt.Printf("beasd: closing store (%d records since last snapshot)\n", st.RecordsSinceSnapshot)
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "beasd: closing store:", err)
			os.Exit(1)
		}
	}
	fmt.Println("beasd: shut down")
}

func budgetStr(b uint64) string {
	if b == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", b)
}
