// Command benchgate compares two beasbench -json files and fails when
// the current run is slower than the baseline beyond a threshold. It is
// the CI tripwire for the vectorized execution suite: records are
// matched on (experiment, name, scale), and any matched record whose
// nsPerOp exceeds threshold × baseline fails the gate.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -current bench.json [-threshold 1.2] [-exp vector]
//
// Both files must use the beasbench/v1 schema. Records present in only
// one file are reported but do not fail the gate (experiments come and
// go); a baseline with zero matched records fails it, since a gate that
// matched nothing guards nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type benchRecord struct {
	Experiment string `json:"experiment"`
	Name       string `json:"name"`
	Scale      int    `json:"scale"`
	NsPerOp    int64  `json:"nsPerOp"`
}

type benchFile struct {
	Schema  string        `json:"schema"`
	Records []benchRecord `json:"records"`
}

func load(path string) (map[string]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "beasbench/v1" {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, f.Schema)
	}
	out := make(map[string]int64, len(f.Records))
	for _, r := range f.Records {
		out[fmt.Sprintf("%s/%s@%d", r.Experiment, r.Name, r.Scale)] = r.NsPerOp
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline beasbench JSON (required)")
	current := flag.String("current", "", "current beasbench JSON (required)")
	threshold := flag.Float64("threshold", 1.2, "fail when current nsPerOp > threshold * baseline nsPerOp")
	exp := flag.String("exp", "", "only gate records of this experiment (empty = all)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	matched, failed := 0, 0
	for key, b := range base {
		if *exp != "" && !matchExp(key, *exp) {
			continue
		}
		c, ok := cur[key]
		if !ok {
			fmt.Printf("benchgate: %s only in baseline, skipped\n", key)
			continue
		}
		matched++
		limit := int64(float64(b) * *threshold)
		status := "ok"
		if b > 0 && c > limit {
			status = "FAIL"
			failed++
		}
		fmt.Printf("benchgate: %-40s baseline %12d ns/op  current %12d ns/op  (%.2fx, limit %.2fx)  %s\n",
			key, b, c, float64(c)/float64(b), *threshold, status)
	}
	for key := range cur {
		if *exp != "" && !matchExp(key, *exp) {
			continue
		}
		if _, ok := base[key]; !ok {
			fmt.Printf("benchgate: %s only in current, skipped\n", key)
		}
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no records matched between the two files")
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d of %d records regressed beyond %.2fx\n", failed, matched, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d records within %.2fx of baseline\n", matched, *threshold)
}

func matchExp(key, exp string) bool {
	return len(key) > len(exp) && key[:len(exp)] == exp && key[len(exp)] == '/'
}
