// Command beaslint is the BEAS static-analysis suite. It mechanically
// enforces the engine invariants that code review keeps re-litigating:
// deterministic iteration in result paths, checked int64 arithmetic on
// the value domain, NaN-total-order float comparisons, context
// propagation, lock-ordering/no-callbacks-under-lock, and WAL
// ack-after-fsync error discipline.
//
// Usage:
//
//	beaslint ./...            analyse packages (exit 1 on findings)
//	beaslint -list            print the analyzer inventory
//	go vet -vettool=$(pwd)/bin/beaslint ./...
//
// The last form speaks cmd/go's vet tool protocol: beaslint is invoked
// once per package with a JSON config file and reads types from the
// build cache's export data, so it composes with the standard vet
// checks and needs no network or source re-type-checking.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/bounded-eval/beas/internal/lint/driver"
	"github.com/bounded-eval/beas/internal/lint/loader"
	"github.com/bounded-eval/beas/internal/lint/passes"
	"github.com/bounded-eval/beas/internal/lint/unit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("beaslint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	version := fs.String("V", "", "version flag used by the go vet protocol")
	flags := fs.Bool("flags", false, "print analyzer flags as JSON (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: beaslint [-list] package...\n")
		fmt.Fprintf(os.Stderr, "       go vet -vettool=/path/to/beaslint ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *version != "":
		// go vet probes tools with -V=full and expects
		// "<name> version <ver>" on stdout.
		fmt.Printf("beaslint version v1 sha beas-static-analysis-suite\n")
		return 0
	case *flags:
		fmt.Println("[]")
		return 0
	case *list:
		for _, a := range passes.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	// A single *.cfg argument means cmd/go is driving us as a vettool.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unit.Main(rest[0], passes.All(), os.Stderr)
	}
	return standalone(rest)
}

// standalone loads packages from source and analyses them, printing
// diagnostics to stderr. Exit 1 signals findings, 2 a hard failure.
func standalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "beaslint: %v\n", err)
		return 2
	}
	l, err := loader.New(loader.Config{Dir: wd})
	if err != nil {
		fmt.Fprintf(os.Stderr, "beaslint: %v\n", err)
		return 2
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "beaslint: %v\n", err)
		return 2
	}
	diags, err := driver.Run(l.Fset(), pkgs, passes.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "beaslint: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", l.Fset().Position(d.Pos), d.Analyzer, d.Message)
	}
	fmt.Fprintf(os.Stderr, "beaslint: %d finding(s)\n", len(diags))
	return 1
}
