// Command tlcgen generates a TLC benchmark instance as CSV files plus an
// access-schema file, for use with the beas shell or external tools.
//
// Usage:
//
//	tlcgen -scale 5 -out ./tlcdata
//
// writes one CSV per relation (call.csv, package.csv, ...) and
// access_schema.txt with the reference constraints in the paper's
// notation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/tlc"
)

func main() {
	scale := flag.Int("scale", 1, "scale factor (row counts grow linearly)")
	seed := flag.Int64("seed", 20170514, "generator seed")
	out := flag.String("out", "tlcdata", "output directory")
	flag.Parse()

	if err := run(*scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tlcgen:", err)
		os.Exit(1)
	}
}

func run(scale int, seed int64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	store := storage.NewStore(tlc.Database())
	fmt.Printf("generating TLC at scale %d (seed %d)...\n", scale, seed)
	if err := tlc.Generate(store, tlc.Config{Scale: scale, Seed: seed}); err != nil {
		return err
	}
	total := 0
	for _, name := range store.Names() {
		t, _ := store.Table(name)
		path := filepath.Join(out, name+".csv")
		if err := store.SaveCSVFile(name, path); err != nil {
			return err
		}
		fmt.Printf("  %-14s %8d rows -> %s\n", name, t.Len(), path)
		total += t.Len()
	}
	asPath := filepath.Join(out, "access_schema.txt")
	f, err := os.Create(asPath)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# TLC reference access schema (paper Example 1 constraints first)")
	for _, spec := range tlc.AccessSchemaSpecs() {
		fmt.Fprintln(f, spec)
	}
	fmt.Printf("  access schema -> %s\n", asPath)
	fmt.Printf("total: %d rows across %d relations (%d attributes)\n",
		total, len(store.Names()), tlc.TotalAttributes())
	return nil
}
