// Command beas is an interactive shell over a BEAS database — the
// counterpart of the demo portal of paper §4: enter SQL, check bounded
// evaluability, inspect bounded plans and compare against the emulated
// conventional engines.
//
// Usage:
//
//	beas -tlc 2                 # start on a generated TLC instance
//	beas -data ./tlcdata        # start on CSVs written by tlcgen
//
// Shell commands:
//
//	SELECT ...;                 run a query (bounded when covered)
//	\check SELECT ...;          BE Checker verdict + deduced bound only
//	\explain SELECT ...;        the plan Query would use
//	\explain analyze SELECT ...;  execute and report estimated vs actual per step
//	\optimizer on|off           toggle the cost-based plan optimizer
//	\baseline pg|mysql|mariadb SELECT ...;  run on an emulated DBMS
//	\approx BUDGET SELECT ...;  resource-bounded approximation
//	\trace on|off               print the span trace of each query
//	\digests                    per-statement workload digests (latency, drift)
//	\constraints                list the access schema
//	\queries                    list the built-in TLC queries
//	\q NAME                     run a built-in TLC query (e.g. \q Q1)
//	\tables                     list tables and row counts
//	\snapshot                   force a snapshot + WAL truncation (durable stores)
//	\durability                 show WAL / snapshot / recovery state
//	\quit
//
// With -data DIR the shell opens (or creates) a durable store: boot
// replays the write-ahead log, every mutation is logged, and quitting
// takes a final snapshot. See the README's Durability section.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/cliutil"
	"github.com/bounded-eval/beas/internal/obs"
)

// shellTracer is non-nil while \trace is on; every statement's span tree
// is then printed after its result.
var shellTracer *beas.Tracer

func main() {
	tlcScale := flag.Int("tlc", 0, "generate a TLC instance at this scale and start on it")
	dataDir := flag.String("data", "", "durable data directory (WAL + snapshots; created if missing); a directory of tlcgen CSVs is loaded in-memory instead")
	snapEvery := flag.Int("snapshot-every", 0, "take a snapshot and truncate the WAL every N records (0 = default 100000, negative disables)")
	flag.Parse()

	db, err := openDB(*tlcScale, *dataDir, *snapEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beas:", err)
		os.Exit(1)
	}
	// Digests are cheap (one atomic load per query when idle) and make
	// \digests useful out of the box for interactive sessions.
	db.SetDigests(beas.NewDigestSet(64))
	fmt.Printf("BEAS shell — %d rows loaded, %d access constraints registered\n",
		db.TotalRows(), len(db.Constraints()))
	fmt.Println(`type SQL terminated by ';', or \help`)
	repl(db)
	if db.Durability().Durable {
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "beas: closing store:", err)
			os.Exit(1)
		}
	}
}

func openDB(tlcScale int, dataDir string, snapEvery int) (*beas.DB, error) {
	return cliutil.OpenDB(tlcScale, dataDir, &beas.Options{SnapshotEvery: snapEvery}, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
}

func repl(db *beas.DB) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "beas> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !command(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sql := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			prompt = "beas> "
			runSQL(db, sql)
			continue
		}
		if buf.Len() > 0 {
			prompt = "  ... "
		}
	}
}

func runSQL(db *beas.DB, sql string) {
	res, err := db.Query(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.String())
	fmt.Printf("mode: %s  fetched: %d  scanned: %d  time: %s\n",
		res.Stats.Mode, res.Stats.TuplesFetched, res.Stats.TuplesScanned, res.Stats.Duration)
	printLastTrace()
}

// printLastTrace prints the most recently retained span tree when
// \trace is on (the shell tracer samples everything).
func printLastTrace() {
	if shellTracer == nil {
		return
	}
	rec := shellTracer.Recent()
	if len(rec) == 0 {
		return
	}
	tr := shellTracer.Get(rec[0].ID)
	if tr == nil {
		return
	}
	j := tr.Tree()
	fmt.Printf("trace %s (%.3fms)\n", j.ID, j.DurationMS)
	printSpan(j.Root, 1)
}

func printSpan(n *obs.SpanNode, depth int) {
	if n == nil {
		return
	}
	var attrs strings.Builder
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		if k == "sql" { // already on screen, too long for the tree
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&attrs, "  %s=%v", k, n.Attrs[k])
	}
	fmt.Printf("%s%-18s %9.3fms%s\n", strings.Repeat("  ", depth), n.Name,
		float64(n.DurationUS)/1000, attrs.String())
	for _, c := range n.Children {
		printSpan(c, depth+1)
	}
}

// command handles a backslash command; returns false to quit.
func command(db *beas.DB, line string) bool {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSuffix(strings.TrimSpace(rest), ";")
	switch cmd {
	case "\\quit", "\\exit":
		return false
	case "\\help":
		fmt.Println(`commands:
  SELECT ...;                 run a query (bounded when covered)
  \check SELECT ...           BE Checker verdict + deduced bound (no execution)
  \explain SELECT ...         the plan Query would use
  \explain analyze SELECT ... execute and report estimated vs actual per step
  \optimizer on|off           toggle the cost-based plan optimizer
  \cache on|off|stats         semantic result cache (identical answers, served from memory)
  \trace on|off               print each query's span trace
  \baseline pg|mysql|mariadb SELECT ...
  \approx BUDGET SELECT ...   resource-bounded approximation
  \digests                    per-statement workload digests (latency, drift)
  \constraints  \queries  \q NAME  \tables
  \snapshot  \durability  \quit`)
	case "\\digests":
		d := db.Digests()
		if d == nil {
			fmt.Println("workload digests are disabled")
			return true
		}
		snaps := d.Snapshot()
		if len(snaps) == 0 {
			fmt.Println("no statements digested yet")
			return true
		}
		fmt.Printf("  %-6s %6s %8s %8s %8s %8s  %-5s %s\n",
			"calls", "errs", "p50ms", "p95ms", "totalms", "drift", "hit%", "statement")
		for _, s := range snaps {
			hitPct := 0.0
			if s.Calls > 0 {
				hitPct = 100 * float64(s.CacheHits) / float64(s.Calls)
			}
			drift := "-"
			if s.EstCalls > 0 {
				drift = fmt.Sprintf("%.2fx", s.DriftRatio)
				if s.Drifting {
					drift += "!"
				}
			}
			// One table row per statement: collapse internal newlines
			// before truncating.
			sql := strings.Join(strings.Fields(s.ExampleSQL), " ")
			if len(sql) > 60 {
				sql = sql[:57] + "..."
			}
			fmt.Printf("  %-6d %6d %8.2f %8.2f %8.1f %8s  %4.0f%% %s\n",
				s.Calls, s.Errors+s.Cancels, s.P50MS, s.P95MS, s.TotalMS, drift, hitPct, sql)
		}
		fmt.Printf("  %d statements retained (top-K by total time), %d observations, %d evicted\n",
			len(snaps), d.Observations(), d.Evictions())
	case "\\constraints":
		for _, c := range db.Constraints() {
			fmt.Println(" ", c)
		}
	case "\\tables":
		for _, name := range db.TableNames() {
			n, _ := db.RowCount(name)
			fmt.Printf("  %-14s %8d rows\n", name, n)
		}
		fmt.Printf("  total rows: %d, index footprint: %d entries\n", db.TotalRows(), db.AccessSchemaFootprint())
	case "\\queries":
		for _, q := range beas.TLCQueries() {
			fmt.Printf("  %-4s covered=%-5v %s\n", q.Name, q.Covered, q.Description)
		}
	case "\\snapshot":
		if !db.Durability().Durable {
			fmt.Println("not a durable database (start with -data DIR)")
			return true
		}
		if err := db.Snapshot(); err != nil {
			fmt.Println("error:", err)
			return true
		}
		st := db.Durability()
		fmt.Printf("snapshot@%d written; WAL now %d bytes\n", st.SnapshotLSN, st.WALBytes)
	case "\\durability":
		st := db.Durability()
		if !st.Durable {
			fmt.Println("in-memory database (start with -data DIR for durability)")
			return true
		}
		fmt.Printf("  dir: %s\n  WAL: %d bytes, last LSN %d (%d records since snapshot@%d)\n",
			st.Dir, st.WALBytes, st.LastLSN, st.RecordsSinceSnapshot, st.SnapshotLSN)
		if !st.LastSnapshot.IsZero() {
			fmt.Printf("  last snapshot: %s\n", st.LastSnapshot.Format("2006-01-02 15:04:05"))
		}
		fmt.Printf("  recovery: snapshot@%d + %d records in %s (%d torn bytes dropped, conforms=%v)\n",
			st.Recovery.SnapshotLSN, st.Recovery.ReplayedRecords, st.Recovery.Duration,
			st.Recovery.TruncatedBytes, st.Recovery.Conforms)
	case "\\q":
		name := strings.TrimSpace(rest)
		for _, q := range beas.TLCQueries() {
			if strings.EqualFold(q.Name, name) {
				fmt.Println(q.SQL)
				runSQL(db, q.SQL)
				return true
			}
		}
		fmt.Printf("unknown built-in query %q (try \\queries)\n", name)
	case "\\check":
		info, err := db.Check(rest)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		if info.Covered {
			fmt.Printf("covered: fetches at most %d tuples via %d constraints\n", info.Bound, info.ConstraintsUsed)
		} else {
			fmt.Printf("not covered: %s\n", info.Reason)
		}
	case "\\explain":
		// \explain analyze SELECT ... executes the query and reports
		// estimated-vs-actual work per plan step.
		if lower := strings.ToLower(rest); strings.HasPrefix(lower, "analyze ") {
			ea, err := db.ExplainAnalyze(strings.TrimSpace(rest[len("analyze "):]))
			if err != nil {
				fmt.Println("error:", err)
				return true
			}
			fmt.Print(ea.String())
			return true
		}
		text, err := db.Explain(rest)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(text)
	case "\\optimizer":
		switch strings.ToLower(strings.TrimSpace(rest)) {
		case "on":
			db.SetOptimizer(true)
		case "off":
			db.SetOptimizer(false)
		case "":
		default:
			fmt.Println("usage: \\optimizer [on|off]")
			return true
		}
		fmt.Printf("cost-based optimizer: %v\n", db.OptimizerEnabled())
	case "\\cache":
		switch strings.ToLower(strings.TrimSpace(rest)) {
		case "on":
			db.SetResultCache(true)
		case "off":
			db.SetResultCache(false)
		case "stats":
			s := db.ResultCacheStats()
			fmt.Printf("result cache: %v\n", db.ResultCacheEnabled())
			fmt.Printf("  results:   %d hits, %d misses, %d stores (%d dropped to races)\n",
				s.Hits, s.Misses, s.Stores, s.StoreRaces)
			fmt.Printf("  freshness: %d patches, %d invalidations, %d evictions\n",
				s.Patches, s.Invalidations, s.Evictions)
			fmt.Printf("  resident:  %d entries, %d bytes\n", s.Entries, s.Bytes)
			fmt.Printf("  templates: %d hits, %d misses; %d entries, %d bytes\n",
				s.TemplateHits, s.TemplateMisses, s.TemplateEntries, s.TemplateBytes)
			return true
		case "":
		default:
			fmt.Println("usage: \\cache [on|off|stats]")
			return true
		}
		fmt.Printf("semantic result cache: %v\n", db.ResultCacheEnabled())
	case "\\trace":
		switch strings.ToLower(strings.TrimSpace(rest)) {
		case "on":
			// Sample everything into a tiny ring: the shell only ever
			// shows the latest trace.
			shellTracer = beas.NewTracer(beas.TracerOptions{SampleRate: 1, RingSize: 8})
			db.SetTracer(shellTracer)
		case "off":
			shellTracer = nil
			db.SetTracer(nil)
		case "":
		default:
			fmt.Println("usage: \\trace [on|off]")
			return true
		}
		fmt.Printf("tracing: %v\n", shellTracer != nil)
	case "\\baseline":
		name, sql, ok := strings.Cut(rest, " ")
		if !ok {
			fmt.Println("usage: \\baseline pg|mysql|mariadb SELECT ...")
			return true
		}
		base := beas.BaselinePostgres
		switch strings.ToLower(name) {
		case "pg", "postgres", "postgresql":
		case "mysql":
			base = beas.BaselineMySQL
		case "mariadb":
			base = beas.BaselineMariaDB
		default:
			fmt.Printf("unknown baseline %q\n", name)
			return true
		}
		res, err := db.QueryBaseline(sql, base)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(res.String())
		fmt.Printf("scanned: %d  time: %s\n", res.Stats.TuplesScanned, res.Stats.Duration)
	case "\\approx":
		budgetStr, sql, ok := strings.Cut(rest, " ")
		if !ok {
			fmt.Println("usage: \\approx BUDGET SELECT ...")
			return true
		}
		budget, err := strconv.ParseInt(budgetStr, 10, 64)
		if err != nil {
			fmt.Printf("bad budget %q\n", budgetStr)
			return true
		}
		res, cov, err := db.QueryApprox(sql, budget)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Print(res.String())
		fmt.Printf("coverage >= %.3f (exact: %v)  fetched: %d\n", cov, cov >= 1, res.Stats.TuplesFetched)
	default:
		fmt.Printf("unknown command %s (try \\help)\n", cmd)
	}
	return true
}
