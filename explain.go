package beas

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// ExplainStep is one fetch step of an EXPLAIN ANALYZE report: the
// worst-case bounds deduced before execution, the optimizer's estimates
// (zero when the optimizer is off) and the actual counters measured
// while the query ran.
type ExplainStep struct {
	Atom       string
	Constraint string

	// Worst-case a-priori bounds.
	KeyBound uint64
	OutBound uint64
	// Statistics-based estimates (optimizer on).
	EstKeys    float64
	EstFetched float64
	EstRows    float64
	// Actual execution counters.
	ActualKeys    int64
	ActualFetched int64
	ActualRows    int64
	Duration      time.Duration
}

// ExplainAnalysis is the result of DB.ExplainAnalyze: the query was
// executed and each plan step reports estimated vs actual work.
type ExplainAnalysis struct {
	SQL       string
	Mode      Mode
	Covered   bool
	Optimized bool
	// Bound is the deduced worst-case access bound M (covered queries).
	Bound uint64
	// Rows is the number of result rows (the rows themselves are not
	// retained).
	Rows int
	// TuplesFetched / TuplesScanned split the data access between the
	// bounded and conventional parts.
	TuplesFetched int64
	TuplesScanned int64
	// Steps is the bounded part's estimated-vs-actual breakdown; Ops the
	// conventional part's operators (with planner estimates when the
	// optimizer is on).
	Steps    []ExplainStep
	Ops      []OpStat
	Duration time.Duration
	// Plan is the textual plan description.
	Plan string
}

// ExplainAnalyze executes sql exactly like Query and returns the
// per-step estimated-vs-actual breakdown: for every fetch step the
// worst-case bound, the optimizer's estimated keys/fetches (when the
// optimizer is on) and the keys probed, tuples fetched and rows emitted
// that actually happened. The result rows are discarded; only the
// analysis is returned.
func (db *DB) ExplainAnalyze(sql string) (*ExplainAnalysis, error) {
	return db.ExplainAnalyzeContext(context.Background(), sql)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context: cancellation
// halts the execution like QueryContext; the analysis then reflects only
// the work performed.
func (db *DB) ExplainAnalyzeContext(ctx context.Context, sql string) (*ExplainAnalysis, error) {
	res, err := db.QueryContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	return NewExplainAnalysis(sql, &res.Stats, len(res.Rows)), nil
}

// NewExplainAnalysis folds an executed query's statistics into the
// estimated-vs-actual report. Callers that execute through their own
// path (e.g. the query service, which drains a cursor so it can
// re-verify admission before any unbounded work) use this instead of
// ExplainAnalyze; rows is the result row count.
func NewExplainAnalysis(sql string, st *Stats, rows int) *ExplainAnalysis {
	ea := &ExplainAnalysis{
		SQL:           sql,
		Mode:          st.Mode,
		Covered:       st.Covered,
		Optimized:     st.Optimized,
		Bound:         st.Bound,
		Rows:          rows,
		TuplesFetched: st.TuplesFetched,
		TuplesScanned: st.TuplesScanned,
		Ops:           st.Ops,
		Duration:      st.Duration,
		Plan:          st.Plan,
	}
	for _, s := range st.FetchSteps {
		ea.Steps = append(ea.Steps, ExplainStep{
			Atom:          s.Atom,
			Constraint:    s.Constraint,
			KeyBound:      s.KeyBound,
			OutBound:      s.OutBound,
			EstKeys:       s.EstKeys,
			EstFetched:    s.EstFetched,
			EstRows:       s.EstRows,
			ActualKeys:    s.DistinctKey,
			ActualFetched: s.Fetched,
			ActualRows:    s.RowsOut,
			Duration:      s.Duration,
		})
	}
	return ea
}

// String renders the analysis as an aligned text report (the CLI's
// \explain analyze output).
func (ea *ExplainAnalysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode: %s  covered: %v  optimizer: %v\n", ea.Mode, ea.Covered, ea.Optimized)
	if ea.Covered {
		fmt.Fprintf(&b, "worst-case bound M: %d tuples; actually fetched: %d\n", ea.Bound, ea.TuplesFetched)
	} else {
		fmt.Fprintf(&b, "fetched: %d  scanned: %d\n", ea.TuplesFetched, ea.TuplesScanned)
	}
	if len(ea.Steps) > 0 {
		rows := [][]string{{"step", "constraint", "bound", "est keys", "est fetch", "keys", "fetched", "rows", "time"}}
		for i, s := range ea.Steps {
			est := func(v float64) string {
				if v == 0 {
					return "-"
				}
				return fmt.Sprintf("%.0f", v)
			}
			rows = append(rows, []string{
				fmt.Sprintf("(%d) fetch %s", i+1, s.Atom),
				s.Constraint,
				fmt.Sprintf("%d", s.OutBound),
				est(s.EstKeys),
				est(s.EstFetched),
				fmt.Sprintf("%d", s.ActualKeys),
				fmt.Sprintf("%d", s.ActualFetched),
				fmt.Sprintf("%d", s.ActualRows),
				fmt.Sprintf("%.3fms", float64(s.Duration.Microseconds())/1000),
			})
		}
		writeAligned(&b, rows)
	}
	if len(ea.Ops) > 0 {
		rows := [][]string{{"operator", "est rows", "rows in", "rows out", "time"}}
		for _, o := range ea.Ops {
			est := "-"
			if o.EstRows > 0 {
				est = fmt.Sprintf("%.0f", o.EstRows)
			}
			rows = append(rows, []string{
				o.Op, est,
				fmt.Sprintf("%d", o.RowsIn), fmt.Sprintf("%d", o.RowsOut),
				fmt.Sprintf("%.3fms", float64(o.Duration.Microseconds())/1000),
			})
		}
		writeAligned(&b, rows)
	}
	fmt.Fprintf(&b, "%d rows in %s\n", ea.Rows, ea.Duration)
	return b.String()
}

// writeAligned renders rows (first row = header) as an aligned table.
func writeAligned(b *strings.Builder, rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, r := range rows {
		b.WriteString("  ")
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			b.WriteString("  ")
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
}
