package beas

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

// The columnar executor must be a pure performance change: with
// vectorized execution on and off, every query must produce the same
// error status, the same result bag IN THE SAME ORDER, and the same
// execution statistics (modes, bounds, per-step and per-operator work
// counters, estimates — everything except durations). This file checks
// that differentially over the randomized corpus and a fixed set of
// NULL / NaN / overflow regression queries, across optimizer on/off and
// parallelism 1 and 4.

// semantics-heavy regression queries: Kleene three-valued logic, NaN
// total order, int64 overflow promotion, weighted DISTINCT and fused
// group keys over the randomDB schema.
var vecRegressionSQL = []string{
	"SELECT r.a, SUM(r.big) AS s FROM r WHERE r.a IN (0,1,2,3,4,5,6,7) GROUP BY r.a",
	"SELECT r.v FROM r WHERE r.a = 1 ORDER BY 1",
	"SELECT DISTINCT r.v, r.big FROM r WHERE r.b = 2",
	"SELECT COUNT(*) AS n, MIN(r.v) AS mn, MAX(r.v) AS mx, SUM(r.v) AS sv FROM r WHERE r.d > 3 AND r.a IN (1,2,3)",
	"SELECT r.c, SUM(r.d) AS s FROM r, s WHERE r.b = s.b AND r.d NOT IN (3, NULL) GROUP BY r.c",
	"SELECT r.a, r.d FROM r WHERE (r.ok AND r.d < 5) AND r.a = 2",
	"SELECT r.a FROM r WHERE NOT (r.ok) AND r.b = 1",
	"SELECT DISTINCT r.b, s.e FROM r, s WHERE r.b = s.b AND r.a IN (0,2,4,6)",
}

// vecOutcome is everything about a query run that must not depend on the
// vectorized setting: error status, the ordered row stream and the
// duration-free execution statistics.
type vecOutcome struct {
	failed bool
	rows   []string
	stats  string
}

func outcomeOf(res *Result, err error) vecOutcome {
	if err != nil {
		return vecOutcome{failed: true}
	}
	o := vecOutcome{rows: make([]string, len(res.Rows))}
	for i, r := range res.Rows {
		o.rows[i] = value.Key(r)
	}
	var b strings.Builder
	st := res.Stats
	fmt.Fprintf(&b, "mode=%s covered=%v optimized=%v bound=%d constraints=%d fetched=%d scanned=%d\n",
		st.Mode, st.Covered, st.Optimized, st.Bound, st.ConstraintsUsed, st.TuplesFetched, st.TuplesScanned)
	for _, s := range st.FetchSteps {
		s.Duration = 0
		fmt.Fprintf(&b, "step %+v\n", s)
	}
	for _, op := range st.Ops {
		op.Duration = 0
		fmt.Fprintf(&b, "op %+v\n", op)
	}
	o.stats = b.String()
	return o
}

func (o vecOutcome) diff(other vecOutcome) string {
	if o.failed != other.failed {
		return fmt.Sprintf("error status: vec=%v scalar=%v", o.failed, other.failed)
	}
	if o.failed {
		return "" // both error; identity of the error may differ
	}
	if len(o.rows) != len(other.rows) {
		return fmt.Sprintf("row count: vec=%d scalar=%d", len(o.rows), len(other.rows))
	}
	for i := range o.rows {
		if o.rows[i] != other.rows[i] {
			return fmt.Sprintf("row %d differs (order or content):\nvec    = %q\nscalar = %q", i, o.rows[i], other.rows[i])
		}
	}
	if o.stats != other.stats {
		return fmt.Sprintf("stats differ:\nvec:\n%s\nscalar:\n%s", o.stats, other.stats)
	}
	return ""
}

func TestVectorizedScalarEquivalence(t *testing.T) {
	const databases = 3
	for d := 0; d < databases; d++ {
		rng := rand.New(rand.NewSource(int64(7000 + d)))
		db := randomDB(t, rng)

		var corpus []string
		corpus = append(corpus, vecRegressionSQL...)
		for i := 0; i < 25; i++ {
			corpus = append(corpus, randomSQL(rng))
		}

		// Conventional baselines are serial and ignore the optimizer, so
		// compare them once per query.
		for _, sql := range corpus {
			for _, base := range []Baseline{BaselinePostgres, BaselineMySQL, BaselineMariaDB} {
				db.SetVectorized(true)
				vres, verr := db.QueryBaseline(sql, base)
				db.SetVectorized(false)
				sres, serr := db.QueryBaseline(sql, base)
				if d := outcomeOf(vres, verr).diff(outcomeOf(sres, serr)); d != "" {
					t.Fatalf("baseline %s diverges on %q: %s", base, sql, d)
				}
			}
		}

		for _, optimizer := range []bool{false, true} {
			db.SetOptimizer(optimizer)
			for _, par := range []int{1, 4} {
				db.SetParallelism(par)
				for _, sql := range corpus {
					db.SetVectorized(true)
					vres, verr := db.Query(sql)
					db.SetVectorized(false)
					sres, serr := db.Query(sql)
					if d := outcomeOf(vres, verr).diff(outcomeOf(sres, serr)); d != "" {
						t.Fatalf("Query(%q) optimizer=%v par=%d: %s", sql, optimizer, par, d)
					}
				}
			}
		}

		// The streaming cursor path (QueryIter) serves the serial bounded
		// branch through StreamContext; check the ordered stream too.
		db.SetOptimizer(false)
		db.SetParallelism(1)
		for i, sql := range corpus {
			if i%4 != 0 {
				continue
			}
			var got [2][]string
			for vi, vec := range []bool{true, false} {
				db.SetVectorized(vec)
				ri, err := db.QueryIter(sql)
				if err != nil {
					got[vi] = []string{"open-error"}
					continue
				}
				for {
					rows, err := ri.NextBatch()
					if err != nil {
						got[vi] = append(got[vi], "iter-error")
						break
					}
					if rows == nil {
						break
					}
					for _, r := range rows {
						got[vi] = append(got[vi], value.Key(r))
					}
				}
				ri.Close()
			}
			if len(got[0]) != len(got[1]) {
				t.Fatalf("QueryIter(%q): vec streamed %d rows, scalar %d", sql, len(got[0]), len(got[1]))
			}
			for j := range got[0] {
				if got[0][j] != got[1][j] {
					t.Fatalf("QueryIter(%q) row %d: vec=%q scalar=%q", sql, j, got[0][j], got[1][j])
				}
			}
		}
		db.SetVectorized(true)
	}
}

// TestVectorizedOracleEquivalence cross-checks the vectorized executors
// (which are the default) against the independent nested-loop oracle on
// a fresh corpus, including the regression queries, and exercises a
// non-default batch size so batch-boundary bookkeeping is covered.
func TestVectorizedOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9090))
	db := randomDB(t, rng)
	db.SetBatchSize(7) // deliberately tiny and odd: many partial batches

	var corpus []string
	corpus = append(corpus, vecRegressionSQL...)
	for i := 0; i < 20; i++ {
		corpus = append(corpus, randomSQL(rng))
	}
	for _, sql := range corpus {
		want := bag(oracle(t, db, sql))
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("Query(%q): %v", sql, err)
		}
		if got := bag(res.Rows); !equalBags(got, want) {
			t.Fatalf("vectorized result diverges from oracle on %q:\ngot  = %v\nwant = %v", sql, got, want)
		}
		for _, base := range []Baseline{BaselinePostgres, BaselineMariaDB} {
			cres, err := db.QueryBaseline(sql, base)
			if err != nil {
				t.Fatalf("QueryBaseline(%q, %s): %v", sql, base, err)
			}
			if got := bag(cres.Rows); !equalBags(got, want) {
				t.Fatalf("vectorized %s baseline diverges from oracle on %q", base, sql)
			}
		}
	}
}
