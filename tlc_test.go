package beas

import (
	"testing"
)

func TestTLCSchemaShape(t *testing.T) {
	db := MustNewTLCDB(1)
	if got := len(db.Constraints()); got != 12 {
		t.Errorf("TLC access schema has %d constraints, want 12", got)
	}
	if ok, viols := db.Conforms(); !ok {
		t.Fatalf("generated TLC instance violates the access schema:\n%v", viols)
	}
}

func TestTLCQueriesCoverageAndEquivalence(t *testing.T) {
	db := MustNewTLCDB(1)
	covered := 0
	for _, q := range TLCQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			info, err := db.Check(q.SQL)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if info.Covered != q.Covered {
				t.Fatalf("Covered = %v, want %v (reason: %s)", info.Covered, q.Covered, info.Reason)
			}
			res, err := db.Query(q.SQL)
			if err != nil {
				t.Fatalf("Query: %v", err)
			}
			if len(res.Rows) == 0 {
				t.Errorf("%s returned no rows; the generator should plant witnesses", q.Name)
			}
			// Cross-engine equivalence: the BEAS answer must match every
			// conventional baseline.
			for _, base := range []Baseline{BaselinePostgres, BaselineMySQL, BaselineMariaDB} {
				conv, err := db.QueryBaseline(q.SQL, base)
				if err != nil {
					t.Fatalf("QueryBaseline(%s): %v", base, err)
				}
				if !sameBag(rowsToStrings(res), rowsToStrings(conv)) {
					t.Errorf("%s vs %s: results differ\nbeas: %v\nconv: %v",
						q.Name, base, head(rowsToStrings(res), 10), head(rowsToStrings(conv), 10))
				}
			}
		})
		if q.Covered {
			covered++
		}
	}
	if covered < 11 {
		t.Errorf("only %d/12 queries covered; the paper reports >90%%", covered)
	}
}

func TestTLCBoundedAccessIsScaleIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("generates two TLC instances")
	}
	q1, _ := tlcQuery("Q1")
	var fetched [2]int64
	for i, scale := range []int{1, 4} {
		db := MustNewTLCDB(scale)
		res, err := db.QueryBounded(q1)
		if err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
		fetched[i] = res.Stats.TuplesFetched
	}
	// The planted witnesses are scale-independent, so |D_Q| must not grow
	// with the database. Allow a little noise from random collisions.
	if fetched[1] > 4*fetched[0]+64 {
		t.Errorf("tuples fetched grew with scale: %d -> %d", fetched[0], fetched[1])
	}
}

func tlcQuery(name string) (string, bool) {
	for _, q := range TLCQueries() {
		if q.Name == name {
			return q.SQL, q.Covered
		}
	}
	return "", false
}

func head(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
