// Package beas is a bounded-evaluation SQL engine: a Go reproduction of
// BEAS (Cao et al., SIGMOD 2017). Given an access schema — a set of
// access constraints R(X → Y, N) pairing cardinality guarantees with hash
// indices — BEAS answers SQL queries by fetching a bounded fraction D_Q
// of the database, with the bound deduced before execution from the query
// and the constraints alone, no matter how large the database grows.
//
// Basic use:
//
//	db := beas.NewDB()
//	db.MustCreateTable("call", "pnum INT", "recnum INT", "date INT", "region STRING")
//	// ... load data ...
//	db.MustRegisterConstraint("call({pnum, date} -> {recnum, region}, 500)")
//	res, err := db.Query(`SELECT region FROM call WHERE pnum = 42 AND date = 20160304`)
//
// Query automatically uses a bounded plan when the query is covered by
// the registered access schema, and falls back to a partially bounded
// plan executed by the built-in conventional engine otherwise. Check
// decides coverage and deduces the access bound without executing
// anything; QueryApprox trades a fetch budget for a deterministic
// accuracy lower bound.
package beas

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/discovery"
	"github.com/bounded-eval/beas/internal/engine"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/opt"
	"github.com/bounded-eval/beas/internal/qcache"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/stats"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
	"github.com/bounded-eval/beas/internal/wal"
)

// DB is a BEAS database: schemas, data, the access schema with its
// indices, and the query services (BE Checker / Planner / Executor plus
// the conventional fallback engine).
type DB struct {
	mu     sync.RWMutex
	schema *schema.Database
	store  *storage.Store
	access *access.Schema
	// fallback executes non-covered (sub-)queries; it uses the strongest
	// conventional profile.
	fallback *engine.Engine
	// statsCat is the data-statistics catalog (internal/stats): exact
	// per-constraint fan-out distributions maintained under the index
	// observer hooks, plus lazily cached per-column NDVs and histograms.
	// Always present; consulted only when the optimizer is on.
	statsCat *stats.Catalog
	// optzr is the cost-based bounded-plan optimizer; nil means off (the
	// default), in which case every query takes the historical greedy
	// code paths untouched. Guarded by db.mu.
	optzr *opt.Optimizer
	// par is the intra-query parallelism: with par > 1 bounded plans fan
	// their fetch steps across a worker pool and the fallback engine's
	// hash joins build and probe shard-parallel. 0 or 1 means serial
	// (the default) — the serial code paths are taken untouched and
	// per-query results are identical either way. Guarded by db.mu.
	par int
	// vecOff disables the columnar (vectorized) executors; the zero value
	// means vectorized execution is ON. Guarded by db.mu.
	vecOff bool
	// batch is the columnar batch row capacity; 0 means the default
	// (iter.BatchSize). Guarded by db.mu.
	batch int

	// qc is the unified query cache (internal/qcache): a bounded LRU of
	// parsed statement templates — always on, replacing the old
	// unbounded per-text plan cache — plus the opt-in semantic result
	// tier of materialized bounded answers. catalogVersion invalidates
	// templates on any schema or access-schema change. Both the
	// template lookup and the store happen under db.mu (read suffices),
	// so a stale template can never be re-inserted after a concurrent
	// DDL bumps the version — see parseLocked.
	qc             *qcache.Cache
	catalogVersion uint64

	// tracer is the installed query-lifecycle tracer; nil means tracing
	// off, in which case every span call on the query path degrades to a
	// single context lookup. Atomic so SetTracer never contends with
	// queries in flight.
	tracer atomic.Pointer[obs.Tracer]

	// digests, when non-nil, aggregates per-fingerprint workload
	// statistics across finished queries (SetDigests). Atomic like
	// tracer: with digests off the query path pays one load + nil check.
	digests atomic.Pointer[obs.DigestSet]

	// Durable state (open.go). wal is nil for in-memory databases and
	// after Close; walDir stays set so Durability keeps reporting. Every
	// mutator appends its logical record under db.mu (write) before
	// acknowledging, so the log order equals the apply order.
	wal           *wal.Log
	walDir        string
	snapEvery     int
	recsSinceSnap int
	snapLSN       uint64
	snapCount     uint64
	lastSnapTime  time.Time
	recovered     RecoveryInfo
	closed        bool
}

// bumpCatalog invalidates cached templates and results after DDL or
// access-schema changes: templates embed resolved schema state and
// cached answers embed constraint indexes, so neither survives a
// catalog change. Callers hold db.mu.
func (db *DB) bumpCatalog() {
	db.catalogVersion++
	db.qc.FlushAll()
}

// NewDB creates an empty database.
func NewDB() *DB {
	db := &DB{}
	sch, err := schema.NewDatabase()
	if err != nil {
		// NewDatabase without relations cannot fail; an error here means
		// the schema package itself is broken. Fail loudly rather than
		// continue with a nil schema and crash later.
		panic(fmt.Sprintf("beas: creating empty database schema: %v", err))
	}
	db.schema = sch
	db.store = storage.NewStore(db.schema)
	db.access = access.NewSchema(db.store)
	db.statsCat = stats.NewCatalog(db.store, db.access)
	db.fallback = engine.New(db.store, engine.ProfilePostgres)
	db.qc = qcache.New(0, 0, false)
	return db
}

// SetOptimizer turns the cost-based plan optimizer on or off (default
// off). With it on, covered queries choose among the equivalent coverage
// derivations by estimated fetched rows and key-set expansion from the
// statistics catalog instead of worst-case bounds, and the fallback
// engine plans joins with live NDVs and histograms. Results are
// identical either way — only step order and join shapes change — and
// the deduced worst-case bound reported for admission control is
// unchanged. With it off, queries take the historical code paths
// untouched. In-flight queries keep the setting they started with.
func (db *DB) SetOptimizer(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if on {
		db.optzr = opt.New(db.statsCat)
	} else {
		db.optzr = nil
	}
	db.rebuildFallbackLocked()
	db.qc.FlushResults()
}

// OptimizerEnabled reports whether the cost-based optimizer is on.
func (db *DB) OptimizerEnabled() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.optzr != nil
}

// rebuildFallbackLocked reconstructs the fallback engine for the current
// parallelism and optimizer setting. Callers hold db.mu (write).
func (db *DB) rebuildFallbackLocked() {
	par := db.par
	if par < 1 {
		par = 1
	}
	db.fallback = engine.NewParallel(db.store, engine.ProfilePostgres, par)
	db.fallback.WithVectorized(!db.vecOff).WithBatchSize(db.batch)
	if db.optzr != nil {
		db.fallback.WithStats(db.statsCat)
	}
}

// SetVectorized turns columnar (vectorized) execution on or off (default
// on). With it on, scans fill typed column vectors, simple comparison
// filters run as tight per-column loops writing selection vectors, and
// projection, aggregation, hash-join sides and the bounded executor's
// fetch steps work batch-at-a-time on columns. Result bags, row order
// and execution statistics are bit-identical either way — only speed
// changes. In-flight queries keep the setting they started with.
func (db *DB) SetVectorized(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.vecOff = !on
	db.rebuildFallbackLocked()
	db.qc.FlushResults()
}

// VectorizedEnabled reports whether columnar execution is on.
func (db *DB) VectorizedEnabled() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return !db.vecOff
}

// SetBatchSize sets the columnar batch row capacity for subsequent
// queries (n ≤ 0 restores the default, 256). Larger batches amortise
// per-batch overhead; smaller ones reduce peak memory per operator.
func (db *DB) SetBatchSize(n int) {
	if n < 0 {
		n = 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.batch = n
	db.rebuildFallbackLocked()
	db.qc.FlushResults()
}

// BatchSize reports the columnar batch row capacity (0 = default).
func (db *DB) BatchSize() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.batch
}

// vecPlanLocked stamps the columnar-execution settings onto a bounded
// plan. Callers hold db.mu (read suffices).
func (db *DB) vecPlanLocked(plan *core.Plan) {
	plan.Vectorized = !db.vecOff
	plan.BatchSize = db.batch
}

// rewriteLocked runs the cost-based optimizer over a checker verdict
// when the optimizer is on; with it off the verdict passes through
// untouched. Callers hold db.mu (read suffices).
func (db *DB) rewriteLocked(q *analyze.Query, chk *core.CheckResult) *core.CheckResult {
	if db.optzr == nil {
		return chk
	}
	return db.optzr.Rewrite(q, chk, db.access)
}

// PlanCacheStats reports how many query parses were served from the
// template cache and how many had to parse and analyse from scratch
// (cold text, a catalog change since the cached entry was stored, or
// eviction from the bounded template tier).
func (db *DB) PlanCacheStats() (hits, misses uint64) {
	s := db.qc.Stats()
	return s.TemplateHits, s.TemplateMisses
}

// SetResultCache turns the semantic result cache on or off (default
// off). With it on, covered queries whose canonical form and
// parameters match a cached fresh answer are served from the cache
// without touching the checker or the indexes; answers are kept fresh
// incrementally — a mutation that cannot overlap an entry's recorded
// fetch keys leaves it live, a relevant one patches or invalidates
// just that entry. Results are bit-identical to uncached execution
// (row bags, order and data-derived statistics; timings and cost
// estimates reflect the original run). Turning the cache off drops
// every stored answer.
func (db *DB) SetResultCache(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.qc.SetResults(on)
}

// SetResultCacheLimits adjusts the byte budgets of the unified query
// cache: planMaxBytes bounds the parsed-template tier, resultMaxBytes
// the materialized-answer tier (≤ 0 keeps the respective default).
// Shrinking a budget evicts least-recently-used entries immediately.
func (db *DB) SetResultCacheLimits(planMaxBytes, resultMaxBytes int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.qc.SetLimits(planMaxBytes, resultMaxBytes)
}

// ResultCacheEnabled reports whether the semantic result cache is on.
func (db *DB) ResultCacheEnabled() bool {
	return db.qc.ResultsEnabled()
}

// ResultCacheStats is a snapshot of the unified query-cache counters.
type ResultCacheStats struct {
	// Template tier (parse + analysis, always on).
	TemplateHits    uint64
	TemplateMisses  uint64
	TemplateEntries int
	TemplateBytes   int64
	// Result tier (materialized answers, opt-in).
	Hits          uint64
	Misses        uint64
	Stores        uint64
	StoreRaces    uint64
	Patches       uint64
	Invalidations uint64
	Evictions     uint64
	Entries       int
	Bytes         int64
}

// ResultCacheStats returns the current query-cache counters.
func (db *DB) ResultCacheStats() ResultCacheStats {
	s := db.qc.Stats()
	return ResultCacheStats(s)
}

// SetParallelism sets the intra-query parallelism for subsequent
// queries: with n > 1 a single bounded plan fans its fetch steps across
// up to n worker goroutines (probing the partitioned constraint indices
// shard-parallel and merging per-worker aggregation states
// deterministically), and the conventional fallback engine builds and
// probes its hash joins shard-parallel. n ≤ 1 restores the serial
// executor. Result bags are bit-identical across settings; in-flight
// queries keep the parallelism they started with.
func (db *DB) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.par = n
	db.rebuildFallbackLocked()
	db.qc.FlushResults()
}

// Parallelism reports the current intra-query parallelism (1 = serial).
func (db *DB) Parallelism() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.par < 1 {
		return 1
	}
	return db.par
}

// TableDataStats is one table's row of the statistics-catalog dump.
type TableDataStats struct {
	Name string
	Rows int
}

// ConstraintDataStats is one access constraint's row of the
// statistics-catalog dump: the declared worst-case bound N next to the
// actual fan-out distribution observed in the data.
type ConstraintDataStats struct {
	Spec         string
	Bound        int
	DistinctKeys int64
	Tuples       int64
	MeanFanout   float64
	P50Fanout    int
	P95Fanout    int
	MaxFanout    int
}

// DataStats dumps the statistics catalog: exact per-table row counts and
// per-constraint fan-out distributions (incrementally maintained under
// the same hooks as the indices themselves). This is the data the
// cost-based optimizer plans with, exposed for monitoring.
func (db *DB) DataStats() ([]TableDataStats, []ConstraintDataStats) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ts, cs := db.statsCat.Summary()
	tables := make([]TableDataStats, len(ts))
	for i, t := range ts {
		tables[i] = TableDataStats{Name: t.Name, Rows: t.Rows}
	}
	cons := make([]ConstraintDataStats, len(cs))
	for i, c := range cs {
		cons[i] = ConstraintDataStats{
			Spec:         c.Spec,
			Bound:        c.Bound,
			DistinctKeys: c.DistinctKeys,
			Tuples:       c.Tuples,
			MeanFanout:   c.MeanFanout,
			P50Fanout:    c.P50,
			P95Fanout:    c.P95,
			MaxFanout:    c.MaxFanout,
		}
	}
	return tables, cons
}

// CreateTable adds a relation. Each column is declared as "name TYPE"
// with TYPE one of INT, FLOAT, STRING, BOOL (with common SQL aliases).
func (db *DB) CreateTable(name string, columns ...string) error {
	attrs := make([]schema.Attribute, len(columns))
	for i, col := range columns {
		fields := strings.Fields(col)
		if len(fields) != 2 {
			return fmt.Errorf("beas: column %q must be \"name TYPE\"", col)
		}
		kind, err := value.ParseKind(fields[1])
		if err != nil {
			return err
		}
		attrs[i] = schema.Attribute{Name: fields[0], Kind: kind}
	}
	rel, err := schema.NewRelation(name, attrs...)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.schema.Relation(rel.Name); dup {
		return fmt.Errorf("schema: duplicate relation %q", rel.Name)
	}
	cols := make([]wal.Column, len(rel.Attrs))
	for i, a := range rel.Attrs {
		cols[i] = wal.Column{Name: a.Name, Kind: a.Kind}
	}
	if err := db.walAppendLocked(&wal.Record{Type: wal.RecCreateTable, Table: rel.Name, Cols: cols}); err != nil {
		return err
	}
	if _, err := db.createTableLocked(rel); err != nil {
		return err
	}
	return db.maybeSnapshotLocked()
}

// createTableLocked adds a relation to the schema and the store and
// invalidates cached plans. Callers hold db.mu (write).
func (db *DB) createTableLocked(rel *schema.Relation) (*storage.Table, error) {
	if err := db.schema.Add(rel); err != nil {
		return nil, err
	}
	t, err := db.store.AddTable(rel)
	if err != nil {
		return nil, err
	}
	db.bumpCatalog()
	return t, nil
}

// MustCreateTable is CreateTable that panics on error.
func (db *DB) MustCreateTable(name string, columns ...string) {
	if err := db.CreateTable(name, columns...); err != nil {
		panic(err)
	}
}

// Insert adds one row; values are Go natives (int, int64, float64,
// string, bool, nil). On a durable database the row is appended to the
// write-ahead log before it becomes visible.
func (db *DB) Insert(table string, values ...any) error {
	row := make(value.Row, len(values))
	for i, v := range values {
		vv, err := ToValue(v)
		if err != nil {
			return fmt.Errorf("beas: inserting into %s: %w", table, err)
		}
		row[i] = vv
	}
	if db.walDir == "" {
		// In-memory fast path: concurrent inserts serialise on the table
		// lock only, not on the catalog lock.
		db.mu.RLock()
		closed := db.closed
		t, ok := db.store.Table(table)
		db.mu.RUnlock()
		if closed {
			return errClosed
		}
		if !ok {
			return fmt.Errorf("beas: no table %q", table)
		}
		return t.Insert(row)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertLocked(table, row, false)
}

// insertLocked validates, logs and applies one row insert. Callers hold
// db.mu (write). With deferSync the log append skips its fsync (bulk
// loads issue one Log.Sync at the end instead).
func (db *DB) insertLocked(table string, row value.Row, deferSync bool) error {
	t, ok := db.store.Table(table)
	if !ok {
		return fmt.Errorf("beas: no table %q", table)
	}
	// Validate before logging so the log never carries a record that
	// replay would reject.
	if err := t.Rel.ValidateRow(row); err != nil {
		return err
	}
	rec := &wal.Record{Type: wal.RecInsert, Table: t.Rel.Name, Row: row}
	var err error
	if deferSync && db.wal != nil && !db.closed {
		if err = db.wal.AppendDeferred(rec); err == nil {
			db.recsSinceSnap++
		}
	} else {
		err = db.walAppendLocked(rec)
	}
	if err != nil {
		return err
	}
	if err := t.Insert(row); err != nil {
		return err
	}
	return db.maybeSnapshotLocked()
}

// MustInsert is Insert that panics on error.
func (db *DB) MustInsert(table string, values ...any) {
	if err := db.Insert(table, values...); err != nil {
		panic(err)
	}
}

// Delete removes rows from a table matching a simple conjunctive
// condition given as column=value pairs, and reports how many were
// removed. Constraint indices are maintained incrementally. On a
// durable database the logical delete is logged before it is applied.
func (db *DB) Delete(table string, where map[string]any) (int, error) {
	if db.walDir == "" {
		db.mu.RLock()
		closed := db.closed
		t, ok := db.store.Table(table)
		db.mu.RUnlock()
		if closed {
			return 0, errClosed
		}
		if !ok {
			return 0, fmt.Errorf("beas: no table %q", table)
		}
		return deleteWhere(t, where)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.store.Table(table)
	if !ok {
		return 0, fmt.Errorf("beas: no table %q", table)
	}
	conds := make([]wal.Cond, 0, len(where))
	for col, v := range where {
		idx, ok := t.Rel.AttrIndex(col)
		if !ok {
			return 0, fmt.Errorf("beas: table %s has no column %q", table, col)
		}
		vv, err := ToValue(v)
		if err != nil {
			return 0, err
		}
		conds = append(conds, wal.Cond{Col: t.Rel.Attrs[idx].Name, Val: vv})
	}
	// The conds order came from a map; sort so the logged WAL record is
	// byte-identical across runs (replay and future replication compare
	// record bytes).
	sort.Slice(conds, func(i, j int) bool { return conds[i].Col < conds[j].Col })
	match, err := condsMatcher(t, conds)
	if err != nil {
		return 0, err
	}
	if err := db.walAppendLocked(&wal.Record{Type: wal.RecDelete, Table: t.Rel.Name, Where: conds}); err != nil {
		return 0, err
	}
	n := t.Delete(match)
	return n, db.maybeSnapshotLocked()
}

// deleteWhere applies a column=value conjunction delete on the
// in-memory path.
func deleteWhere(t *storage.Table, where map[string]any) (int, error) {
	type cond struct {
		pos int
		val value.Value
	}
	var conds []cond
	for col, v := range where {
		pos, ok := t.Rel.AttrIndex(col)
		if !ok {
			return 0, fmt.Errorf("beas: table %s has no column %q", t.Rel.Name, col)
		}
		vv, err := ToValue(v)
		if err != nil {
			return 0, err
		}
		conds = append(conds, cond{pos: pos, val: vv})
	}
	// Map order leaked into the evaluation order; sort by column
	// position so the predicate is deterministic.
	sort.Slice(conds, func(i, j int) bool { return conds[i].pos < conds[j].pos })
	return t.Delete(func(r value.Row) bool {
		for _, c := range conds {
			if !value.Equal(r[c.pos], c.val) {
				return false
			}
		}
		return true
	}), nil
}

// LoadCSV loads a CSV file (header row mapping to column names) into a
// table. On a durable database every row is logged; the per-record
// fsync is deferred to a single sync when the load completes, so bulk
// loads run at write speed and LoadCSV is durable as a whole once it
// returns (a crash mid-load recovers the logged prefix). The load holds
// the catalog write lock, so concurrent queries wait for it.
func (db *DB) LoadCSV(table, path string) error {
	if db.walDir == "" {
		db.mu.RLock()
		defer db.mu.RUnlock()
		if db.closed {
			return errClosed
		}
		return db.store.LoadCSVFile(table, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.store.Table(table)
	if !ok {
		return fmt.Errorf("beas: no table %q", table)
	}
	loadErr := t.ReadCSVFunc(f, func(row value.Row) error {
		return db.insertLocked(t.Rel.Name, row, true)
	})
	if db.wal != nil {
		if err := db.wal.Sync(); err != nil && loadErr == nil {
			loadErr = err
		}
	}
	return loadErr
}

// SaveCSV writes a table to a CSV file.
func (db *DB) SaveCSV(table, path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.SaveCSVFile(table, path)
}

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(table string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.store.Table(table)
	if !ok {
		return 0, fmt.Errorf("beas: no table %q", table)
	}
	return t.Len(), nil
}

// TotalRows returns the number of rows across all tables.
func (db *DB) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.TotalRows()
}

// RegisterConstraint parses and registers an access constraint in the
// paper's notation, e.g. "call({pnum, date} -> {recnum, region}, 500)".
// The instance must conform to the declared bound N.
func (db *DB) RegisterConstraint(spec string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, err := access.ParseConstraint(db.schema, spec)
	if err != nil {
		return err
	}
	return db.registerConstraintLocked(c, false)
}

// registerConstraintLocked registers c, building its index, and logs
// the registration. The record is logged with the constraint's
// pre-registration spec and the widening policy, so replay — running
// over the identical data prefix — reproduces the same effective bound.
// Callers hold db.mu (write).
func (db *DB) registerConstraintLocked(c *access.Constraint, autoWiden bool) error {
	spec := c.String()
	// Register (index build + conformance check) before logging: a spec
	// the data rejects must never enter the log, and a crash between
	// apply and append merely loses an unacknowledged registration.
	if _, err := db.access.Register(c, autoWiden); err != nil {
		return err
	}
	if err := db.walAppendLocked(&wal.Record{Type: wal.RecRegisterConstraint, Spec: spec, AutoWiden: autoWiden}); err != nil {
		return err
	}
	db.bumpCatalog()
	return db.maybeSnapshotLocked()
}

// MustRegisterConstraint is RegisterConstraint that panics on error.
func (db *DB) MustRegisterConstraint(spec string) {
	if err := db.RegisterConstraint(spec); err != nil {
		panic(err)
	}
}

// RegisterConstraintAuto registers a constraint whose bound N is widened
// to the maximum observed in the data ("aggregated from historical
// datasets", paper Example 1). It returns the effective constraint.
func (db *DB) RegisterConstraintAuto(rel string, x, y []string, n int) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, err := access.NewConstraint(db.schema, rel, x, y, n)
	if err != nil {
		return "", err
	}
	if err := db.registerConstraintLocked(c, true); err != nil {
		return "", err
	}
	return c.String(), nil
}

// DropConstraint removes a previously registered constraint (given in the
// paper's notation).
func (db *DB) DropConstraint(spec string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, err := access.ParseConstraint(db.schema, spec)
	if err != nil {
		return err
	}
	if _, ok := db.access.Index(c); !ok {
		return fmt.Errorf("beas: constraint %v is not registered", c)
	}
	if err := db.walAppendLocked(&wal.Record{Type: wal.RecDropConstraint, Spec: c.String()}); err != nil {
		return err
	}
	db.access.Unregister(c)
	db.bumpCatalog()
	return db.maybeSnapshotLocked()
}

// Retighten adjusts every registered constraint's bound N to the exact
// maximum observed in the current data and clears violation state — the
// Maintenance module's periodic constraint adjustment. Tighter bounds
// make every deduced access bound M tighter. It returns the adjusted
// constraints in the paper's notation; the error is non-nil only on a
// durable database whose log append failed.
func (db *DB) Retighten() ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.walAppendLocked(&wal.Record{Type: wal.RecRetighten}); err != nil {
		return nil, err
	}
	out := db.access.Retighten()
	db.bumpCatalog()
	return out, db.maybeSnapshotLocked()
}

// SaveAccessSchema writes the registered access schema to a file, one
// constraint per line in the paper's notation.
func (db *DB) SaveAccessSchema(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.access.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadAccessSchema reads a constraint file (as written by
// SaveAccessSchema or cmd/tlcgen) and registers every constraint,
// building its index and verifying conformance.
func (db *DB) LoadAccessSchema(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db.mu.Lock()
	defer db.mu.Unlock()
	cons, err := access.ReadConstraints(db.schema, f)
	if err != nil {
		return err
	}
	for _, c := range cons {
		if err := db.registerConstraintLocked(c, false); err != nil {
			return err
		}
	}
	return nil
}

// Constraints lists the registered access constraints in the paper's
// notation.
func (db *DB) Constraints() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cons := db.access.Constraints()
	out := make([]string, len(cons))
	for i, c := range cons {
		out[i] = c.String()
	}
	return out
}

// AccessSchemaFootprint returns the total number of distinct (X, Y) pairs
// stored across all constraint indices.
func (db *DB) AccessSchemaFootprint() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.access.Footprint()
}

// Conforms verifies D |= A and returns the violations if any.
func (db *DB) Conforms() (bool, []string) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ok, viols := db.access.Conforms()
	out := make([]string, len(viols))
	for i, v := range viols {
		out[i] = v.String()
	}
	return ok, out
}

// DiscoverOptions configures access-schema discovery.
type DiscoverOptions struct {
	// Workload is the historical query patterns (SQL).
	Workload []string
	// MaxN rejects candidate constraints with larger exact bounds
	// (default 10000).
	MaxN int
	// Budget caps the total index footprint in stored entries (0 =
	// unlimited).
	Budget int64
	// Register, when set, registers the selected constraints (building
	// their indices).
	Register bool
}

// Discover mines an access schema from the data and workload (the AS
// Catalog's Discovery module). It returns the selected constraints in the
// paper's notation and a textual report.
func (db *DB) Discover(opts DiscoverOptions) ([]string, string, error) {
	var queries []*analyze.Query
	db.mu.RLock()
	for _, sql := range opts.Workload {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			db.mu.RUnlock()
			return nil, "", fmt.Errorf("beas: workload query %q: %w", sql, err)
		}
		for s := stmt; s != nil; s = s.Union {
			q, err := analyze.Analyze(s.Select, db.schema)
			if err != nil {
				db.mu.RUnlock()
				return nil, "", fmt.Errorf("beas: workload query %q: %w", sql, err)
			}
			queries = append(queries, q)
		}
	}
	cands, report, err := discovery.Discover(db.store, queries, discovery.Options{
		MaxN:   opts.MaxN,
		Budget: opts.Budget,
	})
	db.mu.RUnlock()
	if err != nil {
		return nil, "", err
	}
	specs := make([]string, len(cands))
	for i, c := range cands {
		specs[i] = c.Constraint.String()
	}
	if opts.Register {
		db.mu.Lock()
		for _, c := range cands {
			if err := db.registerConstraintLocked(c.Constraint, true); err != nil {
				db.mu.Unlock()
				return specs, report.String(), err
			}
		}
		db.mu.Unlock()
	}
	return specs, report.String(), nil
}

// ToValue converts a Go native to a BEAS value.
func ToValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.NewNull(), nil
	case int:
		return value.NewInt(int64(x)), nil
	case int32:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case float32:
		return value.NewFloat(float64(x)), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewString(x), nil
	case bool:
		return value.NewBool(x), nil
	case value.Value:
		return x, nil
	default:
		return value.Value{}, fmt.Errorf("beas: unsupported Go type %T", v)
	}
}
