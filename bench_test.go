package beas

// Benchmarks regenerating the paper's evaluation artefacts (see
// EXPERIMENTS.md for the experiment ↔ figure mapping):
//
//	BenchmarkExample2Check      E1  bound deduction of Example 2 (no execution)
//	BenchmarkFig3/*             E2  Fig. 3: Q1 bounded vs the three baselines
//	BenchmarkFig4/*             E3  Fig. 4: scalability sweep (flat vs linear)
//	BenchmarkTLCQueries/*       E4  the 11 built-in TLC queries
//	BenchmarkPartialQ11         E6  partially bounded evaluation
//	BenchmarkDiscovery          E7  access-schema discovery
//	BenchmarkApprox/*           E8  resource-bounded approximation
//	BenchmarkMaintenance*       E9  incremental index maintenance vs rebuild
//
// plus micro-benchmarks of the substrate (index fetch, parser, key codec).
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// Shared TLC instances per scale, built lazily once per process.
var (
	tlcMu    sync.Mutex
	tlcCache = map[int]*DB{}
)

func tlcDB(b *testing.B, scale int) *DB {
	b.Helper()
	tlcMu.Lock()
	defer tlcMu.Unlock()
	if db, ok := tlcCache[scale]; ok {
		return db
	}
	db := MustNewTLCDB(scale)
	// Warm table statistics so baseline benches measure query work, not
	// one-time catalogue work.
	if _, err := db.QueryBaseline(tlcSQLFor(b, "Q1"), BaselinePostgres); err != nil {
		b.Fatal(err)
	}
	tlcCache[scale] = db
	return db
}

func tlcSQLFor(tb testing.TB, name string) string {
	tb.Helper()
	for _, q := range TLCQueries() {
		if q.Name == name {
			return q.SQL
		}
	}
	tb.Fatalf("no TLC query %s", name)
	return ""
}

// BenchmarkExample2Check measures the BE Checker itself: parsing aside,
// deciding coverage and deducing M is pure reasoning over Q and A
// (E1; paper feature (1), "decide before executing").
func BenchmarkExample2Check(b *testing.B) {
	db := tlcDB(b, 1)
	sql := tlcSQLFor(b, "Q1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := db.Check(sql)
		if err != nil || !info.Covered {
			b.Fatalf("check failed: %v %v", info, err)
		}
	}
}

// BenchmarkFig3 reproduces Fig. 3 at one scale: Q1 through the bounded
// plan and through each emulated conventional DBMS (E2).
func BenchmarkFig3(b *testing.B) {
	const scale = 5
	sql := tlcSQLFor(b, "Q1")
	b.Run("beas", func(b *testing.B) {
		db := tlcDB(b, scale)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryBounded(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, base := range []Baseline{BaselinePostgres, BaselineMySQL, BaselineMariaDB} {
		b.Run(string(base), func(b *testing.B) {
			db := tlcDB(b, scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryBaseline(sql, base); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4 reproduces Fig. 4: Q1 across the scale sweep. The beas
// series should stay flat while the baseline series grow linearly
// (E3; scale factors stand in for the paper's 1–200 GB).
func BenchmarkFig4(b *testing.B) {
	for _, scale := range []int{1, 2, 5, 10, 20} {
		sql := tlcSQLFor(b, "Q1")
		b.Run(fmt.Sprintf("scale=%d/beas", scale), func(b *testing.B) {
			db := tlcDB(b, scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryBounded(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, base := range []Baseline{BaselinePostgres, BaselineMySQL, BaselineMariaDB} {
			b.Run(fmt.Sprintf("scale=%d/%s", scale, base), func(b *testing.B) {
				db := tlcDB(b, scale)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.QueryBaseline(sql, base); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTLCQueries runs each built-in query through the automatic
// path (bounded when covered, partially bounded otherwise) — E4, the
// per-query table of §4(2).
func BenchmarkTLCQueries(b *testing.B) {
	const scale = 5
	for _, q := range TLCQueries() {
		b.Run(q.Name, func(b *testing.B) {
			db := tlcDB(b, scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartialQ11 measures partially bounded evaluation of the
// non-covered Q11 against its pure conventional plan (E6).
func BenchmarkPartialQ11(b *testing.B) {
	const scale = 5
	sql := tlcSQLFor(b, "Q11")
	b.Run("partial", func(b *testing.B) {
		db := tlcDB(b, scale)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("conventional", func(b *testing.B) {
		db := tlcDB(b, scale)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryBaseline(sql, BaselinePostgres); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiscovery measures access-schema discovery over the TLC data
// and the 10 coverable built-in queries (E7).
func BenchmarkDiscovery(b *testing.B) {
	db := tlcDB(b, 1)
	var workload []string
	for _, q := range TLCQueries()[:10] {
		workload = append(workload, q.SQL)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Discover(DiscoverOptions{Workload: workload}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApprox measures resource-bounded approximation of Q1 under
// different budgets (E8).
func BenchmarkApprox(b *testing.B) {
	const scale = 5
	sql := tlcSQLFor(b, "Q1")
	for _, budget := range []int64{16, 64, 256, 4096} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			db := tlcDB(b, scale)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.QueryApprox(sql, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaintenanceInsert measures the per-row cost of keeping all 12
// TLC constraint indices up to date under inserts (E9).
func BenchmarkMaintenanceInsert(b *testing.B) {
	db := MustNewTLCDB(1) // private instance: the bench mutates it
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Insert("call",
			9_000_000+i, 1000, 20160401, i%86400, 60,
			"r1", "voice", "mo", "volte", "DE",
			7000, 100+i, 900+i, 1, 2, 3, 0, 120, 1, 2, 1, 10_000_000+i, 0,
			"", "flat", "EUR", 3.5, 0.1, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintenanceRebuild is the ablation baseline for E9: the cost
// of re-registering (rebuilding) the call constraint index from scratch,
// which incremental maintenance avoids.
func BenchmarkMaintenanceRebuild(b *testing.B) {
	db := MustNewTLCDB(1)
	const spec = "call({pnum, date} -> {recnum, region}, 500)"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.DropConstraint(spec); err != nil {
			b.Fatal(err)
		}
		if err := db.RegisterConstraint(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLimitEarlyExit measures streaming early termination on the
// TLC schema: a LIMIT 10 over the call ⋈ package join must stop the
// pipeline after about a batch instead of materialising the full join
// (compare the "full" series, which drains it).
func BenchmarkLimitEarlyExit(b *testing.B) {
	const scale = 5
	join := "SELECT call.region, package.pid FROM call, package WHERE call.pnum = package.pnum"
	b.Run("limit10", func(b *testing.B) {
		db := tlcDB(b, scale)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.QueryBaseline(join+" LIMIT 10", BaselinePostgres)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 10 {
				b.Fatalf("got %d rows", len(res.Rows))
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		db := tlcDB(b, scale)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryBaseline(join, BaselinePostgres); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchedScan measures the storage cursor the streaming scans
// are built on: batch-at-a-time row copies under a short read lock.
func BenchmarkBatchedScan(b *testing.B) {
	db := tlcDB(b, 5)
	table, ok := db.store.Table("call")
	if !ok {
		b.Fatal("no call table")
	}
	buf := make([]value.Row, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := table.Scan()
		rows := 0
		for {
			n, err := cur.Next(buf)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			rows += n
		}
		if rows == 0 {
			b.Fatal("empty scan")
		}
	}
}

// BenchmarkQueryIter measures the streaming cursor against the
// materialising path on the paper's Example 2 query.
func BenchmarkQueryIter(b *testing.B) {
	db := tlcDB(b, 5)
	sql := tlcSQLFor(b, "Q1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ri, err := db.QueryIter(sql)
		if err != nil {
			b.Fatal(err)
		}
		for {
			batch, err := ri.NextBatch()
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
		}
	}
}

// BenchmarkIndexFetch is a micro-benchmark of the constraint hash index
// probe at the heart of every bounded plan.
func BenchmarkIndexFetch(b *testing.B) {
	db := tlcDB(b, 5)
	sql := fmt.Sprintf("SELECT recnum, region FROM call WHERE pnum = %d AND date = %d", 1001, 20160315)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryBounded(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParser measures SQL parsing + semantic analysis of the
// Example 2 query (cache bypassed).
func BenchmarkParser(b *testing.B) {
	db := tlcDB(b, 1)
	sql := tlcSQLFor(b, "Q1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := analyze.Analyze(stmt.Select, db.schema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCache measures the memoised parse path the facade uses for
// repeated statements.
func BenchmarkPlanCache(b *testing.B) {
	db := tlcDB(b, 1)
	sql := tlcSQLFor(b, "Q1")
	if _, err := db.parse(sql); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeyEncode measures the injective key codec used by indices,
// hash joins and grouping.
func BenchmarkKeyEncode(b *testing.B) {
	row := []value.Value{
		value.NewInt(123456789),
		value.NewString("some-region-name"),
		value.NewFloat(3.25),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := value.Key(row); len(k) == 0 {
			b.Fatal("empty key")
		}
	}
}

// parallelFetchSQL is a covered aggregate with a large fetch fan-out:
// 300 subscriber numbers × 31 dates make ~9300 fetch keys through ψ1,
// and the wide IN lists are re-evaluated as filters on every fetched
// tuple — exactly the per-row work a single core serialises and the
// parallel executor spreads.
func parallelFetchSQL() string {
	pnums := make([]string, 0, 300)
	for p := 1000; p < 1300; p++ {
		pnums = append(pnums, fmt.Sprint(p))
	}
	dates := make([]string, 0, 31)
	for d := 20160301; d <= 20160331; d++ {
		dates = append(dates, fmt.Sprint(d))
	}
	return fmt.Sprintf(
		"SELECT region, COUNT(*) AS n FROM call WHERE pnum IN (%s) AND date IN (%s) GROUP BY region ORDER BY n DESC, region",
		strings.Join(pnums, ", "), strings.Join(dates, ", "))
}

// BenchmarkParallelFetch measures one bounded plan across the worker
// pool: the serial executor against parallelism 4 on the same covered
// TLC query at scale 5. With GOMAXPROCS ≥ 4 the parallel series should
// run ≥ 2× faster; the result bags are bit-identical (see
// TestParallelMatchesSerialOnTLC).
func BenchmarkParallelFetch(b *testing.B) {
	const scale = 5
	sql := parallelFetchSQL()
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			db := tlcDB(b, scale)
			db.SetParallelism(par)
			defer db.SetParallelism(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.QueryBounded(sql)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkParallelJoin measures the shard-parallel hash join on an
// uncovered call ⋈ package query (no constraint binds the join key, so
// the fallback engine runs it): build and probe fan out across the
// worker pool at parallelism 4 against the streaming serial operator.
func BenchmarkParallelJoin(b *testing.B) {
	const scale = 5
	sql := "SELECT call.region, package.pid FROM call, package WHERE call.pnum = package.pnum"
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			db := tlcDB(b, scale)
			db.SetParallelism(par)
			defer db.SetParallelism(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Query(sql)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// Vectorized-vs-scalar allocation benchmarks. The columnar executor's
// whole point is fewer per-row allocations and tight per-column loops;
// these three shapes (filter-heavy scan, hash-join probe, grouped
// aggregate) are the ones BENCH_columnar.json gates, measured here with
// allocation tracking so a regression shows up as allocs/op, not just
// ns/op. The scalar sub-run is the baseline the speedup is claimed
// against.
var vecBenchSQL = map[string]string{
	"scan-filter": "SELECT pnum, duration, charge FROM call WHERE duration > 30 AND charge > 1.0 AND roaming_flag = 0",
	"join-probe":  "SELECT call.region, package.pid FROM call, package WHERE call.pnum = package.pnum",
	"agg-group":   "SELECT region, COUNT(*) AS calls, SUM(duration) AS total_s, MAX(charge) AS top FROM call GROUP BY region",
}

func benchVecAlloc(b *testing.B, sql string) {
	const scale = 5
	db := tlcDB(b, scale)
	for _, vec := range []bool{true, false} {
		name := "vectorized"
		if !vec {
			name = "scalar"
		}
		b.Run(name, func(b *testing.B) {
			db.SetVectorized(vec)
			defer db.SetVectorized(true) // tlcCache instances are shared
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.QueryBaseline(sql, BaselinePostgres)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func BenchmarkVecScanFilter(b *testing.B) { benchVecAlloc(b, vecBenchSQL["scan-filter"]) }

func BenchmarkVecJoinProbe(b *testing.B) { benchVecAlloc(b, vecBenchSQL["join-probe"]) }

func BenchmarkVecGroupedAgg(b *testing.B) { benchVecAlloc(b, vecBenchSQL["agg-group"]) }
