package beas

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// chainDB builds a two-step covered join: t1 holds one huge bucket of n
// rows under key a=1, and t2 maps each b to one value. A bounded plan
// fetches the whole t1 bucket in step 1 and then probes t2 once per row
// in step 2, so step 2's progress tracks how far the pipeline ran.
func chainDB(tb testing.TB, n int) *DB {
	tb.Helper()
	db := NewDB()
	db.MustCreateTable("t1", "a INT", "b INT")
	db.MustCreateTable("t2", "b INT", "c INT")
	for i := 0; i < n; i++ {
		db.MustInsert("t1", 1, i)
		db.MustInsert("t2", i, i*2)
	}
	db.MustRegisterConstraint(fmt.Sprintf("t1({a} -> {b}, %d)", n))
	db.MustRegisterConstraint("t2({b} -> {c}, 1)")
	return db
}

// TestQueryIterContextCancelBounded: cancelling a streaming bounded
// query stops the fetch loop mid-flight; the per-step statistics show
// step 2 far from done.
func TestQueryIterContextCancelBounded(t *testing.T) {
	const n = 20000
	db := chainDB(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ri, err := db.QueryIterContext(ctx, "SELECT t2.c FROM t1, t2 WHERE t1.a = 1 AND t2.b = t1.b")
	if err != nil {
		t.Fatal(err)
	}
	defer ri.Close()
	if _, err := ri.NextBatch(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	if _, err := ri.NextBatch(); !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: err = %v, want context.Canceled", err)
	}
	ri.Close()

	st := ri.Stats()
	if st.TuplesFetched == 0 {
		t.Fatal("no tuples fetched before cancel")
	}
	if st.TuplesFetched >= 2*n {
		t.Fatalf("fetch loop ran to completion: %d tuples", st.TuplesFetched)
	}
	if len(st.FetchSteps) != 2 {
		t.Fatalf("fetch steps = %d, want 2", len(st.FetchSteps))
	}
	// Step 1 fetches its single bucket on the first pull; step 2 probes
	// key by key and must have been cut off early.
	if got := st.FetchSteps[0].Fetched; got != n {
		t.Errorf("step 1 fetched %d, want the full bucket %d", got, n)
	}
	if got := st.FetchSteps[1].Fetched; got == 0 || got >= n/2 {
		t.Errorf("step 2 fetched %d of %d — cancellation did not stop it mid-flight", got, n)
	}
}

// TestQueryIterContextCancelFallback: cancelling an uncovered query
// stops the conventional engine's scans mid-flight.
func TestQueryIterContextCancelFallback(t *testing.T) {
	const n = 100000
	db := NewDB()
	db.MustCreateTable("events", "id INT", "kind STRING")
	for i := 0; i < n; i++ {
		db.MustInsert("events", i, "click")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ri, err := db.QueryIterContext(ctx, "SELECT id FROM events WHERE kind = 'click'")
	if err != nil {
		t.Fatal(err)
	}
	defer ri.Close()
	if _, err := ri.NextBatch(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	if _, err := ri.NextBatch(); !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: err = %v, want context.Canceled", err)
	}
	ri.Close()
	if got := ri.Stats().TuplesScanned; got == 0 || got >= n {
		t.Errorf("scanned %d of %d rows — cancellation did not stop the scan early", got, n)
	}
}

// TestContextPrecancelled: every *Context entry point fails fast on an
// already-cancelled context without touching data.
func TestContextPrecancelled(t *testing.T) {
	db := chainDB(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sql := "SELECT b FROM t1 WHERE a = 1"

	if _, err := db.QueryContext(ctx, sql); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryContext: %v", err)
	}
	if _, err := db.QueryBoundedContext(ctx, sql); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryBoundedContext: %v", err)
	}
	if _, err := db.QueryIterContext(ctx, sql); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryIterContext: %v", err)
	}
	if _, err := db.CheckContext(ctx, sql); !errors.Is(err, context.Canceled) {
		t.Errorf("CheckContext: %v", err)
	}
	if _, _, err := db.QueryApproxContext(ctx, sql, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryApproxContext: %v", err)
	}
	if _, err := db.QueryBaselineContext(ctx, sql, BaselinePostgres); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryBaselineContext: %v", err)
	}
}

// TestQueryContextDeadline: a deadline in the past behaves like a
// cancellation for the materialising path too.
func TestQueryContextDeadline(t *testing.T) {
	db := chainDB(t, 10)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := db.QueryContext(ctx, "SELECT b FROM t1 WHERE a = 1"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("QueryContext with expired deadline: %v", err)
	}
}
