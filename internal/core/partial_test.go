package core

import (
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/engine"
	"github.com/bounded-eval/beas/internal/value"
)

// seedPartial builds a world where business is fetchable but call is not
// (no constraint covers call.duration-style access by recnum).
func seedPartial(t *testing.T) *env {
	e := newEnv(t)
	e.insert(t, "business", vi(100), vs("bank"), vs("r0"))
	e.insert(t, "business", vi(101), vs("bank"), vs("r0"))
	e.insert(t, "business", vi(102), vs("shop"), vs("r0"))
	// Calls TO the businesses (recnum = business number).
	e.insert(t, "call", vi(500), vi(100), vi(1), vs("east"))
	e.insert(t, "call", vi(501), vi(100), vi(2), vs("west"))
	e.insert(t, "call", vi(502), vi(101), vi(1), vs("east"))
	e.insert(t, "call", vi(503), vi(102), vi(1), vs("east"))
	e.constraint(t, "business({type, region} -> pnum, 2000)")
	return e
}

const partialSQL = `
SELECT business.pnum, COUNT(*) AS n FROM business, call
WHERE business.type = 'bank' AND business.region = 'r0'
  AND call.recnum = business.pnum
GROUP BY business.pnum ORDER BY business.pnum`

func TestPartialPlanShape(t *testing.T) {
	e := seedPartial(t)
	q := e.analyze(t, partialSQL)
	chk := Check(q, e.as)
	if chk.Covered {
		t.Fatal("query must not be covered (call has no applicable constraint)")
	}
	pp, err := NewPartialPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Sub == nil || len(pp.Fetched) != 1 || len(pp.Remaining) != 1 {
		t.Fatalf("partial shape: fetched=%v remaining=%v", pp.Fetched, pp.Remaining)
	}
	if got := pp.BoundedSubqueryBound(); got != 2000 {
		t.Errorf("bounded sub-query bound = %d, want 2000", got)
	}
	desc := pp.Describe(q)
	if !strings.Contains(desc, "bounded sub-query over {business}") ||
		!strings.Contains(desc, "conventional scans over {call}") {
		t.Errorf("Describe = %q", desc)
	}
}

func TestPartialPlanExecution(t *testing.T) {
	e := seedPartial(t)
	q := e.analyze(t, partialSQL)
	chk := Check(q, e.as)
	pp, err := NewPartialPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(e.store, engine.ProfilePostgres)
	rows, subStats, engStats, err := RunPartial(pp, q, eng)
	if err != nil {
		t.Fatal(err)
	}
	// banks 100 (2 calls) and 101 (1 call); shop 102 excluded.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].I != 100 || rows[0][1].I != 2 || rows[1][0].I != 101 || rows[1][1].I != 1 {
		t.Errorf("rows = %v", rows)
	}
	if subStats.Fetched != 2 {
		t.Errorf("bounded part fetched %d, want 2 bank numbers", subStats.Fetched)
	}
	// Only call is scanned conventionally.
	if engStats.Scanned != 4 {
		t.Errorf("scanned = %d, want 4 call rows", engStats.Scanned)
	}
	// Agreement with the pure conventional plan.
	convRows, _, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(convRows) != len(rows) {
		t.Errorf("partial and conventional disagree: %v vs %v", rows, convRows)
	}
}

func TestPartialPlanNoFetchableAtom(t *testing.T) {
	e := newEnv(t)
	e.insert(t, "call", vi(1), vi(2), vi(3), vs("east"))
	// No constraints at all: nothing fetchable.
	q := e.analyze(t, "SELECT region FROM call WHERE recnum = 2")
	chk := Check(q, e.as)
	pp, err := NewPartialPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Sub != nil || len(pp.Fetched) != 0 {
		t.Fatalf("expected fully conventional plan: %+v", pp)
	}
	if !strings.Contains(pp.Describe(q), "no atom is fetchable") {
		t.Errorf("Describe = %q", pp.Describe(q))
	}
	eng := engine.New(e.store, engine.ProfilePostgres)
	rows, _, _, err := RunPartial(pp, q, eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].S != "east" {
		t.Errorf("rows = %v", rows)
	}
}

func TestNewPartialPlanRejectsCovered(t *testing.T) {
	e := seedExample2(t)
	q := e.analyze(t, ex2)
	chk := Check(q, e.as)
	if _, err := NewPartialPlan(q, chk); err == nil {
		t.Error("NewPartialPlan must reject covered queries")
	}
}

// TestPartialPreservesWeights: the bounded sub-query must hand bag
// multiplicities to the engine (duplicate base rows in the covered atom).
func TestPartialPreservesWeights(t *testing.T) {
	e := seedPartial(t)
	// A duplicate bank row: same pnum/type/region twice.
	e.insert(t, "business", vi(100), vs("bank"), vs("r0"))
	q := e.analyze(t, partialSQL)
	chk := Check(q, e.as)
	pp, err := NewPartialPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(e.store, engine.ProfilePostgres)
	rows, _, _, err := RunPartial(pp, q, eng)
	if err != nil {
		t.Fatal(err)
	}
	convRows, _, err := eng.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if value.Key(rows[0]) != value.Key(convRows[0]) || rows[0][1].I != 4 {
		t.Errorf("duplicate business row lost: partial=%v conventional=%v", rows, convRows)
	}
}
