package core

import (
	"fmt"
	"strings"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/value"
)

// KeySource says where one component of a fetch key comes from during
// execution: a set of constant candidates (equality or IN conjuncts), or
// a slot of the intermediate row materialised by an earlier step.
type KeySource struct {
	// Consts, when non-nil, enumerates candidate constants.
	Consts []value.Value
	// Slot is the intermediate-row slot to read when Consts is nil.
	Slot int
}

// PlanStep is an executable fetch step: the checker's FetchStep plus key
// sourcing, slot assignments and the filters that become applicable once
// the step's attributes are materialised.
type PlanStep struct {
	FetchStep
	// Keys has one source per X attribute of the constraint.
	Keys []KeySource
	// XSlots / YSlots are the intermediate-row slots of the step's X
	// attributes and of its *used* Y attributes (parallel to YUsed).
	XSlots []int
	YUsed  []int // positions into Constraint.Y / YAttrs that the query uses
	YSlots []int
	// Filters are the conjuncts evaluated right after this step extends a
	// row (every conjunct is applied exactly once, at the earliest step
	// where all of its columns are materialised).
	Filters []analyze.Conjunct
}

// Plan is a bounded query plan (paper §3): an ordered list of fetch steps
// plus the relational tail, accessing data only through fetch operators.
type Plan struct {
	Query  *analyze.Query
	Steps  []PlanStep
	Layout *analyze.Layout
	// Check is the checker verdict the plan was generated from.
	Check *CheckResult
	// Vectorized selects the columnar serial executor: fetch steps append
	// extended rows into column vectors (no per-output row allocation) and
	// the relational tail runs its vectorized stages. Results are
	// identical to the row executor. The parallel executor ignores it.
	Vectorized bool
	// BatchSize is the columnar batch row capacity (≤ 0 = default).
	BatchSize int
	// CollectKeys makes the executors record every distinct encoded key
	// each step probed (including keys that hit an empty bucket) in
	// Stats.StepKeys. The result cache uses the sets to subscribe an
	// entry to exactly the index regions it read.
	CollectKeys bool
}

// NewPlan turns a successful check into an executable bounded plan. It
// fails if the check did not cover the query.
func NewPlan(q *analyze.Query, chk *CheckResult) (*Plan, error) {
	if !chk.Covered {
		return nil, fmt.Errorf("core: query is not covered: %s", chk.Reason)
	}
	p := &Plan{Query: q, Check: chk, Layout: analyze.NewLayout()}
	if chk.EmptyGuaranteed {
		return p, nil
	}
	applied := make([]bool, len(q.Conjuncts))
	materialised := make(map[analyze.ColID]bool)

	for _, fs := range chk.Steps {
		ps := PlanStep{FetchStep: fs}
		atom := fs.Atom

		// Key sources: constants if the class carries them, else a slot of
		// an already materialised attribute in the same class.
		for _, xa := range fs.XAttrs {
			id := analyze.ColID{Atom: atom, Attr: xa}
			info := chk.classes.get(id)
			if info.hasConsts {
				ps.Keys = append(ps.Keys, KeySource{Consts: info.consts})
				continue
			}
			slot, ok := findClassSlot(chk.classes, p.Layout, materialised, id)
			if !ok {
				return nil, fmt.Errorf("core: internal: no materialised source for key %s.%s of %v",
					q.Atoms[atom].Name, q.Atoms[atom].Rel.Attrs[xa].Name, fs.Constraint)
			}
			ps.Keys = append(ps.Keys, KeySource{Consts: nil, Slot: slot})
		}

		// Slot assignments for this atom's X attributes and used Y
		// attributes.
		for _, xa := range fs.XAttrs {
			id := analyze.ColID{Atom: atom, Attr: xa}
			ps.XSlots = append(ps.XSlots, p.Layout.Add(id))
			materialised[id] = true
		}
		usedSet := make(map[int]bool)
		for _, a := range q.UsedAttrs(atom) {
			usedSet[a] = true
		}
		for yi, ya := range fs.YAttrs {
			if !usedSet[ya] {
				continue
			}
			id := analyze.ColID{Atom: atom, Attr: ya}
			ps.YUsed = append(ps.YUsed, yi)
			ps.YSlots = append(ps.YSlots, p.Layout.Add(id))
			materialised[id] = true
		}

		// Filters that become evaluable now.
		for ci, c := range q.Conjuncts {
			if applied[ci] {
				continue
			}
			ready := true
			for _, id := range analyze.Cols(c.Expr) {
				if !materialised[id] {
					ready = false
					break
				}
			}
			if ready {
				ps.Filters = append(ps.Filters, c)
				applied[ci] = true
			}
		}
		p.Steps = append(p.Steps, ps)
	}

	// Every conjunct must have been scheduled: all used columns are
	// materialised after the last step.
	for ci, ok := range applied {
		if !ok && len(analyze.Cols(q.Conjuncts[ci].Expr)) > 0 {
			return nil, fmt.Errorf("core: internal: conjunct %s never became evaluable", q.Conjuncts[ci])
		}
		if !ok {
			// Column-free conjunct (e.g. 1 = 1): attach to the last step,
			// or evaluate at finish time for empty plans.
			if len(p.Steps) > 0 {
				last := &p.Steps[len(p.Steps)-1]
				last.Filters = append(last.Filters, q.Conjuncts[ci])
			}
		}
	}
	return p, nil
}

// findClassSlot locates a materialised attribute in id's class and returns
// its slot.
func findClassSlot(cs *classSet, layout *analyze.Layout, materialised map[analyze.ColID]bool, id analyze.ColID) (int, bool) {
	root := cs.find(id)
	for other := range materialised {
		if cs.find(other) == root {
			if s, ok := layout.Slot(other); ok {
				return s, true
			}
		}
	}
	return 0, false
}

// Describe renders the plan like the paper's Example 2 walk-through.
func (p *Plan) Describe() string {
	var b strings.Builder
	if p.Check.EmptyGuaranteed {
		b.WriteString("bounded plan: constant contradiction; emit empty result\n")
		return b.String()
	}
	for i, s := range p.Steps {
		atom := p.Query.Atoms[s.Atom]
		fmt.Fprintf(&b, "(%d) fetch %s via %v", i+1, atom.Name, s.Constraint)
		fmt.Fprintf(&b, "  [≤ %s keys, ≤ %s tuples]", boundStr(s.KeyBound), boundStr(s.OutBound))
		if s.EstKeys > 0 {
			fmt.Fprintf(&b, "  [est ≈ %.0f keys, ≈ %.0f tuples]", s.EstKeys, s.EstFetched)
		}
		if len(s.Filters) > 0 {
			var fs []string
			for _, f := range s.Filters {
				fs = append(fs, f.String())
			}
			fmt.Fprintf(&b, "  filter: %s", strings.Join(fs, " AND "))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d) ", len(p.Steps)+1)
	if p.Query.IsAgg {
		b.WriteString("aggregate, ")
	}
	b.WriteString("project")
	if p.Query.Distinct {
		b.WriteString(" distinct")
	}
	if len(p.Query.OrderBy) > 0 {
		b.WriteString(", sort")
	}
	if p.Query.Limit != nil {
		b.WriteString(", limit")
	}
	b.WriteByte('\n')
	return b.String()
}
