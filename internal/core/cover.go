package core

import (
	"github.com/bounded-eval/beas/internal/analyze"
)

// CoverState is the mutable coverage state of a fetch derivation in
// progress: which atoms are fetched, which equivalence classes are
// covered and at what worst-case bound. Check drives one greedy
// derivation through this state; the cost-based optimizer
// (internal/opt) clones it to enumerate alternative derivations — every
// derivation reachable through Fetchable/Apply is a valid coverage
// derivation, so the plans it yields return exactly the same answers and
// differ only in cost.
type CoverState struct {
	q         *analyze.Query
	cs        *classSet
	ord       *classOrdinal
	fetched   []bool
	remaining int
}

// NewCoverState seeds the coverage state from the query's equality and
// IN conjuncts, exactly as Check does. contradiction reports that
// constant predicates are unsatisfiable (the empty answer is guaranteed
// and no derivation is needed).
func NewCoverState(q *analyze.Query) (st *CoverState, contradiction bool) {
	cs, contradiction := seedClasses(q)
	st = &CoverState{
		q:         q,
		cs:        cs,
		ord:       &classOrdinal{cs: cs, ids: make(map[analyze.ColID]int)},
		fetched:   make([]bool, len(q.Atoms)),
		remaining: len(q.Atoms),
	}
	return st, contradiction
}

// Clone returns an independent copy: Apply on the clone never affects
// the original, which is what lets branch-and-bound backtrack.
func (st *CoverState) Clone() *CoverState {
	cs := &classSet{
		parent: make(map[analyze.ColID]analyze.ColID, len(st.cs.parent)),
		info:   make(map[analyze.ColID]*classInfo, len(st.cs.info)),
	}
	for k, v := range st.cs.parent {
		cs.parent[k] = v
	}
	for k, v := range st.cs.info {
		ci := *v // consts slices are never mutated in place, sharing is safe
		cs.info[k] = &ci
	}
	ord := &classOrdinal{cs: cs, ids: make(map[analyze.ColID]int, len(st.ord.ids)), next: st.ord.next}
	for k, v := range st.ord.ids {
		ord.ids[k] = v
	}
	out := &CoverState{
		q:         st.q,
		cs:        cs,
		ord:       ord,
		fetched:   append([]bool(nil), st.fetched...),
		remaining: st.remaining,
	}
	return out
}

// Done reports whether every atom is fetched (the derivation covers the
// query).
func (st *CoverState) Done() bool { return st.remaining == 0 }

// Fetched reports whether atom ai is already fetched.
func (st *CoverState) Fetched(ai int) bool { return st.fetched[ai] }

// Fetchable returns every applicable (atom, constraint) fetch step under
// the current coverage, in deterministic order (atoms ascending,
// constraints in provider order), with worst-case key and output bounds
// computed against the current class bounds.
func (st *CoverState) Fetchable(as Provider) []FetchStep {
	var out []FetchStep
	for ai := range st.q.Atoms {
		if st.fetched[ai] {
			continue
		}
		out = append(out, stepsForAtom(st.q, ai, as, st.cs)...)
	}
	return out
}

// Apply marks the step's atom fetched and covers the classes of its
// materialised attributes, mirroring the checker's fixpoint body, and
// fills the step's XClasses ordinals.
func (st *CoverState) Apply(step *FetchStep) {
	st.fetched[step.Atom] = true
	st.remaining--
	for i, x := range step.XAttrs {
		step.XClasses[i] = st.ord.of(analyze.ColID{Atom: step.Atom, Attr: x})
	}
	for _, attr := range st.q.UsedAttrs(step.Atom) {
		info := st.cs.get(analyze.ColID{Atom: step.Atom, Attr: attr})
		newBound := step.OutBound
		if info.covered {
			newBound = minU64(info.bound, newBound)
		}
		info.covered, info.bound = true, newBound
	}
}

// KeyClass describes one distinct key component of a fetch step for cost
// estimation: its class ordinal, the number of constant candidates the
// class carries (0 when the key is read from intermediate-row slots),
// and the class's worst-case bound.
type KeyClass struct {
	Class  int
	Consts int
	Bound  uint64
}

// StepKeyClasses returns the step's distinct X classes in X order (two X
// attributes in one class contribute once, matching the key-bound rule).
func (st *CoverState) StepKeyClasses(step FetchStep) []KeyClass {
	var out []KeyClass
	seen := make(map[analyze.ColID]bool, len(step.XAttrs))
	for _, xa := range step.XAttrs {
		id := analyze.ColID{Atom: step.Atom, Attr: xa}
		root := st.cs.find(id)
		if seen[root] {
			continue
		}
		seen[root] = true
		info := st.cs.info[root]
		kc := KeyClass{Class: st.ord.of(id), Bound: info.bound}
		if info.hasConsts {
			kc.Consts = len(info.consts)
		}
		out = append(out, kc)
	}
	return out
}

// ClassOf returns the stable class ordinal of an (atom, attribute) node.
func (st *CoverState) ClassOf(id analyze.ColID) int { return st.ord.of(id) }

// Finalize wraps an alternative derivation's steps into a CheckResult
// that plan generation accepts. The admission-control bounds
// (TotalBound, OutputBound) are copied from base unchanged — the
// optimizer reports the same a-priori worst case whether it reorders or
// not — while Steps and ConstraintsUsed describe the chosen derivation.
// The receiver must be the state after applying exactly those steps.
func (st *CoverState) Finalize(base *CheckResult, steps []FetchStep) *CheckResult {
	out := *base
	out.Steps = steps
	used := make(map[string]bool, len(steps))
	for _, s := range steps {
		used[s.Constraint.ID()] = true
	}
	out.ConstraintsUsed = len(used)
	out.classes = st.cs
	return &out
}
