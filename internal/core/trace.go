package core

import (
	"context"
	"time"

	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/obs"
)

// execTail wraps the relational tail (internal/exec) of a bounded plan
// with a timing decorator when the context carries a trace, emitting an
// "exec.tail" span at close. The tail pulls from the fetch-step chain,
// so its measured wall time includes upstream pull time; the fetch-step
// spans' self-times show how much of it was index probing.
func execTail(ctx context.Context, out iter.Iterator, start time.Time) iter.Iterator {
	tr, parent := obs.FromContext(ctx)
	if tr == nil {
		return out
	}
	return iter.Timed(out, func(batches, rows int64, d time.Duration) {
		tr.AddSpan(parent, "exec.tail", start, d,
			obs.Attr{Key: "batches", Val: batches},
			obs.Attr{Key: "rows", Val: rows},
		)
	})
}

// emitStepSpans files a bounded execution's per-step statistics as
// trace spans under the context's current span. Step durations are
// self-times (disjoint per step, see stepOp.Next); the spans' start
// times all anchor at the pipeline start, since streaming steps
// interleave rather than run back to back. Attrs carry the full
// estimated-vs-actual breakdown: the a-priori worst-case bounds, the
// optimizer's estimates (zero when it did not run) and the actual
// counters.
func emitStepSpans(ctx context.Context, start time.Time, st *Stats) {
	tr, parent := obs.FromContext(ctx)
	if tr == nil {
		return
	}
	for i := range st.Steps {
		s := &st.Steps[i]
		attrs := []obs.Attr{
			{Key: "constraint", Val: s.Constraint},
			{Key: "keyBound", Val: s.KeyBound},
			{Key: "outBound", Val: s.OutBound},
			{Key: "keys", Val: s.DistinctKey},
			{Key: "fetched", Val: s.Fetched},
			{Key: "rows", Val: s.RowsOut},
		}
		if s.EstKeys != 0 || s.EstFetched != 0 || s.EstRows != 0 {
			attrs = append(attrs,
				obs.Attr{Key: "estKeys", Val: s.EstKeys},
				obs.Attr{Key: "estFetched", Val: s.EstFetched},
				obs.Attr{Key: "estRows", Val: s.EstRows},
			)
		}
		tr.AddSpan(parent, "fetch "+s.Atom, start, s.Duration, attrs...)
	}
}
