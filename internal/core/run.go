package core

import (
	"fmt"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/value"
)

// StepStat records what one fetch step actually did, feeding the
// performance analyser of the demo (Fig. 3: per-operation breakdown).
type StepStat struct {
	Atom        string
	Constraint  string
	DistinctKey int64 // distinct keys probed (each probed once, memoised)
	Fetched     int64 // partial tuples fetched (Σ bucket sizes over keys): |D_Q| share
	RowsOut     int64 // intermediate rows after join + filters
	Duration    time.Duration
}

// Stats aggregates bounded-plan execution statistics.
type Stats struct {
	Steps    []StepStat
	Fetched  int64 // total partial tuples fetched = |D_Q|
	RowsOut  int64 // final result rows
	Duration time.Duration
}

// Run executes a bounded plan and returns the result rows and execution
// statistics. All data access goes through the constraint indices'
// fetch operation; the plan never scans a base relation.
func Run(p *Plan) ([]value.Row, *Stats, error) {
	start := time.Now()
	st := &Stats{}
	if p.Check.EmptyGuaranteed {
		st.Duration = time.Since(start)
		return nil, st, nil
	}
	q := p.Query
	layout := p.Layout

	// The intermediate relation starts as a single all-NULL row of the
	// final width; fetch steps fill slots in. Each row carries a weight:
	// the number of identical base-row combinations it stands for, since
	// constraint indices return distinct partial tuples with witness
	// counts (SQL bag semantics are restored at finish time).
	width := layout.Len()
	rows := []value.Row{make(value.Row, width)}
	weights := []int64{1}

	type wBucket struct {
		rows   []value.Row
		counts []int64
	}
	for _, step := range p.Steps {
		stepStart := time.Now()
		ss := StepStat{
			Atom:       q.Atoms[step.Atom].Name,
			Constraint: step.Constraint.String(),
		}
		// Memoise bucket lookups per distinct key: each distinct key is
		// fetched from the index exactly once, giving the dedup-key
		// semantics of the deduced bound.
		memo := make(map[string]wBucket)

		var next []value.Row
		var nextW []int64
		key := make([]value.Value, len(step.Keys))
		var emit func(row value.Row, w int64, comp int)
		var emitErr error
		emit = func(row value.Row, w int64, comp int) {
			if emitErr != nil {
				return
			}
			if comp < len(step.Keys) {
				src := step.Keys[comp]
				if src.Consts == nil {
					key[comp] = row[src.Slot]
					emit(row, w, comp+1)
					return
				}
				for _, c := range src.Consts {
					key[comp] = c
					emit(row, w, comp+1)
					if emitErr != nil {
						return
					}
				}
				return
			}
			// Key complete: probe the index.
			ks := value.Key(key)
			bucket, seen := memo[ks]
			if !seen {
				rws, cnts, n := step.Index.FetchWeighted(key)
				bucket = wBucket{rows: rws, counts: cnts}
				memo[ks] = bucket
				ss.DistinctKey++
				ss.Fetched += int64(n)
			}
			for yi2, y := range bucket.rows {
				out := row.Clone()
				for i, s := range step.XSlots {
					out[s] = key[i]
				}
				for i, yi := range step.YUsed {
					out[step.YSlots[i]] = y[yi]
				}
				keep := true
				for _, f := range step.Filters {
					ok, err := analyze.EvalBool(f.Expr, out, layout)
					if err != nil {
						emitErr = fmt.Errorf("core: evaluating %s: %w", f, err)
						return
					}
					if !ok {
						keep = false
						break
					}
				}
				if keep {
					next = append(next, out)
					nextW = append(nextW, w*bucket.counts[yi2])
				}
			}
		}
		for ri, row := range rows {
			emit(row, weights[ri], 0)
			if emitErr != nil {
				return nil, st, emitErr
			}
		}
		rows, weights = next, nextW
		ss.RowsOut = int64(len(rows))
		ss.Duration = time.Since(stepStart)
		st.Steps = append(st.Steps, ss)
		st.Fetched += ss.Fetched
		if len(rows) == 0 {
			break // no intermediate rows: later steps fetch nothing
		}
	}

	out, err := exec.FinishWeighted(q, rows, weights, layout)
	if err != nil {
		return nil, st, err
	}
	st.RowsOut = int64(len(out))
	st.Duration = time.Since(start)
	return out, st, nil
}
