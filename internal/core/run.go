package core

import (
	"context"
	"fmt"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/value"
)

// StepStat records what one fetch step actually did, feeding the
// performance analyser of the demo (Fig. 3: per-operation breakdown).
// With streaming execution the counters reflect the work the step was
// actually pulled for — a LIMIT that stops the pipeline early leaves
// later steps with less (or zero) work recorded.
type StepStat struct {
	Atom        string
	Constraint  string
	DistinctKey int64 // distinct keys probed (each probed once, memoised)
	Fetched     int64 // partial tuples fetched (Σ bucket sizes over keys): |D_Q| share
	RowsOut     int64 // intermediate rows after join + filters
	Duration    time.Duration

	// KeyBound / OutBound are the step's a-priori worst-case bounds;
	// EstKeys / EstFetched / EstRows the optimizer's statistics-based
	// estimates (zero when the optimizer did not run). Together with the
	// actual counters above they form EXPLAIN ANALYZE's
	// estimated-vs-actual breakdown.
	KeyBound, OutBound           uint64
	EstKeys, EstFetched, EstRows float64
}

// statFor seeds a StepStat with the plan step's identity, bounds and
// estimates; the actual counters accrue during execution.
func statFor(q *analyze.Query, step *PlanStep) StepStat {
	return StepStat{
		Atom:       q.Atoms[step.Atom].Name,
		Constraint: step.Constraint.String(),
		KeyBound:   step.KeyBound,
		OutBound:   step.OutBound,
		EstKeys:    step.EstKeys,
		EstFetched: step.EstFetched,
		EstRows:    step.EstRows,
	}
}

// Stats aggregates bounded-plan execution statistics. Counters accrue
// while the plan streams; they are final once the result iterator is
// exhausted or closed.
type Stats struct {
	Steps    []StepStat
	Fetched  int64 // total partial tuples fetched = |D_Q|
	RowsOut  int64 // final result rows
	Duration time.Duration
	// StepKeys, filled only when Plan.CollectKeys is set, lists the
	// distinct encoded index keys each step probed (parallel to Steps).
	// Empty-bucket probes are included: the cache must learn about rows
	// later inserted under a key the query looked for and did not find.
	StepKeys [][]string
}

// Run executes a bounded plan and returns the result rows and execution
// statistics. All data access goes through the constraint indices'
// fetch operation; the plan never scans a base relation.
func Run(p *Plan) ([]value.Row, *Stats, error) {
	return RunContext(context.Background(), p)
}

// RunContext is Run under a context: cancellation or deadline expiry
// halts the fetch loops at the next batch boundary and returns ctx's
// error; the stats then reflect only the work actually performed.
func RunContext(ctx context.Context, p *Plan) ([]value.Row, *Stats, error) {
	it, st := StreamContext(ctx, p)
	rows, _, err := iter.Collect(it)
	if err != nil {
		return nil, st, err
	}
	return rows, st, nil
}

// Stream builds the bounded plan's pull pipeline and returns an iterator
// over the final result rows. Each fetch step is a streaming operator
// extending batches of weighted intermediate rows through its constraint
// index; the relational tail (internal/exec) pulls from the last step, so
// a LIMIT k query stops probing the indices after k rows. Statistics
// accrue in st while the iterator is consumed and are final once it is
// exhausted or closed.
func Stream(p *Plan) (iter.Iterator, *Stats) {
	return StreamContext(context.Background(), p)
}

// StreamContext is Stream under a context. Every fetch step checks the
// context before filling a batch, so a cancelled pipeline stops probing
// the constraint indices mid-flight — even when a blocking downstream
// stage (aggregation, ORDER BY) is draining it in a tight loop.
func StreamContext(ctx context.Context, p *Plan) (iter.Iterator, *Stats) {
	start := time.Now()
	st := &Stats{}
	if p.Check.EmptyGuaranteed {
		return iter.OnClose(iter.Empty(), func() { st.Duration = time.Since(start) }), st
	}
	q, layout := p.Query, p.Layout

	// The intermediate relation starts as a single all-NULL row of the
	// final width; fetch steps fill slots in. Each row carries a weight:
	// the number of identical base-row combinations it stands for, since
	// constraint indices return distinct partial tuples with witness
	// counts (SQL bag semantics are restored by the relational tail).
	st.Steps = make([]StepStat, len(p.Steps))
	if p.CollectKeys {
		st.StepKeys = make([][]string, len(p.Steps))
	}
	stepKeysSink := func(i int) *[]string {
		if p.CollectKeys {
			return &st.StepKeys[i]
		}
		return nil
	}

	var out iter.Iterator
	if p.Vectorized {
		batch := p.BatchSize
		if batch <= 0 {
			batch = iter.BatchSize
		}
		cur := iter.ColFromRows([]value.Row{make(value.Row, layout.Len())}, nil, layout.Len(), batch)
		for i := range p.Steps {
			step := &p.Steps[i]
			st.Steps[i] = statFor(q, step)
			cur = &colStepOp{
				ctx:     ctx,
				step:    step,
				in:      cur,
				layout:  layout,
				ss:      &st.Steps[i],
				fetched: &st.Fetched,
				keys:    stepKeysSink(i),
				batch:   batch,
			}
		}
		out = iter.Counted(execTail(ctx, exec.StreamCol(q, cur, layout), start), &st.RowsOut)
	} else {
		cur := iter.FromRows([]value.Row{make(value.Row, layout.Len())}, nil)
		for i := range p.Steps {
			step := &p.Steps[i]
			st.Steps[i] = statFor(q, step)
			cur = &stepOp{
				ctx:     ctx,
				step:    step,
				in:      cur,
				layout:  layout,
				ss:      &st.Steps[i],
				fetched: &st.Fetched,
				keys:    stepKeysSink(i),
			}
		}
		out = iter.Counted(execTail(ctx, exec.Stream(q, cur, layout), start), &st.RowsOut)
	}
	out = iter.WithContext(ctx, out)
	return iter.OnClose(out, func() {
		st.Duration = time.Since(start)
		emitStepSpans(ctx, start, st)
	}), st
}

// wBucket is one memoised index bucket: distinct partial tuples with
// their witness counts.
type wBucket struct {
	rows   []value.Row
	counts []int64
}

// stepOp executes one fetch step as a streaming operator: for every
// weighted input row it enumerates the step's key candidates, probes the
// constraint index (each distinct key exactly once, memoised — the
// dedup-key semantics of the deduced bound), and emits the extended rows
// that pass the step's filters.
type stepOp struct {
	ctx     context.Context
	step    *PlanStep
	in      iter.Iterator
	layout  *analyze.Layout
	ss      *StepStat
	fetched *int64
	keys    *[]string // when non-nil, collects each distinct probed key

	memo map[string]wBucket
	key  []value.Value
	kb   []byte
	buf  iter.Batch
	pos  int
	done bool
}

func (s *stepOp) Open() error {
	s.memo = make(map[string]wBucket)
	s.key = make([]value.Value, len(s.step.Keys))
	return s.in.Open()
}

func (s *stepOp) Close() error { return s.in.Close() }

func (s *stepOp) Next(b *iter.Batch) (bool, error) {
	// Record self time only: the pull into upstream steps is timed by
	// those steps, so the per-step breakdown stays disjoint (Fig. 3).
	t0 := time.Now()
	var upstream time.Duration
	defer func() { s.ss.Duration += time.Since(t0) - upstream }()
	if err := s.ctx.Err(); err != nil {
		return false, err
	}
	b.Reset()
	for b.Len() < iter.BatchSize && !s.done {
		if s.pos >= s.buf.Len() {
			u0 := time.Now()
			ok, err := s.in.Next(&s.buf)
			upstream += time.Since(u0)
			if err != nil {
				return false, err
			}
			if !ok {
				s.done = true
				break
			}
			s.pos = 0
			continue
		}
		row, w := s.buf.Rows[s.pos], s.buf.Weight(s.pos)
		s.pos++
		if err := s.expand(b, row, w); err != nil {
			return false, err
		}
	}
	s.ss.RowsOut += int64(b.Len())
	return b.Len() > 0, nil
}

// expand probes the index for every complete key of row — enumerated by
// stepKeys (parallel.go), the single enumeration implementation shared
// with the parallel executor, so serial and parallel plans can never
// probe different key sets — fetching each distinct key exactly once
// through the memo, and appends the extended rows that pass the step's
// filters to b.
// colStepOp is the columnar fetch step: it pulls batches of intermediate
// rows as column vectors, probes the constraint index exactly like stepOp
// (same stepKeys enumeration, same memo), and appends extended rows into
// the output batch's columns through one reused scratch row — no
// per-output row allocation. Emission order, filters and weights match
// stepOp exactly.
type colStepOp struct {
	ctx     context.Context
	step    *PlanStep
	in      iter.ColIterator
	layout  *analyze.Layout
	ss      *StepStat
	fetched *int64
	keys    *[]string // when non-nil, collects each distinct probed key
	batch   int

	memo    map[string]wBucket
	key     []value.Value
	kb      []byte
	buf     iter.ColBatch
	pos     int       // next live-row index in buf
	scratch value.Row // current input row, read from buf; never mutated
	outRow  value.Row // output row under construction, copied per emission
	done    bool
}

func (s *colStepOp) Open() error {
	s.memo = make(map[string]wBucket)
	s.key = make([]value.Value, len(s.step.Keys))
	s.scratch = make(value.Row, s.layout.Len())
	s.outRow = make(value.Row, s.layout.Len())
	return s.in.Open()
}

func (s *colStepOp) Close() error { return s.in.Close() }

func (s *colStepOp) NextCols(b *iter.ColBatch) (bool, error) {
	t0 := time.Now()
	var upstream time.Duration
	defer func() { s.ss.Duration += time.Since(t0) - upstream }()
	if err := s.ctx.Err(); err != nil {
		return false, err
	}
	b.Reset(s.layout.Len())
	for b.Rows() < s.batch && !s.done {
		if s.pos >= s.buf.Len() {
			u0 := time.Now()
			ok, err := s.in.NextCols(&s.buf)
			upstream += time.Since(u0)
			if err != nil {
				return false, err
			}
			if !ok {
				s.done = true
				break
			}
			s.pos = 0
			continue
		}
		p := s.buf.Index(s.pos)
		s.buf.ReadRow(p, s.scratch)
		w := s.buf.Weight(p)
		s.pos++
		if err := s.expand(b, s.scratch, w); err != nil {
			return false, err
		}
	}
	s.ss.RowsOut += int64(b.Rows())
	return b.Rows() > 0, nil
}

// expand is stepOp.expand over a columnar output batch: each extended row
// builds in a reused scratch (the input row stays pristine — stepKeys
// reads slot-sourced key components from it between emissions) and
// AppendRow copies the values into the columns, so an output costs a
// slot-copy instead of a row allocation.
func (s *colStepOp) expand(b *iter.ColBatch, row value.Row, w int64) error {
	return stepKeys(s.step, row, s.key, &s.kb, 0, func(enc []byte) error {
		bucket, seen := s.memo[string(enc)]
		if !seen {
			ks := string(enc)
			rws, cnts, n := s.step.Index.FetchWeightedEncoded(ks)
			bucket = wBucket{rows: rws, counts: cnts}
			s.memo[ks] = bucket
			s.ss.DistinctKey++
			s.ss.Fetched += int64(n)
			*s.fetched += int64(n)
			if s.keys != nil {
				*s.keys = append(*s.keys, ks)
			}
		}
		for yi, y := range bucket.rows {
			out := s.outRow
			copy(out, row)
			for i, slot := range s.step.XSlots {
				out[slot] = s.key[i]
			}
			for i, yi2 := range s.step.YUsed {
				out[s.step.YSlots[i]] = y[yi2]
			}
			keep := true
			for _, f := range s.step.Filters {
				ok, err := analyze.EvalBool(f.Expr, out, s.layout)
				if err != nil {
					return fmt.Errorf("core: evaluating %s: %w", f, err)
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				b.AppendRow(out, w*bucket.counts[yi])
			}
		}
		return nil
	})
}

func (s *stepOp) expand(b *iter.Batch, row value.Row, w int64) error {
	return stepKeys(s.step, row, s.key, &s.kb, 0, func(enc []byte) error {
		bucket, seen := s.memo[string(enc)]
		if !seen {
			ks := string(enc)
			rws, cnts, n := s.step.Index.FetchWeightedEncoded(ks)
			bucket = wBucket{rows: rws, counts: cnts}
			s.memo[ks] = bucket
			s.ss.DistinctKey++
			s.ss.Fetched += int64(n)
			*s.fetched += int64(n)
			if s.keys != nil {
				*s.keys = append(*s.keys, ks)
			}
		}
		for yi, y := range bucket.rows {
			out := row.Clone()
			for i, slot := range s.step.XSlots {
				out[slot] = s.key[i]
			}
			for i, yi2 := range s.step.YUsed {
				out[s.step.YSlots[i]] = y[yi2]
			}
			keep := true
			for _, f := range s.step.Filters {
				ok, err := analyze.EvalBool(f.Expr, out, s.layout)
				if err != nil {
					return fmt.Errorf("core: evaluating %s: %w", f, err)
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				b.Append(out, w*bucket.counts[yi])
			}
		}
		return nil
	})
}
