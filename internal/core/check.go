// Package core implements the primary contribution of the paper: the
// BE Checker (deciding whether an SQL query is covered by an access
// schema, with an a-priori bound on the data accessed), the BE Plan
// Generator (bounded query plans whose only data access is the fetch
// operator), the BE Plan Executor, and the BE Plan Optimizer's partially
// bounded evaluation for non-covered queries.
//
// # Coverage discipline
//
// The checker implements a sound instantiation of the covered-query
// effective syntax [Cao & Fan, SIGMOD 2016]: equivalence classes of
// (atom, attribute) nodes are built from equality conjuncts; classes
// holding constants are covered; an atom becomes fetchable via a
// constraint ψ = R(X → Y, N) once all of ψ's X-classes are covered and
// X ∪ Y contains every attribute of the atom the query uses; fetching an
// atom covers the classes of its materialised attributes. The query is
// covered when every atom is fetchable. Requiring a single constraint per
// atom to span all used attributes guarantees each fetched partial tuple
// has a single witness in D, so bounded plans return exact answers.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/value"
)

// Unbounded is the saturated bound value: "more than any budget".
const Unbounded = math.MaxUint64

// FetchStep is one application of the fetch operator
// fetch(X ∈ T, Y, R) controlled by an access constraint (paper §3).
type FetchStep struct {
	// Atom is the index of the query atom this step materialises.
	Atom int
	// Constraint controls the step; Index is its hash index.
	Constraint *access.Constraint
	Index      *access.Index

	// XAttrs / YAttrs are attribute positions of the constraint's X / Y
	// lists in the atom's relation schema.
	XAttrs []int
	YAttrs []int
	// XClasses are the equivalence-class ids of the X attributes, parallel
	// to XAttrs.
	XClasses []int

	// KeyBound bounds the number of distinct keys the step can probe;
	// OutBound = KeyBound · N bounds the partial tuples it can fetch.
	KeyBound uint64
	OutBound uint64

	// EstKeys / EstFetched / EstRows are the cost-based optimizer's
	// estimates of the distinct keys the step will probe, the partial
	// tuples it will fetch and the intermediate rows it will emit, from
	// the statistics catalog (internal/stats). Zero when no estimation
	// ran (optimizer off). Estimates never affect results — only step
	// order — and are reported next to the actual counters by
	// EXPLAIN ANALYZE.
	EstKeys, EstFetched, EstRows float64
}

// String renders the step in the paper's fetch notation.
func (s FetchStep) String() string {
	return fmt.Sprintf("fetch(X ∈ T, {%s}, %s) via %s  [keys ≤ %s, tuples ≤ %s]",
		strings.Join(s.Constraint.Y, ","), s.Constraint.Rel, s.Constraint,
		boundStr(s.KeyBound), boundStr(s.OutBound))
}

func boundStr(b uint64) string {
	if b == Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%d", b)
}

// CheckResult is the BE Checker's verdict on a query.
type CheckResult struct {
	// Covered reports whether the query is covered by the access schema
	// (and hence boundedly evaluable with an exact bounded plan).
	Covered bool
	// Reason explains the first blocking atom when not covered.
	Reason string
	// EmptyGuaranteed is set when constant conjuncts contradict each
	// other; the answer is empty without touching any data.
	EmptyGuaranteed bool

	// Steps is the fetch derivation in execution order (covered atoms
	// only; for a covered query, one step per atom).
	Steps []FetchStep
	// TotalBound is M: the deduced bound on tuples fetched (saturating).
	TotalBound uint64
	// OutputBound bounds the number of joined intermediate rows.
	OutputBound uint64
	// ConstraintsUsed is the number of distinct access constraints the
	// plan employs (reported by the paper's performance analyser).
	ConstraintsUsed int

	classes *classSet
}

// classSet is a union-find over the (atom, attribute) nodes used by the
// query, annotated with constant candidate sets and coverage state.
type classSet struct {
	parent map[analyze.ColID]analyze.ColID
	info   map[analyze.ColID]*classInfo // keyed by root
}

type classInfo struct {
	// consts is the intersection of constant candidate sets attached to
	// the class (nil = none attached; empty non-nil = contradiction).
	consts    []value.Value
	hasConsts bool
	covered   bool
	bound     uint64
}

func newClassSet() *classSet {
	return &classSet{
		parent: make(map[analyze.ColID]analyze.ColID),
		info:   make(map[analyze.ColID]*classInfo),
	}
}

func (cs *classSet) find(id analyze.ColID) analyze.ColID {
	p, ok := cs.parent[id]
	if !ok {
		cs.parent[id] = id
		cs.info[id] = &classInfo{}
		return id
	}
	if p == id {
		return id
	}
	root := cs.find(p)
	cs.parent[id] = root
	return root
}

func (cs *classSet) union(a, b analyze.ColID) {
	ra, rb := cs.find(a), cs.find(b)
	if ra == rb {
		return
	}
	ia, ib := cs.info[ra], cs.info[rb]
	cs.parent[rb] = ra
	// Merge constant candidate sets by intersection.
	switch {
	case !ia.hasConsts && ib.hasConsts:
		ia.consts, ia.hasConsts = ib.consts, true
	case ia.hasConsts && ib.hasConsts:
		ia.consts = intersectValues(ia.consts, ib.consts)
	}
	if ib.covered {
		if !ia.covered || ib.bound < ia.bound {
			ia.covered, ia.bound = true, ib.bound
		}
	}
	delete(cs.info, rb)
}

func (cs *classSet) get(id analyze.ColID) *classInfo { return cs.info[cs.find(id)] }

func intersectValues(a, b []value.Value) []value.Value {
	var out []value.Value
	for _, x := range dedupeValues(a) {
		for _, y := range b {
			if value.Equal(x, y) {
				out = append(out, x)
				break
			}
		}
	}
	if out == nil {
		out = []value.Value{} // non-nil empty marks contradiction
	}
	return out
}

// dedupeValues removes duplicate candidates (e.g. IN (4, 4)) so that key
// enumeration probes each constant once.
func dedupeValues(vals []value.Value) []value.Value {
	seen := make(map[string]bool, len(vals))
	out := vals[:0:0]
	for _, v := range vals {
		k := value.Key([]value.Value{v})
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, v)
	}
	return out
}

// classOrdinal assigns stable small integers to class roots for display
// and for FetchStep.XClasses.
type classOrdinal struct {
	cs   *classSet
	ids  map[analyze.ColID]int
	next int
}

func (co *classOrdinal) of(id analyze.ColID) int {
	root := co.cs.find(id)
	if n, ok := co.ids[root]; ok {
		return n
	}
	co.ids[root] = co.next
	co.next++
	return co.ids[root]
}

// Provider supplies constraints to the checker. *access.Schema is the
// canonical implementation; the discovery module scores hypothetical
// constraint sets by providing constraints without built indices (a nil
// index with ok = true).
type Provider interface {
	// ForRelation returns the constraints on a relation.
	ForRelation(rel string) []*access.Constraint
	// Index returns the index for a constraint; a nil index with ok true
	// means "hypothetical: assume a valid index exists".
	Index(c *access.Constraint) (*access.Index, bool)
}

// Check runs the BE Checker on a resolved query under the access schema.
// It never touches the data: the verdict and the bound M are deduced from
// the query and the constraints alone (paper feature (1), "quantified
// data access").
func Check(q *analyze.Query, as Provider) *CheckResult {
	res := &CheckResult{}
	cs, contradiction := seedClasses(q)
	res.classes = cs
	ord := &classOrdinal{cs: cs, ids: make(map[analyze.ColID]int)}
	if contradiction {
		res.EmptyGuaranteed = true
		res.Covered = true
		res.Reason = "contradictory constant predicates; empty answer guaranteed"
		return res
	}

	// Fixpoint: repeatedly pick the cheapest fetchable (atom, constraint)
	// pair, mirroring the plan-generation algorithm of [SIGMOD'16]
	// extended to SQL.
	fetched := make([]bool, len(q.Atoms))
	remaining := len(q.Atoms)
	var total, outRows uint64
	outRows = 1
	usedConstraints := make(map[string]bool)

	for remaining > 0 {
		best := -1
		var bestStep FetchStep
		for ai := range q.Atoms {
			if fetched[ai] {
				continue
			}
			step, ok := bestConstraintFor(q, ai, as, cs)
			if !ok {
				continue
			}
			if best < 0 || step.OutBound < bestStep.OutBound {
				best, bestStep = ai, step
			}
		}
		if best < 0 {
			break
		}
		fetched[best] = true
		remaining--
		for i, x := range bestStep.XAttrs {
			bestStep.XClasses[i] = ord.of(analyze.ColID{Atom: best, Attr: x})
		}
		res.Steps = append(res.Steps, bestStep)
		usedConstraints[bestStep.Constraint.ID()] = true
		total = addSat(total, bestStep.OutBound)
		outRows = mulSat(outRows, maxU64(bestStep.OutBound, 1))

		// Cover the classes of the materialised attributes: the number of
		// distinct values of any fetched attribute is at most the step's
		// output bound.
		for _, attr := range q.UsedAttrs(best) {
			info := cs.get(analyze.ColID{Atom: best, Attr: attr})
			newBound := bestStep.OutBound
			if info.covered {
				newBound = minU64(info.bound, newBound)
			}
			info.covered, info.bound = true, newBound
		}
	}

	res.TotalBound = total
	res.OutputBound = outRows
	res.ConstraintsUsed = len(usedConstraints)
	if remaining == 0 {
		res.Covered = true
		return res
	}
	// Report the first blocking atom.
	for ai := range q.Atoms {
		if !fetched[ai] {
			res.Reason = blockReason(q, ai, as, cs)
			break
		}
	}
	return res
}

// seedClasses builds the query's equivalence classes from equality and
// IN conjuncts, ensures every used attribute has a class, and marks
// const-covered classes. contradiction reports an unsatisfiable constant
// candidate set (empty answer guaranteed).
func seedClasses(q *analyze.Query) (cs *classSet, contradiction bool) {
	cs = newClassSet()
	for _, c := range q.Conjuncts {
		switch c.Kind {
		case analyze.EqAttrAttr:
			cs.union(c.A, c.B)
		case analyze.EqAttrConst:
			info := cs.get(c.A)
			if info.hasConsts {
				info.consts = intersectValues(info.consts, []value.Value{c.Val})
			} else {
				info.consts, info.hasConsts = []value.Value{c.Val}, true
			}
		case analyze.InConsts:
			info := cs.get(c.A)
			if info.hasConsts {
				info.consts = intersectValues(info.consts, c.Vals)
			} else {
				info.consts, info.hasConsts = dedupeValues(c.Vals), true
			}
		}
	}
	for ai := range q.Atoms {
		for _, attr := range q.UsedAttrs(ai) {
			cs.find(analyze.ColID{Atom: ai, Attr: attr})
		}
	}
	for _, info := range cs.info {
		if info.hasConsts {
			if len(info.consts) == 0 {
				return cs, true
			}
			info.covered = true
			info.bound = uint64(len(info.consts))
		}
	}
	return cs, false
}

// stepsForAtom returns every applicable constraint for atom ai as a
// fetch step: X-classes covered and used(ai) ⊆ X ∪ Y, skipping indices
// invalidated by maintenance, in provider order.
func stepsForAtom(q *analyze.Query, ai int, as Provider, cs *classSet) []FetchStep {
	atom := q.Atoms[ai]
	used := q.UsedAttrs(ai)
	usedNames := make([]string, len(used))
	for i, a := range used {
		usedNames[i] = atom.Rel.Attrs[a].Name
	}
	var out []FetchStep
	for _, c := range as.ForRelation(atom.Rel.Name) {
		idx, ok := as.Index(c)
		if !ok || (idx != nil && idx.Invalid()) {
			continue
		}
		if !c.Covers(usedNames) {
			continue
		}
		xAttrs, err := atom.Rel.AttrIndices(c.X)
		if err != nil {
			continue
		}
		// All X classes covered? Compute the key bound over distinct
		// classes (two X attributes in one class contribute once).
		keyBound := uint64(1)
		applicable := true
		seenClass := make(map[analyze.ColID]bool)
		for _, xa := range xAttrs {
			id := analyze.ColID{Atom: ai, Attr: xa}
			root := cs.find(id)
			info := cs.info[root]
			if !info.covered {
				applicable = false
				break
			}
			if seenClass[root] {
				continue
			}
			seenClass[root] = true
			keyBound = mulSat(keyBound, info.bound)
		}
		if !applicable {
			continue
		}
		yAttrs, err := atom.Rel.AttrIndices(c.Y)
		if err != nil {
			continue
		}
		out = append(out, FetchStep{
			Atom:       ai,
			Constraint: c,
			Index:      idx,
			XAttrs:     xAttrs,
			YAttrs:     yAttrs,
			XClasses:   make([]int, len(xAttrs)),
			KeyBound:   keyBound,
			OutBound:   mulSat(keyBound, uint64(c.N)),
		})
	}
	return out
}

// bestConstraintFor returns the cheapest applicable constraint for atom
// ai, if any (first strict minimum in provider order, as before).
func bestConstraintFor(q *analyze.Query, ai int, as Provider, cs *classSet) (FetchStep, bool) {
	var best FetchStep
	found := false
	for _, s := range stepsForAtom(q, ai, as, cs) {
		if !found || s.OutBound < best.OutBound {
			best, found = s, true
		}
	}
	return best, found
}

// blockReason explains why atom ai is not fetchable.
func blockReason(q *analyze.Query, ai int, as Provider, cs *classSet) string {
	atom := q.Atoms[ai]
	used := q.UsedAttrs(ai)
	usedNames := make([]string, len(used))
	for i, a := range used {
		usedNames[i] = atom.Rel.Attrs[a].Name
	}
	cons := as.ForRelation(atom.Rel.Name)
	if len(cons) == 0 {
		return fmt.Sprintf("atom %s: no access constraints on relation %s", atom.Name, atom.Rel.Name)
	}
	var reasons []string
	for _, c := range cons {
		if !c.Covers(usedNames) {
			var missing []string
			for _, n := range usedNames {
				if !c.HasX(n) && !c.HasY(n) {
					missing = append(missing, n)
				}
			}
			reasons = append(reasons, fmt.Sprintf("%v does not cover {%s}", c, strings.Join(missing, ",")))
			continue
		}
		xAttrs, _ := atom.Rel.AttrIndices(c.X)
		var uncovered []string
		for i, xa := range xAttrs {
			if !cs.get(analyze.ColID{Atom: ai, Attr: xa}).covered {
				uncovered = append(uncovered, c.X[i])
			}
		}
		reasons = append(reasons, fmt.Sprintf("%v: key attributes {%s} not covered", c, strings.Join(uncovered, ",")))
	}
	sort.Strings(reasons)
	return fmt.Sprintf("atom %s (relation %s, uses {%s}): %s",
		atom.Name, atom.Rel.Name, strings.Join(usedNames, ","), strings.Join(reasons, "; "))
}

// FetchedAtoms returns the atoms materialised by the derivation (all
// atoms when Covered).
func (r *CheckResult) FetchedAtoms() []int {
	out := make([]int, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Atom
	}
	return out
}

// WithinBudget reports whether the deduced bound fits a user budget on
// the number of tuples accessed — the demo's "enter a budget and find out
// whether Q can be answered within it, without executing Q" (§4(1)(a)).
func (r *CheckResult) WithinBudget(budget uint64) bool {
	if r.EmptyGuaranteed {
		return true
	}
	return r.Covered && r.TotalBound <= budget
}

// Describe renders a human-readable summary of the check.
func (r *CheckResult) Describe() string {
	var b strings.Builder
	switch {
	case r.EmptyGuaranteed:
		b.WriteString("covered: answer is empty (contradictory constants); no data access needed\n")
	case r.Covered:
		fmt.Fprintf(&b, "covered: boundedly evaluable; fetches ≤ %s tuples via %d constraints\n",
			boundStr(r.TotalBound), r.ConstraintsUsed)
	default:
		fmt.Fprintf(&b, "not covered: %s\n", r.Reason)
	}
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "  step %d: %s\n", i+1, s)
	}
	return b.String()
}

func addSat(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return Unbounded
	}
	return a + b
}

func mulSat(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return Unbounded
	}
	return a * b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
