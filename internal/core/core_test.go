package core

import (
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// env is a small three-relation test world mirroring the paper's
// Example 1/2 schema.
type env struct {
	db    *schema.Database
	store *storage.Store
	as    *access.Schema
}

func newEnv(t *testing.T) *env {
	t.Helper()
	db, err := schema.NewDatabase(
		schema.MustRelation("call",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "recnum", Kind: value.Int},
			schema.Attribute{Name: "date", Kind: value.Int},
			schema.Attribute{Name: "region", Kind: value.String},
		),
		schema.MustRelation("package",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "pid", Kind: value.String},
			schema.Attribute{Name: "start", Kind: value.Int},
			schema.Attribute{Name: "end", Kind: value.Int},
			schema.Attribute{Name: "year", Kind: value.Int},
		),
		schema.MustRelation("business",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "type", Kind: value.String},
			schema.Attribute{Name: "region", Kind: value.String},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore(db)
	return &env{db: db, store: store, as: access.NewSchema(store)}
}

func (e *env) insert(t *testing.T, table string, vals ...value.Value) {
	t.Helper()
	if err := e.store.MustTable(table).Insert(value.Row(vals)); err != nil {
		t.Fatal(err)
	}
}

func (e *env) constraint(t *testing.T, spec string) {
	t.Helper()
	c, err := access.ParseConstraint(e.db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.as.Register(c, false); err != nil {
		t.Fatal(err)
	}
}

func (e *env) analyze(t *testing.T, sql string) *analyze.Query {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, e.db)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func vi(i int64) value.Value  { return value.NewInt(i) }
func vs(s string) value.Value { return value.NewString(s) }

// seedExample2 loads the Example 2 mini-dataset and A0.
func seedExample2(t *testing.T) *env {
	e := newEnv(t)
	e.insert(t, "business", vi(100), vs("bank"), vs("r0"))
	e.insert(t, "business", vi(101), vs("bank"), vs("r0"))
	e.insert(t, "business", vi(102), vs("hospital"), vs("r0"))
	e.insert(t, "package", vi(100), vs("c0"), vi(1), vi(6), vi(2016))
	e.insert(t, "package", vi(101), vs("c9"), vi(1), vi(6), vi(2016))
	e.insert(t, "call", vi(100), vi(777), vi(3), vs("east"))
	e.insert(t, "call", vi(100), vi(778), vi(3), vs("west"))
	e.insert(t, "call", vi(100), vi(779), vi(4), vs("south"))
	e.constraint(t, "call({pnum, date} -> {recnum, region}, 500)")
	e.constraint(t, "package({pnum, year} -> {pid, start, end}, 12)")
	e.constraint(t, "business({type, region} -> pnum, 2000)")
	return e
}

const ex2 = `
SELECT call.region FROM call, package, business
WHERE business.type = 'bank' AND business.region = 'r0'
  AND business.pnum = call.pnum AND call.date = 3
  AND call.pnum = package.pnum AND package.year = 2016
  AND package.start <= 3 AND package.end >= 3 AND package.pid = 'c0'`

func TestCheckExample2(t *testing.T) {
	e := seedExample2(t)
	q := e.analyze(t, ex2)
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	if len(chk.Steps) != 3 {
		t.Fatalf("steps = %d", len(chk.Steps))
	}
	// Derivation order: business (bound 2000), then package (24000),
	// then call (1e6); order is by ascending bound.
	if chk.Steps[0].Constraint.Rel != "business" ||
		chk.Steps[1].Constraint.Rel != "package" ||
		chk.Steps[2].Constraint.Rel != "call" {
		t.Errorf("derivation order: %v", chk.Steps)
	}
	if chk.Steps[0].OutBound != 2000 || chk.Steps[1].OutBound != 24000 || chk.Steps[2].OutBound != 1000000 {
		t.Errorf("bounds = %d, %d, %d", chk.Steps[0].OutBound, chk.Steps[1].OutBound, chk.Steps[2].OutBound)
	}
	if chk.TotalBound != 1026000 {
		t.Errorf("TotalBound = %d", chk.TotalBound)
	}
	if chk.ConstraintsUsed != 3 {
		t.Errorf("ConstraintsUsed = %d", chk.ConstraintsUsed)
	}
	if !chk.WithinBudget(1026000) || chk.WithinBudget(1025999) {
		t.Error("WithinBudget boundary wrong")
	}
}

func TestCheckNotCoveredMissingConstraint(t *testing.T) {
	e := seedExample2(t)
	// recnum as key: no constraint covers it.
	q := e.analyze(t, "SELECT region FROM call WHERE recnum = 7")
	chk := Check(q, e.as)
	if chk.Covered {
		t.Fatal("should not be covered")
	}
	if !strings.Contains(chk.Reason, "call") {
		t.Errorf("reason = %q", chk.Reason)
	}
}

func TestCheckNotCoveredUncoveredAttribute(t *testing.T) {
	e := newEnv(t)
	e.constraint(t, "call({pnum} -> {recnum}, 10)")
	// region is used but not in X ∪ Y.
	q := e.analyze(t, "SELECT region FROM call WHERE pnum = 5")
	chk := Check(q, e.as)
	if chk.Covered {
		t.Fatal("constraint does not cover region; query must not be covered")
	}
	if !strings.Contains(chk.Reason, "region") {
		t.Errorf("reason should name the missing attribute: %q", chk.Reason)
	}
}

func TestCheckCoverageThroughJoinChain(t *testing.T) {
	e := newEnv(t)
	e.constraint(t, "business({type, region} -> pnum, 100)")
	e.constraint(t, "call({pnum} -> {recnum, region}, 50)")
	// call.pnum is covered transitively through business fetch.
	q := e.analyze(t, `SELECT call.recnum FROM call, business
		WHERE business.type = 'bank' AND business.region = 'x' AND call.pnum = business.pnum`)
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	// business out ≤ 100; call keys ≤ 100; call out ≤ 5000.
	if chk.TotalBound != 100+5000 {
		t.Errorf("TotalBound = %d", chk.TotalBound)
	}
}

func TestCheckInListSeedsAndMultipliesBound(t *testing.T) {
	e := newEnv(t)
	e.constraint(t, "call({pnum, date} -> {recnum}, 10)")
	q := e.analyze(t, "SELECT recnum FROM call WHERE pnum IN (1, 2, 3) AND date = 5")
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	if chk.TotalBound != 30 {
		t.Errorf("TotalBound = %d, want 3 keys * 10", chk.TotalBound)
	}
}

func TestCheckContradictionShortCircuits(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT recnum FROM call WHERE pnum = 1 AND pnum = 2")
	chk := Check(q, e.as) // no constraints at all
	if !chk.EmptyGuaranteed || !chk.Covered {
		t.Fatalf("contradiction should guarantee empty: %+v", chk)
	}
	plan, err := NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	rows, st, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 || st.Fetched != 0 {
		t.Errorf("empty-guaranteed plan touched data: rows=%d fetched=%d", len(rows), st.Fetched)
	}
}

func TestCheckSameClassKeyAttributesCountOnce(t *testing.T) {
	e := newEnv(t)
	e.constraint(t, "call({pnum, recnum} -> {region}, 10)")
	// pnum = recnum puts both key attributes in one class; with pnum = 7
	// the key bound is 1, not 1×1... it stays 1 because both attrs share
	// the class candidate set.
	q := e.analyze(t, "SELECT region FROM call WHERE pnum = recnum AND pnum = 7")
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	if chk.TotalBound != 10 {
		t.Errorf("TotalBound = %d, want 10 (single key)", chk.TotalBound)
	}
}

func TestCheckPicksCheapestConstraint(t *testing.T) {
	e := newEnv(t)
	e.constraint(t, "call({pnum} -> {recnum, region, date}, 1000)")
	e.constraint(t, "call({pnum, date} -> {recnum, region}, 5)")
	q := e.analyze(t, "SELECT recnum FROM call WHERE pnum = 1 AND date = 2")
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	if chk.Steps[0].Constraint.N != 5 {
		t.Errorf("should pick the tighter constraint, got %v", chk.Steps[0].Constraint)
	}
}

func TestCheckInvalidIndexSkipped(t *testing.T) {
	e := newEnv(t)
	e.constraint(t, "call({pnum} -> {recnum}, 1)")
	// Drive the index invalid under the strict policy.
	e.insert(t, "call", vi(1), vi(10), vi(1), vs("r"))
	e.insert(t, "call", vi(1), vi(11), vi(1), vs("r"))
	q := e.analyze(t, "SELECT recnum FROM call WHERE pnum = 1")
	chk := Check(q, e.as)
	if chk.Covered {
		t.Fatal("invalidated index must not be used for bounded plans")
	}
}

func TestRunExample2(t *testing.T) {
	e := seedExample2(t)
	q := e.analyze(t, ex2)
	chk := Check(q, e.as)
	plan, err := NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	rows, st, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	regions := map[string]bool{}
	for _, r := range rows {
		regions[r[0].S] = true
	}
	if !regions["east"] || !regions["west"] {
		t.Errorf("regions = %v", regions)
	}
	if st.Fetched == 0 || st.Fetched > 10 {
		t.Errorf("Fetched = %d, want small positive", st.Fetched)
	}
	if len(st.Steps) != 3 {
		t.Errorf("step stats = %d", len(st.Steps))
	}
}

func TestRunDedupsKeys(t *testing.T) {
	e := newEnv(t)
	// Many businesses share pnum -> the call fetch must probe each
	// distinct pnum once.
	for i := 0; i < 5; i++ {
		e.insert(t, "business", vi(100), vs("bank"), vs("r"+string(rune('0'+i))))
	}
	e.insert(t, "call", vi(100), vi(1), vi(1), vs("east"))
	e.constraint(t, "business({type} -> {pnum, region}, 100)")
	e.constraint(t, "call({pnum} -> {recnum, region}, 100)")
	q := e.analyze(t, `SELECT call.recnum FROM call, business
		WHERE business.type = 'bank' AND call.pnum = business.pnum`)
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	plan, err := NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	rows, st, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Errorf("rows = %d (join multiplicity must be preserved)", len(rows))
	}
	callStep := st.Steps[1]
	if callStep.DistinctKey != 1 {
		t.Errorf("call step probed %d keys, want 1 (dedup)", callStep.DistinctKey)
	}
}

func TestRunAggregatesOnBoundedCore(t *testing.T) {
	e := seedExample2(t)
	q := e.analyze(t, `SELECT region, COUNT(*) AS n FROM call
		WHERE pnum = 100 AND date = 3 GROUP BY region ORDER BY region`)
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	plan, err := NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].S != "east" || rows[0][1].I != 1 {
		t.Errorf("agg rows = %v", rows)
	}
}

func TestPlanDescribeMentionsEverything(t *testing.T) {
	e := seedExample2(t)
	q := e.analyze(t, ex2)
	plan, err := NewPlan(q, Check(q, e.as))
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	for _, want := range []string{"fetch business", "fetch package", "fetch call", "project"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestNewPlanRejectsUncovered(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT recnum FROM call WHERE pnum = 1")
	chk := Check(q, e.as)
	if _, err := NewPlan(q, chk); err == nil {
		t.Error("NewPlan must reject uncovered queries")
	}
}

func TestEmptyXConstraint(t *testing.T) {
	e := newEnv(t)
	// Whole-relation constraint: at most 3 distinct regions overall.
	e.insert(t, "call", vi(1), vi(2), vi(3), vs("east"))
	e.insert(t, "call", vi(4), vi(5), vi(6), vs("west"))
	e.insert(t, "call", vi(7), vi(8), vi(9), vs("east"))
	c, err := access.NewConstraint(e.db, "call", nil, []string{"region"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.as.Register(c, false); err != nil {
		t.Fatal(err)
	}
	q := e.analyze(t, "SELECT DISTINCT region FROM call")
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	if chk.TotalBound != 3 {
		t.Errorf("TotalBound = %d", chk.TotalBound)
	}
	plan, err := NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("distinct regions = %v", rows)
	}
}

// TestSingleConstraintDiscipline pins the documented conservatism of the
// checker (DESIGN.md §3): an atom whose used attributes are only covered
// by the union of two constraints is rejected, because stitching two
// independent fetches of the same atom could fabricate partial tuples
// with no single witness in D.
func TestSingleConstraintDiscipline(t *testing.T) {
	e := newEnv(t)
	e.constraint(t, "call({pnum} -> {recnum}, 10)")
	e.constraint(t, "call({pnum} -> {region}, 10)")
	// used(call) = {pnum, recnum, region}: neither constraint spans it.
	q := e.analyze(t, "SELECT recnum, region FROM call WHERE pnum = 1")
	chk := Check(q, e.as)
	if chk.Covered {
		t.Fatal("two-constraint stitching must be rejected (exactness)")
	}
	// A single spanning constraint fixes it.
	e.constraint(t, "call({pnum} -> {recnum, region}, 10)")
	if chk := Check(q, e.as); !chk.Covered {
		t.Fatalf("spanning constraint should cover: %s", chk.Reason)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if addSat(Unbounded, 1) != Unbounded {
		t.Error("addSat overflow")
	}
	if mulSat(Unbounded, 2) != Unbounded {
		t.Error("mulSat overflow")
	}
	if mulSat(0, Unbounded) != 0 {
		t.Error("mulSat zero")
	}
	if addSat(2, 3) != 5 || mulSat(4, 5) != 20 {
		t.Error("basic arithmetic broken")
	}
}

func TestBoundSaturationInCheck(t *testing.T) {
	e := newEnv(t)
	// Chain of large constraints drives the bound to saturation rather
	// than overflowing.
	e.constraint(t, "business({type} -> {pnum}, 1000000000000000000)")
	e.constraint(t, "package({pnum} -> {pid, start, end, year}, 1000000000000000000)")
	e.constraint(t, "call({pnum} -> {recnum, region, date}, 1000000000000000000)")
	q := e.analyze(t, `SELECT call.region FROM call, package, business
		WHERE business.type = 'x' AND package.pnum = business.pnum AND call.pnum = package.pnum`)
	chk := Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	if chk.TotalBound != Unbounded {
		t.Errorf("TotalBound = %d, want saturation", chk.TotalBound)
	}
	if chk.WithinBudget(1 << 62) {
		t.Error("saturated bound cannot fit any budget")
	}
}
