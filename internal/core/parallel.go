// Parallel bounded execution: one bounded plan spread over every core.
//
// The serial executor (run.go) streams each fetch step as a pull
// operator. The parallel executor trades that streaming for intra-query
// parallelism — safe precisely because the plan is bounded: the checker
// proved a-priori that the intermediate relation never exceeds the
// deduced bound M, so materialising it between steps costs what the
// paper already budgeted for.
//
// Every fetch step runs in two chunk-parallel phases over the ordered
// intermediate rows:
//
//  1. key fan-out — workers enumerate the step's key set and fetch each
//     candidate bucket from the (shard-partitioned) constraint index,
//     memoised per worker, then the memos merge into one read-only
//     bucket table. Distinct-key and fetched-tuple statistics are
//     computed on the merged table, so they equal the serial counts.
//  2. expansion — workers extend their rows through the memoised
//     buckets, apply the step's filters and emit per-chunk outputs that
//     concatenate in chunk order.
//
// Chunks are contiguous and outputs concatenate in order, so the rows
// entering the relational tail are exactly the serial executor's rows in
// exactly its order; the tail (exec.FinishWeightedParallel) aggregates
// with per-worker partial states merged deterministically before
// finalize. Result bags are bit-identical to the serial path.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/value"
)

// RunParallel is RunParallelContext without a context.
func RunParallel(p *Plan, par int) ([]value.Row, *Stats, error) {
	return RunParallelContext(context.Background(), p, par)
}

// RunParallelContext executes a bounded plan with up to par worker
// goroutines per stage. par ≤ 1 delegates to the untouched serial path
// (RunContext); results are bit-identical either way.
func RunParallelContext(ctx context.Context, p *Plan, par int) ([]value.Row, *Stats, error) {
	if par <= 1 {
		return RunContext(ctx, p)
	}
	start := time.Now()
	st := &Stats{}
	if p.Check.EmptyGuaranteed {
		st.Duration = time.Since(start)
		return nil, st, nil
	}
	q, layout := p.Query, p.Layout

	// The intermediate relation starts as a single all-NULL row of the
	// final width (see StreamContext); fetch steps fill slots in.
	rows := []value.Row{make(value.Row, layout.Len())}
	var weights []int64 // nil = all weight 1
	st.Steps = make([]StepStat, len(p.Steps))
	if p.CollectKeys {
		st.StepKeys = make([][]string, len(p.Steps))
	}
	for i := range p.Steps {
		step := &p.Steps[i]
		st.Steps[i] = statFor(q, step)
		ss := &st.Steps[i]
		var keys *[]string
		if p.CollectKeys {
			keys = &st.StepKeys[i]
		}
		var err error
		rows, weights, err = runStepParallel(ctx, step, layout, rows, weights, par, ss, &st.Fetched, keys)
		if err != nil {
			st.Duration = time.Since(start)
			return nil, st, err
		}
		if len(rows) == 0 {
			break
		}
	}
	tail0 := time.Now()
	out, err := exec.FinishWeightedParallel(ctx, q, rows, weights, layout, par)
	tailDur := time.Since(tail0)
	st.RowsOut = int64(len(out))
	st.Duration = time.Since(start)
	emitStepSpans(ctx, start, st)
	if tr, parent := obs.FromContext(ctx); tr != nil {
		tr.AddSpan(parent, "exec.tail", tail0, tailDur,
			obs.Attr{Key: "rows", Val: st.RowsOut},
			obs.Attr{Key: "parallel", Val: par},
		)
	}
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// stepKeys enumerates the complete fetch keys of step for row — the
// cross product of constant candidates over slot reads, in the same
// nested order as the serial executor — and calls fn with each encoded
// key. The encoding buffer is reused; fn must copy if it retains.
func stepKeys(step *PlanStep, row value.Row, key []value.Value, kb *[]byte, comp int, fn func(enc []byte) error) error {
	if comp < len(step.Keys) {
		src := step.Keys[comp]
		if src.Consts == nil {
			key[comp] = row[src.Slot]
			return stepKeys(step, row, key, kb, comp+1, fn)
		}
		for _, c := range src.Consts {
			key[comp] = c
			if err := stepKeys(step, row, key, kb, comp+1, fn); err != nil {
				return err
			}
		}
		return nil
	}
	*kb = (*kb)[:0]
	for _, kv := range key {
		*kb = value.AppendKey(*kb, kv)
	}
	return fn(*kb)
}

// runStepParallel executes one fetch step over the materialised
// weighted intermediate rows and returns the extended relation.
func runStepParallel(ctx context.Context, step *PlanStep, layout *analyze.Layout, rows []value.Row, weights []int64, par int, ss *StepStat, fetched *int64, keys *[]string) ([]value.Row, []int64, error) {
	t0 := time.Now()
	defer func() { ss.Duration += time.Since(t0) }()
	chunks := iter.Chunks(len(rows), par)

	// Phase 1: fan the step's key set across the workers. Each worker
	// memoises the buckets it fetched; the per-worker memos then merge
	// into one read-only table (a key two workers both probed merges to
	// the same bucket — the index is immutable under the catalog lock).
	memos := make([]map[string]wBucket, len(chunks))
	err := iter.ParallelChunks(ctx, chunks, par, func(ci, lo, hi int) error {
		memo := make(map[string]wBucket)
		key := make([]value.Value, len(step.Keys))
		var kb []byte
		for i := lo; i < hi; i++ {
			err := stepKeys(step, rows[i], key, &kb, 0, func(enc []byte) error {
				if _, seen := memo[string(enc)]; !seen {
					ks := string(enc)
					rws, cnts, _ := step.Index.FetchWeightedEncoded(ks)
					memo[ks] = wBucket{rows: rws, counts: cnts}
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		memos[ci] = memo
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	memo := make(map[string]wBucket)
	if len(memos) > 0 {
		memo = memos[0]
		for _, m := range memos[1:] {
			for k, b := range m {
				if _, ok := memo[k]; !ok {
					memo[k] = b
				}
			}
		}
	}
	// Statistics over the merged (distinct) key set: identical to what
	// the serial executor's single memo table would have recorded.
	ss.DistinctKey += int64(len(memo))
	var stepFetched int64
	for _, b := range memo {
		stepFetched += int64(len(b.rows))
	}
	ss.Fetched += stepFetched
	*fetched += stepFetched
	if keys != nil {
		ks := make([]string, 0, len(memo))
		for k := range memo {
			ks = append(ks, k)
		}
		// The merged memo is a map; sort so the recorded set has one
		// deterministic order regardless of worker interleaving.
		sort.Strings(ks)
		*keys = append(*keys, ks...)
	}

	// Phase 2: extend every input row through the memoised buckets and
	// filter, emitting per-chunk outputs that concatenate in chunk order
	// — the serial emission order.
	type chunkOut struct {
		rows    []value.Row
		weights []int64
	}
	outs := make([]chunkOut, len(chunks))
	err = iter.ParallelChunks(ctx, chunks, par, func(ci, lo, hi int) error {
		key := make([]value.Value, len(step.Keys))
		var kb []byte
		var co chunkOut
		for i := lo; i < hi; i++ {
			row := rows[i]
			w := int64(1)
			if weights != nil {
				w = weights[i]
			}
			err := stepKeys(step, row, key, &kb, 0, func(enc []byte) error {
				bucket := memo[string(enc)]
				for yi, y := range bucket.rows {
					out := row.Clone()
					for xi, slot := range step.XSlots {
						out[slot] = key[xi]
					}
					for yj, yi2 := range step.YUsed {
						out[step.YSlots[yj]] = y[yi2]
					}
					keep := true
					for _, f := range step.Filters {
						ok, err := analyze.EvalBool(f.Expr, out, layout)
						if err != nil {
							return fmt.Errorf("core: evaluating %s: %w", f, err)
						}
						if !ok {
							keep = false
							break
						}
					}
					if keep {
						co.rows = append(co.rows, out)
						co.weights = append(co.weights, w*bucket.counts[yi])
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		outs[ci] = co
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, co := range outs {
		total += len(co.rows)
	}
	outRows := make([]value.Row, 0, total)
	outWeights := make([]int64, 0, total)
	for _, co := range outs {
		outRows = append(outRows, co.rows...)
		outWeights = append(outWeights, co.weights...)
	}
	ss.RowsOut += int64(total)
	return outRows, outWeights, nil
}
