package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/engine"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/value"
)

// PartialPlan is the BE Plan Optimizer's product for a non-covered query
// (paper §3): the maximal fetchable sub-query is evaluated boundedly and
// materialised; the conventional engine joins it with scans of the
// remaining atoms.
type PartialPlan struct {
	// Sub is the bounded plan for the covered sub-query; nil when no atom
	// is fetchable (the plan is fully conventional).
	Sub *Plan
	// Fetched lists the atoms covered by Sub; Remaining the others.
	Fetched   []int
	Remaining []int
	// Check is the (failed) coverage check the plan derives from.
	Check *CheckResult
}

// NewPartialPlan builds a partially bounded plan for q. The checker's
// fixpoint already identifies every fetchable atom even when the whole
// query is not covered; those atoms and the conjuncts fully contained in
// them form the bounded sub-query.
func NewPartialPlan(q *analyze.Query, chk *CheckResult) (*PartialPlan, error) {
	if chk.Covered {
		return nil, fmt.Errorf("core: query is covered; use NewPlan")
	}
	pp := &PartialPlan{Check: chk}
	fetched := make(map[int]bool)
	for _, s := range chk.Steps {
		fetched[s.Atom] = true
	}
	for ai := range q.Atoms {
		if fetched[ai] {
			pp.Fetched = append(pp.Fetched, ai)
		} else {
			pp.Remaining = append(pp.Remaining, ai)
		}
	}
	if len(pp.Fetched) == 0 {
		return pp, nil
	}

	// Sub-query: same atoms, conjuncts contained in the fetched set, and
	// outputs forcing materialisation of every attribute the full query
	// uses on fetched atoms (downstream joins and projections need them).
	sub := &analyze.Query{Atoms: q.Atoms}
	for _, c := range q.Conjuncts {
		if atomsSubset(c.Refs, fetched) {
			sub.Conjuncts = append(sub.Conjuncts, c)
		}
	}
	for _, ai := range pp.Fetched {
		atom := q.Atoms[ai]
		for _, attr := range q.UsedAttrs(ai) {
			name := atom.Name + "." + atom.Rel.Attrs[attr].Name
			sub.Outputs = append(sub.Outputs, analyze.OutputCol{
				Name: name,
				Expr: &analyze.ColRef{ID: analyze.ColID{Atom: ai, Attr: attr}, Name: name},
			})
		}
	}
	plan, err := newPlanFromSteps(sub, chk)
	if err != nil {
		return nil, err
	}
	pp.Sub = plan
	return pp, nil
}

// RunPartial executes the partially bounded plan: the bounded sub-plan
// first (through the constraint indices), then the conventional engine
// over the materialised source plus scans of the remaining atoms. The
// returned stats separate fetched tuples (bounded part) from scanned
// tuples (conventional part).
func RunPartial(pp *PartialPlan, q *analyze.Query, eng *engine.Engine) ([]value.Row, *Stats, *engine.Stats, error) {
	return RunPartialContext(context.Background(), pp, q, eng, 1)
}

// RunPartialContext is RunPartial under a context: cancellation halts
// both the bounded fetch loop and the conventional scans and joins at
// the next batch boundary. With par > 1 the bounded sub-plan runs on the
// parallel executor (the engine's own parallelism is fixed at its
// construction).
func RunPartialContext(ctx context.Context, pp *PartialPlan, q *analyze.Query, eng *engine.Engine, par int) ([]value.Row, *Stats, *engine.Stats, error) {
	it, st, engStats, err := StreamPartialContext(ctx, pp, q, eng, par)
	if err != nil {
		return nil, nil, nil, err
	}
	out, _, err := iter.Collect(it)
	if err != nil {
		return nil, nil, nil, err
	}
	return out, st, engStats, nil
}

// StreamPartial is RunPartial in streaming form: the bounded sub-plan is
// still executed eagerly (its size is bounded by the access schema, so
// materialising it is exactly the cost the checker promised), but the
// conventional join over the materialised source and the remaining scans
// streams. Engine statistics accrue while the iterator is consumed; the
// bounded sub-plan's stats are final on return.
func StreamPartial(pp *PartialPlan, q *analyze.Query, eng *engine.Engine) (iter.Iterator, *Stats, *engine.Stats, error) {
	return StreamPartialContext(context.Background(), pp, q, eng, 1)
}

// StreamPartialContext is StreamPartial under a context: the eager
// bounded sub-plan observes ctx while it materialises, and the streaming
// conventional part observes it per batch.
func StreamPartialContext(ctx context.Context, pp *PartialPlan, q *analyze.Query, eng *engine.Engine, par int) (iter.Iterator, *Stats, *engine.Stats, error) {
	var sources []engine.Source
	st := &Stats{}
	if pp.Sub != nil {
		rows, subStats, err := RunParallelContext(ctx, pp.Sub, par)
		if err != nil {
			return nil, nil, nil, err
		}
		*st = *subStats
		// The executor returns rows in output order, so the source's
		// column list must come from the sub-query's outputs (which are
		// all plain column references by construction).
		cols := make([]analyze.ColID, len(pp.Sub.Query.Outputs))
		for i, o := range pp.Sub.Query.Outputs {
			ref, ok := o.Expr.(*analyze.ColRef)
			if !ok {
				return nil, nil, nil, fmt.Errorf("core: internal: sub-query output %d is not a column", i)
			}
			cols[i] = ref.ID
		}
		sources = append(sources, engine.Source{
			Atoms: pp.Fetched,
			Cols:  cols,
			Rows:  rows,
			Name:  "bounded(" + atomNames(q, pp.Fetched) + ")",
		})
	}
	it, engStats, err := eng.StreamContext(ctx, q, sources)
	if err != nil {
		return nil, nil, nil, err
	}
	return it, st, engStats, nil
}

// Describe renders the partially bounded plan.
func (pp *PartialPlan) Describe(q *analyze.Query) string {
	var b strings.Builder
	b.WriteString("partially bounded plan:\n")
	if pp.Sub != nil {
		fmt.Fprintf(&b, "  bounded sub-query over {%s}:\n", atomNames(q, pp.Fetched))
		for _, line := range strings.Split(strings.TrimRight(pp.Sub.Describe(), "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	} else {
		b.WriteString("  no atom is fetchable; fully conventional plan\n")
	}
	if len(pp.Remaining) > 0 {
		fmt.Fprintf(&b, "  conventional scans over {%s}, joined by the underlying engine\n",
			atomNames(q, pp.Remaining))
	}
	return b.String()
}

func atomNames(q *analyze.Query, atoms []int) string {
	names := make([]string, len(atoms))
	for i, a := range atoms {
		names[i] = q.Atoms[a].Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func atomsSubset(refs []int, set map[int]bool) bool {
	for _, a := range refs {
		if !set[a] {
			return false
		}
	}
	return true
}

// newPlanFromSteps builds an executable plan from the checker's steps
// without requiring full coverage (used by the partial optimizer).
func newPlanFromSteps(q *analyze.Query, chk *CheckResult) (*Plan, error) {
	forced := *chk
	forced.Covered = true
	p, err := NewPlan(q, &forced)
	if err != nil {
		return nil, err
	}
	p.Check = chk
	return p, nil
}

// BoundedSubqueryBound returns the deduced fetch bound of the bounded
// part (the conventional part is unbounded by definition).
func (pp *PartialPlan) BoundedSubqueryBound() uint64 {
	var total uint64
	for _, s := range pp.Check.Steps {
		total = addSat(total, s.OutBound)
	}
	return total
}
