// Package schema describes relation and database schemas: attribute names,
// types and positions. It is purely structural; data lives in
// internal/storage and constraints in internal/access.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bounded-eval/beas/internal/value"
)

// Attribute is a named, typed column of a relation.
type Attribute struct {
	Name string
	Kind value.Kind
}

// Relation is a named relation schema: an ordered list of attributes.
type Relation struct {
	Name   string
	Attrs  []Attribute
	byName map[string]int
}

// NewRelation builds a relation schema. Attribute names are
// case-insensitive and must be unique within the relation.
func NewRelation(name string, attrs ...Attribute) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation name must not be empty")
	}
	r := &Relation{Name: name, Attrs: attrs, byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		key := strings.ToLower(a.Name)
		if key == "" {
			return nil, fmt.Errorf("schema: relation %s: attribute %d has empty name", name, i)
		}
		if _, dup := r.byName[key]; dup {
			return nil, fmt.Errorf("schema: relation %s: duplicate attribute %q", name, a.Name)
		}
		r.byName[key] = i
	}
	return r, nil
}

// MustRelation is NewRelation that panics on error; for statically known
// schemas such as the TLC benchmark definition.
func MustRelation(name string, attrs ...Attribute) *Relation {
	r, err := NewRelation(name, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named attribute
// (case-insensitive) and whether it exists.
func (r *Relation) AttrIndex(name string) (int, bool) {
	i, ok := r.byName[strings.ToLower(name)]
	return i, ok
}

// AttrIndices resolves a list of attribute names to positions.
func (r *Relation) AttrIndices(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j, ok := r.AttrIndex(n)
		if !ok {
			return nil, fmt.Errorf("schema: relation %s has no attribute %q", r.Name, n)
		}
		out[i] = j
	}
	return out, nil
}

// AttrNames returns the attribute names in declaration order.
func (r *Relation) AttrNames() []string {
	out := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		out[i] = a.Name
	}
	return out
}

// String renders the schema as R(a INT, b STRING, ...).
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('(')
	for i, a := range r.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// ValidateRow checks arity and per-attribute kinds (NULL matches any kind).
func (r *Relation) ValidateRow(row value.Row) error {
	if len(row) != len(r.Attrs) {
		return fmt.Errorf("schema: relation %s expects %d values, got %d", r.Name, len(r.Attrs), len(row))
	}
	for i, v := range row {
		if v.K == value.Null {
			continue
		}
		want := r.Attrs[i].Kind
		if v.K == want {
			continue
		}
		// Allow Int into Float columns (common for generated data).
		if want == value.Float && v.K == value.Int {
			continue
		}
		return fmt.Errorf("schema: relation %s attribute %s expects %v, got %v",
			r.Name, r.Attrs[i].Name, want, v.K)
	}
	return nil
}

// Database is a set of relation schemas keyed by (case-insensitive) name.
type Database struct {
	rels map[string]*Relation
}

// NewDatabase builds a database schema from relations.
func NewDatabase(rels ...*Relation) (*Database, error) {
	db := &Database{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		if err := db.Add(r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Add registers a relation schema; duplicate names are rejected.
func (db *Database) Add(r *Relation) error {
	key := strings.ToLower(r.Name)
	if _, dup := db.rels[key]; dup {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	db.rels[key] = r
	return nil
}

// Relation looks a relation up by case-insensitive name.
func (db *Database) Relation(name string) (*Relation, bool) {
	r, ok := db.rels[strings.ToLower(name)]
	return r, ok
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for _, r := range db.rels {
		out = append(out, r.Name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of relations.
func (db *Database) Len() int { return len(db.rels) }
