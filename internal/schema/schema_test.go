package schema

import (
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

func rel(t *testing.T) *Relation {
	t.Helper()
	r, err := NewRelation("call",
		Attribute{Name: "pnum", Kind: value.Int},
		Attribute{Name: "recnum", Kind: value.Int},
		Attribute{Name: "region", Kind: value.String},
		Attribute{Name: "charge", Kind: value.Float},
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation(""); err == nil {
		t.Error("empty relation name should fail")
	}
	if _, err := NewRelation("r", Attribute{Name: "", Kind: value.Int}); err == nil {
		t.Error("empty attribute name should fail")
	}
	if _, err := NewRelation("r",
		Attribute{Name: "a", Kind: value.Int},
		Attribute{Name: "A", Kind: value.Int}); err == nil {
		t.Error("case-insensitive duplicate attribute should fail")
	}
}

func TestAttrLookup(t *testing.T) {
	r := rel(t)
	if i, ok := r.AttrIndex("PNUM"); !ok || i != 0 {
		t.Errorf("AttrIndex(PNUM) = %d, %v", i, ok)
	}
	if i, ok := r.AttrIndex("region"); !ok || i != 2 {
		t.Errorf("AttrIndex(region) = %d, %v", i, ok)
	}
	if _, ok := r.AttrIndex("nope"); ok {
		t.Error("AttrIndex(nope) should miss")
	}
	idx, err := r.AttrIndices([]string{"region", "pnum"})
	if err != nil || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("AttrIndices = %v, %v", idx, err)
	}
	if _, err := r.AttrIndices([]string{"ghost"}); err == nil {
		t.Error("AttrIndices(ghost) should fail")
	}
}

func TestRelationString(t *testing.T) {
	got := rel(t).String()
	if !strings.Contains(got, "call(") || !strings.Contains(got, "pnum INT") ||
		!strings.Contains(got, "region STRING") {
		t.Errorf("String() = %q", got)
	}
}

func TestValidateRow(t *testing.T) {
	r := rel(t)
	ok := value.Row{value.NewInt(1), value.NewInt(2), value.NewString("x"), value.NewFloat(0.5)}
	if err := r.ValidateRow(ok); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	// NULL matches any column.
	if err := r.ValidateRow(value.Row{value.NewNull(), value.NewNull(), value.NewNull(), value.NewNull()}); err != nil {
		t.Errorf("all-NULL row rejected: %v", err)
	}
	// Int promotes into Float columns.
	if err := r.ValidateRow(value.Row{value.NewInt(1), value.NewInt(2), value.NewString("x"), value.NewInt(3)}); err != nil {
		t.Errorf("int-into-float rejected: %v", err)
	}
	// Arity mismatch.
	if err := r.ValidateRow(value.Row{value.NewInt(1)}); err == nil {
		t.Error("short row should fail")
	}
	// Kind mismatch.
	bad := value.Row{value.NewString("a"), value.NewInt(2), value.NewString("x"), value.NewFloat(0.5)}
	if err := r.ValidateRow(bad); err == nil {
		t.Error("string in INT column should fail")
	}
}

func TestDatabase(t *testing.T) {
	r := rel(t)
	db, err := NewDatabase(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Relation("CALL"); !ok {
		t.Error("case-insensitive relation lookup failed")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	dup := MustRelation("Call", Attribute{Name: "x", Kind: value.Int})
	if err := db.Add(dup); err == nil {
		t.Error("duplicate relation name should fail")
	}
	other := MustRelation("sms", Attribute{Name: "x", Kind: value.Int})
	if err := db.Add(other); err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "call" || names[1] != "sms" {
		t.Errorf("Names = %v", names)
	}
}

func TestMustRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRelation should panic on invalid input")
		}
	}()
	MustRelation("")
}
