package discovery

import (
	"testing"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

type env struct {
	db    *schema.Database
	store *storage.Store
}

func newEnv(t *testing.T) *env {
	t.Helper()
	db, err := schema.NewDatabase(
		schema.MustRelation("call",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "date", Kind: value.Int},
			schema.Attribute{Name: "recnum", Kind: value.Int},
			schema.Attribute{Name: "region", Kind: value.String},
		),
		schema.MustRelation("business",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "type", Kind: value.String},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{db: db, store: storage.NewStore(db)}
	calls := e.store.MustTable("call")
	for p := int64(0); p < 20; p++ {
		for d := int64(0); d < 5; d++ {
			_ = calls.Insert(value.Row{
				value.NewInt(p), value.NewInt(d), value.NewInt(p*100 + d), value.NewString("r")})
		}
	}
	biz := e.store.MustTable("business")
	for p := int64(0); p < 10; p++ {
		_ = biz.Insert(value.Row{value.NewInt(p), value.NewString("bank")})
	}
	return e
}

func (e *env) workload(t *testing.T, sqls ...string) []*analyze.Query {
	t.Helper()
	var out []*analyze.Query
	for _, sql := range sqls {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		q, err := analyze.Analyze(stmt.Select, e.db)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, q)
	}
	return out
}

func TestDiscoverCoversWorkload(t *testing.T) {
	e := newEnv(t)
	wl := e.workload(t,
		"SELECT recnum FROM call WHERE pnum = 3 AND date = 1",
		"SELECT call.region FROM call, business WHERE business.type = 'bank' AND call.pnum = business.pnum AND call.date = 2",
	)
	cands, report, err := Discover(e.store, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.CoveredAfter != 2 {
		t.Fatalf("discovery covered %d/2 queries:\n%s", report.CoveredAfter, report)
	}
	// Verify with real indices: register the selected constraints and
	// re-check the workload.
	as := access.NewSchema(e.store)
	for _, c := range cands {
		if _, err := as.Register(c.Constraint, false); err != nil {
			t.Fatalf("selected constraint does not build: %v", err)
		}
	}
	for i, q := range wl {
		if chk := core.Check(q, as); !chk.Covered {
			t.Errorf("query %d not covered by registered discovery output: %s", i, chk.Reason)
		}
	}
}

func TestDiscoverExactN(t *testing.T) {
	e := newEnv(t)
	wl := e.workload(t, "SELECT recnum FROM call WHERE pnum = 3")
	cands, _, err := Discover(e.store, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// pnum -> {recnum, ...}: each pnum has exactly 5 rows with distinct
	// recnums, so the profiled N must be 5.
	found := false
	for _, c := range cands {
		if c.Constraint.Rel == "call" && len(c.Constraint.X) == 1 && c.Constraint.X[0] == "pnum" {
			found = true
			if c.MaxN != 5 {
				t.Errorf("profiled N = %d, want 5", c.MaxN)
			}
		}
	}
	if !found {
		t.Error("expected a call(pnum -> ...) candidate")
	}
}

func TestDiscoverRespectsBudget(t *testing.T) {
	e := newEnv(t)
	wl := e.workload(t,
		"SELECT recnum FROM call WHERE pnum = 3 AND date = 1",
		"SELECT pnum FROM business WHERE type = 'bank'",
	)
	_, unlimited, err := Discover(e.store, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.FootprintUse == 0 {
		t.Fatal("unlimited discovery selected nothing")
	}
	budget := unlimited.FootprintUse / 2
	_, limited, err := Discover(e.store, wl, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if limited.FootprintUse > budget {
		t.Errorf("budget violated: %d > %d", limited.FootprintUse, budget)
	}
	if limited.CoveredAfter > unlimited.CoveredAfter {
		t.Error("smaller budget cannot cover more queries")
	}
}

func TestDiscoverMaxNRejects(t *testing.T) {
	e := newEnv(t)
	wl := e.workload(t, "SELECT recnum FROM call WHERE region = 'r'")
	// region = 'r' for all 100 rows; a region -> recnum candidate would
	// need N = 100, above the cap.
	_, report, err := Discover(e.store, wl, Options{MaxN: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range report.Selected {
		if c.MaxN > 50 {
			t.Errorf("candidate over MaxN selected: %v", c.Constraint)
		}
	}
}

func TestDiscoverEmptyWorkload(t *testing.T) {
	e := newEnv(t)
	cands, report, err := Discover(e.store, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 || report.Candidates != 0 {
		t.Errorf("empty workload should yield nothing: %v", report)
	}
}

func TestSubsets(t *testing.T) {
	got := subsets([]int{1, 2, 3}, 2)
	// nil, {1}, {1,2}, {1,3}, {2}, {2,3}, {3}
	if len(got) != 7 {
		t.Errorf("subsets = %v", got)
	}
}

func TestHypoSchemaProvider(t *testing.T) {
	e := newEnv(t)
	c, err := access.NewConstraint(e.db, "call", []string{"pnum"}, []string{"recnum"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := newHypoSchema([]*access.Constraint{c})
	if got := h.ForRelation("CALL"); len(got) != 1 {
		t.Errorf("ForRelation = %v", got)
	}
	if idx, ok := h.Index(c); idx != nil || !ok {
		t.Error("hypothetical index should be (nil, true)")
	}
}
