// Package discovery implements the Discovery module of BEAS's AS Catalog
// (paper §3): given an application's datasets and historical query
// patterns, it automatically proposes an access schema.
//
// The paper defers its discovery algorithm to a later publication but
// states the criteria it optimises: (a) performance of bounded evaluation
// of the query load, (b) a storage limit for the indices, (c) historical
// query patterns and (d) dataset statistics. This module is a faithful
// simple instantiation:
//
//  1. Candidate generation mines X → Y patterns from the workload: per
//     query atom, the constant-bound attributes and subsets of the join
//     attributes form X; the remaining used attributes form Y.
//  2. Profiling scans the data once per candidate to compute the exact
//     cardinality bound N and the index footprint.
//  3. Greedy selection repeatedly adds the candidate that newly covers
//     the most workload queries (ties: more newly fetchable atoms, then
//     smaller footprint), subject to the storage budget, scoring with the
//     real BE Checker over hypothetical schemas.
package discovery

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// Options configures discovery.
type Options struct {
	// MaxN rejects candidates whose exact cardinality bound exceeds this
	// (huge buckets make poor access constraints). Default 10000.
	MaxN int
	// Budget caps the total index footprint in stored (X, Y) pairs;
	// 0 means unlimited.
	Budget int64
	// MaxJoinSubset caps the join-attribute subsets enumerated per atom.
	// Default 2.
	MaxJoinSubset int
}

func (o *Options) defaults() {
	if o.MaxN <= 0 {
		o.MaxN = 10000
	}
	if o.MaxJoinSubset <= 0 {
		o.MaxJoinSubset = 2
	}
}

// Candidate is a profiled candidate constraint.
type Candidate struct {
	Constraint *access.Constraint
	// Footprint is the number of distinct (X, Y) pairs its index stores.
	Footprint int64
	// MaxN is the exact maximum bucket cardinality observed in the data.
	MaxN int
}

// Report summarises a discovery run.
type Report struct {
	Candidates   int
	Selected     []Candidate
	CoveredAfter int
	CoveredOf    int
	FootprintUse int64
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "discovery: %d candidates profiled; %d constraints selected; %d/%d workload queries covered; footprint %d entries\n",
		r.Candidates, len(r.Selected), r.CoveredAfter, r.CoveredOf, r.FootprintUse)
	for _, c := range r.Selected {
		fmt.Fprintf(&b, "  %v  (footprint %d)\n", c.Constraint, c.Footprint)
	}
	return b.String()
}

// hypoSchema provides hypothetical constraints to the BE Checker.
type hypoSchema struct {
	byRel map[string][]*access.Constraint
}

func newHypoSchema(cons []*access.Constraint) *hypoSchema {
	h := &hypoSchema{byRel: make(map[string][]*access.Constraint)}
	for _, c := range cons {
		k := strings.ToLower(c.Rel)
		h.byRel[k] = append(h.byRel[k], c)
	}
	return h
}

// ForRelation implements core.Provider.
func (h *hypoSchema) ForRelation(rel string) []*access.Constraint {
	return h.byRel[strings.ToLower(rel)]
}

// Index implements core.Provider: all constraints are hypothetical.
func (h *hypoSchema) Index(c *access.Constraint) (*access.Index, bool) { return nil, true }

// Discover mines, profiles and selects an access schema for the workload
// over the store's data.
func Discover(store *storage.Store, workload []*analyze.Query, opts Options) ([]Candidate, *Report, error) {
	opts.defaults()
	cands, err := generate(store, workload, opts)
	if err != nil {
		return nil, nil, err
	}
	report := &Report{Candidates: len(cands), CoveredOf: len(workload)}

	// Greedy selection scored by the real BE Checker.
	var selected []Candidate
	var footprint int64
	coveredNow := func(sel []Candidate) (int, int) {
		cons := make([]*access.Constraint, len(sel))
		for i, s := range sel {
			cons[i] = s.Constraint
		}
		h := newHypoSchema(cons)
		queries, atoms := 0, 0
		for _, q := range workload {
			chk := core.Check(q, h)
			if chk.Covered {
				queries++
			}
			atoms += len(chk.Steps)
		}
		return queries, atoms
	}

	baseQ, baseA := coveredNow(nil)
	remaining := append([]Candidate(nil), cands...)
	for {
		bestIdx := -1
		var bestQ, bestA int
		var bestCand Candidate
		for i, cand := range remaining {
			if opts.Budget > 0 && footprint+cand.Footprint > opts.Budget {
				continue
			}
			qn, an := coveredNow(append(selected, cand))
			better := false
			switch {
			case qn > bestQ:
				better = true
			case qn == bestQ && an > bestA:
				better = true
			case qn == bestQ && an == bestA && bestIdx >= 0 && cand.Footprint < bestCand.Footprint:
				better = true
			}
			if bestIdx < 0 || better {
				bestIdx, bestQ, bestA, bestCand = i, qn, an, cand
			}
		}
		if bestIdx < 0 {
			break
		}
		// Stop when the best addition provides no gain.
		if bestQ <= baseQ && bestA <= baseA {
			break
		}
		selected = append(selected, bestCand)
		footprint += bestCand.Footprint
		baseQ, baseA = bestQ, bestA
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if baseQ == len(workload) {
			break
		}
	}

	report.Selected = selected
	report.CoveredAfter = baseQ
	report.FootprintUse = footprint
	return selected, report, nil
}

// generate mines candidate constraints from the workload and profiles
// them against the data.
func generate(store *storage.Store, workload []*analyze.Query, opts Options) ([]Candidate, error) {
	seen := make(map[string]bool)
	var out []Candidate
	for _, q := range workload {
		for ai, atom := range q.Atoms {
			used := q.UsedAttrs(ai)
			if len(used) == 0 {
				continue
			}
			var constAttrs, joinAttrs []int
			inConst := make(map[int]bool)
			for _, c := range q.Conjuncts {
				switch c.Kind {
				case analyze.EqAttrConst, analyze.InConsts:
					if c.A.Atom == ai && !inConst[c.A.Attr] {
						inConst[c.A.Attr] = true
						constAttrs = append(constAttrs, c.A.Attr)
					}
				case analyze.EqAttrAttr:
					if c.A.Atom == ai && c.B.Atom != ai {
						joinAttrs = append(joinAttrs, c.A.Attr)
					}
					if c.B.Atom == ai && c.A.Atom != ai {
						joinAttrs = append(joinAttrs, c.B.Attr)
					}
				}
			}
			sort.Ints(constAttrs)
			joinAttrs = dedupInts(joinAttrs)

			// X = constant attributes ∪ a subset of the join attributes.
			for _, js := range subsets(joinAttrs, opts.MaxJoinSubset) {
				x := dedupInts(append(append([]int(nil), constAttrs...), js...))
				if len(x) == 0 {
					continue
				}
				y := diffInts(used, x)
				if len(y) == 0 {
					y = x // existence index: Y = X
				}
				cand, err := profile(store, atom.Rel.Name, attrNames(atom, x), attrNames(atom, y), opts)
				if err != nil {
					return nil, err
				}
				if cand == nil || seen[cand.Constraint.ID()] {
					continue
				}
				seen[cand.Constraint.ID()] = true
				out = append(out, *cand)
			}
		}
	}
	// Deterministic order: smallest footprint first.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Footprint != out[j].Footprint {
			return out[i].Footprint < out[j].Footprint
		}
		return out[i].Constraint.String() < out[j].Constraint.String()
	})
	return out, nil
}

func attrNames(atom analyze.Atom, attrs []int) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = atom.Rel.Attrs[a].Name
	}
	return out
}

// profile computes the exact N and footprint of a candidate by one scan,
// rejecting candidates over MaxN.
func profile(store *storage.Store, rel string, x, y []string, opts Options) (*Candidate, error) {
	table, ok := store.Table(rel)
	if !ok {
		return nil, fmt.Errorf("discovery: no table %q", rel)
	}
	xPos, err := table.Rel.AttrIndices(x)
	if err != nil {
		return nil, err
	}
	yPos, err := table.Rel.AttrIndices(y)
	if err != nil {
		return nil, err
	}
	groups := make(map[string]map[string]struct{})
	for _, row := range table.Rows() {
		xk := value.Key(row.Project(xPos))
		yk := value.Key(row.Project(yPos))
		g, ok := groups[xk]
		if !ok {
			g = make(map[string]struct{})
			groups[xk] = g
		}
		g[yk] = struct{}{}
	}
	maxN := 0
	var footprint int64
	for _, g := range groups {
		if len(g) > maxN {
			maxN = len(g)
		}
		footprint += int64(len(g))
	}
	if maxN == 0 {
		maxN = 1 // empty relation: any N conforms
	}
	if maxN > opts.MaxN {
		return nil, nil
	}
	c, err := access.NewConstraint(store.DB, rel, x, y, maxN)
	if err != nil {
		return nil, err
	}
	return &Candidate{Constraint: c, Footprint: footprint, MaxN: maxN}, nil
}

// subsets enumerates subsets of attrs up to size maxSize, including the
// empty set, in deterministic order.
func subsets(attrs []int, maxSize int) [][]int {
	out := [][]int{nil}
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) >= maxSize {
			return
		}
		for i := start; i < len(attrs); i++ {
			next := append(append([]int(nil), cur...), attrs[i])
			out = append(out, next)
			rec(i+1, next)
		}
	}
	rec(0, nil)
	return out
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func diffInts(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	var out []int
	for _, v := range a {
		if !inB[v] {
			out = append(out, v)
		}
	}
	return out
}
