package engine

import "context"

// Positive cases: a function holding a ctx that detaches its callees.

type Store struct{}

func (s *Store) Fetch(key string) error { return nil }

func (s *Store) FetchContext(ctx context.Context, key string) error { return nil }

func Query(q string) error { return nil }

func QueryContext(ctx context.Context, q string) error { return nil }

func detachFresh(ctx context.Context, s *Store) error {
	return s.FetchContext(context.Background(), "k") // want `ctx is in scope; forward it instead of starting a fresh context`
}

func detachTODO(ctx context.Context, s *Store) error {
	return s.FetchContext(context.TODO(), "k") // want `ctx is in scope; forward it instead of starting a fresh context`
}

func nilCtx(ctx context.Context, s *Store) error {
	return s.FetchContext(nil, "k") // want `nil passed as context.Context; pass ctx`
}

func droppedMethodVariant(ctx context.Context, s *Store) error {
	return s.Fetch("k") // want `call to Fetch drops ctx; use FetchContext`
}

func droppedFuncVariant(ctx context.Context) error {
	return Query("SELECT 1") // want `call to Query drops ctx; use QueryContext`
}
