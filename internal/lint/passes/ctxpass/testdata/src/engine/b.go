package engine

import "context"

// Negative cases: forwarding correctly, and starting a root context in
// a function that has none to forward.

func forward(ctx context.Context, s *Store) error {
	if err := s.FetchContext(ctx, "k"); err != nil {
		return err
	}
	return QueryContext(ctx, "SELECT 1")
}

func root(s *Store) error {
	ctx := context.Background()
	return s.FetchContext(ctx, "k")
}
