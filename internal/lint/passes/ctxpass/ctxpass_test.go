package ctxpass_test

import (
	"testing"

	"github.com/bounded-eval/beas/internal/lint/analysistest"
	"github.com/bounded-eval/beas/internal/lint/passes/ctxpass"
)

func TestCtxpass(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpass.Analyzer, "engine")
}
