// Package ctxpass enforces context propagation through library code.
//
// PR 2 threaded context.Context through the whole public API so that
// cancellation reaches joins, sorts and fetch steps mid-flight. That
// chain is only as strong as its weakest call: a function that holds a
// ctx but calls context.Background(), passes nil, or invokes the
// non-Context variant of an API (Query instead of QueryContext) quietly
// detaches everything downstream from the caller's deadline.
package ctxpass

import (
	"go/ast"
	"go/types"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/passes/lintutil"
)

// Analyzer is the ctxpass pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpass",
	Doc: "a function holding a context.Context must forward it\n\n" +
		"In library packages (everything outside cmd/ and examples/), a function with a " +
		"ctx parameter must not call context.Background() or context.TODO(), must not " +
		"pass nil where a Context is expected, and must not call Foo when a FooContext " +
		"variant exists on the same package or receiver — each of these detaches the " +
		"callee from the caller's cancellation and deadline.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.IsLibrary(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		if ctxName := contextParam(pass.TypesInfo, fn.Type); ctxName != "" {
			checkBody(pass, fn.Body, ctxName)
		}
		return true
	})
	return nil, nil
}

// contextParam returns the name of the function's context.Context
// parameter, or "" (unnamed and blank parameters cannot be forwarded,
// so they are not enforced).
func contextParam(info *types.Info, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !lintutil.IsContext(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lintutil.IsPkgCall(call, "context", "Background", "TODO") {
			pass.Reportf(call.Pos(), "%s is in scope; forward it instead of starting a fresh context (cancellation chain breaks here)", ctxName)
			return true
		}
		checkNilContextArg(pass, call, ctxName)
		checkDroppedVariant(pass, call, ctxName)
		return true
	})
}

// checkNilContextArg flags nil passed for a context.Context parameter.
func checkNilContextArg(pass *analysis.Pass, call *ast.CallExpr, ctxName string) {
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" || i >= sig.Params().Len() {
			continue
		}
		if lintutil.IsContext(sig.Params().At(i).Type()) {
			pass.Reportf(arg.Pos(), "nil passed as context.Context; pass %s", ctxName)
		}
	}
}

// checkDroppedVariant flags a call to Foo when FooContext exists on the
// same receiver type or package and takes a leading context.Context.
func checkDroppedVariant(pass *analysis.Pass, call *ast.CallExpr, ctxName string) {
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = lintutil.ObjOf(pass.TypesInfo, fun).(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = lintutil.ObjOf(pass.TypesInfo, fun.Sel).(*types.Func)
	}
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || takesContext(sig) {
		return // already the ctx-aware form
	}
	variant := callee.Name() + "Context"
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, callee.Pkg(), variant)
		cand = obj
	} else if callee.Pkg() != nil {
		cand = callee.Pkg().Scope().Lookup(variant)
	}
	fn, ok := cand.(*types.Func)
	if !ok {
		return
	}
	if vsig, ok := fn.Type().(*types.Signature); ok && takesContext(vsig) {
		pass.Reportf(call.Pos(), "call to %s drops %s; use %s", callee.Name(), ctxName, variant)
	}
}

// takesContext reports whether the signature's first parameter is a
// context.Context.
func takesContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && lintutil.IsContext(sig.Params().At(0).Type())
}
