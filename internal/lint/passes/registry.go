// Package passes aggregates the beaslint analyzer inventory.
package passes

import (
	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/passes/cmpfloat"
	"github.com/bounded-eval/beas/internal/lint/passes/ctxpass"
	"github.com/bounded-eval/beas/internal/lint/passes/lockorder"
	"github.com/bounded-eval/beas/internal/lint/passes/mapdet"
	"github.com/bounded-eval/beas/internal/lint/passes/ovfarith"
	"github.com/bounded-eval/beas/internal/lint/passes/walack"
)

// All returns the analyzer inventory in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cmpfloat.Analyzer,
		ctxpass.Analyzer,
		lockorder.Analyzer,
		mapdet.Analyzer,
		ovfarith.Analyzer,
		walack.Analyzer,
	}
}

// Known returns the analyzer-name set accepted in //beas:nolint
// directives.
func Known() map[string]bool {
	out := make(map[string]bool)
	for _, a := range All() {
		out[a.Name] = true
	}
	return out
}
