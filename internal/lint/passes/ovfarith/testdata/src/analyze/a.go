package analyze

import "github.com/bounded-eval/beas/internal/value"

// Positive cases: raw int64 arithmetic on value-domain operands.

// Batch mimics a columnar batch exposing an int64 column.
type Batch struct{ ints []int64 }

func (b Batch) Ints() []int64 { return b.ints }

func sumPayload(a, b value.Value) int64 {
	return a.I + b.I // want `raw int64 "\+" on value-domain operands wraps on overflow`
}

func subIndirect(v value.Value) int64 {
	iv := v.I
	return iv - 1 // want `raw int64 "-" on value-domain operands wraps on overflow`
}

func mulRow(r []value.Value) int64 {
	return r[0].I * r[1].I // want `raw int64 "\*" on value-domain operands wraps on overflow`
}

func negate(v value.Value) int64 {
	return -v.I // want `raw int64 negation of a value-domain operand wraps at math.MinInt64`
}

func foldColumn(b Batch) int64 {
	xs := b.Ints()
	var sum int64
	for i := 0; i < len(xs); i++ {
		sum += xs[i] // want `raw int64 "\+=" on value-domain operands wraps on overflow`
	}
	return sum
}
