package analyze

import (
	"math"

	"github.com/bounded-eval/beas/internal/value"
)

// Negative cases: non-value-domain counters, the checked helpers, and
// MinInt64-guarded negation.

func counter(n int64) int64 {
	return n + 1
}

func loopBound(xs []int64) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += 2
	}
	return total
}

func addChecked(a, b value.Value) value.Value {
	if s, ok := value.AddInt64(a.I, b.I); ok {
		return value.NewInt(s)
	}
	return value.NewFloat(float64(a.I) + float64(b.I))
}

func negGuarded(v value.Value) value.Value {
	if v.I == math.MinInt64 {
		return value.NewFloat(-float64(math.MinInt64))
	}
	return value.NewInt(-v.I)
}
