// Package ovfarith flags raw int64 arithmetic on value-domain integers
// in the expression evaluator and executors.
//
// SQL integer arithmetic in BEAS promotes to float64 on int64 overflow
// instead of silently wrapping (PR 4's bug class: a wrapped SUM or
// projection differs between serial and parallel fold orders). The
// value package provides the overflow-detecting helpers AddInt64,
// SubInt64 and MulInt64; any raw +, -, * or negation whose operands
// trace back to a value.Value payload (.I), a value.Row cell or a
// columnar Ints() vector must go through them.
package ovfarith

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/passes/lintutil"
)

// Analyzer is the ovfarith pass.
var Analyzer = &analysis.Analyzer{
	Name: "ovfarith",
	Doc: "value-domain int64 arithmetic must use value.AddInt64/SubInt64/MulInt64\n\n" +
		"In analyze, exec and engine, raw +, -, * or unary minus over int64s that " +
		"originate from value.Value.I, value.Row cells or ColBatch Ints() columns wraps " +
		"silently on overflow instead of promoting to float64, so serial and parallel " +
		"folds diverge. Unary negation guarded by an explicit math.MinInt64 check in the " +
		"same function is allowed.",
	Run: run,
}

const maxTaintDepth = 4

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.InScope(pass.Pkg.Path(), "analyze", "exec", "engine") {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		checkFunc(pass, fn)
		return false // checkFunc walks the body itself
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	assigns := collectAssigns(pass.TypesInfo, fn.Body)
	t := &tracer{info: pass.TypesInfo, assigns: assigns}
	minIntGuarded := lintutil.MentionsQualified(fn.Body, "math", "MinInt64")

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op != token.ADD && e.Op != token.SUB && e.Op != token.MUL {
				return true
			}
			tv := pass.TypesInfo.Types[ast.Expr(e)]
			if tv.Value != nil || !lintutil.IsInt64(tv.Type) {
				return true // constant-folded or not an int64 expression
			}
			if t.tainted(e.X, maxTaintDepth) || t.tainted(e.Y, maxTaintDepth) {
				pass.Reportf(e.OpPos, "raw int64 %q on value-domain operands wraps on overflow; use value.%s and promote to float64",
					e.Op, helperFor(e.Op))
			}
		case *ast.UnaryExpr:
			if e.Op != token.SUB || minIntGuarded {
				return true
			}
			tv := pass.TypesInfo.Types[ast.Expr(e)]
			if tv.Value != nil || !lintutil.IsInt64(tv.Type) {
				return true
			}
			if t.tainted(e.X, maxTaintDepth) {
				pass.Reportf(e.OpPos, "raw int64 negation of a value-domain operand wraps at math.MinInt64; guard with math.MinInt64 or use value.SubInt64(0, x)")
			}
		case *ast.AssignStmt:
			var op token.Token
			switch e.Tok {
			case token.ADD_ASSIGN:
				op = token.ADD
			case token.SUB_ASSIGN:
				op = token.SUB
			case token.MUL_ASSIGN:
				op = token.MUL
			default:
				return true
			}
			if len(e.Lhs) != 1 || len(e.Rhs) != 1 {
				return true
			}
			tv := pass.TypesInfo.Types[e.Lhs[0]]
			if !lintutil.IsInt64(tv.Type) {
				return true
			}
			if t.tainted(e.Lhs[0], maxTaintDepth) || t.tainted(e.Rhs[0], maxTaintDepth) {
				pass.Reportf(e.TokPos, "raw int64 %q on value-domain operands wraps on overflow; use value.%s and promote to float64",
					e.Tok, helperFor(op))
			}
		}
		return true
	})
}

func helperFor(op token.Token) string {
	switch op {
	case token.ADD:
		return "AddInt64"
	case token.SUB:
		return "SubInt64"
	default:
		return "MulInt64"
	}
}

// collectAssigns maps each local variable object to the expressions
// assigned to it anywhere in the function, for one-hop-per-level taint
// tracing through intermediates like `iv := v.I`.
func collectAssigns(info *types.Info, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	out := make(map[types.Object][]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := lintutil.ObjOf(info, id); obj != nil {
						out[obj] = append(out[obj], st.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					if obj := lintutil.ObjOf(info, name); obj != nil {
						out[obj] = append(out[obj], st.Values[i])
					}
				}
			}
		}
		return true
	})
	return out
}

// tracer answers "does this int64 expression originate in the value
// domain?" by walking selectors, indexes and a bounded number of local
// assignment hops.
type tracer struct {
	info    *types.Info
	assigns map[types.Object][]ast.Expr
	visited map[types.Object]bool
}

func (t *tracer) tainted(e ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return t.tainted(x.X, depth)
	case *ast.BinaryExpr:
		return t.tainted(x.X, depth) || t.tainted(x.Y, depth)
	case *ast.UnaryExpr:
		return t.tainted(x.X, depth)
	case *ast.SelectorExpr:
		// v.I where v is a value.Value: the payload itself.
		if x.Sel.Name == "I" && lintutil.IsNamed(t.info.Types[x.X].Type, "value", "Value") {
			return true
		}
		return false
	case *ast.IndexExpr:
		// xs[i] where xs came from a columnar Ints() vector, or r[i].I
		// is handled by the selector case above.
		return t.tainted(x.X, depth-1)
	case *ast.CallExpr:
		// lc.Ints() exposes a value-domain int64 column.
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Ints" {
			return true
		}
		return false
	case *ast.Ident:
		obj := lintutil.ObjOf(t.info, x)
		if obj == nil || t.visited[obj] {
			return false
		}
		if t.visited == nil {
			t.visited = make(map[types.Object]bool)
		}
		t.visited[obj] = true
		defer delete(t.visited, obj)
		for _, rhs := range t.assigns[obj] {
			if t.tainted(rhs, depth-1) {
				return true
			}
		}
		return false
	default:
		return false
	}
}
