package ovfarith_test

import (
	"testing"

	"github.com/bounded-eval/beas/internal/lint/analysistest"
	"github.com/bounded-eval/beas/internal/lint/passes/ovfarith"
)

func TestOvfarith(t *testing.T) {
	analysistest.Run(t, "testdata", ovfarith.Analyzer, "analyze")
}
