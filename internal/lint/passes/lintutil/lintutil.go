// Package lintutil holds the scope predicates and type tests shared by
// the beaslint passes. Scope is decided by the final import-path
// segment so that analysistest packages (testdata/src/exec, ...) are
// treated exactly like the real engine packages they stand in for.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// PkgBase returns the final segment of an import path.
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// deterministicPkgs are the packages whose outputs must be bit-identical
// across runs, worker counts and Go map layouts: the bounded executor
// (core, exec), the fallback engine, the batch substrate, the optimizer
// (plan choice feeds admission), the statistics catalog (estimates feed
// plan choice) and the root package (result rows and WAL record bytes).
var deterministicPkgs = map[string]bool{
	"beas":   true,
	"core":   true,
	"engine": true,
	"exec":   true,
	"iter":   true,
	"opt":    true,
	"stats":  true,
}

// IsDeterministic reports whether the package's results are covered by
// the bit-identity invariant.
func IsDeterministic(pkgPath string) bool { return deterministicPkgs[PkgBase(pkgPath)] }

// InScope reports whether the package's final segment is one of bases.
func InScope(pkgPath string, bases ...string) bool {
	b := PkgBase(pkgPath)
	for _, want := range bases {
		if b == want {
			return true
		}
	}
	return false
}

// IsLibrary reports whether the package is library code (not a command
// or an example binary).
func IsLibrary(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if seg == "cmd" || seg == "examples" || seg == "main" {
			return false
		}
	}
	return true
}

// IsInt64 reports whether t is exactly the basic type int64 (named
// wrappers like time.Duration are excluded on purpose: they are not
// value-domain integers).
func IsInt64(t types.Type) bool {
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// IsFloat64 reports whether t's core type is float64 (untyped float
// constants count: they materialise as float64 in a comparison).
func IsFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.UntypedFloat)
}

// IsNamed reports whether t (after pointer stripping) is the named type
// pkgSuffix.name, matching the defining package by path suffix so the
// test holds for both "internal/value" and testdata overlays.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// RootIdent digs through selectors, indexes, stars and parens to the
// leftmost identifier of an expression ((&b).x[i] -> b), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// ObjOf resolves an identifier to its object through Uses then Defs.
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// IsPkgCall reports whether call invokes pkgName.funcName (matched
// syntactically on the qualified identifier, which is how the engine
// code always spells sort/slices/math/context calls).
func IsPkgCall(call *ast.CallExpr, pkgName string, funcNames ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return false
	}
	for _, fn := range funcNames {
		if sel.Sel.Name == fn {
			return true
		}
	}
	return false
}

// MentionsQualified reports whether the subtree mentions the qualified
// identifier pkg.name anywhere (e.g. math.IsNaN, math.MinInt64).
func MentionsQualified(n ast.Node, pkg, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := c.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkg && sel.Sel.Name == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// EnclosingFuncBody returns the body of the innermost enclosing
// function (declaration or literal) on the stack, or nil.
func EnclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// UsesObject reports whether the subtree references obj.
func UsesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && ObjOf(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
