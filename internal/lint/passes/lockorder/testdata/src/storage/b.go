package storage

// Negative cases: notify after unlocking (the copy-on-write pattern),
// local closures under the lock, and channel work outside the critical
// section.

func (t *Table) insertGood(r Row) {
	t.Mu.Lock()
	t.rows = append(t.rows, r)
	obs := append([]Observer(nil), t.observers...)
	t.Mu.Unlock()
	for _, o := range obs {
		o.OnInsert([]Row{r})
	}
	t.done <- struct{}{}
}

func (t *Table) compact() {
	keep := func(r Row) bool { return len(r) > 0 }
	t.Mu.Lock()
	defer t.Mu.Unlock()
	kept := t.rows[:0]
	for _, r := range t.rows {
		if keep(r) {
			kept = append(kept, r)
		}
	}
	t.rows = kept
}
