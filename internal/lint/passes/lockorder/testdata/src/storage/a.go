package storage

import (
	"os"
	"sync"
)

type Row []int64

type Observer interface {
	OnInsert(rows []Row)
	OnDelete(rows []Row)
}

type Table struct {
	Mu        sync.Mutex
	rows      []Row
	observers []Observer
	f         *os.File
	done      chan struct{}
}

// Positive cases: work under the table lock that must happen outside.

func (t *Table) insertBad(r Row, o Observer) {
	t.Mu.Lock()
	t.rows = append(t.rows, r)
	o.OnInsert([]Row{r})               // want `observer callback while t.Mu is held`
	t.done <- struct{}{}               // want `channel send while t.Mu is held`
	if err := t.f.Sync(); err != nil { // want `fsync while t.Mu is held`
		_ = err
	}
	t.Mu.Unlock()
}

func (t *Table) scanBad(fn func(Row)) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	for _, r := range t.rows {
		fn(r) // want `call through user-supplied function fn while t.Mu is held`
	}
}
