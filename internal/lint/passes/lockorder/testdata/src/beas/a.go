package beas

import (
	"os"
	"sync"

	"storage"
)

type DB struct {
	mu  sync.RWMutex
	f   *os.File
	tbl *storage.Table
}

// orderBad inverts the documented db.mu → shard/table-lock order.
func (db *DB) orderBad() {
	db.tbl.Mu.Lock()
	db.mu.Lock() // want `acquiring db.mu while db.tbl.Mu is held inverts the db.mu → shard-lock order`
	db.mu.Unlock()
	db.tbl.Mu.Unlock()
}

// orderGood takes the outer lock first.
func (db *DB) orderGood() {
	db.mu.Lock()
	db.tbl.Mu.Lock()
	db.tbl.Mu.Unlock()
	db.mu.Unlock()
}

// syncUnderDBMu is the WAL's documented ack-after-fsync design: fsync
// under db.mu alone is allowed.
func (db *DB) syncUnderDBMu() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.f.Sync()
}
