// Package lockorder enforces the engine's locking discipline in the
// root package, access and storage.
//
// PR 2 fixed an observer race whose root cause was work performed under
// a lock that had no business being there. The resulting discipline:
//
//   - no channel operation while any tracked lock is held (a blocked
//     send under db.mu stalls every mutator);
//   - no fsync while a shard or table lock is held (fsync under db.mu
//     is the WAL's documented ack-after-fsync design and is allowed);
//   - no observer callback (storage.Observer.OnInsert/OnDelete) and no
//     call through a user-supplied function value while a lock is held
//     (re-entry deadlocks; the copy-on-write observer list exists
//     precisely so mutators can notify outside the lock);
//   - db.mu is acquired before shard/table locks, never after.
//
// The analysis is intra-function and sequential: Lock()/defer Unlock()
// open a held region, Unlock() closes it, branches inherit the state at
// their entry.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/passes/lintutil"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "no channel ops, fsyncs or user-supplied callbacks under engine locks; db.mu before shard locks\n\n" +
		"In the root package, access and storage: while a sync.Mutex/RWMutex is held, " +
		"channel sends/receives/selects are forbidden, fsync is forbidden under " +
		"shard/table locks (db.mu is the WAL's documented exception), observer callbacks " +
		"and calls through func-typed values are forbidden (notify outside the lock via " +
		"the copy-on-write observer list), and acquiring db.mu while an inner lock is " +
		"held inverts the db.mu → shard-lock order.",
	Run: run,
}

// lockClass ranks locks for the order rule.
type lockClass int

const (
	classOther lockClass = iota // tracked, but outside the order rule
	classDB                     // beas.DB.mu — the outermost lock
	classInner                  // access/storage shard, index and table locks
)

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.InScope(pass.Pkg.Path(), "beas", "access", "storage") {
		return nil, nil
	}
	closures := localClosures(pass)
	pass.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body != nil {
			w := &walker{pass: pass, closures: closures}
			w.block(fn.Body.List, map[string]lockClass{})
		}
	})
	return nil, nil
}

// localClosures collects variables bound to function literals in this
// package: calling one under a lock runs visible same-package code, not
// a caller-supplied callback, so the re-entry rule does not apply.
func localClosures(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	pass.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil)}, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, rhs := range st.Rhs {
				if _, ok := rhs.(*ast.FuncLit); !ok {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					if obj := lintutil.ObjOf(pass.TypesInfo, id); obj != nil {
						out[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				if _, ok := v.(*ast.FuncLit); !ok {
					continue
				}
				if i < len(st.Names) {
					if obj := lintutil.ObjOf(pass.TypesInfo, st.Names[i]); obj != nil {
						out[obj] = true
					}
				}
			}
		}
	})
	return out
}

type walker struct {
	pass     *analysis.Pass
	closures map[types.Object]bool
}

// block walks statements in order, threading the held-lock set.
// Branch bodies receive a copy of the entry state; the state after a
// branch is the entry state (an unlock inside one arm of an if must not
// leak "released" into the fall-through path).
func (w *walker) block(stmts []ast.Stmt, held map[string]lockClass) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]lockClass) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.expr(st.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.pass.Reportf(st.Pos(), "channel send while %s is held can block every path through the lock; move it outside the critical section", anyLock(held))
		}
		w.expr(st.Chan, held)
		w.expr(st.Value, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			w.pass.Reportf(st.Pos(), "select while %s is held can block every path through the lock; move it outside the critical section", anyLock(held))
		}
		w.block(st.Body.List, copyHeld(held))
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e, held)
		}
		for _, e := range st.Lhs {
			w.expr(e, held)
		}
	case *ast.DeferStmt:
		// defer x.Unlock() pins the lock for the rest of the function:
		// the held set keeps it. Other deferred work is not analysed.
		if name, _, ok := w.lockCall(st.Call); ok && isUnlockName(callName(st.Call)) {
			_ = name // held until function end by construction
		} else {
			w.expr(st.Call, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		w.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			w.stmt(st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		w.block(st.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		if t := w.typeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan && len(held) > 0 {
				w.pass.Reportf(st.Pos(), "range over a channel while %s is held blocks the critical section on the producer", anyLock(held))
			}
		}
		w.expr(st.X, held)
		w.block(st.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.block(st.Body.List, copyHeld(held))
	case *ast.TypeSwitchStmt:
		w.block(st.Body.List, copyHeld(held))
	case *ast.CaseClause:
		w.block(st.Body, copyHeld(held))
	case *ast.CommClause:
		w.block(st.Body, copyHeld(held))
	case *ast.BlockStmt:
		w.block(st.List, copyHeld(held))
	case *ast.GoStmt:
		// The goroutine runs outside the critical section; its body is
		// walked with no inherited locks.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body.List, map[string]lockClass{})
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		// const/var declarations: walk initialisers.
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// expr inspects an expression for lock transitions and violations.
func (w *walker) expr(e ast.Expr, held map[string]lockClass) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // not executed here
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(held) > 0 {
				w.pass.Reportf(x.Pos(), "channel receive while %s is held can block every path through the lock", anyLock(held))
			}
		case *ast.CallExpr:
			w.call(x, held)
		}
		return true
	})
}

// call handles lock transitions, fsyncs, observer and func-value calls.
func (w *walker) call(call *ast.CallExpr, held map[string]lockClass) {
	name := callName(call)
	if key, class, ok := w.lockCall(call); ok {
		switch {
		case name == "Lock" || name == "RLock":
			if class == classDB && holdsClass(held, classInner) {
				w.pass.Reportf(call.Pos(), "acquiring %s while %s is held inverts the db.mu → shard-lock order (deadlock with any mutator)", key, lockOfClass(held, classInner))
			}
			held[key] = class
		case isUnlockName(name):
			delete(held, key)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	if w.isFsync(call) && holdsClass(held, classInner) {
		w.pass.Reportf(call.Pos(), "fsync while %s is held serialises disk latency into the lock; sync outside the critical section", lockOfClass(held, classInner))
		return
	}
	if w.isObserverCall(call) {
		w.pass.Reportf(call.Pos(), "observer callback while %s is held can re-enter the engine and deadlock; snapshot the copy-on-write observer list and notify after unlocking", anyLock(held))
		return
	}
	if target, ok := w.funcValueCall(call); ok {
		w.pass.Reportf(call.Pos(), "call through user-supplied function %s while %s is held can re-enter the engine and deadlock; invoke it outside the critical section", target, anyLock(held))
	}
}

// lockCall recognises m.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex and returns the rendered lock expression and its class.
func (w *walker) lockCall(call *ast.CallExpr) (key string, class lockClass, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", 0, false
	}
	recv := w.typeOf(sel.X)
	if recv == nil || !isMutex(recv) {
		return "", 0, false
	}
	return types.ExprString(sel.X), w.classify(sel.X), true
}

// classify decides the order-rule class from the lock's owner: the
// struct whose field the mutex is.
func (w *walker) classify(lockExpr ast.Expr) lockClass {
	sel, ok := lockExpr.(*ast.SelectorExpr)
	if !ok {
		return classOther
	}
	owner := w.typeOf(sel.X)
	if owner == nil {
		return classOther
	}
	if p, ok := owner.Underlying().(*types.Pointer); ok {
		owner = p.Elem()
	}
	n, ok := types.Unalias(owner).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return classOther
	}
	base := lintutil.PkgBase(n.Obj().Pkg().Path())
	switch {
	case base == "beas" && n.Obj().Name() == "DB":
		return classDB
	case base == "access" || base == "storage":
		return classInner
	default:
		return classOther
	}
}

// isFsync recognises Sync() on *os.File and on the WAL log.
func (w *walker) isFsync(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	t := w.typeOf(sel.X)
	return lintutil.IsNamed(t, "os", "File") || lintutil.IsNamed(t, "wal", "Log")
}

// isObserverCall recognises OnInsert/OnDelete invoked on the
// storage.Observer interface.
func (w *walker) isObserverCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "OnInsert" && sel.Sel.Name != "OnDelete" {
		return false
	}
	t := w.typeOf(sel.X)
	if t == nil {
		return false
	}
	_, isIface := t.Underlying().(*types.Interface)
	return isIface
}

// funcValueCall reports a call through a func-typed variable, field or
// parameter (as opposed to a declared function or method).
func (w *walker) funcValueCall(call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj := lintutil.ObjOf(w.pass.TypesInfo, id)
	v, ok := obj.(*types.Var)
	if !ok || w.closures[v] {
		return "", false
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return "", false
	}
	return types.ExprString(call.Fun), true
}

func (w *walker) typeOf(e ast.Expr) types.Type {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func isMutex(t types.Type) bool {
	return lintutil.IsNamed(t, "sync", "Mutex") || lintutil.IsNamed(t, "sync", "RWMutex")
}

func isUnlockName(name string) bool { return name == "Unlock" || name == "RUnlock" }

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

func copyHeld(held map[string]lockClass) map[string]lockClass {
	out := make(map[string]lockClass, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func holdsClass(held map[string]lockClass, c lockClass) bool {
	for _, v := range held {
		if v == c {
			return true
		}
	}
	return false
}

// lockOfClass returns the name of a held lock of class c, choosing the
// lexically smallest for deterministic diagnostics.
func lockOfClass(held map[string]lockClass, c lockClass) string {
	best := ""
	for k, v := range held {
		if v == c && (best == "" || k < best) {
			best = k
		}
	}
	return best
}

// anyLock names one held lock deterministically.
func anyLock(held map[string]lockClass) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
