package lockorder_test

import (
	"testing"

	"github.com/bounded-eval/beas/internal/lint/analysistest"
	"github.com/bounded-eval/beas/internal/lint/passes/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "storage", "beas")
}
