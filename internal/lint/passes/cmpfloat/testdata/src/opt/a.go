package opt

import "sort"

// Positive cases: raw float64 comparisons where the NaN total order is
// required.

func sortScores(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `raw float64 "<" in a sort comparator is not a total order under NaN`
}

type scored struct {
	name string
	est  float64
}

func sortScored(xs []scored) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].est < xs[j].est }) // want `raw float64 "<" in a sort comparator is not a total order under NaN`
}

func sortRaw(xs []float64) {
	sort.Float64s(xs) // want `sorting raw float64s ignores the engine's NaN total order`
}

func sameEstimate(a, b float64) bool {
	return a == b // want `float64 "==" ignores NaN`
}

func changed(a, b float64) bool {
	return a != b // want `float64 "!=" ignores NaN`
}
