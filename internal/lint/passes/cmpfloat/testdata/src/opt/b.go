package opt

import (
	"math"
	"sort"

	"github.com/bounded-eval/beas/internal/value"
)

// Negative cases: the total-order helper, sentinel tests against a
// constant, explicit NaN handling, and non-float comparators.

func sortTotal(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return value.CompareFloat64(xs[i], xs[j]) < 0 })
}

func populated(est float64) bool {
	return est != 0
}

func equalNaNAware(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func sortInts(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
