package cmpfloat_test

import (
	"testing"

	"github.com/bounded-eval/beas/internal/lint/analysistest"
	"github.com/bounded-eval/beas/internal/lint/passes/cmpfloat"
)

func TestCmpfloat(t *testing.T) {
	analysistest.Run(t, "testdata", cmpfloat.Analyzer, "opt")
}
