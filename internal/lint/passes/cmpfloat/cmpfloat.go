// Package cmpfloat flags raw float64 comparisons where the engine's
// NaN total order is required.
//
// value.Compare / value.CompareFloat64 define the engine's float order:
// -Inf < ... < +Inf < NaN, NaN == NaN (PR 4). A raw < inside a sort
// comparator returns false for NaN against everything, which makes sort
// output depend on input order, and a raw == treats NaN as unequal to
// itself, which poisons grouping, DISTINCT and plan-choice tie-breaks.
// Functions that guard explicitly with math.IsNaN implement their own
// NaN handling and are exempt from the equality rule.
package cmpfloat

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/passes/lintutil"
)

// Analyzer is the cmpfloat pass.
var Analyzer = &analysis.Analyzer{
	Name: "cmpfloat",
	Doc: "float64 ordering and equality must respect the NaN total order\n\n" +
		"In the deterministic packages plus analyze, a raw float64 comparison inside a " +
		"sort.Slice/slices.SortFunc comparator, a float64 == or !=, or a sort.Float64s " +
		"call ignores NaN and breaks value.Compare's total order (-Inf < ... < +Inf < " +
		"NaN, NaN == NaN). Use value.CompareFloat64; functions calling math.IsNaN handle " +
		"NaN explicitly and are exempt from the equality rule.",
	Run: run,
}

var sortFuncs = map[string]bool{
	"Slice": true, "SliceStable": true, "SliceIsSorted": true,
	"SortFunc": true, "SortStableFunc": true, "Search": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.IsDeterministic(pass.Pkg.Path()) && !lintutil.InScope(pass.Pkg.Path(), "analyze") {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkSortCall(pass, e)
		case *ast.BinaryExpr:
			checkEquality(pass, e, stack)
		}
		return true
	})
	return nil, nil
}

// checkSortCall flags sort.Float64s outright and inspects comparator
// literals passed to sort.* / slices.* for raw float64 comparisons.
func checkSortCall(pass *analysis.Pass, call *ast.CallExpr) {
	if lintutil.IsPkgCall(call, "sort", "Float64s") || lintutil.IsPkgCall(call, "slices", "Sort") {
		if len(call.Args) > 0 && elemIsFloat64(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "sorting raw float64s ignores the engine's NaN total order; sort with value.CompareFloat64")
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || (pkg.Name != "sort" && pkg.Name != "slices") || !sortFuncs[sel.Sel.Name] {
		return
	}
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || !isCompareOp(cmp.Op) {
				return true
			}
			if floatOperand(pass, cmp) {
				pass.Reportf(cmp.OpPos, "raw float64 %q in a sort comparator is not a total order under NaN; use value.CompareFloat64", cmp.Op)
			}
			return true
		})
	}
}

// checkEquality flags == / != between float64s outside NaN-aware
// functions.
func checkEquality(pass *analysis.Pass, e *ast.BinaryExpr, stack []ast.Node) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if !floatOperand(pass, e) {
		return
	}
	// Comparisons folded at compile time cannot see runtime NaNs.
	if tv := pass.TypesInfo.Types[ast.Expr(e)]; tv.Value != nil {
		return
	}
	// Comparing against a compile-time constant is a sentinel test
	// (rf == 0, est != 0); NaN != c evaluates correctly for those and
	// no total order is involved.
	if isConstant(pass, e.X) || isConstant(pass, e.Y) {
		return
	}
	if body := lintutil.EnclosingFuncBody(stack); body != nil && lintutil.MentionsQualified(body, "math", "IsNaN") {
		return // the function handles NaN explicitly
	}
	pass.Reportf(e.OpPos, "float64 %q ignores NaN (NaN != NaN poisons grouping and dedup); use value.CompareFloat64 == 0 or guard with math.IsNaN", e.Op)
}

func isCompareOp(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// floatOperand reports whether either side of the comparison is a
// float64 (or untyped float constant).
func floatOperand(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	xt, yt := pass.TypesInfo.Types[e.X].Type, pass.TypesInfo.Types[e.Y].Type
	return (xt != nil && lintutil.IsFloat64(xt)) || (yt != nil && lintutil.IsFloat64(yt))
}

// isConstant reports whether e has a compile-time value.
func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// elemIsFloat64 reports whether arg is a []float64.
func elemIsFloat64(pass *analysis.Pass, arg ast.Expr) bool {
	t := pass.TypesInfo.Types[arg].Type
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && lintutil.IsFloat64(sl.Elem())
}
