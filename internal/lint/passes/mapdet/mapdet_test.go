package mapdet_test

import (
	"testing"

	"github.com/bounded-eval/beas/internal/lint/analysistest"
	"github.com/bounded-eval/beas/internal/lint/passes/mapdet"
)

func TestMapdet(t *testing.T) {
	analysistest.Run(t, "testdata", mapdet.Analyzer, "exec")
}

// TestOutOfScope loads the same kind of code under a package name that
// is not in the deterministic set; the analyzer must stay silent.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", mapdet.Analyzer, "obs")
}
