// Package mapdet flags map iteration whose order leaks into ordered
// output inside the engine's deterministic packages.
//
// BEAS promises bit-identical results — same bag, same order, same
// statistics — across serial, parallel and vectorized execution, and
// the WAL replays to bit-identical state. Go randomises map iteration
// order per run, so a `for range m` that appends to a result slice,
// writes to an output buffer or sends on a channel silently breaks that
// contract. The fix is mechanical: collect the keys, sort them, then
// iterate — and that exact pattern (append keys, sort.X after the loop
// in the same block) is recognised and allowed.
package mapdet

import (
	"go/ast"
	"go/types"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/passes/lintutil"
)

// Analyzer is the mapdet pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapdet",
	Doc: "map iteration order must not reach ordered output in deterministic packages\n\n" +
		"In beas, core, engine, exec, iter, opt and stats, a for-range over a map whose " +
		"body appends to an outer slice, writes to an outer buffer/writer or performs a " +
		"channel send publishes Go's randomised map order into results, plans, statistics " +
		"or WAL bytes. Collect the keys and sort them first; a loop whose collected slice " +
		"is passed to sort.* or slices.Sort* later in the same block is allowed.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.IsDeterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkBody(pass, rng, stack)
		return true
	})
	return nil, nil
}

// checkBody scans the loop body of a map range for order leaks.
func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	mapExpr := types.ExprString(rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(stmt.Pos(),
				"channel send inside range over map %s publishes map iteration order; iterate sorted keys instead",
				mapExpr)
		case *ast.AssignStmt:
			checkAppend(pass, rng, stack, stmt, mapExpr)
		case *ast.CallExpr:
			checkWriter(pass, rng, stmt, mapExpr)
		}
		return true
	})
}

// checkAppend flags `out = append(out, ...)` where out is declared
// outside the loop and is not sorted afterwards in the same block.
func checkAppend(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, as *ast.AssignStmt, mapExpr string) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(as.Lhs) {
			continue
		}
		target := lintutil.RootIdent(as.Lhs[i])
		if target == nil {
			continue
		}
		obj := lintutil.ObjOf(pass.TypesInfo, target)
		if obj == nil || !declaredOutside(obj, rng) {
			continue // loop-local accumulation cannot leak order out
		}
		if sortedAfter(pass.TypesInfo, rng, stack, obj) {
			continue // collect-then-sort: the approved pattern
		}
		pass.Reportf(as.Pos(),
			"append to %s inside range over map %s leaks map iteration order; collect and sort (e.g. sort the keys first)",
			target.Name, mapExpr)
	}
}

// checkWriter flags writes to an outer buffer/writer inside the loop:
// method-style (b.WriteString, w.Write) and fmt.Fprint* with an outer
// destination.
func checkWriter(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr, mapExpr string) {
	var dest ast.Expr
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			dest = sel.X
		case "Fprint", "Fprintf", "Fprintln":
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && len(call.Args) > 0 {
				dest = call.Args[0]
			}
		}
	}
	if dest == nil {
		return
	}
	id := lintutil.RootIdent(dest)
	if id == nil {
		return
	}
	obj := lintutil.ObjOf(pass.TypesInfo, id)
	if obj == nil || !declaredOutside(obj, rng) {
		return
	}
	pass.Reportf(call.Pos(),
		"write to %s inside range over map %s emits output in map iteration order; iterate sorted keys instead",
		id.Name, mapExpr)
}

// declaredOutside reports whether obj was declared before the range
// statement (or in another file/scope entirely).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether a statement after the range loop, in the
// innermost block containing it, passes obj to sort.* or slices.*.
func sortedAfter(info *types.Info, rng *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0 && block == nil; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			for _, s := range b.List {
				if s == ast.Stmt(rng) {
					block = b
					break
				}
			}
		}
	}
	if block == nil {
		return false
	}
	past := false
	for _, s := range block.List {
		if s == ast.Stmt(rng) {
			past = true
			continue
		}
		if !past {
			continue
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
					for _, arg := range call.Args {
						if lintutil.UsesObject(info, arg, obj) {
							found = true
						}
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := lintutil.ObjOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}
