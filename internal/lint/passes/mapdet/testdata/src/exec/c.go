package exec

// Directive policy: a valid //beas:nolint suppresses, a reasonless or
// unknown-analyzer directive is itself a diagnostic, and a directive
// that suppresses nothing is stale.

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//beas:nolint mapdet -- feeds a set downstream; proven order-insensitive
		out = append(out, k)
	}
	return out
}

func reasonless(m map[string]int) []string {
	var out []string
	for k := range m {
		//beas:nolint mapdet // want `missing its mandatory reason`
		out = append(out, k) // want `append to out inside range over map m leaks map iteration order`
	}
	return out
}

func unknownAnalyzer(m map[string]int) []string {
	var keep []string
	for k := range m {
		//beas:nolint nosuchpass -- misdirected // want `unknown analyzer "nosuchpass"` `names no analyzer to suppress`
		keep = append(keep, k) // want `append to keep inside range over map m leaks map iteration order`
	}
	return keep
}

//beas:nolint mapdet -- left behind after a refactor // want `suppresses no diagnostic; delete the stale directive`
func stale(xs []string) []string {
	out := append([]string(nil), xs...)
	return out
}
