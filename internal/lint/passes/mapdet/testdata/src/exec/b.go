package exec

import (
	"sort"
	"strings"
)

// Negative cases: the approved collect-then-sort pattern, loop-local
// accumulation and slice iteration must not be flagged.

func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}

func localOnly(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
