package exec

import (
	"bytes"
	"fmt"
	"strings"
)

// Positive cases: map iteration order reaching ordered output.

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map m leaks map iteration order`
	}
	return out
}

func printUnsorted(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want `write to buf inside range over map m emits output in map iteration order`
	}
}

func renderUnsorted(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `write to b inside range over map m emits output in map iteration order`
	}
	return b.String()
}

func sendUnsorted(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map m publishes map iteration order`
	}
}
