package obs

// Out-of-scope package: obs is not in the deterministic set, so the
// same order-leaking pattern is allowed here (metrics labels are sorted
// by their consumers).

func labels(m map[string]string) []string {
	var out []string
	for k, v := range m {
		out = append(out, k+"="+v)
	}
	return out
}
