package wal

import "os"

type Record struct{ LSN uint64 }

type Log struct {
	f    *os.File
	last uint64
}

func (l *Log) Append(r *Record) error { return nil }

func (l *Log) Sync() error { return nil }

// Positive cases: the durability error never reaches a check before
// state changes or the call is acknowledged.

func (l *Log) ackDropped(r *Record) {
	l.Append(r)  // want `error from Append is dropped`
	_ = l.Sync() // want `error from Sync is discarded with _`
}

func (l *Log) ackLateCheck(r *Record) error {
	err := l.Append(r) // want `error from Append assigned to err but not checked by the next statement`
	l.last = r.LSN
	if err != nil {
		return err
	}
	return nil
}

func (l *Log) ackAsync() {
	go l.Sync() // want `error from Sync escapes into a go/defer statement unchecked`
}

func syncFileDropped(f *os.File) {
	f.Sync() // want `error from Sync is dropped`
}
