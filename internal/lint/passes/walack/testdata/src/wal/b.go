package wal

import (
	"fmt"
	"os"
)

// Negative cases: every durability error flows into a check or the
// caller before any state changes.

func (l *Log) ackChecked(r *Record) error {
	if err := l.Append(r); err != nil {
		return err
	}
	err := l.Sync()
	if err != nil {
		return fmt.Errorf("wal: syncing: %w", err)
	}
	l.last = r.LSN
	return nil
}

func (l *Log) ackReturned(r *Record) error {
	return l.Sync()
}

func syncFileChecked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}
