// Package walack enforces ack-after-fsync error discipline on the WAL.
//
// PR 3's durability contract: a mutation is acknowledged only after its
// record is appended and fsync'd. An Append or Sync whose error is
// dropped — or merely assigned and then ignored while state is mutated
// — acknowledges a write the disk may not have, which recovery cannot
// repair. In internal/wal and the DB mutators, every Append/Sync error
// must be checked by the immediately following statement (or returned,
// or tested in the if-statement that makes the call).
package walack

import (
	"go/ast"
	"go/types"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/passes/lintutil"
)

// Analyzer is the walack pass.
var Analyzer = &analysis.Analyzer{
	Name: "walack",
	Doc: "WAL Append/Sync errors must be checked before state mutates or success is returned\n\n" +
		"In internal/wal and the root package, the error of Log.Append, Log.AppendDeferred, " +
		"Log.Sync and (*os.File).Sync must flow into an if/return/switch immediately: a " +
		"bare call, an assignment to _, or an err that is not tested by the next statement " +
		"acknowledges a write the disk may not hold (ack-after-fsync ordering).",
	Run: run,
}

// checkedMethods are the error-bearing durability calls.
var checkedMethods = map[string]bool{
	"Append": true, "AppendDeferred": true, "Sync": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.InScope(pass.Pkg.Path(), "wal", "beas") {
		return nil, nil
	}
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isDurabilityCall(pass.TypesInfo, call) {
			return true
		}
		checkUsage(pass, call, stack)
		return true
	})
	return nil, nil
}

// isDurabilityCall recognises Append/AppendDeferred/Sync on the WAL log
// and Sync on *os.File.
func isDurabilityCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !checkedMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	return lintutil.IsNamed(tv.Type, "wal", "Log") || lintutil.IsNamed(tv.Type, "os", "File")
}

// checkUsage walks outward from the call to decide how its error is
// consumed.
func checkUsage(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	name := call.Fun.(*ast.SelectorExpr).Sel.Name
	// Find the innermost statement containing the call and the node
	// directly above the call on the stack.
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "error from %s is dropped; check it before acknowledging the write (ack-after-fsync)", name)
			return
		case *ast.GoStmt, *ast.DeferStmt:
			pass.Reportf(call.Pos(), "error from %s escapes into a go/defer statement unchecked; check it before acknowledging the write", name)
			return
		case *ast.ReturnStmt:
			return // propagated to the caller
		case *ast.IfStmt:
			return // if err := l.Sync(); err != nil { ... }
		case *ast.AssignStmt:
			checkAssigned(pass, call, parent, stack[:i], name)
			return
		case *ast.CallExpr:
			if parent != call {
				return // argument to another call (e.g. wrapped in %w)
			}
		}
	}
}

// checkAssigned verifies the assigned error variable is tested by the
// statement immediately following the assignment.
func checkAssigned(pass *analysis.Pass, call *ast.CallExpr, as *ast.AssignStmt, stack []ast.Node, name string) {
	// The error is the last result; find which LHS receives it. For a
	// single-result call that is Lhs[len-1] aligned with Rhs position.
	idx := -1
	for i, rhs := range as.Rhs {
		if containsNode(rhs, call) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	// Single call with multiple results assigns left-to-right; the
	// error is the final LHS. With 1:1 assignment it is Lhs[idx].
	errLhs := as.Lhs[len(as.Lhs)-1]
	if len(as.Lhs) == len(as.Rhs) {
		errLhs = as.Lhs[idx]
	}
	id, ok := errLhs.(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "error from %s is discarded with _; check it before acknowledging the write (ack-after-fsync)", name)
		return
	}
	obj := lintutil.ObjOf(pass.TypesInfo, id)
	if obj == nil {
		return
	}
	// The statement immediately after the assignment (same block) must
	// mention the error object in a test or return.
	block := enclosingBlockFor(stack, as)
	if block == nil {
		return
	}
	for i, s := range block.List {
		if s != ast.Stmt(as) {
			continue
		}
		if i+1 < len(block.List) && errChecked(pass.TypesInfo, block.List[i+1], obj) {
			return
		}
		pass.Reportf(call.Pos(), "error from %s assigned to %s but not checked by the next statement; state must not change before the check (ack-after-fsync)", name, id.Name)
		return
	}
}

// errChecked reports whether stmt tests or propagates obj.
func errChecked(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if lintutil.UsesObject(info, s.Cond, obj) {
			return true
		}
		if s.Init != nil && lintutil.UsesObject(info, s.Init, obj) {
			return true
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if lintutil.UsesObject(info, r, obj) {
				return true
			}
		}
	case *ast.SwitchStmt:
		return lintutil.UsesObject(info, s, obj)
	}
	return false
}

func enclosingBlockFor(stack []ast.Node, stmt ast.Stmt) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			for _, s := range b.List {
				if s == stmt {
					return b
				}
			}
		}
	}
	return nil
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
