package walack_test

import (
	"testing"

	"github.com/bounded-eval/beas/internal/lint/analysistest"
	"github.com/bounded-eval/beas/internal/lint/passes/walack"
)

func TestWalack(t *testing.T) {
	analysistest.Run(t, "testdata", walack.Analyzer, "wal")
}
