package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// nolintPrefix introduces a suppression directive:
//
//	//beas:nolint analyzer1,analyzer2 -- reason the invariant is safe here
//
// The analyzer list and the reason are both mandatory; a directive
// without either is itself a diagnostic, as is one naming an unknown
// analyzer or one that suppresses nothing. A directive on a line of
// code suppresses matching diagnostics on that line; a directive on a
// line of its own suppresses them on the next code line.
const nolintPrefix = "//beas:nolint"

// Directive is one parsed //beas:nolint comment.
type Directive struct {
	Pos       token.Pos
	Line      int // line whose diagnostics are suppressed
	Analyzers []string
	Reason    string
	Used      bool
}

// ParseDirectives extracts the nolint directives of a file. Malformed
// directives (missing analyzer list or reason) are returned as
// diagnostics; known names come from the driver's analyzer inventory.
func ParseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) ([]*Directive, []Diagnostic) {
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.Ident, *ast.BasicLit:
			codeLines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})

	var dirs []*Directive
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: "nolint"})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, nolintPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, nolintPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //beas:nolintfoo — not ours
			}
			names, reason, hasReason := strings.Cut(rest, "--")
			if !hasReason || strings.TrimSpace(reason) == "" {
				bad(c.Pos(), "beas:nolint is missing its mandatory reason (want `//beas:nolint <analyzers> -- <reason>`)")
				continue
			}
			var list []string
			for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				if !known[n] {
					bad(c.Pos(), "beas:nolint names unknown analyzer %q (known: %s)", n, strings.Join(sortedKeys(known), ", "))
					continue
				}
				list = append(list, n)
			}
			if len(list) == 0 {
				bad(c.Pos(), "beas:nolint names no analyzer to suppress")
				continue
			}
			line := fset.Position(c.Pos()).Line
			if !codeLines[line] {
				line++ // stand-alone comment applies to the next line
			}
			dirs = append(dirs, &Directive{Pos: c.Pos(), Line: line, Analyzers: list, Reason: strings.TrimSpace(reason)})
		}
	}
	return dirs, diags
}

// Suppress filters diags through the directives of their file, marking
// the directives that matched. Diagnostics from the "nolint" pseudo
// analyzer are never suppressed.
func Suppress(fset *token.FileSet, diags []Diagnostic, byFile map[string][]*Directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		if d.Analyzer != "nolint" {
			for _, dir := range byFile[pos.Filename] {
				if dir.Line != pos.Line {
					continue
				}
				for _, a := range dir.Analyzers {
					if a == d.Analyzer {
						dir.Used = true
						matched = true
					}
				}
			}
		}
		if !matched {
			out = append(out, d)
		}
	}
	return out
}

// UnusedDirectives returns a diagnostic for every directive that
// suppressed nothing: stale suppressions must be deleted, not
// accumulated.
func UnusedDirectives(byFile map[string][]*Directive) []Diagnostic {
	var out []Diagnostic
	for _, dirs := range byFile {
		for _, dir := range dirs {
			if !dir.Used {
				out = append(out, Diagnostic{
					Pos:      dir.Pos,
					Message:  fmt.Sprintf("beas:nolint (%s) suppresses no diagnostic; delete the stale directive", strings.Join(dir.Analyzers, ",")),
					Analyzer: "nolint",
				})
			}
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
