// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough of the same API surface
// (Analyzer, Pass, Diagnostic) for the beaslint passes to be written in
// the standard shape, without the external dependency. Should the
// x/tools module become available, the passes port by changing one
// import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics and
// in //beas:nolint directives; Doc is the one-line summary printed by
// beaslint -list (first line) followed by a longer description.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Preorder walks every node of every file in depth-first preorder and
// calls fn for nodes whose dynamic type matches one of the types
// instances (all nodes when types is empty).
func (p *Pass) Preorder(nodeTypes []ast.Node, fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if len(nodeTypes) == 0 {
				fn(n)
				return true
			}
			for _, t := range nodeTypes {
				if sameNodeType(t, n) {
					fn(n)
					break
				}
			}
			return true
		})
	}
}

// WithStack walks every node of every file, calling fn with the node
// and the stack of its ancestors (outermost first, n excluded). If fn
// returns false the subtree under n is skipped.
func (p *Pass) WithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range p.Files {
		var stack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			for _, c := range Children(n) {
				walk(c)
			}
			stack = stack[:len(stack)-1]
			return true
		}
		walk(f)
	}
}

// Children returns the direct child nodes of n in source order.
func Children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first { // the root itself
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false // don't descend; Inspect still visits siblings
	})
	return out
}

func sameNodeType(a, b ast.Node) bool {
	switch a.(type) {
	case *ast.RangeStmt:
		_, ok := b.(*ast.RangeStmt)
		return ok
	case *ast.BinaryExpr:
		_, ok := b.(*ast.BinaryExpr)
		return ok
	case *ast.UnaryExpr:
		_, ok := b.(*ast.UnaryExpr)
		return ok
	case *ast.AssignStmt:
		_, ok := b.(*ast.AssignStmt)
		return ok
	case *ast.CallExpr:
		_, ok := b.(*ast.CallExpr)
		return ok
	case *ast.FuncDecl:
		_, ok := b.(*ast.FuncDecl)
		return ok
	case *ast.FuncLit:
		_, ok := b.(*ast.FuncLit)
		return ok
	case *ast.SendStmt:
		_, ok := b.(*ast.SendStmt)
		return ok
	case *ast.SelectStmt:
		_, ok := b.(*ast.SelectStmt)
		return ok
	default:
		return fmt.Sprintf("%T", a) == fmt.Sprintf("%T", b)
	}
}
