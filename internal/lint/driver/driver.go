// Package driver runs analyzers over loaded packages, applies the
// //beas:nolint directive policy and orders diagnostics for output. It
// is shared by the beaslint command (standalone and vettool modes) and
// by the analysistest harness.
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/loader"
)

// Run executes every analyzer over every package, suppresses
// diagnostics covered by valid nolint directives, reports malformed and
// stale directives, and returns everything sorted by position.
func Run(fset *token.FileSet, pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(fset, pkg, analyzers, known)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	Sort(fset, all)
	return all, nil
}

// RunPackage analyses one package unit. known is the analyzer-name set
// nolint directives may reference (it may exceed analyzers when a
// single pass runs under analysistest).
func RunPackage(fset *token.FileSet, pkg *loader.Package, analyzers []*analysis.Analyzer, known map[string]bool) ([]analysis.Diagnostic, error) {
	byFile := make(map[string][]*analysis.Directive)
	var diags []analysis.Diagnostic
	for _, f := range pkg.Files {
		dirs, bad := analysis.ParseDirectives(fset, f, known)
		byFile[fset.Position(f.Pos()).Filename] = dirs
		diags = append(diags, bad...)
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("driver: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = analysis.Suppress(fset, diags, byFile)
	// A directive is stale only when every analyzer it names actually
	// ran in this invocation and none produced a match.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	scoped := make(map[string][]*analysis.Directive, len(byFile))
	for file, dirs := range byFile {
		for _, dir := range dirs {
			allRan := true
			for _, a := range dir.Analyzers {
				if !ran[a] {
					allRan = false
				}
			}
			if allRan {
				scoped[file] = append(scoped[file], dir)
			}
		}
	}
	diags = append(diags, analysis.UnusedDirectives(scoped)...)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then analyzer.
func Sort(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
