// Package loader parses and type-checks packages of the current module
// for beaslint using only the standard library: go/parser for syntax,
// go/types for types, and the GOROOT source importer for standard
// library dependencies. It needs no network, no module cache and no
// pre-compiled export data, so the linter runs in a hermetic CI job.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package unit.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Config controls where import paths resolve from.
type Config struct {
	// Dir is the directory patterns are resolved against. The module
	// root (nearest go.mod at or above Dir) anchors module-path imports.
	Dir string
	// ExtraRoots are searched before the module: an import path p
	// resolves to root/p when that directory holds Go files. Used by
	// analysistest to overlay testdata packages on the real module.
	ExtraRoots []string
}

// Loader resolves, parses and type-checks packages with a shared
// FileSet and package cache.
type Loader struct {
	fset       *token.FileSet
	cfg        Config
	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// New prepares a loader rooted at cfg.Dir (default ".").
func New(cfg Config) (*Loader, error) {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	abs, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		cfg:        cfg,
		moduleDir:  modDir,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir to the nearest go.mod and reads its
// module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("loader: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// Load resolves patterns ("./...", "dir/...", plain directories or
// import paths) to package units, parses and type-checks each, and
// returns them sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand turns CLI patterns into import paths.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		// Overlay packages (analysistest testdata) resolve by their bare
		// import path against ExtraRoots, like dirFor does.
		if !recursive && l.inExtraRoots(pat) {
			add(pat)
			continue
		}
		root := filepath.Join(l.moduleDir, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(root) {
				add(l.pathForDir(root))
			} else {
				return nil, fmt.Errorf("loader: no Go files in %s", root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(l.pathForDir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (l *Loader) pathForDir(dir string) string {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	return anyGo(entries)
}

func anyGo(entries []os.DirEntry) bool {
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// inExtraRoots reports whether path resolves to a Go package under one
// of the configured overlay roots.
func (l *Loader) inExtraRoots(path string) bool {
	for _, root := range l.cfg.ExtraRoots {
		if anyGoDir(filepath.Join(root, filepath.FromSlash(path))) {
			return true
		}
	}
	return false
}

// dirFor resolves an import path to a directory, or "" for non-module,
// non-overlay (i.e. standard library) paths.
func (l *Loader) dirFor(path string) string {
	for _, root := range l.cfg.ExtraRoots {
		d := filepath.Join(root, filepath.FromSlash(path))
		if anyGoDir(d) {
			return d
		}
	}
	if path == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		d := filepath.Join(l.moduleDir, filepath.FromSlash(rest))
		if anyGoDir(d) {
			return d
		}
	}
	return ""
}

func anyGoDir(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	return anyGo(entries)
}

// Import implements types.Importer over the loader's cache, so
// type-checking one module package recursively loads the module
// packages it depends on.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one package unit (non-test files only).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("loader: cannot resolve %s to a directory", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if ignoredByBuildTag(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ignoredByBuildTag reports whether the file opts out of the default
// build via a //go:build line mentioning "ignore".
func ignoredByBuildTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build") && strings.Contains(c.Text, "ignore") {
				return true
			}
		}
	}
	return false
}
