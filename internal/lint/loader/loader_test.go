package loader

import (
	"strings"
	"testing"
)

// TestLoadModulePackage type-checks a real module package, pulling its
// module and standard-library dependencies through the import chain.
func TestLoadModulePackage(t *testing.T) {
	l, err := New(Config{Dir: "."})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.ModulePath(); got != "github.com/bounded-eval/beas" {
		t.Fatalf("module path = %q", got)
	}
	pkgs, err := l.Load("./internal/value")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages", len(pkgs))
	}
	p := pkgs[0]
	if p.Types.Name() != "value" {
		t.Fatalf("package name = %q", p.Types.Name())
	}
	if p.Types.Scope().Lookup("AddInt64") == nil {
		t.Fatal("value.AddInt64 not in scope: type info incomplete")
	}
	if len(p.Info.Types) == 0 || len(p.Info.Uses) == 0 {
		t.Fatal("expected populated type info")
	}
}

// TestLoadTransitive loads a package whose imports span the module
// (value, schema, storage) and the standard library (sort, sync).
func TestLoadTransitive(t *testing.T) {
	l, err := New(Config{Dir: "."})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/access")
	if err != nil {
		t.Fatal(err)
	}
	deps := pkgs[0].Types.Imports()
	var sawStorage bool
	for _, d := range deps {
		if strings.HasSuffix(d.Path(), "internal/storage") {
			sawStorage = true
		}
	}
	if !sawStorage {
		t.Fatalf("access should import storage; imports: %v", deps)
	}
}

// TestExpandRecursive expands ./... and finds both root and nested
// packages while skipping testdata directories.
func TestExpandRecursive(t *testing.T) {
	l, err := New(Config{Dir: "."})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"github.com/bounded-eval/beas":                false,
		"github.com/bounded-eval/beas/internal/value": false,
		"github.com/bounded-eval/beas/cmd/beaslint":   false,
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Fatalf("testdata package leaked into expansion: %s", p)
		}
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("pattern ./... missed %s", p)
		}
	}
}
