// Package analysistest runs one analyzer over golden testdata packages
// and checks its diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	out = append(out, k) // want `leaks map iteration order`
//
// Each quoted (or backquoted) string after // want is a regular
// expression; a line must produce one diagnostic per expectation and no
// unexpected ones. Testdata packages live under <dir>/src/<pkg> and may
// import real module packages (e.g. internal/value), which resolve
// against the enclosing module. The full //beas:nolint policy runs too,
// so directive behaviour is testable with the same annotations.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/driver"
	"github.com/bounded-eval/beas/internal/lint/loader"
	"github.com/bounded-eval/beas/internal/lint/passes"
)

type lineKey struct {
	file string
	line int
}

// Run loads each testdata package, applies the analyzer (with the full
// nolint policy) and compares diagnostics with // want annotations.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	l, err := loader.New(loader.Config{Dir: ".", ExtraRoots: []string{testdataDir + "/src"}})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, name := range pkgNames {
		runPackage(t, l, a, name)
	}
}

func runPackage(t *testing.T, l *loader.Loader, a *analysis.Analyzer, name string) {
	t.Helper()
	pkgs, err := l.Load(name)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", name, err)
	}
	for _, pkg := range pkgs {
		diags, err := driver.RunPackage(l.Fset(), pkg, []*analysis.Analyzer{a}, passes.Known())
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		wants := make(map[lineKey][]*regexp.Regexp)
		for _, f := range pkg.Files {
			collectWants(t, l.Fset(), f, wants)
		}
		compare(t, l.Fset(), diags, wants)
	}
}

func compare(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, wants map[lineKey][]*regexp.Regexp) {
	t.Helper()
	matched := make(map[lineKey][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// collectWants parses // want comments into per-line expectations. The
// annotated line is the comment's own line (want comments ride on the
// flagged line).
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[lineKey][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			exprs, ok := parseWant(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, e := range exprs {
				re, err := regexp.Compile(e)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, e, err)
				}
				k := lineKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], re)
			}
		}
	}
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// parseWant extracts the quoted regexps of a "// want" comment.
func parseWant(text string) ([]string, bool) {
	if !strings.HasPrefix(text, "//") {
		return nil, false
	}
	idx := strings.Index(text, "want ")
	if idx < 0 {
		return nil, false
	}
	var out []string
	for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
		if m[1] != "" {
			out = append(out, m[1])
		} else if m[2] != "" {
			out = append(out, m[2])
		}
	}
	return out, len(out) > 0
}
