// Package unit implements the cmd/go vet tool protocol so beaslint can
// run as `go vet -vettool=beaslint ./...`: cmd/go invokes the tool once
// per package with the path of a JSON config file describing the files,
// the import map and the export data of dependencies. Types come from
// the gc export data the go command already built, so this mode needs
// no source re-type-checking at all.
package unit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/bounded-eval/beas/internal/lint/analysis"
	"github.com/bounded-eval/beas/internal/lint/driver"
	"github.com/bounded-eval/beas/internal/lint/loader"
)

// Config mirrors the vet config JSON written by cmd/go (the fields
// beaslint needs; unknown fields are ignored).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vet protocol for one package config and returns the
// process exit code (0 clean, 2 diagnostics, 1 hard error).
func Main(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "beaslint: %v\n", err)
		return 1
	}
	// beaslint has no cross-package facts, but cmd/go requires the vetx
	// file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("beaslint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(stderr, "beaslint: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// External test binary units (pkg_test [pkg.test]) have no
	// production code at all.
	if strings.Contains(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// go vet merges in-package _test.go files into the unit; the
		// invariants beaslint guards are production-code properties, so
		// analyse only the non-test files (they never depend on test
		// files, so type-checking the subset is sound).
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "beaslint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp, Sizes: types.SizesFor(compiler, "amd64")}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "beaslint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &loader.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: tpkg, Info: info}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags, err := driver.RunPackage(fset, pkg, analyzers, known)
	if err != nil {
		fmt.Fprintf(stderr, "beaslint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	driver.Sort(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return cfg, nil
}
