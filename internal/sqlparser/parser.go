package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/bounded-eval/beas/internal/value"
)

// Parse parses one SQL statement (a SELECT, possibly with UNIONs). A
// trailing semicolon is permitted.
func Parse(src string) (*Statement, error) {
	p := &parser{lx: newLexer(src)}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.lx.tok.text == ";" {
		p.advance()
	}
	if p.lx.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q after end of statement", p.lx.tok.text)
	}
	return stmt, nil
}

type parser struct {
	lx *lexer
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.lx.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) advance() {
	p.lx.next()
}

func (p *parser) atKeyword(kw string) bool {
	return p.lx.tok.kind == tokKeyword && p.lx.tok.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.lx.tok.text)
	}
	return nil
}

func (p *parser) atOp(op string) bool {
	return p.lx.tok.kind == tokOp && p.lx.tok.text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.atOp(op) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, found %q", op, p.lx.tok.text)
	}
	return nil
}

func (p *parser) parseStatement() (*Statement, error) {
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt := &Statement{Select: sel}
	if p.acceptKeyword("UNION") {
		stmt.UnionAll = p.acceptKeyword("ALL")
		rhs, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmt.Union = rhs
	}
	if p.lx.err != nil {
		return nil, p.lx.err
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	// Select list.
	if p.atOp("*") {
		p.advance()
		sel.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	var onConds []Expr
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		// JOIN ... ON chains: fold the ON condition into WHERE.
		for p.atKeyword("JOIN") || p.atKeyword("INNER") {
			p.acceptKeyword("INNER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, jref)
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			onConds = append(onConds, cond)
		}
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	// AND the folded ON conditions into WHERE.
	for _, c := range onConds {
		if sel.Where == nil {
			sel.Where = c
		} else {
			sel.Where = &Binary{Op: OpAnd, L: sel.Where, R: c}
		}
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		sel.Limit = &n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		sel.Offset = &n
	}
	if p.lx.err != nil {
		return nil, p.lx.err
	}
	return sel, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	if p.lx.tok.kind != tokNumber {
		return 0, p.errorf("expected integer, found %q", p.lx.tok.text)
	}
	n, err := strconv.Atoi(p.lx.tok.text)
	if err != nil {
		return 0, p.errorf("bad integer %q", p.lx.tok.text)
	}
	p.advance()
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		if p.lx.tok.kind != tokIdent {
			return SelectItem{}, p.errorf("expected alias after AS, found %q", p.lx.tok.text)
		}
		item.Alias = p.lx.tok.text
		p.advance()
	} else if p.lx.tok.kind == tokIdent {
		item.Alias = p.lx.tok.text
		p.advance()
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.lx.tok.kind != tokIdent {
		return TableRef{}, p.errorf("expected table name, found %q", p.lx.tok.text)
	}
	ref := TableRef{Name: p.lx.tok.text}
	p.advance()
	if p.acceptKeyword("AS") {
		if p.lx.tok.kind != tokIdent {
			return TableRef{}, p.errorf("expected alias after AS, found %q", p.lx.tok.text)
		}
		ref.Alias = p.lx.tok.text
		p.advance()
	} else if p.lx.tok.kind == tokIdent {
		ref.Alias = p.lx.tok.text
		p.advance()
	}
	return ref, nil
}

// Expression grammar, loosest to tightest:
//
//	expr     = orExpr
//	orExpr   = andExpr { OR andExpr }
//	andExpr  = notExpr { AND notExpr }
//	notExpr  = [NOT] predicate
//	predicate = addExpr [ compOp addExpr | [NOT] IN (...) |
//	            [NOT] BETWEEN addExpr AND addExpr | [NOT] LIKE string |
//	            IS [NOT] NULL ]
//	addExpr  = mulExpr { (+|-) mulExpr }
//	mulExpr  = unary { (*|/) unary }
//	unary    = [-] primary
//	primary  = literal | aggregate | column | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Optional comparison / IN / BETWEEN / LIKE / IS NULL suffix.
	if p.lx.tok.kind == tokOp {
		var op BinOp
		matched := true
		switch p.lx.tok.text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			matched = false
		}
		if matched {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	negated := false
	if p.atKeyword("NOT") {
		// lookahead: NOT IN / NOT BETWEEN / NOT LIKE
		p.advance()
		negated = true
		if !p.atKeyword("IN") && !p.atKeyword("BETWEEN") && !p.atKeyword("LIKE") {
			return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &In{E: l, List: list, Not: negated}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Between{E: l, Lo: lo, Hi: hi, Not: negated}, nil
	case p.acceptKeyword("LIKE"):
		if p.lx.tok.kind != tokString {
			return nil, p.errorf("expected string pattern after LIKE")
		}
		pat := p.lx.tok.text
		p.advance()
		return &Like{E: l, Pattern: pat, Not: negated}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Not: isNot}, nil
	}
	if negated {
		return nil, p.errorf("dangling NOT")
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := OpAdd
		if p.lx.tok.text == "-" {
			op = OpSub
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") {
		op := OpMul
		if p.lx.tok.text == "/" {
			op = OpDiv
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch lit.Val.K {
			case value.Int:
				return &Literal{Val: value.NewInt(-lit.Val.I)}, nil
			case value.Float:
				return &Literal{Val: value.NewFloat(-lit.Val.F)}, nil
			}
		}
		return &Neg{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.lx.tok
	switch tok.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(tok.text, ".eE") {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", tok.text)
			}
			return &Literal{Val: value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", tok.text)
		}
		return &Literal{Val: value.NewInt(i)}, nil
	case tokString:
		p.advance()
		return &Literal{Val: value.NewString(tok.text)}, nil
	case tokKeyword:
		switch tok.text {
		case "NULL":
			p.advance()
			return &Literal{Val: value.NewNull()}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: value.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: value.NewBool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseAggregate(tok.text)
		}
		return nil, p.errorf("unexpected keyword %q in expression", tok.text)
	case tokIdent:
		p.advance()
		if p.acceptOp(".") {
			if p.lx.tok.kind != tokIdent {
				return nil, p.errorf("expected column name after %q.", tok.text)
			}
			col := &Column{Table: tok.text, Name: p.lx.tok.text}
			p.advance()
			return col, nil
		}
		return &Column{Name: tok.text}, nil
	case tokOp:
		if tok.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	if p.lx.err != nil {
		return nil, p.lx.err
	}
	return nil, p.errorf("unexpected %q in expression", tok.text)
}

func (p *parser) parseAggregate(name string) (Expr, error) {
	var fn AggFunc
	switch name {
	case "COUNT":
		fn = AggCount
	case "SUM":
		fn = AggSum
	case "AVG":
		fn = AggAvg
	case "MIN":
		fn = AggMin
	case "MAX":
		fn = AggMax
	}
	p.advance()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	agg := &Agg{Func: fn}
	if p.atOp("*") {
		if fn != AggCount {
			return nil, p.errorf("%s(*) is not valid; only COUNT(*)", name)
		}
		p.advance()
		agg.Star = true
	} else {
		agg.Distinct = p.acceptKeyword("DISTINCT")
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = arg
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return agg, nil
}
