package sqlparser

import (
	"fmt"
	"strings"

	"github.com/bounded-eval/beas/internal/value"
)

// Statement is the root of a parsed query: a SELECT, possibly a UNION
// chain of SELECTs.
type Statement struct {
	Select *Select
	// Union, when non-nil, is the right-hand side of SELECT ... UNION
	// [ALL] SELECT .... Chains associate to the right.
	Union    *Statement
	UnionAll bool
}

// Select is a single SELECT block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	Star     bool // SELECT *
	From     []TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int
	Offset   *int
}

// SelectItem is one output column: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is a relation occurrence in FROM, with an optional alias and
// any number of JOIN ... ON clauses attached (parsed into the flat list,
// with the ON condition folded into the WHERE conjunction by the parser).
type TableRef struct {
	Name  string
	Alias string
}

// DisplayName returns the alias if present, else the relation name.
func (t TableRef) DisplayName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Comparison operators evaluate to Bool.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String renders the operator in SQL syntax.
func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("BinOp(%d)", uint8(op))
	}
}

// IsComparison reports whether op is one of = <> < <= > >=.
func (op BinOp) IsComparison() bool { return op <= OpGe }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// Expr is a parsed expression. Implementations: *Column, *Literal,
// *Binary, *Not, *Neg, *In, *Between, *Like, *IsNull, *Agg.
type Expr interface {
	fmt.Stringer
	expr()
}

// Column is a possibly qualified column reference: [table.]name.
type Column struct {
	Table string // alias or relation name; empty when unqualified
	Name  string
}

func (*Column) expr() {}

// String renders the reference.
func (c *Column) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant.
type Literal struct {
	Val value.Value
}

func (*Literal) expr() {}

// String renders the literal in SQL syntax.
func (l *Literal) String() string {
	if l.Val.K == value.String {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	if l.Val.IsNull() {
		return "NULL"
	}
	return l.Val.String()
}

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (*Binary) expr() {}

// String renders the operation fully parenthesised.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not is logical negation.
type Not struct{ E Expr }

func (*Not) expr() {}

// String renders NOT (e).
func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

func (*Neg) expr() {}

// String renders -(e).
func (n *Neg) String() string { return fmt.Sprintf("-(%s)", n.E) }

// In is e [NOT] IN (v1, v2, ...). Only literal lists are supported
// (no sub-queries).
type In struct {
	E    Expr
	List []Expr
	Not  bool
}

func (*In) expr() {}

// String renders the predicate.
func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Not {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s IN (%s)", in.E, not, strings.Join(parts, ", "))
}

// Between is e [NOT] BETWEEN lo AND hi.
type Between struct {
	E, Lo, Hi Expr
	Not       bool
}

func (*Between) expr() {}

// String renders the predicate.
func (b *Between) String() string {
	not := ""
	if b.Not {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s BETWEEN %s AND %s", b.E, not, b.Lo, b.Hi)
}

// Like is e [NOT] LIKE pattern, with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern string
	Not     bool
}

func (*Like) expr() {}

// String renders the predicate.
func (l *Like) String() string {
	not := ""
	if l.Not {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s LIKE '%s'", l.E, not, l.Pattern)
}

// IsNull is e IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Not bool
}

func (*IsNull) expr() {}

// String renders the predicate.
func (i *IsNull) String() string {
	if i.Not {
		return fmt.Sprintf("%s IS NOT NULL", i.E)
	}
	return fmt.Sprintf("%s IS NULL", i.E)
}

// Agg is an aggregate call: COUNT(*), COUNT([DISTINCT] e), SUM(e), ....
type Agg struct {
	Func     AggFunc
	Arg      Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
}

func (*Agg) expr() {}

// String renders the call.
func (a *Agg) String() string {
	if a.Star {
		return "COUNT(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Func, d, a.Arg)
}

// Walk calls fn for e and every sub-expression, pre-order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Not:
		Walk(x.E, fn)
	case *Neg:
		Walk(x.E, fn)
	case *In:
		Walk(x.E, fn)
		for _, v := range x.List {
			Walk(v, fn)
		}
	case *Between:
		Walk(x.E, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *Like:
		Walk(x.E, fn)
	case *IsNull:
		Walk(x.E, fn)
	case *Agg:
		Walk(x.Arg, fn)
	}
}

// String renders the SELECT block back to SQL (used by EXPLAIN output and
// tests; not guaranteed byte-identical to the input).
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name)
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	if s.Offset != nil {
		fmt.Fprintf(&b, " OFFSET %d", *s.Offset)
	}
	return b.String()
}
