// Package sqlparser provides a hand-written lexer and recursive-descent
// parser for the SQL fragment BEAS evaluates: SELECT queries with joins
// (comma and JOIN..ON syntax), conjunctive and disjunctive WHERE clauses,
// IN/BETWEEN/LIKE/IS NULL predicates, aggregates, GROUP BY/HAVING,
// ORDER BY/LIMIT/OFFSET and UNION [ALL].
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // operators and punctuation: = <> != < <= > >= ( ) , . * + - /
	tokInvalid
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int    // byte offset in the input, for error messages
}

// keywords recognised by the lexer. Identifiers matching these
// (case-insensitively) lex as keywords.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "LIKE": true, "IS": true,
	"NULL": true, "AS": true, "GROUP": true, "BY": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true,
	"DISTINCT": true, "JOIN": true, "INNER": true, "ON": true, "UNION": true,
	"ALL": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

type lexer struct {
	src string
	pos int
	tok token // current token
	err error
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.next()
	return l
}

// next advances to the next token.
func (l *lexer) next() {
	if l.err != nil {
		return
	}
	// Skip whitespace and SQL comments: -- to end of line and /* ... */
	// block comments count as whitespace. An unterminated block comment
	// is a lexical error.
	for l.pos < len(l.src) {
		switch {
		case isSpace(l.src[l.pos]):
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--"):
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += nl + 1
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.err = fmt.Errorf("sql: unterminated block comment at offset %d", l.pos)
				l.tok = token{kind: tokInvalid, pos: l.pos}
				return
			}
			l.pos += 2 + end + 2
		default:
			goto skipped
		}
	}
skipped:
	start := l.pos
	if l.pos >= len(l.src) {
		l.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			l.tok = token{kind: tokKeyword, text: upper, pos: start}
		} else {
			l.tok = token{kind: tokIdent, text: text, pos: start}
		}
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		// [0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)? — the exponent is consumed
		// only when at least one digit follows it, so "1e" lexes as the
		// number 1 followed by the identifier e.
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			expEnd := l.pos + 1
			if expEnd < len(l.src) && (l.src[expEnd] == '+' || l.src[expEnd] == '-') {
				expEnd++
			}
			if expEnd < len(l.src) && isDigit(l.src[expEnd]) {
				for expEnd < len(l.src) && isDigit(l.src[expEnd]) {
					expEnd++
				}
				l.pos = expEnd
			}
		}
		l.tok = token{kind: tokNumber, text: l.src[start:l.pos], pos: start}
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				l.err = fmt.Errorf("sql: unterminated string literal at offset %d", start)
				l.tok = token{kind: tokInvalid, pos: start}
				return
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a single quote inside the literal.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		l.tok = token{kind: tokString, text: b.String(), pos: start}
	default:
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos += 2
			l.tok = token{kind: tokOp, text: two, pos: start}
			return
		}
		switch c {
		case '=', '<', '>', '(', ')', ',', '.', '*', '+', '-', '/', ';':
			l.pos++
			l.tok = token{kind: tokOp, text: string(c), pos: start}
		default:
			l.err = fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
			l.tok = token{kind: tokInvalid, pos: start}
		}
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
