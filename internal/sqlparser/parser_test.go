package sqlparser

import (
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

func mustParse(t *testing.T, sql string) *Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseMinimal(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t")
	sel := stmt.Select
	if len(sel.Items) != 1 || sel.Items[0].Expr.(*Column).Name != "a" {
		t.Errorf("items = %+v", sel.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Name != "t" {
		t.Errorf("from = %+v", sel.From)
	}
}

func TestParseStar(t *testing.T) {
	sel := mustParse(t, "select * from t").Select
	if !sel.Star {
		t.Error("Star not set")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	sel := mustParse(t, "SeLeCt a FrOm t WhErE a = 1").Select
	if sel.Where == nil {
		t.Error("WHERE lost")
	}
}

func TestParseQualifiedColumnsAndAliases(t *testing.T) {
	sel := mustParse(t, "SELECT c.region AS r, p.pid pidalias FROM call c, package AS p").Select
	if sel.Items[0].Alias != "r" || sel.Items[1].Alias != "pidalias" {
		t.Errorf("aliases = %q, %q", sel.Items[0].Alias, sel.Items[1].Alias)
	}
	col := sel.Items[0].Expr.(*Column)
	if col.Table != "c" || col.Name != "region" {
		t.Errorf("column = %+v", col)
	}
	if sel.From[0].Alias != "c" || sel.From[1].Alias != "p" {
		t.Errorf("from aliases = %+v", sel.From)
	}
}

func TestParseWherePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").Select
	or, ok := sel.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %v", sel.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("AND should bind tighter than OR: %v", sel.Where)
	}
}

func TestParseNot(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE NOT a = 1 AND b = 2").Select
	and := sel.Where.(*Binary)
	if and.Op != OpAnd {
		t.Fatalf("top = %v", sel.Where)
	}
	if _, ok := and.L.(*Not); !ok {
		t.Errorf("NOT should bind tighter than AND: %v", sel.Where)
	}
}

func TestParseComparisonOperators(t *testing.T) {
	ops := map[string]BinOp{
		"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for src, want := range ops {
		sel := mustParse(t, "SELECT a FROM t WHERE a "+src+" 1").Select
		b := sel.Where.(*Binary)
		if b.Op != want {
			t.Errorf("op %q parsed as %v", src, b.Op)
		}
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a + b * 2 - c / 4 FROM t").Select
	// (a + (b*2)) - (c/4)
	sub := sel.Items[0].Expr.(*Binary)
	if sub.Op != OpSub {
		t.Fatalf("top = %v", sel.Items[0].Expr)
	}
	add := sub.L.(*Binary)
	if add.Op != OpAdd || add.R.(*Binary).Op != OpMul {
		t.Errorf("mul should bind tighter: %v", sel.Items[0].Expr)
	}
}

func TestParseInBetweenLikeIsNull(t *testing.T) {
	sel := mustParse(t, `SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 2 AND 9
		AND c LIKE 'ab%' AND d IS NULL AND e IS NOT NULL AND f NOT IN (4)`).Select
	var in, between, like, isnull, isnotnull, notin bool
	Walk(sel.Where, func(e Expr) {
		switch x := e.(type) {
		case *In:
			if x.Not {
				notin = true
			} else if len(x.List) == 3 {
				in = true
			}
		case *Between:
			between = true
		case *Like:
			like = x.Pattern == "ab%"
		case *IsNull:
			if x.Not {
				isnotnull = true
			} else {
				isnull = true
			}
		}
	})
	for name, ok := range map[string]bool{"in": in, "between": between, "like": like,
		"is null": isnull, "is not null": isnotnull, "not in": notin} {
		if !ok {
			t.Errorf("%s predicate not parsed", name)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := mustParse(t, `SELECT a FROM t WHERE b = 'it''s'`).Select
	lit := sel.Where.(*Binary).R.(*Literal)
	if lit.Val.S != "it's" {
		t.Errorf("escaped literal = %q", lit.Val.S)
	}
}

func TestParseNumbers(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE b = 2.5 AND c = -3 AND d = 10").Select
	var sawFloat, sawNegInt, sawInt bool
	Walk(sel.Where, func(e Expr) {
		if l, ok := e.(*Literal); ok {
			switch {
			case l.Val.K == value.Float && l.Val.F == 2.5:
				sawFloat = true
			case l.Val.K == value.Int && l.Val.I == -3:
				sawNegInt = true
			case l.Val.K == value.Int && l.Val.I == 10:
				sawInt = true
			}
		}
	})
	if !sawFloat || !sawNegInt || !sawInt {
		t.Errorf("literals missing: float=%v negint=%v int=%v", sawFloat, sawNegInt, sawInt)
	}
}

func TestParseScientificNotation(t *testing.T) {
	cases := []struct {
		sql  string
		want float64
	}{
		{"SELECT a FROM t WHERE b = 1e6", 1e6},
		{"SELECT a FROM t WHERE b = 2.5e-3", 2.5e-3},
		{"SELECT a FROM t WHERE b = 1E+2", 1e2},
		{"SELECT a FROM t WHERE b = 7e0", 7},
		{"SELECT a FROM t WHERE b = .5e1", 5},
	}
	for _, c := range cases {
		sel := mustParse(t, c.sql).Select
		lit, ok := sel.Where.(*Binary).R.(*Literal)
		if !ok {
			t.Errorf("%q: right side is %T, want literal", c.sql, sel.Where.(*Binary).R)
			continue
		}
		if lit.Val.K != value.Float || lit.Val.F != c.want {
			t.Errorf("%q: literal = %v (%v), want FLOAT %v", c.sql, lit.Val, lit.Val.K, c.want)
		}
	}
	// An exponent marker with no digits is not an exponent: "1e" is the
	// number 1 followed by the identifier e (an implicit alias here).
	sel := mustParse(t, "SELECT 1e FROM t").Select
	if lit, ok := sel.Items[0].Expr.(*Literal); !ok || lit.Val.K != value.Int || lit.Val.I != 1 {
		t.Errorf("dangling exponent: item = %+v", sel.Items[0])
	}
	if sel.Items[0].Alias != "e" {
		t.Errorf("dangling exponent alias = %q, want \"e\"", sel.Items[0].Alias)
	}
}

func TestParseComments(t *testing.T) {
	sel := mustParse(t, `
		SELECT a -- project the region
		FROM t  -- the call table
		/* block comments
		   span lines */
		WHERE a = 1 /* inline */ AND b = 2`).Select
	if sel.Where == nil {
		t.Fatal("WHERE lost around comments")
	}
	and, ok := sel.Where.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("where = %v", sel.Where)
	}
	// -- always starts a comment, even abutting a number.
	sel = mustParse(t, "SELECT a FROM t WHERE a = 1--2").Select
	lit := sel.Where.(*Binary).R.(*Literal)
	if lit.Val.I != 1 {
		t.Errorf("1--2 should end at the comment, got %v", lit.Val)
	}
	// A comment-only suffix and a trailing line comment without newline.
	mustParse(t, "SELECT a FROM t -- done")
	if _, err := Parse("SELECT a FROM t WHERE /* never closed a = 1"); err == nil {
		t.Error("unterminated block comment accepted")
	}
}

func TestParseAggregates(t *testing.T) {
	sel := mustParse(t, `SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(c), MIN(d), MAX(e)
		FROM t GROUP BY f HAVING COUNT(*) > 2`).Select
	if len(sel.Items) != 6 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	star := sel.Items[0].Expr.(*Agg)
	if !star.Star || star.Func != AggCount {
		t.Errorf("COUNT(*) = %+v", star)
	}
	dist := sel.Items[1].Expr.(*Agg)
	if !dist.Distinct {
		t.Errorf("COUNT(DISTINCT a) = %+v", dist)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Errorf("groupby/having = %v / %v", sel.GroupBy, sel.Having)
	}
}

func TestParseSumStarInvalid(t *testing.T) {
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Error("SUM(*) should be rejected")
	}
}

func TestParseOrderLimitOffset(t *testing.T) {
	sel := mustParse(t, "SELECT a, b FROM t ORDER BY a DESC, b ASC LIMIT 10 OFFSET 5").Select
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("orderby = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || *sel.Limit != 10 || sel.Offset == nil || *sel.Offset != 5 {
		t.Errorf("limit/offset = %v/%v", sel.Limit, sel.Offset)
	}
}

func TestParseJoinOn(t *testing.T) {
	sel := mustParse(t, `SELECT a FROM t JOIN u ON t.x = u.x INNER JOIN v ON u.y = v.y WHERE t.a = 1`).Select
	if len(sel.From) != 3 {
		t.Fatalf("from = %+v", sel.From)
	}
	// WHERE must be the conjunction of the filter and both ON conditions.
	count := 0
	Walk(sel.Where, func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == OpEq {
			count++
		}
	})
	if count != 3 {
		t.Errorf("expected 3 equality conjuncts, got %d", count)
	}
}

func TestParseUnion(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v")
	if stmt.Union == nil || !stmt.UnionAll {
		t.Fatalf("first union = %+v", stmt)
	}
	if stmt.Union.Union == nil || stmt.Union.UnionAll {
		t.Fatalf("second union = %+v", stmt.Union)
	}
}

func TestParseDistinct(t *testing.T) {
	if !mustParse(t, "SELECT DISTINCT a FROM t").Select.Distinct {
		t.Error("DISTINCT lost")
	}
}

func TestParseTrailingSemicolonAndErrors(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing junk here",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a, FROM t",
		"SELECT a FROM t JOIN u",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestSelectStringRoundTrips(t *testing.T) {
	srcs := []string{
		"SELECT a FROM t WHERE a = 1",
		"SELECT DISTINCT a, b AS x FROM t, u WHERE t.a = u.b ORDER BY a DESC LIMIT 3",
		"SELECT region, COUNT(*) AS n FROM call GROUP BY region HAVING COUNT(*) > 2",
	}
	for _, src := range srcs {
		first := mustParse(t, src).Select.String()
		second := mustParse(t, first).Select.String()
		if first != second {
			t.Errorf("String() not stable:\n%s\n%s", first, second)
		}
	}
}

func TestBinOpStrings(t *testing.T) {
	for op := OpEq; op <= OpDiv; op++ {
		if s := op.String(); strings.HasPrefix(s, "BinOp(") {
			t.Errorf("missing String for op %d", op)
		}
	}
}
