// Package qcache is the unified query-cache layer: a bounded,
// byte-accounted LRU of parsed statement templates plus a semantic
// result cache of materialized bounded answers that stays fresh under
// mutations through the storage layer's versioned observer hook.
//
// The two tiers share one canonical identity, computed by
// analyze.Canonical: statements that normalize to the same fingerprint
// and parameter vector share a single result entry even when their
// texts differ. The template tier is always on (it replaces the old
// unbounded per-DB plan cache); the result tier is opt-in.
//
// Freshness is incremental, not flush-everything. Every entry records
// which constraint-index regions its fetch steps actually probed — the
// exact encoded key sets, including keys that hit an empty bucket — and
// subscribes to the base tables through storage.VersionedObserver.
// A mutation whose rows touch none of an entry's recorded keys leaves
// the entry live. A relevant mutation either patches the materialized
// answer in place (simple single-step bag and COUNT/SUM/MIN/MAX
// aggregate shapes — see patch.go) or invalidates just that entry.
//
// Lock order: callers hold db.mu before Cache.mu; Cache.mu is acquired
// before any storage.Table or index shard lock. Storage delivers
// observer events outside the table lock, so the mutation path never
// holds a table lock while waiting on Cache.mu.
package qcache

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// Defaults for the byte budgets of the two tiers.
const (
	DefaultTemplateMaxBytes = 16 << 20
	DefaultResultMaxBytes   = 64 << 20

	// maxKeysPerStep caps per-step fine-grained key registration: a step
	// that probed more keys subscribes coarsely to its whole table (any
	// mutation of the table invalidates the entry) instead of bloating
	// the reverse index.
	maxKeysPerStep = 1024
)

// Template is one cached parsed statement. Parsed is opaque to this
// package (the facade's analyzed form); Version pins the catalog
// version the analysis is valid for. ResultKey is the canonical
// identity of the statement's *answer*: fingerprint plus extracted
// parameter vector for shareable statements, the literal text
// otherwise. It keys the result tier.
type Template struct {
	Text      string
	Parsed    any
	Version   uint64
	ResultKey string
	Shareable bool

	// Fingerprint is the canonical statement identity *without* the
	// parameter vector — the workload-digest and capture-log key. For
	// shareable statements it is the UNION-joined analyze.Canonical
	// fingerprint (the prefix of ResultKey); otherwise a hash of the
	// literal text. Params is the extracted constant vector in
	// fingerprint placeholder order (nil when not shareable).
	Fingerprint string
	Params      []value.Value

	bytes int64
	elem  *list.Element
}

// CachedResult is a materialized bounded answer. Rows are shared with
// past serves and must be treated as read-only by callers; patches
// never mutate a row in place — they append, or swap in freshly
// allocated rows — so a snapshot handed out under the cache lock stays
// valid. Steps carry the per-step execution statistics of the original
// run (kept patch-accurate for counters that are data-derived).
type CachedResult struct {
	Columns         []string
	Rows            []value.Row
	Bound           uint64
	ConstraintsUsed int
	TuplesFetched   int64
	Steps           []core.StepStat
	Plan            string
	Optimized       bool
}

// TableVersion is a base-table version observed before execution. Store
// admits the entry only if the table is still at that version and the
// cache has processed every mutation up to it.
type TableVersion struct {
	Table   *storage.Table
	Version uint64
}

// StepReg registers one executed fetch step for freshness tracking:
// which table it read, through which key attributes, and the exact
// encoded keys it probed (empty-bucket probes included — a later insert
// under a probed-but-empty key must invalidate). StatIdx is the step's
// index in CachedResult.Steps.
type StepReg struct {
	Table   *storage.Table
	Step    *core.PlanStep
	Keys    []string
	StatIdx int
}

// StoreRequest carries everything Store needs to admit one answer.
type StoreRequest struct {
	Key         string
	Result      *CachedResult
	Branches    int
	Query       *analyze.Query // first branch, for patch eligibility
	Plan        *core.Plan     // first branch's executed plan
	Steps       []StepReg
	Tables      []TableVersion
	OptimizerOn bool
}

// Counters is a point-in-time snapshot of the cache's statistics.
type Counters struct {
	TemplateHits    uint64
	TemplateMisses  uint64
	TemplateEntries int
	TemplateBytes   int64

	Hits          uint64
	Misses        uint64
	Stores        uint64
	StoreRaces    uint64
	Patches       uint64
	Invalidations uint64
	Evictions     uint64
	Entries       int
	Bytes         int64
}

// Cache is the unified query cache. The zero value is not usable; call
// New.
type Cache struct {
	mu sync.Mutex

	tmplCap   int64
	tmplBytes int64
	tmpl      map[string]*Template
	tmplLRU   *list.List // front = most recently used

	resOn    bool
	resCap   int64
	resBytes int64
	entries  map[string]*entry
	resLRU   *list.List

	tabs    map[*storage.Table]*tableState
	tabList []*tableState // attach order, for deterministic detach

	templateHits, templateMisses      uint64
	hits, misses                      uint64
	stores, storeRaces                uint64
	patches, invalidations, evictions uint64
}

type entry struct {
	key    string
	res    *CachedResult
	bytes  int64
	elem   *list.Element
	dead   bool
	tables []*storage.Table
	regs   []reg
	guards []boundGuard
	patch  *patchInfo
}

// boundGuard pins one plan step's constraint bound at admission time.
// Auto-widening index maintenance mutates Constraint.N in place without
// a catalog bump, and a widened N changes the deduced bound — and can
// change the greedy step order — of a fresh check. An entry whose guard
// no longer holds must not be served: its stored plan, bound and row
// order may differ from what execution would now produce.
type boundGuard struct {
	c   *access.Constraint
	idx *access.Index
	n   int
}

// holds reports whether the admission-time bound is still current. The
// unsynchronised read of C.N matches the checker's own access pattern.
func (g boundGuard) holds() bool {
	return g.c.N == g.n && (g.idx == nil || !g.idx.Invalid())
}

// reg is one freshness registration of an entry: fine-grained under a
// key of a sig index, or coarse (si == nil) on the whole table.
type reg struct {
	ts  *tableState
	si  *sigIndex
	key string
}

// sigIndex is the reverse index for one key-attribute signature of a
// table: encoded key -> entries that probed it.
type sigIndex struct {
	sig   string
	attrs []int
	byKey map[string][]*entry
}

// tableState tracks freshness for one observed table. applied is the
// highest version whose mutation has been folded into the cache;
// events may arrive out of version order (concurrent writers) and are
// buffered until contiguous.
type tableState struct {
	t       *storage.Table
	obs     *tableObserver
	applied uint64
	pending map[uint64]*mutation

	sigList []*sigIndex
	sigs    map[string]*sigIndex
	coarse  []*entry
}

// mutation mirrors one storage.VersionedObserver event.
type mutation struct {
	inserted value.Row
	deleted  []value.Row
}

// tableObserver adapts the cache to storage.VersionedObserver. Identity
// doubles as a generation check: events from an observer that is no
// longer the table's registered one (detached by a flush) are dropped.
type tableObserver struct {
	c *Cache
	t *storage.Table
}

// OnMutation implements storage.VersionedObserver.
func (o *tableObserver) OnMutation(version uint64, inserted value.Row, deleted []value.Row) {
	o.c.onMutation(o, version, inserted, deleted)
}

// New returns a cache with the given byte budgets (≤ 0 selects the
// default) and the result tier initially set to resultsOn.
func New(templateMaxBytes, resultMaxBytes int64, resultsOn bool) *Cache {
	if templateMaxBytes <= 0 {
		templateMaxBytes = DefaultTemplateMaxBytes
	}
	if resultMaxBytes <= 0 {
		resultMaxBytes = DefaultResultMaxBytes
	}
	return &Cache{
		tmplCap: templateMaxBytes,
		tmpl:    make(map[string]*Template),
		tmplLRU: list.New(),
		resOn:   resultsOn,
		resCap:  resultMaxBytes,
		entries: make(map[string]*entry),
		resLRU:  list.New(),
		tabs:    make(map[*storage.Table]*tableState),
	}
}

// ResultsEnabled reports whether the result tier is on.
func (c *Cache) ResultsEnabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resOn
}

// SetResults toggles the result tier. Turning it off drops every
// stored answer and detaches the table observers.
func (c *Cache) SetResults(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resOn == on {
		return
	}
	c.resOn = on
	if !on {
		c.flushResultsLocked()
	}
}

// SetLimits adjusts the byte budgets of both tiers (≤ 0 keeps the
// respective default) and evicts from the LRU tails until the live
// entries fit the new budgets.
func (c *Cache) SetLimits(templateMaxBytes, resultMaxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if templateMaxBytes <= 0 {
		templateMaxBytes = DefaultTemplateMaxBytes
	}
	if resultMaxBytes <= 0 {
		resultMaxBytes = DefaultResultMaxBytes
	}
	c.tmplCap = templateMaxBytes
	c.resCap = resultMaxBytes
	for c.tmplBytes > c.tmplCap && c.tmplLRU.Len() > 0 {
		c.removeTemplateLocked(c.tmplLRU.Back().Value.(*Template))
	}
	for c.resBytes > c.resCap && c.resLRU.Len() > 0 {
		c.evictions++
		c.dropEntryLocked(c.resLRU.Back().Value.(*entry))
	}
}

// GetTemplate returns the cached template for text if it was analyzed
// at catalogVersion. A stale-version entry is dropped and reported as a
// miss.
func (c *Cache) GetTemplate(text string, catalogVersion uint64) (*Template, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tmpl[text]
	if ok && t.Version == catalogVersion {
		c.tmplLRU.MoveToFront(t.elem)
		c.templateHits++
		return t, true
	}
	if ok {
		c.removeTemplateLocked(t)
	}
	c.templateMisses++
	return nil, false
}

// PutTemplate admits a template, evicting least-recently-used ones
// while the tier exceeds its byte budget.
func (c *Cache) PutTemplate(t *Template) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.tmpl[t.Text]; ok {
		c.removeTemplateLocked(old)
	}
	// The parsed form is opaque, so its footprint is estimated from the
	// text: analyzed ASTs in this engine run a small constant factor of
	// the statement length, plus fixed per-entry overhead.
	t.bytes = int64(len(t.Text))*8 + int64(len(t.ResultKey)) + int64(len(t.Fingerprint)) + 24*int64(len(t.Params)) + 512
	if t.bytes > c.tmplCap {
		return
	}
	c.tmpl[t.Text] = t
	t.elem = c.tmplLRU.PushFront(t)
	c.tmplBytes += t.bytes
	for c.tmplBytes > c.tmplCap {
		back := c.tmplLRU.Back()
		if back == nil {
			break
		}
		c.removeTemplateLocked(back.Value.(*Template))
	}
}

func (c *Cache) removeTemplateLocked(t *Template) {
	delete(c.tmpl, t.Text)
	if t.elem != nil {
		c.tmplLRU.Remove(t.elem)
		t.elem = nil
	}
	c.tmplBytes -= t.bytes
}

// GetResult looks up a fresh answer under the canonical key. It
// returns a snapshot that is safe to read after the call: the row
// slice is capacity-capped (later append-patches cannot reach it) and
// the step stats are copied (later counter-patches cannot race).
func (c *Cache) GetResult(key string) (CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return CachedResult{}, false
	}
	// Freshness: every observed table must have had all of its
	// mutations folded in. A gap means a mutation event is still in
	// flight; serving now could return a stale answer.
	for _, t := range e.tables {
		ts := c.tabs[t]
		if ts == nil || ts.applied != t.Version() {
			c.misses++
			return CachedResult{}, false
		}
	}
	for _, g := range e.guards {
		if !g.holds() {
			c.invalidations++
			c.dropEntryLocked(e)
			c.misses++
			return CachedResult{}, false
		}
	}
	c.resLRU.MoveToFront(e.elem)
	c.hits++
	snap := *e.res
	snap.Rows = e.res.Rows[:len(e.res.Rows):len(e.res.Rows)]
	snap.Steps = append([]core.StepStat(nil), e.res.Steps...)
	return snap, true
}

// Store admits one answer. It fails (returning false) when the result
// tier is off, when any base table moved past the pre-execution
// version — the executed answer may already be stale — or when the
// entry alone exceeds the byte budget.
func (c *Cache) Store(req *StoreRequest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.resOn {
		return false
	}
	for _, tv := range req.Tables {
		ts := c.tabs[tv.Table]
		if ts == nil {
			ts = c.attachLocked(tv.Table)
		}
		if tv.Table.Version() != tv.Version || ts.applied != tv.Version {
			c.storeRaces++
			return false
		}
	}
	if old, ok := c.entries[req.Key]; ok {
		c.dropEntryLocked(old)
	}
	e := &entry{key: req.Key, res: req.Result}
	for _, tv := range req.Tables {
		e.tables = append(e.tables, tv.Table)
	}
	// The version re-check above proved no insert ran since the plan was
	// made, so each constraint's N read here is the N the plan was
	// deduced under.
	for _, sr := range req.Steps {
		e.guards = append(e.guards, boundGuard{
			c:   sr.Step.Constraint,
			idx: sr.Step.Index,
			n:   sr.Step.Constraint.N,
		})
	}
	e.patch = buildPatchInfo(req)
	e.bytes = entryBytes(req)
	if e.bytes > c.resCap {
		return false
	}
	for _, sr := range req.Steps {
		ts := c.tabs[sr.Table]
		if req.OptimizerOn || len(sr.Keys) > maxKeysPerStep {
			// Optimizer-on plans are statistics-sensitive: any mutation
			// of a read table can change the chosen step order (and with
			// it row order and per-step stats), so the entry must not
			// outlive one. Oversized key sets degrade the same way.
			e.patch = nil
			ts.coarse = append(ts.coarse, e)
			e.regs = append(e.regs, reg{ts: ts})
			continue
		}
		si := ts.sigFor(sr.Step.XAttrs)
		for _, k := range sr.Keys {
			si.byKey[k] = append(si.byKey[k], e)
			e.regs = append(e.regs, reg{ts: ts, si: si, key: k})
		}
	}
	c.entries[req.Key] = e
	e.elem = c.resLRU.PushFront(e)
	c.resBytes += e.bytes
	c.stores++
	for c.resBytes > c.resCap {
		back := c.resLRU.Back()
		if back == nil {
			break
		}
		c.evictions++
		c.dropEntryLocked(back.Value.(*entry))
	}
	return true
}

// sigFor returns (creating on demand) the table's reverse index for
// one key-attribute signature.
func (ts *tableState) sigFor(attrs []int) *sigIndex {
	sig := fmt.Sprint(attrs)
	if ts.sigs == nil {
		ts.sigs = make(map[string]*sigIndex)
	}
	if si, ok := ts.sigs[sig]; ok {
		return si
	}
	si := &sigIndex{sig: sig, attrs: attrs, byKey: make(map[string][]*entry)}
	ts.sigs[sig] = si
	ts.sigList = append(ts.sigList, si)
	return si
}

// attachLocked subscribes the cache to a table's mutations. The version
// returned by ObserveVersioned is read atomically under the table lock,
// so applied starts exactly at the last version whose event will never
// be delivered to this observer.
func (c *Cache) attachLocked(t *storage.Table) *tableState {
	obs := &tableObserver{c: c, t: t}
	v := t.ObserveVersioned(obs)
	ts := &tableState{t: t, obs: obs, applied: v}
	c.tabs[t] = ts
	c.tabList = append(c.tabList, ts)
	return ts
}

// onMutation folds one storage event into the cache. Events apply only
// in contiguous version order; out-of-order arrivals (two racing
// writers) are buffered.
func (c *Cache) onMutation(o *tableObserver, version uint64, inserted value.Row, deleted []value.Row) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.tabs[o.t]
	if ts == nil || ts.obs != o {
		return // stale generation: detached by a flush
	}
	if version <= ts.applied {
		return
	}
	m := &mutation{inserted: inserted, deleted: deleted}
	if version != ts.applied+1 {
		if ts.pending == nil {
			ts.pending = make(map[uint64]*mutation)
		}
		ts.pending[version] = m
		return
	}
	c.applyEventLocked(ts, version, m)
	for {
		next, ok := ts.pending[ts.applied+1]
		if !ok {
			break
		}
		delete(ts.pending, ts.applied+1)
		c.applyEventLocked(ts, ts.applied+1, next)
	}
}

// applyEventLocked advances one table version: it finds the entries
// whose recorded key sets the mutated rows hit (plus coarse
// subscribers), patches the ones that admit an exact incremental
// update, and invalidates the rest. Key-disjoint mutations touch no
// entry at all.
func (c *Cache) applyEventLocked(ts *tableState, version uint64, m *mutation) {
	var affected []*entry
	seen := make(map[*entry]bool)
	add := func(es []*entry) {
		for _, e := range es {
			if !e.dead && !seen[e] {
				seen[e] = true
				affected = append(affected, e)
			}
		}
	}
	var kb []byte
	for _, si := range ts.sigList {
		if m.inserted != nil {
			kb = value.AppendRowKey(kb[:0], m.inserted, si.attrs)
			add(si.byKey[string(kb)])
		}
		for _, dr := range m.deleted {
			kb = value.AppendRowKey(kb[:0], dr, si.attrs)
			add(si.byKey[string(kb)])
		}
	}
	add(ts.coarse)
	if len(affected) > 0 {
		// A patch replays the mutation against the live index state, so
		// it is exact only when the table has not moved past this event.
		current := ts.t.Version() == version
		for _, e := range affected {
			if current && e.patch != nil && c.tryPatch(e, m) {
				c.patches++
				continue
			}
			c.invalidations++
			c.dropEntryLocked(e)
		}
	}
	ts.applied = version
	// Bag patches append rows; trim back to budget afterwards rather
	// than evicting mid-iteration.
	for c.resBytes > c.resCap {
		back := c.resLRU.Back()
		if back == nil {
			break
		}
		c.evictions++
		c.dropEntryLocked(back.Value.(*entry))
	}
}

// dropEntryLocked removes an entry from the map, the LRU list, the
// byte account and every freshness registration.
func (c *Cache) dropEntryLocked(e *entry) {
	if e.dead {
		return
	}
	e.dead = true
	delete(c.entries, e.key)
	if e.elem != nil {
		c.resLRU.Remove(e.elem)
		e.elem = nil
	}
	c.resBytes -= e.bytes
	for _, r := range e.regs {
		if r.si == nil {
			r.ts.coarse = removeEntry(r.ts.coarse, e)
			continue
		}
		es := removeEntry(r.si.byKey[r.key], e)
		if len(es) == 0 {
			delete(r.si.byKey, r.key)
		} else {
			r.si.byKey[r.key] = es
		}
	}
	e.regs = nil
}

func removeEntry(es []*entry, e *entry) []*entry {
	for i, x := range es {
		if x == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// FlushAll empties both tiers and detaches every table observer. The
// facade calls it on any catalog change (DDL, constraint registration,
// Retighten): templates embed resolved schema state and answers embed
// constraint indexes, so neither survives.
func (c *Cache) FlushAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.tmplLRU.Front(); el != nil; {
		next := el.Next()
		c.removeTemplateLocked(el.Value.(*Template))
		el = next
	}
	c.flushResultsLocked()
}

// FlushResults empties the result tier only (execution-knob changes:
// the template analysis stays valid).
func (c *Cache) FlushResults() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushResultsLocked()
}

func (c *Cache) flushResultsLocked() {
	// Walk the LRU list, not the entry map: the flush order (and with
	// it every counter and observer interaction) stays deterministic.
	for el := c.resLRU.Front(); el != nil; {
		next := el.Next()
		c.invalidations++
		c.dropEntryLocked(el.Value.(*entry))
		el = next
	}
	for _, ts := range c.tabList {
		ts.t.UnobserveVersioned(ts.obs)
		ts.obs = nil
	}
	c.tabList = nil
	c.tabs = make(map[*storage.Table]*tableState)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		TemplateHits:    c.templateHits,
		TemplateMisses:  c.templateMisses,
		TemplateEntries: len(c.tmpl),
		TemplateBytes:   c.tmplBytes,
		Hits:            c.hits,
		Misses:          c.misses,
		Stores:          c.stores,
		StoreRaces:      c.storeRaces,
		Patches:         c.patches,
		Invalidations:   c.invalidations,
		Evictions:       c.evictions,
		Entries:         len(c.entries),
		Bytes:           c.resBytes,
	}
}

// resultKeysLRU lists the result-tier keys from most to least recently
// used. Test hook.
func (c *Cache) resultKeysLRU() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var keys []string
	for el := c.resLRU.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	return keys
}

// entryBytes estimates the retained footprint of one answer.
func entryBytes(req *StoreRequest) int64 {
	b := int64(len(req.Key)) + 512
	b += int64(len(req.Result.Plan))
	for _, col := range req.Result.Columns {
		b += int64(len(col)) + 16
	}
	for _, r := range req.Result.Rows {
		b += rowBytes(r)
	}
	b += int64(len(req.Result.Steps)) * 128
	for _, sr := range req.Steps {
		for _, k := range sr.Keys {
			b += int64(len(k)) + 48
		}
	}
	return b
}

func rowBytes(r value.Row) int64 {
	b := int64(24)
	for _, v := range r {
		b += 40 + int64(len(v.S))
	}
	return b
}
