// Incremental view maintenance for cached answers.
//
// A cached entry is patchable when its shape is simple enough that a
// single-row mutation maps to a provably exact update of the
// materialized answer — exact meaning the patched rows, their order
// and the data-derived execution statistics are bit-identical to what
// a fresh bounded execution would produce. Anything outside that shape
// falls back to invalidating the one affected entry.
//
// Eligible shape: one UNION branch, one fetch step whose key
// components are all single-candidate constants (so the plan probes
// exactly one index bucket), no DISTINCT / ORDER BY / LIMIT / OFFSET /
// GROUP BY / HAVING, optimizer off. Two sub-shapes:
//
//   - bag: plain projections. An insert that appends a brand-new
//     Y-tuple to the bucket appends the projected row at the end of
//     the cached bag (the executor emits bucket rows in order, and the
//     index appends new tuples at the bucket end). A duplicate insert
//     or any delete changes interior multiplicities or bucket order,
//     so it invalidates.
//   - aggregate: outputs are bare COUNT/SUM/MIN/MAX references.
//     Inserts patch the single output row; SUM only accepts a
//     new-tuple append folding at the end of the sequence (a duplicate
//     changes an interior weight, which can move the int-overflow
//     point or reorder float rounding). Deletes patch COUNT and leave
//     MIN/MAX when the tuple still has witnesses; a fully removed
//     tuple invalidates MIN/MAX entries (the extremum may have left).
package qcache

import (
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// patchInfo is the precomputed patch metadata of an eligible entry.
type patchInfo struct {
	q       *analyze.Query
	step    *core.PlanStep
	layout  *analyze.Layout
	key     string        // the single encoded probe key
	keyVals []value.Value // the single candidate per key component
	isAgg   bool
	aggOut  []aggOutput // parallel to q.Outputs when isAgg
}

type aggOutput struct {
	fn   sqlparser.AggFunc
	arg  analyze.Expr
	star bool
}

// buildPatchInfo decides eligibility at store time and caches what the
// patch paths need. nil means mutations that hit the entry invalidate
// it.
func buildPatchInfo(req *StoreRequest) *patchInfo {
	if req.OptimizerOn || req.Branches != 1 || req.Plan == nil || req.Query == nil {
		return nil
	}
	q, plan := req.Query, req.Plan
	if plan.Check == nil || plan.Check.EmptyGuaranteed || len(plan.Steps) != 1 {
		return nil
	}
	if len(req.Result.Steps) != 1 {
		return nil
	}
	if q.Distinct || len(q.OrderBy) > 0 || q.Limit != nil || q.Offset != nil ||
		q.Having != nil || len(q.GroupBy) > 0 {
		return nil
	}
	step := &plan.Steps[0]
	keyVals := make([]value.Value, len(step.Keys))
	var kb []byte
	for i, ks := range step.Keys {
		if len(ks.Consts) != 1 {
			return nil
		}
		keyVals[i] = ks.Consts[0]
		kb = value.AppendKey(kb, ks.Consts[0])
	}
	pi := &patchInfo{
		q:       q,
		step:    step,
		layout:  plan.Layout,
		key:     string(kb),
		keyVals: keyVals,
	}
	if !q.IsAgg {
		return pi
	}
	pi.isAgg = true
	for _, o := range q.Outputs {
		pr, ok := o.Expr.(*analyze.PostRef)
		if !ok || pr.Slot < 0 || pr.Slot >= len(q.Aggs) {
			return nil
		}
		a := q.Aggs[pr.Slot]
		if a.Distinct {
			return nil
		}
		switch a.Func {
		case sqlparser.AggCount, sqlparser.AggSum, sqlparser.AggMin, sqlparser.AggMax:
		default:
			return nil
		}
		pi.aggOut = append(pi.aggOut, aggOutput{fn: a.Func, arg: a.Arg, star: a.Star})
	}
	return pi
}

// tryPatch folds one mutation into an eligible entry. It returns false
// when the mutation cannot be replayed exactly; the caller then
// invalidates the entry. It runs under c.mu with the table known to be
// exactly at the event's version, so the constraint index reflects the
// mutation and nothing later.
func (c *Cache) tryPatch(e *entry, m *mutation) bool {
	if m.inserted != nil {
		return c.patchInsert(e, m.inserted)
	}
	return c.patchDelete(e, m.deleted)
}

// patchInsert replays one inserted base row.
func (c *Cache) patchInsert(e *entry, row value.Row) bool {
	pi := e.patch
	if string(value.AppendRowKey(nil, row, pi.step.XAttrs)) != pi.key {
		return true // key-disjoint: the entry's probe never sees this row
	}
	// Locate the row's Y-tuple in the post-insert bucket. A brand-new
	// tuple sits at the end with a single witness; anything else is a
	// duplicate whose witness count just grew.
	bucket, counts, _ := pi.step.Index.FetchWeightedEncoded(pi.key)
	ye := string(value.AppendRowKey(nil, row, pi.step.YAttrs))
	pos := -1
	var pb []byte
	for i, br := range bucket {
		pb = value.AppendRowKey(pb[:0], br, nil)
		if string(pb) == ye {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	newTuple := pos == len(bucket)-1 && counts[pos] == 1

	out := make(value.Row, pi.layout.Len())
	for i, slot := range pi.step.XSlots {
		out[slot] = pi.keyVals[i]
	}
	for j, yi := range pi.step.YUsed {
		out[pi.step.YSlots[j]] = bucket[pos][yi]
	}
	pass := true
	for _, f := range pi.step.Filters {
		ok, err := analyze.EvalBool(f.Expr, out, pi.layout)
		if err != nil {
			return false // a fresh run would surface this error
		}
		if !ok {
			pass = false
			break
		}
	}

	if !pi.isAgg {
		if !newTuple {
			// Duplicate: the extra copy belongs next to its first
			// occurrence in the middle of the bag, not at the end.
			return false
		}
		var outRow value.Row
		if pass {
			outRow = make(value.Row, len(pi.q.Outputs))
			for i, o := range pi.q.Outputs {
				v, err := analyze.Eval(o.Expr, out, pi.layout)
				if err != nil {
					return false
				}
				outRow[i] = v
			}
		}
		e.res.TuplesFetched++
		e.res.Steps[0].Fetched++
		if pass {
			e.res.Steps[0].RowsOut++
			e.res.Rows = append(e.res.Rows, outRow)
			d := rowBytes(outRow)
			e.bytes += d
			c.resBytes += d
		}
		return true
	}

	old := e.res.Rows[0]
	newRow := append(value.Row(nil), old...)
	if pass {
		for i, ao := range pi.aggOut {
			cur := old[i]
			switch ao.fn {
			case sqlparser.AggCount:
				if !ao.star {
					v, err := analyze.Eval(ao.arg, out, pi.layout)
					if err != nil {
						return false
					}
					if v.IsNull() {
						continue
					}
				}
				newRow[i] = value.NewInt(cur.I + 1)
			case sqlparser.AggSum:
				if !newTuple {
					// A duplicate raises an interior weight: the exact
					// int64 running sum (and its overflow point) and the
					// float fold order both change mid-sequence.
					return false
				}
				v, err := analyze.Eval(ao.arg, out, pi.layout)
				if err != nil {
					return false
				}
				if v.IsNull() {
					continue
				}
				switch {
				case cur.IsNull() && (v.K == value.Int || v.K == value.Float):
					newRow[i] = v
				case cur.K == value.Int && v.K == value.Int:
					s, ok := value.AddInt64(cur.I, v.I)
					if !ok {
						return false // fresh run falls back to the float shadow
					}
					newRow[i] = value.NewInt(s)
				case cur.K == value.Float:
					f, ok := v.AsFloat()
					if !ok {
						return false
					}
					newRow[i] = value.NewFloat(cur.F + f)
				default:
					// Int sum meeting a float term: the fresh result is
					// the incremental float shadow, which the cached
					// exact integer cannot reconstruct. Or non-numeric.
					return false
				}
			case sqlparser.AggMin, sqlparser.AggMax:
				v, err := analyze.Eval(ao.arg, out, pi.layout)
				if err != nil {
					return false
				}
				if v.IsNull() {
					continue
				}
				if cur.IsNull() {
					newRow[i] = v
					continue
				}
				cmp, err := value.Compare(v, cur)
				if err != nil {
					continue // the aggregator ignores incomparable values
				}
				if (ao.fn == sqlparser.AggMin && cmp < 0) || (ao.fn == sqlparser.AggMax && cmp > 0) {
					newRow[i] = v
				}
			}
		}
	}
	if newTuple {
		e.res.TuplesFetched++
		e.res.Steps[0].Fetched++
		if pass {
			e.res.Steps[0].RowsOut++
		}
	}
	// Swap in a fresh row slice: snapshots handed out by GetResult keep
	// the old backing array, so cells are never mutated under a reader.
	d := rowBytes(newRow) - rowBytes(old)
	e.bytes += d
	c.resBytes += d
	e.res.Rows = []value.Row{newRow}
	return true
}

// patchDelete replays one batched delete (all rows of one version
// bump).
func (c *Cache) patchDelete(e *entry, deleted []value.Row) bool {
	pi := e.patch
	if !pi.isAgg {
		// The index swap-removes inside the bucket, destroying the row
		// order a fresh run would emit.
		return false
	}
	for _, ao := range pi.aggOut {
		if ao.fn == sqlparser.AggSum {
			return false // removing an interior term reorders the fold
		}
	}
	var matched []value.Row
	var kb []byte
	for _, dr := range deleted {
		kb = value.AppendRowKey(kb[:0], dr, pi.step.XAttrs)
		if string(kb) == pi.key {
			matched = append(matched, dr)
		}
	}
	if len(matched) == 0 {
		return true
	}
	// Which Y-tuples survive the whole batch? The index already
	// reflects every removal of this version.
	bucket, _, _ := pi.step.Index.FetchWeightedEncoded(pi.key)
	present := make(map[string]bool, len(bucket))
	var pb []byte
	for _, br := range bucket {
		pb = value.AppendRowKey(pb[:0], br, nil)
		present[string(pb)] = true
	}

	hasMinMax := false
	for _, ao := range pi.aggOut {
		if ao.fn == sqlparser.AggMin || ao.fn == sqlparser.AggMax {
			hasMinMax = true
		}
	}

	countDelta := make([]int64, len(pi.aggOut))
	groupSeen := make(map[string]bool)
	var dFetched, dRowsOut int64
	for _, dr := range matched {
		out := make(value.Row, pi.layout.Len())
		for i, slot := range pi.step.XSlots {
			out[slot] = pi.keyVals[i]
		}
		for j, yi := range pi.step.YUsed {
			out[pi.step.YSlots[j]] = dr[pi.step.YAttrs[yi]]
		}
		pass := true
		for _, f := range pi.step.Filters {
			ok, err := analyze.EvalBool(f.Expr, out, pi.layout)
			if err != nil {
				return false
			}
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			for i, ao := range pi.aggOut {
				if ao.fn != sqlparser.AggCount {
					continue
				}
				if !ao.star {
					v, err := analyze.Eval(ao.arg, out, pi.layout)
					if err != nil {
						return false
					}
					if v.IsNull() {
						continue
					}
				}
				countDelta[i]++
			}
		}
		ye := string(value.AppendRowKey(nil, dr, pi.step.YAttrs))
		if groupSeen[ye] {
			continue
		}
		groupSeen[ye] = true
		if !present[ye] {
			// The tuple lost its last witness: it leaves the fetched
			// set, and a departed extremum cannot be recomputed from
			// the cached answer alone.
			if hasMinMax {
				return false
			}
			dFetched++
			if pass {
				dRowsOut++
			}
		}
	}

	old := e.res.Rows[0]
	newRow := append(value.Row(nil), old...)
	for i, d := range countDelta {
		if d != 0 {
			newRow[i] = value.NewInt(old[i].I - d)
		}
	}
	e.res.TuplesFetched -= dFetched
	e.res.Steps[0].Fetched -= dFetched
	e.res.Steps[0].RowsOut -= dRowsOut
	e.res.Rows = []value.Row{newRow}
	return true
}
