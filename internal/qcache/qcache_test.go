package qcache

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

func newTestTable(t *testing.T) *storage.Table {
	t.Helper()
	rel, err := schema.NewRelation("r",
		schema.Attribute{Name: "a", Kind: value.Int},
		schema.Attribute{Name: "b", Kind: value.Int})
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewTable(rel)
}

func intKey(i int64) string {
	return string(value.AppendKey(nil, value.NewInt(i)))
}

// mkReq builds a store request probing one key of attribute a. Branches
// is 2 so the entry is never patch-eligible: these tests exercise the
// registration, freshness and eviction machinery; patch exactness is
// covered end to end by the root differential suite.
func mkReq(tab *storage.Table, con *access.Constraint, key string, probe int64, rows ...value.Row) *StoreRequest {
	step := &core.PlanStep{FetchStep: core.FetchStep{Constraint: con, XAttrs: []int{0}}}
	return &StoreRequest{
		Key:      key,
		Result:   &CachedResult{Rows: rows, Steps: []core.StepStat{{}}},
		Branches: 2,
		Steps:    []StepReg{{Table: tab, Step: step, Keys: []string{intKey(probe)}, StatIdx: 0}},
		Tables:   []TableVersion{{Table: tab, Version: tab.Version()}},
	}
}

func TestTemplateTierVersioningAndEviction(t *testing.T) {
	// Each template below costs len(text)*8 + 512 = 528 bytes; a 1700
	// byte budget holds three.
	c := New(1700, 0, false)
	put := func(text string, version uint64) {
		c.PutTemplate(&Template{Text: text, Version: version})
	}
	put("q1", 1)
	put("q2", 1)
	put("q3", 1)
	if _, ok := c.GetTemplate("q1", 1); !ok {
		t.Fatal("q1 should be cached")
	}
	// q1 was just touched, so admitting q4 must evict q2 (the LRU tail).
	put("q4", 1)
	if _, ok := c.GetTemplate("q2", 1); ok {
		t.Fatal("q2 should have been evicted as least recently used")
	}
	if _, ok := c.GetTemplate("q1", 1); !ok {
		t.Fatal("recently used q1 must survive the eviction")
	}
	// A catalog-version mismatch is a miss and drops the stale entry.
	if _, ok := c.GetTemplate("q3", 2); ok {
		t.Fatal("stale-version template must not be returned")
	}
	if _, ok := c.GetTemplate("q3", 1); ok {
		t.Fatal("stale-version template must have been dropped")
	}
	st := c.Stats()
	if st.TemplateBytes > 1700 {
		t.Fatalf("template tier holds %d bytes over the 1700 budget", st.TemplateBytes)
	}
	if st.TemplateEntries != 2 {
		t.Fatalf("template entries = %d, want 2 (q1 and q4; q2 evicted, q3 dropped stale)", st.TemplateEntries)
	}
}

func TestResultTierRequiresEnable(t *testing.T) {
	tab := newTestTable(t)
	con := &access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	c := New(0, 0, false)
	if c.Store(mkReq(tab, con, "k", 1, value.Row{value.NewInt(1)})) {
		t.Fatal("Store must fail while the result tier is off")
	}
	c.SetResults(true)
	if !c.Store(mkReq(tab, con, "k", 1, value.Row{value.NewInt(1)})) {
		t.Fatal("Store must succeed once enabled")
	}
	if _, ok := c.GetResult("k"); !ok {
		t.Fatal("stored entry must serve")
	}
	// Disabling drops every answer and detaches the observers.
	c.SetResults(false)
	c.SetResults(true)
	if _, ok := c.GetResult("k"); ok {
		t.Fatal("toggling the tier off must drop stored answers")
	}
}

func TestKeyDisjointMutationKeepsEntry(t *testing.T) {
	tab := newTestTable(t)
	con := &access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 100}
	c := New(0, 0, true)
	if !c.Store(mkReq(tab, con, "k", 1, value.Row{value.NewInt(10)})) {
		t.Fatal("store failed")
	}
	// A mutation under a key the entry never probed leaves it servable.
	if err := tab.Insert(value.Row{value.NewInt(2), value.NewInt(20)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult("k"); !ok {
		t.Fatal("key-disjoint insert must not invalidate the entry")
	}
	// A mutation under the probed key invalidates (the entry is not
	// patch-eligible here).
	if err := tab.Insert(value.Row{value.NewInt(1), value.NewInt(30)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetResult("k"); ok {
		t.Fatal("probed-key insert must invalidate the entry")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}

	// Same discipline for deletes.
	if !c.Store(mkReq(tab, con, "k2", 1, value.Row{value.NewInt(10)})) {
		t.Fatal("second store failed")
	}
	if n := tab.Delete(func(r value.Row) bool { return r[0].I == 2 }); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	if _, ok := c.GetResult("k2"); !ok {
		t.Fatal("key-disjoint delete must not invalidate the entry")
	}
	if n := tab.Delete(func(r value.Row) bool { return r[0].I == 1 && r[1].I == 30 }); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	if _, ok := c.GetResult("k2"); ok {
		t.Fatal("probed-key delete must invalidate the entry")
	}
}

func TestStoreRaceRejected(t *testing.T) {
	tab := newTestTable(t)
	con := &access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	c := New(0, 0, true)
	req := mkReq(tab, con, "k", 1, value.Row{value.NewInt(10)})
	// The table moves past the pre-execution version before Store runs:
	// the computed answer may already be stale and must be dropped.
	if err := tab.Insert(value.Row{value.NewInt(5), value.NewInt(50)}); err != nil {
		t.Fatal(err)
	}
	if c.Store(req) {
		t.Fatal("Store must reject an answer computed at an older table version")
	}
	st := c.Stats()
	if st.StoreRaces != 1 || st.Stores != 0 {
		t.Fatalf("storeRaces = %d stores = %d, want 1 and 0", st.StoreRaces, st.Stores)
	}
}

func TestBoundGuardInvalidatesOnWiden(t *testing.T) {
	tab := newTestTable(t)
	con := &access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	c := New(0, 0, true)
	if !c.Store(mkReq(tab, con, "k", 1, value.Row{value.NewInt(10)})) {
		t.Fatal("store failed")
	}
	if _, ok := c.GetResult("k"); !ok {
		t.Fatal("entry must serve before the bound changes")
	}
	// Auto-widening maintenance changes N in place without a catalog
	// bump; a widened bound can change the deduced bound and even the
	// greedy step order, so the entry must stop serving.
	con.N = 4
	if _, ok := c.GetResult("k"); ok {
		t.Fatal("entry must not serve after its constraint's bound widened")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestOutOfOrderEventsBuffered(t *testing.T) {
	tab := newTestTable(t)
	con := &access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 100}
	c := New(0, 0, true)
	if !c.Store(mkReq(tab, con, "k", 1, value.Row{value.NewInt(10)})) {
		t.Fatal("store failed")
	}
	c.mu.Lock()
	ts := c.tabs[tab]
	obs, base := ts.obs, ts.applied
	c.mu.Unlock()
	// Deliver version base+2 before base+1 (two racing writers): the
	// probed-key insert must be buffered, not dropped, and must apply —
	// invalidating the entry — once the gap closes.
	c.onMutation(obs, base+2, value.Row{value.NewInt(1), value.NewInt(99)}, nil)
	if st := c.Stats(); st.Invalidations != 0 {
		t.Fatal("gapped event must not apply before its predecessor")
	}
	c.onMutation(obs, base+1, value.Row{value.NewInt(7), value.NewInt(70)}, nil)
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d after the gap closed, want 1", st.Invalidations)
	}
}

// TestEvictionOrderGolden pins the exact eviction order of the result
// tier. Every structure the eviction path walks is a list, never a map,
// so the surviving key sequence is fully deterministic — this golden
// sequence is the regression harness for that property.
func TestEvictionOrderGolden(t *testing.T) {
	tab := newTestTable(t)
	con := &access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	// Each single-row entry costs 763 bytes (key 2 + overhead 512 + row
	// 64 + step stats 128 + probe key 57); a 2300 byte budget holds 3.
	c := New(0, 2300, true)
	for i := 1; i <= 3; i++ {
		if !c.Store(mkReq(tab, con, fmt.Sprintf("k%d", i), int64(i), value.Row{value.NewInt(int64(i))})) {
			t.Fatalf("store k%d failed", i)
		}
	}
	if _, ok := c.GetResult("k1"); !ok { // touch: LRU order is now k1,k3,k2
		t.Fatal("k1 must serve")
	}
	for i := 4; i <= 5; i++ {
		if !c.Store(mkReq(tab, con, fmt.Sprintf("k%d", i), int64(i), value.Row{value.NewInt(int64(i))})) {
			t.Fatalf("store k%d failed", i)
		}
	}
	if got, want := c.resultKeysLRU(), []string{"k5", "k4", "k1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LRU order after admissions = %v, want %v", got, want)
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (k2 then k3)", st.Evictions)
	}
	// Shrinking the budget evicts from the tail, preserving recency.
	c.SetLimits(0, 800)
	if got, want := c.resultKeysLRU(), []string{"k5"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LRU order after SetLimits = %v, want %v", got, want)
	}
	if st := c.Stats(); st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
}

func TestFlushAllDetachesObservers(t *testing.T) {
	tab := newTestTable(t)
	con := &access.Constraint{Rel: "r", X: []string{"a"}, Y: []string{"b"}, N: 3}
	c := New(0, 0, true)
	if !c.Store(mkReq(tab, con, "k", 1, value.Row{value.NewInt(10)})) {
		t.Fatal("store failed")
	}
	c.mu.Lock()
	oldObs := c.tabs[tab].obs
	c.mu.Unlock()
	c.FlushAll()
	if st := c.Stats(); st.Entries != 0 || st.TemplateEntries != 0 {
		t.Fatalf("FlushAll left entries=%d templates=%d", st.Entries, st.TemplateEntries)
	}
	// An event from the detached observer generation must be ignored
	// even if it is already in flight.
	c.onMutation(oldObs, tab.Version()+1, value.Row{value.NewInt(1), value.NewInt(2)}, nil)
	if st := c.Stats(); st.Invalidations != 1 {
		// FlushAll counts the dropped entry as one invalidation; the
		// stale event must not add more state.
		t.Fatalf("invalidations = %d, want 1 (the flush itself)", st.Invalidations)
	}
	c.mu.Lock()
	nTabs := len(c.tabs)
	c.mu.Unlock()
	if nTabs != 0 {
		t.Fatalf("FlushAll left %d attached tables", nTabs)
	}
}
