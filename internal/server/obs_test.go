package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/bounded-eval/beas/internal/obs"
)

// scrape fetches and parses /metrics, failing the test on any structural
// or lint error — every scrape must be valid exposition at all times.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	exp, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	if err := obs.Lint(exp); err != nil {
		t.Fatalf("linting /metrics: %v", err)
	}
	out := make(map[string]float64, len(exp.Samples))
	for _, s := range exp.Samples {
		out[s.Key()] = s.Value
	}
	return out
}

// TestMetricsEndpointDeltas: /metrics is valid Prometheus exposition and
// its counters move in lockstep with the query stats the client sees.
func TestMetricsEndpointDeltas(t *testing.T) {
	db := newOrdersDB(t, 2, 40)
	s := New(db, Config{BoundBudget: 100})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := scrape(t, ts.URL)

	res, er, status := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 1")
	if er != nil {
		t.Fatalf("status %d: %s", status, er.Error)
	}
	if res.stats == nil {
		t.Fatal("missing stats trailer")
	}
	// A rejected query moves the admission counter but not the results.
	if _, er, _ = mustRunQuery(t, ts.URL, "SELECT item FROM orders"); er == nil {
		t.Fatal("uncovered query was not rejected")
	}

	after := scrape(t, ts.URL)
	deltas := []struct {
		key  string
		want float64
	}{
		{"beas_queries_total", 2},
		{`beas_admission_total{outcome="admitted"}`, 1},
		{`beas_admission_total{outcome="rejected_uncovered"}`, 1},
		{`beas_query_results_total{outcome="canceled"}`, 0},
		{`beas_query_results_total{outcome="disconnected"}`, 0},
		{"beas_rows_streamed_total", float64(len(res.rows))},
		{"beas_tuples_fetched_total", float64(res.stats.TuplesFetched)},
		{`beas_query_mode_total{mode="bounded"}`, 1},
		{"beas_query_duration_seconds_count", 2},
		{`beas_stage_duration_seconds_count{stage="check"}`, 2},
		{`beas_stage_duration_seconds_count{stage="execute"}`, 1},
		{"beas_bound_uncovered_total", 1},
		{"beas_bound_accuracy_ratio_count", 1},
	}
	for _, d := range deltas {
		if got := after[d.key] - before[d.key]; got != d.want {
			t.Errorf("%s moved by %v, want %v", d.key, got, d.want)
		}
	}
	// The bound-accuracy ratio for this query is fetched/bound = 40/40;
	// it must land in the le=1 bucket, not +Inf (bound violated).
	if got := after[`beas_bound_accuracy_ratio_bucket{le="1"}`] - before[`beas_bound_accuracy_ratio_bucket{le="1"}`]; got != 1 {
		t.Errorf("bound-accuracy le=1 bucket moved by %v, want 1", got)
	}
	// DB-level and runtime families are wired into the same registry.
	for _, fam := range []string{"beas_plan_cache_misses_total", "beas_workers_max", "go_goroutines", "process_uptime_seconds"} {
		if _, ok := after[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
}

// TestStatsMatchesMetrics: /stats is a JSON view over the same registry.
func TestStatsMatchesMetrics(t *testing.T) {
	db := newOrdersDB(t, 1, 25)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, er, _ := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 0"); er != nil {
		t.Fatalf("query failed: %s", er.Error)
	}
	m := scrape(t, ts.URL)
	st := s.Stats()
	if float64(st.Queries) != m["beas_queries_total"] {
		t.Errorf("stats.Queries %d != metrics %v", st.Queries, m["beas_queries_total"])
	}
	if float64(st.RowsStreamed) != m["beas_rows_streamed_total"] {
		t.Errorf("stats.RowsStreamed %d != metrics %v", st.RowsStreamed, m["beas_rows_streamed_total"])
	}
	var histTotal uint64
	for _, b := range st.BoundHistogram {
		histTotal += b.Count
	}
	if float64(histTotal) != m[`beas_query_bound_tuples_bucket{le="+Inf"}`] {
		t.Errorf("bound histogram total %d != +Inf bucket %v", histTotal, m[`beas_query_bound_tuples_bucket{le="+Inf"}`])
	}
}

// TestTraceEndpoint: a traced query advertises its trace ID and the
// retained span tree covers the full lifecycle.
func TestTraceEndpoint(t *testing.T) {
	db := newOrdersDB(t, 1, 30)
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 1})
	s := New(db, Config{Tracer: tracer})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{SQL: "SELECT item FROM orders WHERE cust = 0"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Header.Get("X-Beas-Trace-Id")
	io := new(bytes.Buffer)
	io.ReadFrom(resp.Body)
	resp.Body.Close()
	if id == "" {
		t.Fatal("no X-Beas-Trace-Id header on a traced query")
	}

	tresp, err := http.Get(ts.URL + "/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status %d", id, tresp.StatusCode)
	}
	var tree obs.TraceJSON
	if err := json.NewDecoder(tresp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	if tree.Root == nil || tree.Root.Name != "query" {
		t.Fatalf("root span = %+v", tree.Root)
	}
	names := map[string]bool{}
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		names[n.Name] = true
		if strings.HasPrefix(n.Name, "fetch ") {
			names["fetch"] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	for _, want := range []string{"parse", "check", "admission", "fetch", "stream"} {
		if !names[want] {
			t.Errorf("span %q missing from trace (got %v)", want, names)
		}
	}

	// The listing knows the trace too.
	lresp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var recent []obs.TraceSummary
	if err := json.NewDecoder(lresp.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recent {
		if r.ID == id {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s not in /trace listing", id)
	}
}

func TestTraceDisabled(t *testing.T) {
	db := newOrdersDB(t, 1, 5)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{SQL: "SELECT item FROM orders WHERE cust = 0"})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Beas-Trace-Id"); got != "" {
		t.Errorf("untraced server sent X-Beas-Trace-Id %q", got)
	}
	tresp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /trace with tracing off: status %d, want 404", tresp.StatusCode)
	}
}

// TestSlowQueryLog: a query over the fetch threshold lands in the log
// with its statement, bound, trace ID and per-step statistics.
func TestSlowQueryLog(t *testing.T) {
	db := newOrdersDB(t, 1, 50)
	var buf bytes.Buffer
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 0}) // retention only via force-keep
	s := New(db, Config{
		Tracer:       tracer,
		SlowQueryLog: obs.NewSlowLog(&buf, 0, 10, nil), // fetch threshold only
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, er, _ := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 0"); er != nil {
		t.Fatalf("query failed: %s", er.Error)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query entry for a 50-tuple fetch over a 10-tuple threshold")
	}
	var e obs.SlowEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("slow log line is not JSON: %v\n%s", err, line)
	}
	if e.SQL == "" || e.Outcome != "ok" || e.Mode != "bounded" {
		t.Errorf("entry = %+v", e)
	}
	if e.Fetched != 50 || e.Bound == 0 {
		t.Errorf("fetched=%d bound=%d", e.Fetched, e.Bound)
	}
	if len(e.Steps) == 0 || e.Steps[0].Constraint == "" {
		t.Errorf("steps = %+v", e.Steps)
	}
	if e.TraceID == "" {
		t.Error("slow entry has no trace ID despite an installed tracer")
	}
	// Slow queries are force-kept even at sample rate 0.
	if tracer.Get(e.TraceID) == nil {
		t.Error("slow query's trace was not retained")
	}
	if s.Stats().SlowQueries != 1 {
		t.Errorf("SlowQueries = %d, want 1", s.Stats().SlowQueries)
	}
}

// failingWriter lets the first write (the NDJSON header) through, then
// fails — a client that vanished mid-stream without cancelling.
type failingWriter struct {
	hdr    http.Header
	writes int
}

func (f *failingWriter) Header() http.Header {
	if f.hdr == nil {
		f.hdr = http.Header{}
	}
	return f.hdr
}
func (f *failingWriter) WriteHeader(int) {}
func (f *failingWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > 1 {
		return 0, fmt.Errorf("broken pipe")
	}
	return len(p), nil
}

// TestDisconnectAccounting: rows written to a vanished client count as
// abandoned, not streamed, and the outcome is disconnected — not
// canceled, not failed.
func TestDisconnectAccounting(t *testing.T) {
	db := newOrdersDB(t, 1, 60)
	s := New(db, Config{})

	w := &failingWriter{}
	s.streamQuery(context.Background(), w, "SELECT item FROM orders WHERE cust = 0", decideAdmit, time.Now(), nil)

	st := s.Stats()
	if st.Disconnected != 1 {
		t.Errorf("Disconnected = %d, want 1", st.Disconnected)
	}
	if st.Canceled != 0 || st.Failed != 0 {
		t.Errorf("Canceled=%d Failed=%d, want 0/0", st.Canceled, st.Failed)
	}
	if st.RowsStreamed != 0 {
		t.Errorf("RowsStreamed = %d, want 0 (stream never completed)", st.RowsStreamed)
	}
	if st.RowsAbandoned == 0 {
		t.Error("RowsAbandoned = 0, want the rows written before the disconnect")
	}
	// The fetch work that preceded the disconnect is still accounted.
	if st.TuplesFetched == 0 {
		t.Error("TuplesFetched = 0, want partial work folded in")
	}
}

// TestHealthzFields: the liveness endpoint reports uptime (and, for
// durable stores, WAL position — covered in restart_test.go).
func TestHealthzFields(t *testing.T) {
	db := newOrdersDB(t, 1, 5)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	time.Sleep(5 * time.Millisecond)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	up, ok := h["uptime_seconds"].(float64)
	if !ok || up <= 0 {
		t.Errorf("uptime_seconds = %v", h["uptime_seconds"])
	}
	if _, present := h["wal_last_lsn"]; present {
		t.Error("in-memory database reports wal_last_lsn")
	}
}
