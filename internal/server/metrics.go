package server

import (
	"sync/atomic"
	"time"

	beas "github.com/bounded-eval/beas"
)

// boundBuckets are the upper edges of the deduced-bound histogram, in
// tuples. A query's a-priori access bound M lands in the first bucket
// whose edge is ≥ M; queries the checker cannot bound at all (not
// covered) are counted separately. Powers of ten keep the histogram
// readable across the orders of magnitude access schemas span.
var boundBuckets = []uint64{0, 1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

var boundLabels = []string{"0", "1", "10", "100", "1e3", "1e4", "1e5", "1e6", "1e7", "1e8", "+Inf"}

// metrics is the server's monitoring state. Everything is an atomic so
// concurrent request handlers update it without a lock; Snapshot reads
// are consistent enough for monitoring (counters may be mid-update
// relative to each other, never torn individually).
type metrics struct {
	queries           atomic.Uint64 // /query requests carrying a statement (parse failures count as failed)
	admitted          atomic.Uint64 // requests that reached execution
	rejectedBudget    atomic.Uint64 // covered, but deduced bound exceeded the budget
	rejectedUncovered atomic.Uint64 // not covered and AllowUncovered is off
	rejectedBusy      atomic.Uint64 // worker pool and wait queue both full
	downgraded        atomic.Uint64 // over-budget, rerouted to approximation
	queued            atomic.Uint64 // over-budget, serialised through the heavy lane
	canceled          atomic.Uint64 // client gone or deadline hit mid-execution
	failed            atomic.Uint64 // execution errors other than cancellation

	rowsStreamed  atomic.Int64
	tuplesFetched atomic.Int64 // partial tuples via constraint indices (Σ |D_Q|)
	tuplesScanned atomic.Int64 // base rows read by conventional scans

	modeBounded      atomic.Uint64
	modePartial      atomic.Uint64
	modeConventional atomic.Uint64
	modeEmpty        atomic.Uint64

	boundHist      [11]atomic.Uint64 // parallel to boundLabels
	boundUncovered atomic.Uint64
}

// observeBound files a checker verdict into the bound histogram.
func (m *metrics) observeBound(info *beas.CheckInfo) {
	if !info.Covered {
		m.boundUncovered.Add(1)
		return
	}
	bound := info.Bound
	if info.EmptyGuaranteed {
		bound = 0
	}
	for i, edge := range boundBuckets {
		if bound <= edge {
			m.boundHist[i].Add(1)
			return
		}
	}
	m.boundHist[len(boundBuckets)].Add(1)
}

// observeResult folds a finished (or cancelled) execution's statistics
// into the counters.
func (m *metrics) observeResult(st *beas.Stats, rows int64) {
	m.rowsStreamed.Add(rows)
	m.tuplesFetched.Add(st.TuplesFetched)
	m.tuplesScanned.Add(st.TuplesScanned)
	switch st.Mode {
	case beas.ModeBounded:
		m.modeBounded.Add(1)
	case beas.ModePartial:
		m.modePartial.Add(1)
	case beas.ModeConventional:
		m.modeConventional.Add(1)
	case beas.ModeEmpty:
		m.modeEmpty.Add(1)
	}
}

// BoundBucket is one histogram bucket of deduced access bounds.
type BoundBucket struct {
	LE    string `json:"le"` // inclusive upper edge ("+Inf" = overflow)
	Count uint64 `json:"count"`
}

// StatsSnapshot is the JSON shape of the /stats endpoint.
type StatsSnapshot struct {
	Queries           uint64 `json:"queries"`
	Admitted          uint64 `json:"admitted"`
	RejectedBudget    uint64 `json:"rejectedBudget"`
	RejectedUncovered uint64 `json:"rejectedUncovered"`
	RejectedBusy      uint64 `json:"rejectedBusy"`
	Downgraded        uint64 `json:"downgraded"`
	Queued            uint64 `json:"queued"`
	Canceled          uint64 `json:"canceled"`
	Failed            uint64 `json:"failed"`

	RowsStreamed  int64 `json:"rowsStreamed"`
	TuplesFetched int64 `json:"tuplesFetched"`
	TuplesScanned int64 `json:"tuplesScanned"`

	Modes map[string]uint64 `json:"modes"`

	// BoundHistogram buckets every checked query by its deduced access
	// bound; BoundUncovered counts queries with no bound at all.
	BoundHistogram []BoundBucket `json:"boundHistogram"`
	BoundUncovered uint64        `json:"boundUncovered"`

	PlanCacheHits   uint64 `json:"planCacheHits"`
	PlanCacheMisses uint64 `json:"planCacheMisses"`

	// Parallelism is the served database's intra-query parallelism: how
	// many worker goroutines a single bounded plan or hash join may use
	// (1 = serial).
	Parallelism int `json:"parallelism"`

	// Optimizer reports the cost-based optimizer's setting and the
	// statistics catalog it plans with.
	Optimizer OptimizerSnapshot `json:"optimizer"`

	// Durability is present when the served database is backed by the
	// WAL + snapshot storage engine.
	Durability *DurabilitySnapshot `json:"durability,omitempty"`
}

// OptimizerSnapshot is the optimizer + statistics section of /stats.
type OptimizerSnapshot struct {
	Enabled bool `json:"enabled"`
	// Tables and Constraints dump the statistics catalog: exact row
	// counts and the live per-constraint fan-out distributions
	// (declared worst-case bound N next to the observed mean/p50/p95/max).
	Tables      []TableStatsJSON      `json:"tables"`
	Constraints []ConstraintStatsJSON `json:"constraints"`
}

// TableStatsJSON is one table of the statistics-catalog dump.
type TableStatsJSON struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

// ConstraintStatsJSON is one constraint of the statistics-catalog dump.
type ConstraintStatsJSON struct {
	Spec         string  `json:"spec"`
	Bound        int     `json:"bound"`
	DistinctKeys int64   `json:"distinctKeys"`
	Tuples       int64   `json:"tuples"`
	MeanFanout   float64 `json:"meanFanout"`
	P50Fanout    int     `json:"p50Fanout"`
	P95Fanout    int     `json:"p95Fanout"`
	MaxFanout    int     `json:"maxFanout"`
}

// DurabilitySnapshot is the storage-engine section of /stats.
type DurabilitySnapshot struct {
	Dir                  string  `json:"dir"`
	WALBytes             int64   `json:"walBytes"`
	LastLSN              uint64  `json:"lastLSN"`
	SnapshotLSN          uint64  `json:"snapshotLSN"`
	RecordsSinceSnapshot int     `json:"recordsSinceSnapshot"`
	Snapshots            uint64  `json:"snapshots"`
	LastSnapshotAgeSec   float64 `json:"lastSnapshotAgeSeconds,omitempty"`
	RecoveryReplayed     int     `json:"recoveryReplayedRecords"`
	RecoveryDurationMS   float64 `json:"recoveryDurationMs"`
	RecoveryTornBytes    int64   `json:"recoveryTruncatedBytes"`
	RecoveryConforms     bool    `json:"recoveryConforms"`
}

// snapshot captures the counters. db supplies the plan-cache numbers.
func (m *metrics) snapshot(db *beas.DB) StatsSnapshot {
	s := StatsSnapshot{
		Queries:           m.queries.Load(),
		Admitted:          m.admitted.Load(),
		RejectedBudget:    m.rejectedBudget.Load(),
		RejectedUncovered: m.rejectedUncovered.Load(),
		RejectedBusy:      m.rejectedBusy.Load(),
		Downgraded:        m.downgraded.Load(),
		Queued:            m.queued.Load(),
		Canceled:          m.canceled.Load(),
		Failed:            m.failed.Load(),
		RowsStreamed:      m.rowsStreamed.Load(),
		TuplesFetched:     m.tuplesFetched.Load(),
		TuplesScanned:     m.tuplesScanned.Load(),
		Modes: map[string]uint64{
			string(beas.ModeBounded):      m.modeBounded.Load(),
			string(beas.ModePartial):      m.modePartial.Load(),
			string(beas.ModeConventional): m.modeConventional.Load(),
			string(beas.ModeEmpty):        m.modeEmpty.Load(),
		},
		BoundUncovered: m.boundUncovered.Load(),
	}
	s.PlanCacheHits, s.PlanCacheMisses = db.PlanCacheStats()
	s.Parallelism = db.Parallelism()
	s.Optimizer.Enabled = db.OptimizerEnabled()
	tables, cons := db.DataStats()
	for _, t := range tables {
		s.Optimizer.Tables = append(s.Optimizer.Tables, TableStatsJSON{Name: t.Name, Rows: t.Rows})
	}
	for _, c := range cons {
		s.Optimizer.Constraints = append(s.Optimizer.Constraints, ConstraintStatsJSON{
			Spec:         c.Spec,
			Bound:        c.Bound,
			DistinctKeys: c.DistinctKeys,
			Tuples:       c.Tuples,
			MeanFanout:   c.MeanFanout,
			P50Fanout:    c.P50Fanout,
			P95Fanout:    c.P95Fanout,
			MaxFanout:    c.MaxFanout,
		})
	}
	s.BoundHistogram = make([]BoundBucket, len(boundLabels))
	for i, l := range boundLabels {
		s.BoundHistogram[i] = BoundBucket{LE: l, Count: m.boundHist[i].Load()}
	}
	if d := db.Durability(); d.Durable {
		ds := &DurabilitySnapshot{
			Dir:                  d.Dir,
			WALBytes:             d.WALBytes,
			LastLSN:              d.LastLSN,
			SnapshotLSN:          d.SnapshotLSN,
			RecordsSinceSnapshot: d.RecordsSinceSnapshot,
			Snapshots:            d.Snapshots,
			RecoveryReplayed:     d.Recovery.ReplayedRecords,
			RecoveryDurationMS:   float64(d.Recovery.Duration) / float64(time.Millisecond),
			RecoveryTornBytes:    d.Recovery.TruncatedBytes,
			RecoveryConforms:     d.Recovery.Conforms,
		}
		if !d.LastSnapshot.IsZero() {
			ds.LastSnapshotAgeSec = time.Since(d.LastSnapshot).Seconds()
		}
		s.Durability = ds
	}
	return s
}
