package server

import (
	"time"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/obs"
)

// boundEdges are the upper edges of the deduced-bound histogram, in
// tuples. A query's a-priori access bound M lands in the first bucket
// whose edge is ≥ M; queries the checker cannot bound at all (not
// covered) are counted separately. Powers of ten keep the histogram
// readable across the orders of magnitude access schemas span.
var boundEdges = []float64{0, 1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

var boundLabels = []string{"0", "1", "10", "100", "1e3", "1e4", "1e5", "1e6", "1e7", "1e8", "+Inf"}

// metrics is the server's monitoring state, backed by an obs.Registry so
// the same counters serve both the JSON /stats view and the Prometheus
// /metrics exposition. Registration is get-or-create, so servers sharing
// a registry share the series. Everything is lock-free on the hot path;
// snapshot reads are consistent enough for monitoring (counters may be
// mid-update relative to each other, never torn individually).
type metrics struct {
	reg *obs.Registry

	queries           *obs.Counter // /query requests carrying a statement (parse failures count as failed)
	admitted          *obs.Counter // requests that reached execution
	rejectedBudget    *obs.Counter // covered, but deduced bound exceeded the budget
	rejectedUncovered *obs.Counter // not covered and AllowUncovered is off
	rejectedBusy      *obs.Counter // worker pool and wait queue both full
	downgraded        *obs.Counter // over-budget, rerouted to approximation
	queued            *obs.Counter // over-budget, serialised through the heavy lane

	canceled     *obs.Counter // context cancelled or deadline hit mid-execution
	failed       *obs.Counter // execution errors other than cancellation
	disconnected *obs.Counter // client stopped reading mid-stream (write error)

	rowsStreamed  *obs.Counter // rows delivered on successfully completed streams
	rowsAbandoned *obs.Counter // rows written before a cancel/disconnect/failure
	tuplesFetched *obs.Counter // partial tuples via constraint indices (Σ |D_Q|)
	tuplesScanned *obs.Counter // base rows read by conventional scans

	modeBounded      *obs.Counter
	modePartial      *obs.Counter
	modeConventional *obs.Counter
	modeEmpty        *obs.Counter

	boundHist      *obs.Histogram // deduced access bound M per checked query
	boundUncovered *obs.Counter
	// boundRatio is the bound-accuracy signal: actual fetched / deduced
	// bound M per completed bounded query. Ratios near 0 mean the bound
	// was loose; a ratio in the +Inf bucket would mean the a-priori
	// guarantee was violated.
	boundRatio *obs.Histogram

	latency      *obs.Histogram // end-to-end /query latency, seconds
	stageCheck   *obs.Histogram // parse + check + admission, seconds
	stageExecute *obs.Histogram // execution + streaming, seconds

	slowLogged    *obs.Counter
	slowWriteErrs *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	adm := func(outcome string) *obs.Counter {
		return reg.Counter("beas_admission_total", "Admission decisions by outcome.", obs.Labels{"outcome": outcome})
	}
	res := func(outcome string) *obs.Counter {
		return reg.Counter("beas_query_results_total", "Executed queries by terminal outcome.", obs.Labels{"outcome": outcome})
	}
	mode := func(m string) *obs.Counter {
		return reg.Counter("beas_query_mode_total", "Completed executions by evaluation mode.", obs.Labels{"mode": m})
	}
	stage := func(st string) *obs.Histogram {
		return reg.Histogram("beas_stage_duration_seconds", "Per-stage query latency in seconds.", obs.LatencyBuckets, obs.Labels{"stage": st})
	}
	return &metrics{
		reg:               reg,
		queries:           reg.Counter("beas_queries_total", "Query requests carrying a statement.", nil),
		admitted:          adm("admitted"),
		rejectedBudget:    adm("rejected_budget"),
		rejectedUncovered: adm("rejected_uncovered"),
		rejectedBusy:      adm("rejected_busy"),
		downgraded:        adm("downgraded"),
		queued:            adm("queued"),
		canceled:          res("canceled"),
		failed:            res("failed"),
		disconnected:      res("disconnected"),
		rowsStreamed:      reg.Counter("beas_rows_streamed_total", "Result rows delivered on successfully completed streams.", nil),
		rowsAbandoned:     reg.Counter("beas_rows_abandoned_total", "Result rows written to streams that ended in cancel, disconnect or failure.", nil),
		tuplesFetched:     reg.Counter("beas_tuples_fetched_total", "Partial tuples fetched through constraint indices.", nil),
		tuplesScanned:     reg.Counter("beas_tuples_scanned_total", "Base rows read by conventional scans.", nil),
		modeBounded:       mode(string(beas.ModeBounded)),
		modePartial:       mode(string(beas.ModePartial)),
		modeConventional:  mode(string(beas.ModeConventional)),
		modeEmpty:         mode(string(beas.ModeEmpty)),
		boundHist:         reg.Histogram("beas_query_bound_tuples", "Deduced a-priori access bound M per checked query, in tuples.", boundEdges, nil),
		boundUncovered:    reg.Counter("beas_bound_uncovered_total", "Checked queries with no deduced bound (not covered).", nil),
		boundRatio:        reg.Histogram("beas_bound_accuracy_ratio", "Actual fetched tuples / deduced bound M per completed bounded query.", obs.RatioBuckets, nil),
		latency:           reg.Histogram("beas_query_duration_seconds", "End-to-end query latency in seconds.", obs.LatencyBuckets, nil),
		stageCheck:        stage("check"),
		stageExecute:      stage("execute"),
		slowLogged:        reg.Counter("beas_slow_queries_total", "Queries written to the slow-query log.", nil),
		slowWriteErrs:     reg.Counter("beas_slow_log_write_errors_total", "Slow-query log entries lost to write failures.", nil),
	}
}

// observeBound files a checker verdict into the bound histogram.
func (m *metrics) observeBound(info *beas.CheckInfo) {
	if !info.Covered {
		m.boundUncovered.Inc()
		return
	}
	if info.EmptyGuaranteed {
		m.boundHist.Observe(0)
		return
	}
	m.boundHist.Observe(float64(info.Bound))
}

// observeResult folds a finished (or cancelled) execution's statistics
// into the counters. delivered says whether the stream completed and the
// client got every row; rows written to an abandoned stream count
// separately, so the streamed-row counter measures useful work only.
func (m *metrics) observeResult(st *beas.Stats, rows int64, delivered bool) {
	if delivered {
		m.rowsStreamed.Add(rows)
	} else {
		m.rowsAbandoned.Add(rows)
	}
	m.tuplesFetched.Add(st.TuplesFetched)
	m.tuplesScanned.Add(st.TuplesScanned)
	if st.Covered && st.Bound > 0 && st.TuplesFetched > 0 {
		m.boundRatio.Observe(float64(st.TuplesFetched) / float64(st.Bound))
	}
	switch st.Mode {
	case beas.ModeBounded:
		m.modeBounded.Inc()
	case beas.ModePartial:
		m.modePartial.Inc()
	case beas.ModeConventional:
		m.modeConventional.Inc()
	case beas.ModeEmpty:
		m.modeEmpty.Inc()
	}
}

// BoundBucket is one histogram bucket of deduced access bounds.
type BoundBucket struct {
	LE    string `json:"le"` // inclusive upper edge ("+Inf" = overflow)
	Count uint64 `json:"count"`
}

// StatsSnapshot is the JSON shape of the /stats endpoint — a view over
// the same registry /metrics renders.
type StatsSnapshot struct {
	Queries           uint64 `json:"queries"`
	Admitted          uint64 `json:"admitted"`
	RejectedBudget    uint64 `json:"rejectedBudget"`
	RejectedUncovered uint64 `json:"rejectedUncovered"`
	RejectedBusy      uint64 `json:"rejectedBusy"`
	Downgraded        uint64 `json:"downgraded"`
	Queued            uint64 `json:"queued"`
	Canceled          uint64 `json:"canceled"`
	Failed            uint64 `json:"failed"`
	Disconnected      uint64 `json:"disconnected"`

	RowsStreamed  int64 `json:"rowsStreamed"`
	RowsAbandoned int64 `json:"rowsAbandoned"`
	TuplesFetched int64 `json:"tuplesFetched"`
	TuplesScanned int64 `json:"tuplesScanned"`

	Modes map[string]uint64 `json:"modes"`

	// BoundHistogram buckets every checked query by its deduced access
	// bound; BoundUncovered counts queries with no bound at all.
	BoundHistogram []BoundBucket `json:"boundHistogram"`
	BoundUncovered uint64        `json:"boundUncovered"`

	// SlowQueries counts entries written to the slow-query log;
	// SlowLogWriteErrors counts entries lost to failed writes.
	SlowQueries        uint64 `json:"slowQueries"`
	SlowLogWriteErrors uint64 `json:"slowLogWriteErrors"`

	// Digests is present when the served database keeps workload
	// digests; the aggregates themselves live at /digests.
	Digests *DigestsSnapshot `json:"digests,omitempty"`

	// Capture is present when the flight recorder is on.
	Capture *CaptureSnapshot `json:"capture,omitempty"`

	PlanCacheHits   uint64 `json:"planCacheHits"`
	PlanCacheMisses uint64 `json:"planCacheMisses"`

	// ResultCache is the semantic result cache section: the template
	// (plan) tier is always live, the result tier only when enabled.
	ResultCache ResultCacheSnapshot `json:"resultCache"`

	// Parallelism is the served database's intra-query parallelism: how
	// many worker goroutines a single bounded plan or hash join may use
	// (1 = serial).
	Parallelism int `json:"parallelism"`

	// Optimizer reports the cost-based optimizer's setting and the
	// statistics catalog it plans with.
	Optimizer OptimizerSnapshot `json:"optimizer"`

	// Durability is present when the served database is backed by the
	// WAL + snapshot storage engine.
	Durability *DurabilitySnapshot `json:"durability,omitempty"`
}

// ResultCacheSnapshot is the semantic-result-cache section of /stats.
type ResultCacheSnapshot struct {
	Enabled       bool   `json:"enabled"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Stores        uint64 `json:"stores"`
	Patches       uint64 `json:"patches"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	TemplateBytes int64  `json:"templateBytes"`
}

// OptimizerSnapshot is the optimizer + statistics section of /stats.
type OptimizerSnapshot struct {
	Enabled bool `json:"enabled"`
	// Tables and Constraints dump the statistics catalog: exact row
	// counts and the live per-constraint fan-out distributions
	// (declared worst-case bound N next to the observed mean/p50/p95/max).
	Tables      []TableStatsJSON      `json:"tables"`
	Constraints []ConstraintStatsJSON `json:"constraints"`
}

// TableStatsJSON is one table of the statistics-catalog dump.
type TableStatsJSON struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

// ConstraintStatsJSON is one constraint of the statistics-catalog dump.
type ConstraintStatsJSON struct {
	Spec         string  `json:"spec"`
	Bound        int     `json:"bound"`
	DistinctKeys int64   `json:"distinctKeys"`
	Tuples       int64   `json:"tuples"`
	MeanFanout   float64 `json:"meanFanout"`
	P50Fanout    int     `json:"p50Fanout"`
	P95Fanout    int     `json:"p95Fanout"`
	MaxFanout    int     `json:"maxFanout"`
}

// DigestsSnapshot is the workload-digest section of /stats.
type DigestsSnapshot struct {
	Entries        int     `json:"entries"`
	Observations   uint64  `json:"observations"`
	Evictions      uint64  `json:"evictions"`
	DriftThreshold float64 `json:"driftThreshold"`
	DriftFlagged   int     `json:"driftFlagged"`
}

// CaptureSnapshot is the flight-recorder section of /stats.
type CaptureSnapshot struct {
	Dir         string `json:"dir"`
	Records     uint64 `json:"records"`
	Bytes       int64  `json:"bytes"`
	Segments    int    `json:"segments"`
	Rotations   uint64 `json:"rotations"`
	WriteErrors uint64 `json:"writeErrors"`
}

// DurabilitySnapshot is the storage-engine section of /stats.
type DurabilitySnapshot struct {
	Dir                  string  `json:"dir"`
	WALBytes             int64   `json:"walBytes"`
	LastLSN              uint64  `json:"lastLSN"`
	SnapshotLSN          uint64  `json:"snapshotLSN"`
	RecordsSinceSnapshot int     `json:"recordsSinceSnapshot"`
	Snapshots            uint64  `json:"snapshots"`
	LastSnapshotAgeSec   float64 `json:"lastSnapshotAgeSeconds,omitempty"`
	RecoveryReplayed     int     `json:"recoveryReplayedRecords"`
	RecoveryDurationMS   float64 `json:"recoveryDurationMs"`
	RecoveryTornBytes    int64   `json:"recoveryTruncatedBytes"`
	RecoveryConforms     bool    `json:"recoveryConforms"`
}

func cval(c *obs.Counter) uint64 { return uint64(c.Value()) }

// snapshot captures the counters. db supplies the plan-cache numbers.
func (m *metrics) snapshot(db *beas.DB) StatsSnapshot {
	s := StatsSnapshot{
		Queries:           cval(m.queries),
		Admitted:          cval(m.admitted),
		RejectedBudget:    cval(m.rejectedBudget),
		RejectedUncovered: cval(m.rejectedUncovered),
		RejectedBusy:      cval(m.rejectedBusy),
		Downgraded:        cval(m.downgraded),
		Queued:            cval(m.queued),
		Canceled:          cval(m.canceled),
		Failed:            cval(m.failed),
		Disconnected:      cval(m.disconnected),
		RowsStreamed:      m.rowsStreamed.Value(),
		RowsAbandoned:     m.rowsAbandoned.Value(),
		TuplesFetched:     m.tuplesFetched.Value(),
		TuplesScanned:     m.tuplesScanned.Value(),
		Modes: map[string]uint64{
			string(beas.ModeBounded):      cval(m.modeBounded),
			string(beas.ModePartial):      cval(m.modePartial),
			string(beas.ModeConventional): cval(m.modeConventional),
			string(beas.ModeEmpty):        cval(m.modeEmpty),
		},
		BoundUncovered:     cval(m.boundUncovered),
		SlowQueries:        cval(m.slowLogged),
		SlowLogWriteErrors: cval(m.slowWriteErrs),
	}
	if d := db.Digests(); d != nil {
		s.Digests = &DigestsSnapshot{
			Entries:        d.Len(),
			Observations:   d.Observations(),
			Evictions:      d.Evictions(),
			DriftThreshold: d.DriftThreshold(),
			DriftFlagged:   d.DriftCount(),
		}
	}
	s.PlanCacheHits, s.PlanCacheMisses = db.PlanCacheStats()
	rc := db.ResultCacheStats()
	s.ResultCache = ResultCacheSnapshot{
		Enabled:       db.ResultCacheEnabled(),
		Hits:          rc.Hits,
		Misses:        rc.Misses,
		Stores:        rc.Stores,
		Patches:       rc.Patches,
		Invalidations: rc.Invalidations,
		Evictions:     rc.Evictions,
		Entries:       rc.Entries,
		Bytes:         rc.Bytes,
		TemplateBytes: rc.TemplateBytes,
	}
	s.Parallelism = db.Parallelism()
	s.Optimizer.Enabled = db.OptimizerEnabled()
	tables, cons := db.DataStats()
	for _, t := range tables {
		s.Optimizer.Tables = append(s.Optimizer.Tables, TableStatsJSON{Name: t.Name, Rows: t.Rows})
	}
	for _, c := range cons {
		s.Optimizer.Constraints = append(s.Optimizer.Constraints, ConstraintStatsJSON{
			Spec:         c.Spec,
			Bound:        c.Bound,
			DistinctKeys: c.DistinctKeys,
			Tuples:       c.Tuples,
			MeanFanout:   c.MeanFanout,
			P50Fanout:    c.P50Fanout,
			P95Fanout:    c.P95Fanout,
			MaxFanout:    c.MaxFanout,
		})
	}
	buckets := m.boundHist.Buckets()
	s.BoundHistogram = make([]BoundBucket, len(boundLabels))
	for i, l := range boundLabels {
		s.BoundHistogram[i] = BoundBucket{LE: l, Count: uint64(buckets[i])}
	}
	if d := db.Durability(); d.Durable {
		ds := &DurabilitySnapshot{
			Dir:                  d.Dir,
			WALBytes:             d.WALBytes,
			LastLSN:              d.LastLSN,
			SnapshotLSN:          d.SnapshotLSN,
			RecordsSinceSnapshot: d.RecordsSinceSnapshot,
			Snapshots:            d.Snapshots,
			RecoveryReplayed:     d.Recovery.ReplayedRecords,
			RecoveryDurationMS:   float64(d.Recovery.Duration) / float64(time.Millisecond),
			RecoveryTornBytes:    d.Recovery.TruncatedBytes,
			RecoveryConforms:     d.Recovery.Conforms,
		}
		if !d.LastSnapshot.IsZero() {
			ds.LastSnapshotAgeSec = time.Since(d.LastSnapshot).Seconds()
		}
		s.Durability = ds
	}
	return s
}
