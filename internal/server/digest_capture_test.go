package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/obs"
)

// TestTraceIDOnErrorResponses: every response carries X-Beas-Trace-Id
// when tracing is on — including requests rejected before execution
// (malformed bodies, parse errors, admission rejections), so a client
// error report always names a retained trace.
func TestTraceIDOnErrorResponses(t *testing.T) {
	db := newOrdersDB(t, 1, 5)
	tracer := obs.NewTracer(obs.TracerOptions{SampleRate: 0}) // force-keep only
	s := New(db, Config{Tracer: tracer})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	cases := []struct {
		name string
		path string
		body string
	}{
		{"malformed query body", "/query", `{"sql": `},
		{"parse error", "/query", `{"sql": "SELEC nonsense"}`},
		{"uncovered rejection", "/query", `{"sql": "SELECT item FROM orders"}`},
		{"malformed explain body", "/explain", `not json`},
		{"empty explain sql", "/explain", `{}`},
	}
	for _, c := range cases {
		resp := post(c.path, c.body)
		if resp.StatusCode < 400 || resp.StatusCode > 599 {
			t.Errorf("%s: status %d, want an error status", c.name, resp.StatusCode)
			continue
		}
		id := resp.Header.Get("X-Beas-Trace-Id")
		if id == "" {
			t.Errorf("%s (status %d): no X-Beas-Trace-Id header", c.name, resp.StatusCode)
			continue
		}
		// Error traces are force-kept even at sample rate 0.
		if tracer.Get(id) == nil {
			t.Errorf("%s: trace %s not retained", c.name, id)
		}
	}
}

// digestsBody mirrors the /digests list response.
type digestsBody struct {
	DriftThreshold float64              `json:"driftThreshold"`
	Observations   uint64               `json:"observations"`
	Evictions      uint64               `json:"evictions"`
	Digests        []obs.DigestSnapshot `json:"digests"`
}

// TestDigestsEndpoint: executed queries surface in /digests grouped by
// fingerprint, individual digests resolve at /digests/<id>, and the
// digest gauges land in /metrics and /stats.
func TestDigestsEndpoint(t *testing.T) {
	db := newOrdersDB(t, 2, 10)
	db.SetDigests(beas.NewDigestSet(8))
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The first two share a canonical template (the literal is a
	// parameter), so they fold into one digest; the third statement is
	// structurally different and gets its own.
	for _, sql := range []string{
		"SELECT item FROM orders WHERE cust = 0",
		"SELECT item FROM orders WHERE cust = 1",
		"SELECT cust, item FROM orders WHERE cust = 0",
	} {
		if _, er, status := mustRunQuery(t, ts.URL, sql); er != nil {
			t.Fatalf("query %q: status %d: %s", sql, status, er.Error)
		}
	}

	resp, err := http.Get(ts.URL + "/digests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body digestsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Observations != 3 {
		t.Errorf("observations = %d, want 3", body.Observations)
	}
	if body.DriftThreshold != obs.DefaultDriftThreshold {
		t.Errorf("driftThreshold = %v", body.DriftThreshold)
	}
	// The two cust=0 calls share one digest; cust=1 is its own.
	if len(body.Digests) != 2 {
		t.Fatalf("digests = %d entries, want 2: %+v", len(body.Digests), body.Digests)
	}
	var top obs.DigestSnapshot
	for _, d := range body.Digests {
		if d.Calls == 2 {
			top = d
		}
	}
	if top.ID == "" {
		t.Fatalf("no digest with 2 calls: %+v", body.Digests)
	}
	if top.Rows != 20 || top.Modes["bounded"] != 2 {
		t.Errorf("top digest = %+v", top)
	}

	// Resolve by id.
	dresp, err := http.Get(ts.URL + "/digests/" + top.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /digests/%s: status %d", top.ID, dresp.StatusCode)
	}
	var one obs.DigestSnapshot
	if err := json.NewDecoder(dresp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one.Fingerprint != top.Fingerprint || one.Calls != 2 {
		t.Errorf("by-id digest = %+v, want %+v", one, top)
	}

	// Unknown id → 404.
	nresp, err := http.Get(ts.URL + "/digests/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /digests/doesnotexist: status %d, want 404", nresp.StatusCode)
	}

	// The digest series are on the shared registry.
	m := scrape(t, ts.URL)
	if m["beas_digest_entries"] != 2 || m["beas_digest_observations_total"] != 3 {
		t.Errorf("digest metrics: entries=%v observations=%v", m["beas_digest_entries"], m["beas_digest_observations_total"])
	}
	// ... and /stats carries the summary section.
	st := s.Stats()
	if st.Digests == nil || st.Digests.Entries != 2 || st.Digests.Observations != 3 {
		t.Errorf("stats digests = %+v", st.Digests)
	}
}

func TestDigestsEndpointDisabled(t *testing.T) {
	s := New(newOrdersDB(t, 1, 5), Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/digests")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /digests with digests off: status %d, want 404", resp.StatusCode)
	}
	if st := s.Stats(); st.Digests != nil {
		t.Errorf("stats digests section present with digests off: %+v", st.Digests)
	}
}

// TestCaptureOnServer: with the flight recorder installed, every
// terminal query outcome appends a capture record whose counters show
// up in /stats and /metrics.
func TestCaptureOnServer(t *testing.T) {
	dir := t.TempDir()
	rec, err := obs.NewRecorder(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	db := newOrdersDB(t, 2, 10)
	s := New(db, Config{Capture: rec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, er, _ := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 0"); er != nil {
		t.Fatalf("query failed: %s", er.Error)
	}
	// A parse failure never reaches execution and is not captured.
	if _, er, _ := mustRunQuery(t, ts.URL, "SELEC nonsense"); er == nil {
		t.Fatal("parse error succeeded")
	}

	st := s.Stats()
	if st.Capture == nil || st.Capture.Records != 1 || st.Capture.Dir != dir {
		t.Fatalf("stats capture = %+v", st.Capture)
	}
	m := scrape(t, ts.URL)
	if m["beas_capture_records_total"] != 1 {
		t.Errorf("beas_capture_records_total = %v, want 1", m["beas_capture_records_total"])
	}
	if m["beas_capture_segments"] != 1 {
		t.Errorf("beas_capture_segments = %v, want 1", m["beas_capture_segments"])
	}

	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("captured %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Outcome != "ok" || r.Rows != 10 || r.RowsHash == "" || r.Fingerprint == "" || r.Bound != 10 {
		t.Errorf("capture record = %+v", r)
	}
	if len(r.Constraints) == 0 {
		t.Errorf("capture record carries no constraints: %+v", r)
	}
	if len(r.Params) != 1 {
		t.Errorf("params = %v, want the cust key", r.Params)
	}
}

// failAfterWriter fails every write past the first n bytes budget — a
// slow-query log on a full disk.
type failAfterWriter struct{ fails int }

func (f *failAfterWriter) Write(p []byte) (int, error) {
	f.fails++
	return 0, fmt.Errorf("disk full")
}

// TestSlowLogWriteErrorsCounted: failed slow-log writes increment the
// write-error counter in /stats and /metrics instead of vanishing.
func TestSlowLogWriteErrorsCounted(t *testing.T) {
	db := newOrdersDB(t, 1, 50)
	w := &failAfterWriter{}
	slow := obs.NewSlowLog(w, 0, 10, nil)
	s := New(db, Config{SlowQueryLog: slow})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, er, _ := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 0"); er != nil {
		t.Fatalf("query failed: %s", er.Error)
	}
	if w.fails == 0 {
		t.Fatal("slow log never attempted a write")
	}
	if got := slow.WriteErrors(); got != 1 {
		t.Errorf("WriteErrors = %d, want 1", got)
	}
	if st := s.Stats(); st.SlowLogWriteErrors != 1 {
		t.Errorf("stats SlowLogWriteErrors = %d, want 1", st.SlowLogWriteErrors)
	}
	m := scrape(t, ts.URL)
	if m["beas_slow_log_write_errors_total"] != 1 {
		t.Errorf("beas_slow_log_write_errors_total = %v, want 1", m["beas_slow_log_write_errors_total"])
	}
}

// TestSlowLogFingerprintAndCacheHit: slow-log entries carry the
// statement fingerprint (joinable against /digests) and the cache-hit
// marker.
func TestSlowLogFingerprintAndCacheHit(t *testing.T) {
	db := newOrdersDB(t, 1, 50)
	db.SetResultCache(true)
	var buf bytes.Buffer
	s := New(db, Config{SlowQueryLog: obs.NewSlowLog(&buf, 0, 10, nil)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const sql = "SELECT item FROM orders WHERE cust = 0"
	for i := 0; i < 2; i++ {
		if _, er, _ := mustRunQuery(t, ts.URL, sql); er != nil {
			t.Fatalf("query failed: %s", er.Error)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Only the first, executed run fetches 50 tuples; the cached serve
	// fetches nothing and may not qualify — accept either shape.
	var first obs.SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("slow log line: %v", err)
	}
	if first.Fingerprint == "" {
		t.Error("slow entry has no fingerprint")
	}
	if first.CacheHit {
		t.Error("first execution marked as cache hit")
	}
}
