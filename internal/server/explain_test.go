package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postExplain(t *testing.T, base, sql string, analyze bool) (*explainResponse, int) {
	t.Helper()
	body, _ := json.Marshal(explainRequest{SQL: sql, Analyze: analyze})
	resp, err := http.Post(base+"/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out explainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func TestExplainEndpoint(t *testing.T) {
	db := newOrdersDB(t, 10, 5)
	db.SetOptimizer(true)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Plain explain: plan only, nothing executed.
	resp, code := postExplain(t, ts.URL, "SELECT item FROM orders WHERE cust = 3", false)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Covered || resp.Analyzed || resp.Plan == "" || !resp.Optimized {
		t.Fatalf("unexpected explain response: %+v", resp)
	}
	if resp.Decision != string(decideAdmit) {
		t.Errorf("decision = %s", resp.Decision)
	}

	// Analyze: executes and reports estimated vs actual per step.
	resp, code = postExplain(t, ts.URL, "SELECT item FROM orders WHERE cust = 3", true)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Analyzed || resp.Rows != 5 || len(resp.Steps) != 1 {
		t.Fatalf("unexpected analyze response: %+v", resp)
	}
	st := resp.Steps[0]
	if st.OutBound == 0 || st.EstKeys <= 0 || st.ActualKeys != 1 || st.ActualFetched != 5 {
		t.Fatalf("step missing estimated-vs-actual data: %+v", st)
	}

	// The statistics catalog and optimizer setting surface in /stats.
	sres, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(sres.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Optimizer.Enabled {
		t.Error("optimizer.enabled missing from /stats")
	}
	if len(snap.Optimizer.Tables) != 1 || snap.Optimizer.Tables[0].Rows != 50 {
		t.Errorf("stats catalog tables = %+v", snap.Optimizer.Tables)
	}
	if len(snap.Optimizer.Constraints) != 1 || snap.Optimizer.Constraints[0].MaxFanout != 5 {
		t.Errorf("stats catalog constraints = %+v", snap.Optimizer.Constraints)
	}
}

func TestExplainAnalyzeRespectsAdmission(t *testing.T) {
	db := newOrdersDB(t, 10, 5)
	// Budget below the bound of a full-customer fetch: analyze must be
	// rejected without executing.
	s := New(db, Config{BoundBudget: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, code := postExplain(t, ts.URL, "SELECT item FROM orders WHERE cust = 3", true); code != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget analyze: status %d, want 422", code)
	}
	// Plain explain of the same statement is free and succeeds.
	resp, code := postExplain(t, ts.URL, "SELECT item FROM orders WHERE cust = 3", false)
	if code != http.StatusOK {
		t.Fatalf("plain explain: status %d", code)
	}
	if resp.Decision != string(decideReject) {
		t.Errorf("decision = %s, want %s", resp.Decision, decideReject)
	}
}
