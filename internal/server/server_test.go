package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	beas "github.com/bounded-eval/beas"
)

// newOrdersDB builds a database where customer c owns exactly itemsPer
// items c*10000 .. c*10000+itemsPer-1, covered by one access constraint.
func newOrdersDB(tb testing.TB, customers, itemsPer int) *beas.DB {
	tb.Helper()
	db := beas.NewDB()
	db.MustCreateTable("orders", "cust INT", "item INT")
	for c := 0; c < customers; c++ {
		for j := 0; j < itemsPer; j++ {
			db.MustInsert("orders", c, c*10000+j)
		}
	}
	db.MustRegisterConstraint(fmt.Sprintf("orders({cust} -> {item}, %d)", itemsPer))
	return db
}

// ndjsonResult is a parsed /query stream.
type ndjsonResult struct {
	header  queryHeader
	rows    [][]any
	stats   *statsJSON
	errLine string
}

// runQuery posts sql to the server and parses the NDJSON stream. For
// non-200 responses it returns the decoded error response instead. It
// reports failures as an error (never via testing.TB), so it is safe to
// call from spawned client goroutines.
func runQuery(base, sql string) (*ndjsonResult, *errorResponse, int, error) {
	body, _ := json.Marshal(queryRequest{SQL: sql})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("POST /query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			return nil, nil, resp.StatusCode, fmt.Errorf("decoding error response (status %d): %w", resp.StatusCode, err)
		}
		return nil, &er, resp.StatusCode, nil
	}
	out := &ndjsonResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if first {
			first = false
			if err := json.Unmarshal(line, &out.header); err != nil {
				return nil, nil, resp.StatusCode, fmt.Errorf("decoding header %q: %w", line, err)
			}
			continue
		}
		var probe struct {
			Rows  [][]any    `json:"rows"`
			Stats *statsJSON `json:"stats"`
			Error string     `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, nil, resp.StatusCode, fmt.Errorf("decoding line %q: %w", line, err)
		}
		switch {
		case probe.Error != "":
			out.errLine = probe.Error
		case probe.Stats != nil:
			out.stats = probe.Stats
		default:
			out.rows = append(out.rows, probe.Rows...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, resp.StatusCode, fmt.Errorf("reading stream: %w", err)
	}
	return out, nil, resp.StatusCode, nil
}

// mustRunQuery is runQuery for single-goroutine call sites.
func mustRunQuery(tb testing.TB, base, sql string) (*ndjsonResult, *errorResponse, int) {
	tb.Helper()
	res, er, status, err := runQuery(base, sql)
	if err != nil {
		tb.Fatal(err)
	}
	return res, er, status
}

// TestConcurrentClientsDisjointStreams is acceptance (a): N concurrent
// clients, each streaming its own slice of the data through a worker
// pool smaller than N, every stream complete and uncontaminated.
func TestConcurrentClientsDisjointStreams(t *testing.T) {
	const customers, itemsPer = 8, 300
	db := newOrdersDB(t, customers, itemsPer)
	s := New(db, Config{MaxConcurrent: 3, BoundBudget: 1000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make(chan error, customers)
	for c := 0; c < customers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, er, status, err := runQuery(ts.URL, fmt.Sprintf("SELECT item FROM orders WHERE cust = %d ORDER BY item", c))
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			if er != nil {
				errs <- fmt.Errorf("client %d: status %d: %s", c, status, er.Error)
				return
			}
			if res.errLine != "" {
				errs <- fmt.Errorf("client %d: stream error: %s", c, res.errLine)
				return
			}
			if res.header.Admission != string(decideAdmit) {
				errs <- fmt.Errorf("client %d: admission %q", c, res.header.Admission)
				return
			}
			if len(res.rows) != itemsPer {
				errs <- fmt.Errorf("client %d: got %d rows, want %d", c, len(res.rows), itemsPer)
				return
			}
			for j, r := range res.rows {
				want := float64(c*10000 + j) // JSON numbers decode as float64
				if len(r) != 1 || r[0] != want {
					errs <- fmt.Errorf("client %d row %d: got %v, want [%v]", c, j, r, want)
					return
				}
			}
			if res.stats == nil {
				errs <- fmt.Errorf("client %d: missing stats trailer", c)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Admitted != customers {
		t.Errorf("admitted = %d, want %d", st.Admitted, customers)
	}
	if st.RowsStreamed != customers*itemsPer {
		t.Errorf("rowsStreamed = %d, want %d", st.RowsStreamed, customers*itemsPer)
	}
}

// TestOverBudgetRejectedBeforeFetch is acceptance (b): a query whose
// deduced bound exceeds the budget is refused before any fetch runs,
// and the response carries the bound.
func TestOverBudgetRejectedBeforeFetch(t *testing.T) {
	db := beas.NewDB()
	db.MustCreateTable("big", "k INT", "v INT")
	for i := 0; i < 10; i++ {
		db.MustInsert("big", 1, i)
	}
	// The declared bound N (the admission signal) is far above the data:
	// admission must trust the constraint, not peek at the instance.
	db.MustRegisterConstraint("big({k} -> {v}, 50000)")
	s := New(db, Config{BoundBudget: 100})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, er, status := mustRunQuery(t, ts.URL, "SELECT v FROM big WHERE k = 1")
	if res != nil {
		t.Fatalf("over-budget query executed: %+v", res.header)
	}
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", status)
	}
	if er.Bound != 50000 || er.Budget != 100 {
		t.Errorf("error bound/budget = %d/%d, want 50000/100", er.Bound, er.Budget)
	}
	st := s.Stats()
	if st.TuplesFetched != 0 || st.TuplesScanned != 0 {
		t.Errorf("rejected query touched data: fetched=%d scanned=%d", st.TuplesFetched, st.TuplesScanned)
	}
	if st.RejectedBudget != 1 || st.Admitted != 0 {
		t.Errorf("rejectedBudget=%d admitted=%d, want 1/0", st.RejectedBudget, st.Admitted)
	}
}

// TestUncoveredRejected: without AllowUncovered, a non-covered query is
// refused with the checker's reason.
func TestUncoveredRejected(t *testing.T) {
	db := newOrdersDB(t, 1, 5)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, er, status := mustRunQuery(t, ts.URL, "SELECT cust FROM orders WHERE item = 3")
	if res != nil {
		t.Fatalf("uncovered query executed")
	}
	if status != http.StatusUnprocessableEntity || er.Reason == "" {
		t.Fatalf("status=%d reason=%q, want 422 with reason", status, er.Reason)
	}
	if st := s.Stats(); st.RejectedUncovered != 1 {
		t.Errorf("rejectedUncovered = %d, want 1", st.RejectedUncovered)
	}
}

// TestUncoveredFallback: with AllowUncovered the same query runs through
// the conventional engine and streams correct rows.
func TestUncoveredFallback(t *testing.T) {
	db := newOrdersDB(t, 2, 5)
	s := New(db, Config{AllowUncovered: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, er, _ := mustRunQuery(t, ts.URL, "SELECT cust FROM orders WHERE item = 10003")
	if er != nil {
		t.Fatalf("fallback query rejected: %s", er.Error)
	}
	if len(res.rows) != 1 || res.rows[0][0] != float64(1) {
		t.Fatalf("rows = %v, want [[1]]", res.rows)
	}
	if res.header.Covered {
		t.Error("header claims covered for an uncovered query")
	}
	if res.stats == nil || res.stats.TuplesScanned == 0 {
		t.Error("conventional fallback reported no scanned tuples")
	}
}

// TestQueuePolicy: an over-budget query under PolicyQueue is admitted
// through the heavy lane and completes correctly.
func TestQueuePolicy(t *testing.T) {
	db := newOrdersDB(t, 1, 20)
	// itemsPer=20 > budget 10 → over budget.
	s := New(db, Config{BoundBudget: 10, OverBudget: PolicyQueue})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, er, _ := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 0")
	if er != nil {
		t.Fatalf("queued query rejected: %s", er.Error)
	}
	if res.header.Admission != string(decideQueue) {
		t.Errorf("admission = %q, want %q", res.header.Admission, decideQueue)
	}
	if len(res.rows) != 20 {
		t.Errorf("rows = %d, want 20", len(res.rows))
	}
	if st := s.Stats(); st.Queued != 1 || st.Admitted != 1 {
		t.Errorf("queued=%d admitted=%d, want 1/1", st.Queued, st.Admitted)
	}
}

// TestApproxDowngrade: an over-budget query under PolicyApprox is
// rerouted to resource-bounded approximation; the trailer reports the
// deterministic accuracy lower bound.
func TestApproxDowngrade(t *testing.T) {
	const items = 1000
	db := newOrdersDB(t, 1, items)
	s := New(db, Config{BoundBudget: 100, OverBudget: PolicyApprox, ApproxBudget: 100})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, er, _ := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 0")
	if er != nil {
		t.Fatalf("downgraded query rejected: %s", er.Error)
	}
	if res.header.Admission != string(decideDowngrade) {
		t.Errorf("admission = %q, want %q", res.header.Admission, decideDowngrade)
	}
	if len(res.rows) != 100 {
		t.Errorf("rows = %d, want 100 (the fetch budget)", len(res.rows))
	}
	if res.stats == nil {
		t.Fatal("missing stats trailer")
	}
	if got, want := res.stats.Coverage, 0.1; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("coverage = %v, want %v", got, want)
	}
	if st := s.Stats(); st.Downgraded != 1 {
		t.Errorf("downgraded = %d, want 1", st.Downgraded)
	}
	if st := s.Stats(); st.TuplesFetched != 100 {
		t.Errorf("tuplesFetched = %d, want exactly the budget 100", st.TuplesFetched)
	}
}

// TestCancelledRequestStopsFetchLoop is acceptance (c): a client that
// cancels mid-stream terminates the server-side fetch loop early; the
// per-step statistics folded into the server counters show only a
// fraction of the full |D_Q| was fetched.
func TestCancelledRequestStopsFetchLoop(t *testing.T) {
	const n = 100_000
	db := beas.NewDB()
	db.MustCreateTable("t1", "a INT", "b INT")
	db.MustCreateTable("t2", "b INT", "pad STRING")
	pad := make([]byte, 120)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < n; i++ {
		db.MustInsert("t1", 1, i)
		db.MustInsert("t2", i, string(pad))
	}
	db.MustRegisterConstraint(fmt.Sprintf("t1({a} -> {b}, %d)", n))
	db.MustRegisterConstraint("t2({b} -> {pad}, 1)")
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Full execution would fetch n (step 1) + n (step 2 probes) tuples.
	const fullFetch = 2 * n

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(queryRequest{SQL: "SELECT t2.pad FROM t1, t2 WHERE t1.a = 1 AND t2.b = t1.b"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read just the header line, then walk away: the server keeps
	// streaming until its write buffers fill, and must stop fetching the
	// moment the cancellation reaches it.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("reading header: %v", err)
	}
	cancel()

	// The server classifies the abort as canceled when it observes the
	// request context's cancellation, or — if the connection write fails
	// before the cancellation propagates — as a disconnect; either way it
	// must stop the fetch loop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Canceled+st.Disconnected > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never observed the cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.Stats()
	if st.TuplesFetched == 0 {
		// Legal but rare: the cancellation can land before the first
		// fetch (the pipeline is lazy). The load-bearing assertion is
		// that the loop never ran to completion.
		t.Log("cancellation propagated before the first fetch")
	}
	if st.TuplesFetched >= fullFetch {
		t.Errorf("fetch loop ran to completion: fetched %d of %d", st.TuplesFetched, fullFetch)
	}
	t.Logf("cancelled after fetching %d of %d tuples (%.1f%%)",
		st.TuplesFetched, fullFetch, 100*float64(st.TuplesFetched)/fullFetch)
}

// TestCheckEndpoint: /check returns the verdict and the would-be
// admission decision without executing.
func TestCheckEndpoint(t *testing.T) {
	db := newOrdersDB(t, 1, 50)
	s := New(db, Config{BoundBudget: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{SQL: "SELECT item FROM orders WHERE cust = 0"})
	resp, err := http.Post(ts.URL+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr checkResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Covered || cr.Bound != 50 {
		t.Errorf("covered=%v bound=%d, want true/50", cr.Covered, cr.Bound)
	}
	if cr.Decision != string(decideReject) {
		t.Errorf("decision = %q, want %q", cr.Decision, decideReject)
	}
	if st := s.Stats(); st.TuplesFetched != 0 {
		t.Errorf("/check touched data: fetched=%d", st.TuplesFetched)
	}
}

// TestStatsEndpoint: the monitoring endpoint aggregates admission
// counters, the bound histogram and plan-cache hits.
func TestStatsEndpoint(t *testing.T) {
	db := newOrdersDB(t, 1, 50)
	s := New(db, Config{BoundBudget: 1000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if _, er, _ := mustRunQuery(t, ts.URL, "SELECT item FROM orders WHERE cust = 0"); er != nil {
			t.Fatalf("query %d: %s", i, er.Error)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 || st.Admitted != 3 {
		t.Errorf("queries=%d admitted=%d, want 3/3", st.Queries, st.Admitted)
	}
	if st.PlanCacheHits < 2 {
		t.Errorf("planCacheHits = %d, want ≥ 2 (repeated statement)", st.PlanCacheHits)
	}
	var histTotal uint64
	for _, b := range st.BoundHistogram {
		histTotal += b.Count
	}
	if histTotal != 3 {
		t.Errorf("bound histogram holds %d observations, want 3", histTotal)
	}
	if st.Modes[string(beas.ModeBounded)] != 3 {
		t.Errorf("bounded mode count = %d, want 3", st.Modes[string(beas.ModeBounded)])
	}
}
