package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/obs"
)

// scrapeExposition fetches and lints one server's /metrics in-process.
func scrapeExposition(t *testing.T, srv *Server) *obs.Exposition {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics returned %d", rec.Code)
	}
	exp, err := obs.ParsePrometheus(rec.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	if err := obs.Lint(exp); err != nil {
		t.Fatalf("linting /metrics: %v", err)
	}
	return exp
}

// TestRestartRoundTrip is the beasd restart story end to end: serve a
// durable database over HTTP, mutate it, shut down the way the daemon
// does (Close → final snapshot), reopen the same directory and verify
// the new server answers identically — rows, constraint coverage and
// the /stats durability section all survive the restart.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := beas.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateTable("call", "pnum INT", "region STRING")
	for i := 0; i < 20; i++ {
		db.MustInsert("call", i%5, "region-"+string(rune('A'+i%3)))
	}
	db.MustRegisterConstraint("call({pnum} -> {region}, 10)")

	const q = `{"sql": "SELECT region FROM call WHERE pnum = 2"}`
	firstSrv := New(db, Config{})
	firstBody := serveQueryOn(t, firstSrv, q)
	// Scrape before the restart: a fresh process starts its counters at
	// zero, so the after-scrape must either hold or be a full reset —
	// promtext's counter-regression check with -allow-reset.
	beforeExp := scrapeExposition(t, firstSrv)
	if err := db.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	re, err := beas.Open(dir, nil)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	defer re.Close()
	srv := New(re, Config{})
	secondBody := serveQueryOn(t, srv, q)
	if firstBody != secondBody {
		t.Errorf("query response changed across restart:\nbefore: %s\nafter:  %s", firstBody, secondBody)
	}
	afterExp := scrapeExposition(t, srv)
	if err := obs.CompareCounters(beforeExp, afterExp, true); err != nil {
		t.Errorf("counters regressed across restart: %v", err)
	}
	// WAL position is state, not process counters: it must survive.
	walLSN := func(exp *obs.Exposition) float64 {
		for _, s := range exp.Samples {
			if s.Name == "beas_wal_last_lsn" {
				return s.Value
			}
		}
		t.Fatal("beas_wal_last_lsn missing from /metrics")
		return 0
	}
	if b, a := walLSN(beforeExp), walLSN(afterExp); a < b {
		t.Errorf("WAL LSN went backwards across restart: %v -> %v", b, a)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var stats StatsSnapshot
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil {
		t.Fatal("/stats has no durability section for a durable database")
	}
	if stats.Durability.SnapshotLSN == 0 {
		t.Error("restart did not recover from the Close snapshot")
	}
	if !stats.Durability.RecoveryConforms {
		t.Error("recovered database does not conform")
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["durable"] != true {
		t.Errorf("healthz durable = %v, want true", health["durable"])
	}
	if health["rows"] != float64(20) {
		t.Errorf("healthz rows = %v, want 20", health["rows"])
	}
}

// serveQueryOn runs one /query POST through srv and returns the NDJSON
// body minus the stats trailer (whose duration varies run to run).
func serveQueryOn(t *testing.T, srv *Server, body string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/query returned %d: %s", rec.Code, rec.Body)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("short /query response: %s", rec.Body)
	}
	return strings.Join(lines[:len(lines)-1], "\n")
}
