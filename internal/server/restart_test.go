package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	beas "github.com/bounded-eval/beas"
)

// TestRestartRoundTrip is the beasd restart story end to end: serve a
// durable database over HTTP, mutate it, shut down the way the daemon
// does (Close → final snapshot), reopen the same directory and verify
// the new server answers identically — rows, constraint coverage and
// the /stats durability section all survive the restart.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := beas.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateTable("call", "pnum INT", "region STRING")
	for i := 0; i < 20; i++ {
		db.MustInsert("call", i%5, "region-"+string(rune('A'+i%3)))
	}
	db.MustRegisterConstraint("call({pnum} -> {region}, 10)")

	const q = `{"sql": "SELECT region FROM call WHERE pnum = 2"}`
	firstBody := serveQuery(t, db, q)
	if err := db.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	re, err := beas.Open(dir, nil)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	defer re.Close()
	secondBody := serveQuery(t, re, q)
	if firstBody != secondBody {
		t.Errorf("query response changed across restart:\nbefore: %s\nafter:  %s", firstBody, secondBody)
	}

	srv := New(re, Config{})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var stats StatsSnapshot
	if err := json.NewDecoder(rec.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil {
		t.Fatal("/stats has no durability section for a durable database")
	}
	if stats.Durability.SnapshotLSN == 0 {
		t.Error("restart did not recover from the Close snapshot")
	}
	if !stats.Durability.RecoveryConforms {
		t.Error("recovered database does not conform")
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health map[string]any
	if err := json.NewDecoder(rec.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["durable"] != true {
		t.Errorf("healthz durable = %v, want true", health["durable"])
	}
	if health["rows"] != float64(20) {
		t.Errorf("healthz rows = %v, want 20", health["rows"])
	}
}

// serveQuery runs one /query POST through a fresh server over db and
// returns the NDJSON body minus the stats trailer (whose duration
// varies run to run).
func serveQuery(t *testing.T, db *beas.DB, body string) string {
	t.Helper()
	srv := New(db, Config{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/query", strings.NewReader(body))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/query returned %d: %s", rec.Code, rec.Body)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("short /query response: %s", rec.Body)
	}
	return strings.Join(lines[:len(lines)-1], "\n")
}
