// Package server is BEAS's concurrent query service: an HTTP/JSON front
// end over a shared *beas.DB that executes queries through a bounded
// worker pool and streams result rows as chunked JSON.
//
// Its defining feature is bound-based admission control. BEAS deduces
// the access bound of a query — how many tuples a bounded plan may fetch
// — from the query and the access schema alone, before touching a single
// tuple. The server runs that check on every request and compares the
// bound against a configurable budget: an over-budget query is, by
// policy, rejected up front (with the bound in the error, so the client
// knows exactly why), serialised through a single-slot heavy lane so it
// cannot crowd out covered traffic, or downgraded to resource-bounded
// approximation under a fetch budget with a deterministic accuracy
// guarantee. No other admission-control signal offers this: the cost
// estimate is an a-priori guarantee, not a heuristic.
//
// Endpoints:
//
//	POST /query   {"sql": "SELECT ..."}  → NDJSON stream: a header line
//	              (columns, admission verdict, deduced bound), one line
//	              of rows per batch, and a stats trailer.
//	POST /check   {"sql": "SELECT ..."}  → the BE Checker's verdict and
//	              the admission decision, without executing anything.
//	POST /explain {"sql": "SELECT ...", "analyze": bool} → the plan with
//	              per-step constraints, worst-case bounds and optimizer
//	              estimates; with analyze the query executes (through
//	              admission control) and each step reports estimated vs
//	              actual keys, fetches and rows.
//	GET  /stats   → counters, evaluation-mode totals, the deduced-bound
//	              histogram, plan-cache hit rates, and the optimizer +
//	              statistics-catalog section (a JSON view over /metrics).
//	GET  /metrics → the same registry in Prometheus text exposition:
//	              latency and bound-accuracy histograms, admission and
//	              outcome counters, WAL fsync latency, worker occupancy
//	              and Go runtime stats.
//	GET  /trace/  → recent retained query traces; /trace/<id> renders one
//	              span tree (parse → check → optimize → fetch steps →
//	              stream, with estimated-vs-actual counters).
//	GET  /healthz → liveness plus row/constraint counts, uptime, WAL LSN
//	              and last-snapshot age.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/value"
)

// Policy says what happens to a covered query whose deduced access bound
// exceeds the configured budget.
type Policy string

// Admission policies for over-budget queries.
const (
	// PolicyReject refuses the query up front with HTTP 422; the response
	// reports the deduced bound and the budget. Nothing is executed.
	PolicyReject Policy = "reject"
	// PolicyQueue admits the query but serialises it through a
	// single-slot heavy lane, so at most one over-budget query runs at a
	// time and covered traffic keeps its workers.
	PolicyQueue Policy = "queue"
	// PolicyApprox downgrades the query to resource-bounded approximation
	// under Config.ApproxBudget; the stats trailer carries the
	// deterministic accuracy lower bound.
	PolicyApprox Policy = "approx"
)

// ParsePolicy converts a policy name (as used in flags and configs).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyReject, PolicyQueue, PolicyApprox:
		return Policy(s), nil
	case "":
		return PolicyReject, nil
	default:
		return "", fmt.Errorf("server: unknown admission policy %q (want reject, queue or approx)", s)
	}
}

// Config tunes the service.
type Config struct {
	// MaxConcurrent bounds the number of queries executing at once
	// (default: GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot before the server answers 503 (default 64).
	QueueDepth int
	// BoundBudget is the admission budget on the deduced access bound, in
	// tuples; 0 means unlimited. Covered queries whose bound exceeds it
	// are handled per OverBudget.
	BoundBudget uint64
	// OverBudget is the policy for covered queries over the budget
	// (default PolicyReject).
	OverBudget Policy
	// AllowUncovered admits queries the access schema does not cover;
	// they run partially bounded or conventionally, with no a-priori
	// bound. Off by default: an uncovered query is rejected with the
	// checker's reason.
	AllowUncovered bool
	// ApproxBudget is the fetch budget for PolicyApprox downgrades
	// (default: BoundBudget, saturating at MaxInt64).
	ApproxBudget int64
	// QueryTimeout caps each query's execution; 0 means no deadline.
	//
	// Think carefully before running a public-facing server without one:
	// a streaming cursor holds the database's catalog read lock until it
	// is closed, so a client that accepts the connection and then stops
	// reading pins the lock via TCP backpressure. Once a DDL writer
	// queues behind it, new readers queue behind the writer — a single
	// stalled client can wedge the service for as long as it stalls.
	// The timeout bounds that exposure (cmd/beasd defaults to 1m).
	QueryTimeout time.Duration

	// Metrics is the registry /metrics renders and /stats reads. nil
	// creates a private one. The server registers its own counters, the
	// database's instrumentation (plan cache, WAL) and Go runtime gauges
	// on it; sharing one registry between servers merges their series.
	Metrics *obs.Registry
	// Tracer samples query-lifecycle traces. nil disables tracing: no
	// spans are recorded, /trace answers 404 and responses carry no
	// X-Beas-Trace-Id header.
	Tracer *obs.Tracer
	// SlowQueryLog, when non-nil, receives a JSON line for every query
	// whose latency or fetch volume crosses its thresholds.
	SlowQueryLog *obs.SlowLog
	// Capture, when non-nil, is the query flight recorder: every
	// executed /query (and downgraded approximation) appends one
	// JSON-lines record — fingerprint, parameter vector, admission,
	// mode, bound, row count and row hash — replayable with beasreplay.
	Capture *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.OverBudget == "" {
		c.OverBudget = PolicyReject
	}
	if c.ApproxBudget <= 0 {
		if c.BoundBudget > 0 && c.BoundBudget <= uint64(1<<62) {
			c.ApproxBudget = int64(c.BoundBudget)
		} else {
			c.ApproxBudget = 1 << 62
		}
	}
	return c
}

// Server serves queries over one shared database.
type Server struct {
	db  *beas.DB
	cfg Config

	sem     chan struct{} // worker pool: one token per executing query
	heavy   chan struct{} // single-slot lane for PolicyQueue admissions
	waiting chan struct{} // bounds the wait queue for worker slots

	m       *metrics
	tracer  *obs.Tracer   // nil = tracing off
	slow    *obs.SlowLog  // nil = no slow-query log
	capture *obs.Recorder // nil = no flight recorder
	start   time.Time
	mux     *http.ServeMux
}

// New creates a Server over db. The database may be shared with other
// users; the server only takes read locks (queries) on it — but it does
// wire the database's instrumentation (plan-cache, WAL) into its metrics
// registry, so /metrics covers the full query lifecycle.
func New(db *beas.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		db:      db,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		heavy:   make(chan struct{}, 1),
		waiting: make(chan struct{}, cfg.QueueDepth),
		m:       newMetrics(reg),
		tracer:  cfg.Tracer,
		slow:    cfg.SlowQueryLog,
		capture: cfg.Capture,
		start:   time.Now(),
	}
	s.slow.SetLogged(s.m.slowLogged)
	s.slow.SetWriteErrors(s.m.slowWriteErrs)
	if s.capture != nil {
		reg.CounterFunc("beas_capture_records_total", "Queries appended to the flight-recorder capture log.", nil, func() int64 {
			return int64(s.capture.Stats().Records)
		})
		reg.CounterFunc("beas_capture_write_errors_total", "Capture-log writes that failed (records dropped).", nil, func() int64 {
			return int64(s.capture.Stats().WriteErrors)
		})
		reg.GaugeFunc("beas_capture_segments", "Capture-log segment files currently retained.", nil, func() float64 {
			return float64(s.capture.Stats().Segments)
		})
		reg.GaugeFunc("beas_capture_bytes", "Bytes written across live capture-log segments.", nil, func() float64 {
			return float64(s.capture.Stats().Bytes)
		})
	}
	db.SetMetrics(reg)
	reg.RegisterGoRuntime()
	reg.GaugeFunc("beas_workers_busy", "Queries currently holding a worker slot.", nil, func() float64 {
		return float64(len(s.sem))
	})
	reg.GaugeFunc("beas_workers_max", "Size of the worker pool.", nil, func() float64 {
		return float64(cfg.MaxConcurrent)
	})
	reg.GaugeFunc("beas_queue_waiting", "Admitted requests waiting for a worker slot.", nil, func() float64 {
		return float64(len(s.waiting))
	})
	reg.GaugeFunc("beas_heavy_lane_busy", "Whether the single-slot heavy lane is occupied (0 or 1).", nil, func() float64 {
		return float64(len(s.heavy))
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/check", s.handleCheck)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/trace/", s.handleTrace)
	s.mux.HandleFunc("/digests", s.handleDigests)
	s.mux.HandleFunc("/digests/", s.handleDigests)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Registry returns the metrics registry /metrics renders.
func (s *Server) Registry() *obs.Registry { return s.m.reg }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the server's counters.
func (s *Server) Stats() StatsSnapshot {
	snap := s.m.snapshot(s.db)
	if s.capture != nil {
		cs := s.capture.Stats()
		snap.Capture = &CaptureSnapshot{
			Dir:         cs.Dir,
			Records:     cs.Records,
			Bytes:       cs.Bytes,
			Segments:    cs.Segments,
			Rotations:   cs.Rotations,
			WriteErrors: cs.WriteErrors,
		}
	}
	return snap
}

// decision is the admission verdict for one request.
type decision string

const (
	decideAdmit           decision = "admitted"
	decideQueue           decision = "queued"
	decideDowngrade       decision = "downgraded"
	decideReject          decision = "rejected-budget"
	decideRejectUncovered decision = "rejected-uncovered"
)

// admit applies the admission policy to a checker verdict. It inspects
// no data — only the deduced bound.
func (s *Server) admit(info *beas.CheckInfo) decision {
	if info.EmptyGuaranteed {
		return decideAdmit // the empty answer is free, whatever the budget
	}
	if !info.Covered {
		if s.cfg.AllowUncovered {
			return decideAdmit
		}
		return decideRejectUncovered
	}
	if s.cfg.BoundBudget == 0 || info.Bound <= s.cfg.BoundBudget {
		return decideAdmit
	}
	switch s.cfg.OverBudget {
	case PolicyApprox:
		return decideDowngrade
	case PolicyQueue:
		return decideQueue
	default:
		return decideReject
	}
}

// errBusy reports a full worker pool and wait queue.
var errBusy = errors.New("server: all workers busy and wait queue full")

// acquire takes a worker slot, waiting in the bounded queue when the
// pool is full. It fails fast with errBusy when the queue is full too,
// and honours ctx while waiting.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.waiting <- struct{}{}:
	default:
		return errBusy
	}
	defer func() { <-s.waiting }()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// queryRequest is the JSON body of /query and /check.
type queryRequest struct {
	SQL string `json:"sql"`
}

// readSQL extracts the statement from a JSON body or a "q" parameter.
func readSQL(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", errors.New("missing query")
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return "", fmt.Errorf("decoding request body: %w", err)
	}
	if req.SQL == "" {
		return "", errors.New("empty sql")
	}
	return req.SQL, nil
}

// errorResponse is the JSON shape of every non-streaming error.
type errorResponse struct {
	Error string `json:"error"`
	// Bound and Budget are set on admission rejections, so the client
	// sees exactly how far over budget the query was — before anything
	// was executed.
	Bound  uint64 `json:"bound,omitempty"`
	Budget uint64 `json:"budget,omitempty"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// queryHeader is the first NDJSON line of a /query response.
type queryHeader struct {
	Columns   []string `json:"columns"`
	Admission string   `json:"admission"`
	Covered   bool     `json:"covered"`
	// Bound is the deduced access bound (covered queries only).
	Bound uint64 `json:"bound,omitempty"`
}

// rowChunk is one NDJSON line of result rows.
type rowChunk struct {
	Rows [][]any `json:"rows"`
}

// stepJSON is the per-fetch-step breakdown in the stats trailer.
type stepJSON struct {
	Atom        string `json:"atom"`
	Constraint  string `json:"constraint"`
	DistinctKey int64  `json:"distinctKeys"`
	Fetched     int64  `json:"fetched"`
	RowsOut     int64  `json:"rowsOut"`
}

// statsJSON is the trailer of a /query stream.
type statsJSON struct {
	Mode            string     `json:"mode"`
	Rows            int64      `json:"rows"`
	Bound           uint64     `json:"bound,omitempty"`
	ConstraintsUsed int        `json:"constraintsUsed,omitempty"`
	TuplesFetched   int64      `json:"tuplesFetched"`
	TuplesScanned   int64      `json:"tuplesScanned,omitempty"`
	FetchSteps      []stepJSON `json:"fetchSteps,omitempty"`
	DurationMS      float64    `json:"durationMs"`
	// Coverage is the deterministic accuracy lower bound of a downgraded
	// (approximated) query; 1 means the answer is exact.
	Coverage float64 `json:"coverage,omitempty"`
	// CacheHit marks an answer served from the semantic result cache.
	CacheHit bool `json:"cacheHit,omitempty"`
}

type trailer struct {
	Stats statsJSON `json:"stats"`
}

type streamError struct {
	Error string `json:"error"`
}

func statsFrom(st *beas.Stats, rows int64) statsJSON {
	out := statsJSON{
		Mode:            string(st.Mode),
		Rows:            rows,
		Bound:           st.Bound,
		ConstraintsUsed: st.ConstraintsUsed,
		TuplesFetched:   st.TuplesFetched,
		TuplesScanned:   st.TuplesScanned,
		DurationMS:      float64(st.Duration) / float64(time.Millisecond),
		CacheHit:        st.CacheHit,
	}
	for _, s := range st.FetchSteps {
		out.FetchSteps = append(out.FetchSteps, stepJSON{
			Atom:        s.Atom,
			Constraint:  s.Constraint,
			DistinctKey: s.DistinctKey,
			Fetched:     s.Fetched,
			RowsOut:     s.RowsOut,
		})
	}
	return out
}

// jsonRow converts a result row to JSON-native values.
func jsonRow(r beas.Row) []any {
	out := make([]any, len(r))
	for i, v := range r {
		switch v.K {
		case value.Int:
			out[i] = v.I
		case value.Float:
			out[i] = v.F
		case value.String:
			out[i] = v.S
		case value.Bool:
			out[i] = v.I != 0
		default:
			out[i] = nil
		}
	}
	return out
}

func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// traceRequest starts a trace for one request (no-op without a tracer)
// and advertises its ID to the client before the response body starts.
// The database reuses a trace it finds on the context, so the handler
// owns the trace's lifecycle and must Finish it.
func (s *Server) traceRequest(ctx context.Context, w http.ResponseWriter, name, sql string) (context.Context, *obs.Trace) {
	tr := s.tracer.StartTrace(name, obs.Attr{Key: "sql", Val: sql})
	if tr == nil {
		return ctx, nil
	}
	w.Header().Set("X-Beas-Trace-Id", tr.ID)
	return obs.With(ctx, tr, tr.Root()), tr
}

// Terminal outcomes of an executed query, as counted by
// beas_query_results_total and reported in the slow-query log.
const (
	outcomeOK           = "ok"
	outcomeCanceled     = "canceled"     // context cancelled or deadline hit
	outcomeFailed       = "failed"       // execution error
	outcomeDisconnected = "disconnected" // client stopped reading mid-stream
)

// finishQuery folds one terminal execution outcome into the counters,
// the slow-query log and the trace retention policy. Rows that reached a
// client which then vanished are accounted separately from delivered
// rows; slow or non-ok queries force their trace into the ring.
func (s *Server) finishQuery(sql, outcome string, st *beas.Stats, rows int64, start time.Time, tr *obs.Trace) {
	d := time.Since(start)
	s.m.observeResult(st, rows, outcome == outcomeOK)
	switch outcome {
	case outcomeCanceled:
		s.m.canceled.Inc()
	case outcomeFailed:
		s.m.failed.Inc()
	case outcomeDisconnected:
		s.m.disconnected.Inc()
	}
	if outcome != outcomeOK {
		tr.ForceKeep()
	}
	if !s.slow.Qualifies(d, st.TuplesFetched) {
		return
	}
	tr.ForceKeep()
	e := obs.SlowEntry{
		SQL:         sql,
		Fingerprint: st.Fingerprint,
		Mode:        string(st.Mode),
		Outcome:     outcome,
		CacheHit:    st.CacheHit,
		Bound:       st.Bound,
		Fetched:     st.TuplesFetched,
		Scanned:     st.TuplesScanned,
		Rows:        rows,
		DurationMS:  float64(d) / float64(time.Millisecond),
	}
	if tr != nil {
		e.TraceID = tr.ID
	}
	for _, fs := range st.FetchSteps {
		e.Steps = append(e.Steps, obs.SlowStep{
			Atom:       fs.Atom,
			Constraint: fs.Constraint,
			KeyBound:   fs.KeyBound,
			OutBound:   fs.OutBound,
			EstKeys:    fs.EstKeys,
			EstFetched: fs.EstFetched,
			Keys:       fs.DistinctKey,
			Fetched:    fs.Fetched,
			Rows:       fs.RowsOut,
			DurationMS: float64(fs.Duration) / float64(time.Millisecond),
		})
	}
	s.slow.Observe(e)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// The trace starts before the request is even validated, so every
	// response — malformed bodies and admission rejections included —
	// carries the X-Beas-Trace-Id header when tracing is on.
	sql, rerr := readSQL(r)
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	start := time.Now()
	ctx, tr := s.traceRequest(ctx, w, "query", sql)
	defer s.tracer.Finish(tr)
	if rerr != nil {
		tr.ForceKeep()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: rerr.Error()})
		return
	}
	defer func() { s.m.latency.Observe(time.Since(start).Seconds()) }()
	s.m.queries.Add(1)

	// Admission: the checker deduces the access bound without executing
	// anything, so rejection costs zero data access.
	c0 := time.Now()
	info, err := s.db.CheckContext(ctx, sql)
	s.m.stageCheck.Observe(time.Since(c0).Seconds())
	if err != nil {
		tr.ForceKeep()
		if canceled(err) {
			s.m.canceled.Add(1)
		} else {
			s.m.failed.Add(1) // parse/analysis error
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.m.observeBound(info)
	dec := s.admit(info)
	if tr != nil {
		// Rejected queries are always retained: the trace shows the check
		// that produced the over-budget bound, which is the whole story.
		if dec == decideReject || dec == decideRejectUncovered {
			tr.ForceKeep()
		}
		tr.AddSpan(tr.Root(), "admission", c0, time.Since(c0),
			obs.Attr{Key: "decision", Val: string(dec)},
			obs.Attr{Key: "covered", Val: info.Covered},
			obs.Attr{Key: "bound", Val: info.Bound},
		)
	}
	release, ok := s.gate(ctx, w, info, dec, "query")
	if !ok {
		return
	}
	defer release()

	e0 := time.Now()
	defer func() { s.m.stageExecute.Observe(time.Since(e0).Seconds()) }()
	if dec == decideDowngrade {
		s.m.admitted.Add(1)
		s.m.downgraded.Add(1)
		s.streamApprox(ctx, w, sql, info, start, tr)
		return
	}
	s.streamQuery(ctx, w, sql, dec, start, tr)
}

// gate enforces an admission decision's control flow for an executing
// endpoint: rejections are answered here, queued statements wait in the
// single-slot heavy lane (over-budget queries contend only with each
// other there, then take a normal worker slot like everyone else), and
// a worker slot is acquired. On ok the caller must defer release();
// otherwise the response has been written. Downgrade handling is the
// caller's (approximation on /query; /explain maps it to a rejection
// before calling).
func (s *Server) gate(ctx context.Context, w http.ResponseWriter, info *beas.CheckInfo, dec decision, verb string) (release func(), ok bool) {
	switch dec {
	case decideReject:
		s.m.rejectedBudget.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error:  fmt.Sprintf("%s rejected: deduced access bound %d exceeds budget %d", verb, info.Bound, s.cfg.BoundBudget),
			Bound:  info.Bound,
			Budget: s.cfg.BoundBudget,
		})
		return nil, false
	case decideRejectUncovered:
		s.m.rejectedUncovered.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error:  verb + " rejected: not covered by the access schema",
			Reason: info.Reason,
		})
		return nil, false
	case decideQueue:
		s.m.queued.Add(1)
		select {
		case s.heavy <- struct{}{}:
		case <-ctx.Done():
			s.m.canceled.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ctx.Err().Error()})
			return nil, false
		}
		if err := s.acquire(ctx); err != nil {
			<-s.heavy
			s.failAcquire(w, err)
			return nil, false
		}
		return func() { s.release(); <-s.heavy }, true
	}
	if err := s.acquire(ctx); err != nil {
		s.failAcquire(w, err)
		return nil, false
	}
	return s.release, true
}

// failAcquire answers a failed worker-slot acquisition.
func (s *Server) failAcquire(w http.ResponseWriter, err error) {
	if errors.Is(err, errBusy) {
		s.m.rejectedBusy.Add(1)
		w.Header().Set("Retry-After", "1")
	} else {
		s.m.canceled.Add(1)
	}
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
}

// ndjson writes the /query wire format: one header line, one line per
// row chunk, then a stats trailer or an error line, flushing after each
// line so rows reach the client as they are produced.
type ndjson struct {
	enc     *json.Encoder
	flusher http.Flusher
}

func newNDJSON(w http.ResponseWriter) *ndjson {
	w.Header().Set("Content-Type", "application/x-ndjson")
	f, _ := w.(http.Flusher)
	return &ndjson{enc: json.NewEncoder(w), flusher: f}
}

func (n *ndjson) flush() {
	if n.flusher != nil {
		n.flusher.Flush()
	}
}

func (n *ndjson) header(h queryHeader) {
	n.enc.Encode(h)
	n.flush()
}

// chunk writes one line of rows, folding each row into hasher (when
// capture is on) so the recorded hash covers exactly the bytes the
// client saw; an encode error means the client is gone.
func (n *ndjson) chunk(rows []beas.Row, hasher *obs.RowHash) error {
	c := rowChunk{Rows: make([][]any, len(rows))}
	for i, r := range rows {
		c.Rows[i] = jsonRow(r)
		if hasher != nil {
			hasher.Add(c.Rows[i])
		}
	}
	if err := n.enc.Encode(c); err != nil {
		return err
	}
	n.flush()
	return nil
}

func (n *ndjson) trailer(st statsJSON) {
	n.enc.Encode(trailer{Stats: st})
}

func (n *ndjson) fail(err error) {
	n.enc.Encode(streamError{Error: err.Error()})
}

// streamQuery executes sql through a streaming cursor and writes the
// NDJSON response: header, row chunks, stats trailer. start is when the
// request began (for latency-based slow-query logging) and tr its trace
// (nil when tracing is off).
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, sql string, dec decision, start time.Time, tr *obs.Trace) {
	ri, err := s.db.QueryIterContext(ctx, sql)
	if err != nil {
		tr.ForceKeep()
		if canceled(err) {
			s.m.canceled.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		} else {
			s.m.failed.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	defer ri.Close()

	// Re-verify admission against the catalog the cursor actually runs
	// on: a DDL commit can land between the admission check and cursor
	// construction, and the fallback path must not smuggle an uncovered
	// full scan past AllowUncovered=false, nor a grown bound past a
	// reject budget. (Construction only plans and runs the bounded part;
	// no unbounded scan has streamed yet.)
	st := ri.Stats()
	if !st.Covered && !s.cfg.AllowUncovered {
		ri.Close()
		tr.ForceKeep()
		s.m.rejectedUncovered.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error: "query rejected: access schema changed during admission; no longer covered",
		})
		return
	}
	if dec == decideAdmit && st.Covered && s.cfg.BoundBudget > 0 && st.Bound > s.cfg.BoundBudget {
		// Rejected under every policy, not just PolicyReject: this
		// request was admitted as within-budget, so it holds a plain
		// worker slot — downgrading or heavy-laning it here would dodge
		// the path those policies run through. A retry re-enters
		// admission and gets the configured over-budget treatment.
		ri.Close()
		tr.ForceKeep()
		s.m.rejectedBudget.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error:  fmt.Sprintf("query rejected: access schema changed during admission; deduced bound is now %d, over budget %d — retry", st.Bound, s.cfg.BoundBudget),
			Bound:  st.Bound,
			Budget: s.cfg.BoundBudget,
		})
		return
	}
	s.m.admitted.Add(1)

	// Surface the semantic-result-cache outcome before the body starts:
	// a hit streams the materialized answer without re-executing.
	switch {
	case !s.db.ResultCacheEnabled():
		w.Header().Set("X-Beas-Cache", "off")
	case st.CacheHit:
		w.Header().Set("X-Beas-Cache", "hit")
	default:
		w.Header().Set("X-Beas-Cache", "miss")
	}

	out := newNDJSON(w)
	out.header(queryHeader{Columns: ri.Columns(), Admission: string(dec), Covered: st.Covered, Bound: st.Bound})

	var hasher *obs.RowHash
	if s.capture != nil {
		hasher = obs.NewRowHash()
	}
	var rows int64
	for {
		batch, err := ri.NextBatch()
		if err != nil {
			// Fold the partial execution stats in before flagging the
			// outcome, so a /stats reader that sees the canceled/failed
			// tick also sees the work that preceded it.
			ri.Close()
			outcome := outcomeFailed
			if canceled(err) {
				outcome = outcomeCanceled
			}
			s.finishQuery(sql, outcome, ri.Stats(), rows, start, tr)
			s.captureQuery(sql, string(dec), outcome, ri.Stats(), rows, hasher, 0, start, tr)
			out.fail(err)
			return
		}
		if batch == nil {
			break
		}
		rows += int64(len(batch))
		if err := out.chunk(batch, hasher); err != nil {
			// The client is gone; stop pulling rows it will never see. A
			// write error with the request context already cancelled is a
			// deliberate cancellation (client cancel, deadline) reported
			// through the connection; with a live context it is a plain
			// disconnect. Either way the rows written so far were never
			// delivered in full and count as abandoned.
			ri.Close()
			outcome := outcomeDisconnected
			if ctx.Err() != nil {
				outcome = outcomeCanceled
			}
			s.finishQuery(sql, outcome, ri.Stats(), rows, start, tr)
			s.captureQuery(sql, string(dec), outcome, ri.Stats(), rows, hasher, 0, start, tr)
			return
		}
	}
	ri.Close()
	s.finishQuery(sql, outcomeOK, ri.Stats(), rows, start, tr)
	s.captureQuery(sql, string(dec), outcomeOK, ri.Stats(), rows, hasher, 0, start, tr)
	out.trailer(statsFrom(ri.Stats(), rows))
}

// captureQuery appends one flight-recorder line for a terminal query
// outcome. The parameter vector comes from the statement's canonical
// form (a template-cache hit at this point); the row hash covers the
// rows as serialized on the wire, so a replay diff detects any change
// in content, order or encoding.
func (s *Server) captureQuery(sql, admission, outcome string, st *beas.Stats, rows int64, hasher *obs.RowHash, coverage float64, start time.Time, tr *obs.Trace) {
	if s.capture == nil {
		return
	}
	rec := obs.CaptureRecord{
		SQL:         sql,
		Fingerprint: st.Fingerprint,
		Admission:   admission,
		Mode:        string(st.Mode),
		Outcome:     outcome,
		Bound:       st.Bound,
		Rows:        rows,
		Fetched:     st.TuplesFetched,
		Scanned:     st.TuplesScanned,
		CacheHit:    st.CacheHit,
		Coverage:    coverage,
		DurationMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	if hasher != nil {
		rec.RowsHash = hasher.Sum()
	}
	if tr != nil {
		rec.TraceID = tr.ID
	}
	for _, fs := range st.FetchSteps {
		rec.Constraints = append(rec.Constraints, fs.Atom+"="+fs.Constraint)
		rec.EstFetched += fs.EstFetched
	}
	if _, params, err := s.db.Canonicalize(sql); err == nil && len(params) > 0 {
		rec.Params = jsonRow(beas.Row(params))
	}
	s.capture.Record(rec)
}

// streamApprox executes a downgraded query under the approximation
// budget and writes the same NDJSON shape, with the accuracy lower bound
// in the trailer.
func (s *Server) streamApprox(ctx context.Context, w http.ResponseWriter, sql string, info *beas.CheckInfo, start time.Time, tr *obs.Trace) {
	res, coverage, err := s.db.QueryApproxContext(ctx, sql, s.cfg.ApproxBudget)
	if err != nil {
		tr.ForceKeep()
		if canceled(err) {
			s.m.canceled.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		} else {
			s.m.failed.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	out := newNDJSON(w)
	out.header(queryHeader{Columns: res.Columns, Admission: string(decideDowngrade), Covered: true, Bound: info.Bound})
	var hasher *obs.RowHash
	if s.capture != nil {
		hasher = obs.NewRowHash()
	}
	for i := 0; i < len(res.Rows); i += 256 {
		end := min(i+256, len(res.Rows))
		if err := out.chunk(res.Rows[i:end], hasher); err != nil {
			outcome := outcomeDisconnected
			if ctx.Err() != nil {
				outcome = outcomeCanceled
			}
			s.finishQuery(sql, outcome, &res.Stats, int64(i), start, tr)
			s.captureQuery(sql, string(decideDowngrade), outcome, &res.Stats, int64(i), hasher, coverage, start, tr)
			return
		}
	}
	s.finishQuery(sql, outcomeOK, &res.Stats, int64(len(res.Rows)), start, tr)
	// An approximated answer is not an exact baseline: record it with
	// its coverage so a replay can tell it apart from exact results
	// (replays only diff coverage-1.0 "approx-ok" records byte-exactly).
	approxOutcome := outcomeOK
	if coverage < 1 {
		approxOutcome = "approx"
	}
	s.captureQuery(sql, string(decideDowngrade), approxOutcome, &res.Stats, int64(len(res.Rows)), hasher, coverage, start, tr)
	st := statsFrom(&res.Stats, int64(len(res.Rows)))
	st.Coverage = coverage
	out.trailer(st)
}

// checkResponse is the /check endpoint's verdict.
type checkResponse struct {
	Covered         bool   `json:"covered"`
	Reason          string `json:"reason,omitempty"`
	Bound           uint64 `json:"bound"`
	OutputBound     uint64 `json:"outputBound"`
	ConstraintsUsed int    `json:"constraintsUsed"`
	EmptyGuaranteed bool   `json:"emptyGuaranteed"`
	Plan            string `json:"plan,omitempty"`
	// Decision is what /query would do with this statement right now.
	Decision string `json:"decision"`
	Budget   uint64 `json:"budget,omitempty"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	info, err := s.db.CheckContext(r.Context(), sql)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, checkResponse{
		Covered:         info.Covered,
		Reason:          info.Reason,
		Bound:           info.Bound,
		OutputBound:     info.OutputBound,
		ConstraintsUsed: info.ConstraintsUsed,
		EmptyGuaranteed: info.EmptyGuaranteed,
		Plan:            info.Plan,
		Decision:        string(s.admit(info)),
		Budget:          s.cfg.BoundBudget,
	})
}

// explainRequest is the JSON body of /explain.
type explainRequest struct {
	SQL string `json:"sql"`
	// Analyze executes the query (through admission control) so the
	// response carries actual counters next to the estimates.
	Analyze bool `json:"analyze"`
}

// explainStepJSON is one fetch step of an /explain response.
type explainStepJSON struct {
	Atom       string  `json:"atom"`
	Constraint string  `json:"constraint"`
	KeyBound   uint64  `json:"keyBound"`
	OutBound   uint64  `json:"outBound"`
	EstKeys    float64 `json:"estKeys,omitempty"`
	EstFetched float64 `json:"estFetched,omitempty"`
	EstRows    float64 `json:"estRows,omitempty"`
	// Actual counters are present only with analyze.
	ActualKeys    int64   `json:"actualKeys,omitempty"`
	ActualFetched int64   `json:"actualFetched,omitempty"`
	ActualRows    int64   `json:"actualRows,omitempty"`
	DurationMS    float64 `json:"durationMs,omitempty"`
}

// explainOpJSON is one conventional operator of an analyzed plan.
type explainOpJSON struct {
	Op         string  `json:"op"`
	EstRows    float64 `json:"estRows,omitempty"`
	RowsIn     int64   `json:"rowsIn"`
	RowsOut    int64   `json:"rowsOut"`
	DurationMS float64 `json:"durationMs"`
}

// explainResponse is the /explain verdict.
type explainResponse struct {
	Covered   bool   `json:"covered"`
	Reason    string `json:"reason,omitempty"`
	Bound     uint64 `json:"bound"`
	Optimized bool   `json:"optimized"`
	Decision  string `json:"decision"`
	Plan      string `json:"plan,omitempty"`

	Analyzed      bool              `json:"analyzed"`
	Mode          string            `json:"mode,omitempty"`
	Rows          int               `json:"rows,omitempty"`
	TuplesFetched int64             `json:"tuplesFetched,omitempty"`
	TuplesScanned int64             `json:"tuplesScanned,omitempty"`
	Steps         []explainStepJSON `json:"steps,omitempty"`
	Ops           []explainOpJSON   `json:"ops,omitempty"`
	DurationMS    float64           `json:"durationMs,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	// Like /query, the trace starts before validation so 4xx responses
	// carry X-Beas-Trace-Id too.
	var req explainRequest
	var rerr error
	if q := r.URL.Query().Get("q"); q != "" {
		req.SQL = q
		req.Analyze = r.URL.Query().Get("analyze") == "true"
	} else if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			rerr = fmt.Errorf("decoding request body: %v", err)
		}
	}
	if rerr == nil && req.SQL == "" {
		rerr = errors.New("empty sql")
	}
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	start := time.Now()
	ctx, tr := s.traceRequest(ctx, w, "explain", req.SQL)
	defer s.tracer.Finish(tr)
	if rerr != nil {
		tr.ForceKeep()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: rerr.Error()})
		return
	}
	info, err := s.db.CheckContext(ctx, req.SQL)
	if err != nil {
		tr.ForceKeep()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	dec := s.admit(info)
	resp := explainResponse{
		Covered:   info.Covered,
		Reason:    info.Reason,
		Bound:     info.Bound,
		Optimized: s.db.OptimizerEnabled(),
		Decision:  string(dec),
		Plan:      info.Plan,
	}
	if !req.Analyze {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// ANALYZE executes the query, so it goes through the same admission
	// gates as /query. There is no approximation downgrade for an
	// analysis — an over-budget statement under PolicyApprox is rejected
	// instead.
	s.m.queries.Add(1)
	s.m.observeBound(info)
	if dec == decideDowngrade {
		dec = decideReject
	}
	release, ok := s.gate(ctx, w, info, dec, "explain analyze")
	if !ok {
		return
	}
	defer release()

	ri, err := s.db.QueryIterContext(ctx, req.SQL)
	if err != nil {
		tr.ForceKeep()
		if canceled(err) {
			s.m.canceled.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		} else {
			s.m.failed.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	defer ri.Close()

	// Re-verify admission against the catalog the cursor actually runs
	// on, exactly like /query: a DDL commit between the admission check
	// and cursor construction must not smuggle an uncovered full scan
	// past AllowUncovered=false or a grown bound past the budget. Only
	// the bounded part has run at this point.
	st := ri.Stats()
	if !st.Covered && !s.cfg.AllowUncovered {
		ri.Close()
		tr.ForceKeep()
		s.m.rejectedUncovered.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error: "explain analyze rejected: access schema changed during admission; no longer covered",
		})
		return
	}
	if st.Covered && s.cfg.BoundBudget > 0 && st.Bound > s.cfg.BoundBudget {
		ri.Close()
		tr.ForceKeep()
		s.m.rejectedBudget.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error:  fmt.Sprintf("explain analyze rejected: access schema changed during admission; deduced bound is now %d, over budget %d — retry", st.Bound, s.cfg.BoundBudget),
			Bound:  st.Bound,
			Budget: s.cfg.BoundBudget,
		})
		return
	}

	// Drain the cursor: the analysis wants the counters, not the rows.
	var rows int64
	for {
		batch, err := ri.NextBatch()
		if err != nil {
			ri.Close()
			outcome := outcomeFailed
			if canceled(err) {
				outcome = outcomeCanceled
			}
			s.finishQuery(req.SQL, outcome, ri.Stats(), rows, start, tr)
			if outcome == outcomeCanceled {
				writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			} else {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			}
			return
		}
		if batch == nil {
			break
		}
		rows += int64(len(batch))
	}
	ri.Close()
	s.m.admitted.Add(1)
	s.finishQuery(req.SQL, outcomeOK, ri.Stats(), rows, start, tr)
	ea := beas.NewExplainAnalysis(req.SQL, ri.Stats(), int(rows))
	resp.Analyzed = true
	resp.Mode = string(ea.Mode)
	resp.Rows = ea.Rows
	resp.TuplesFetched = ea.TuplesFetched
	resp.TuplesScanned = ea.TuplesScanned
	resp.Plan = ea.Plan
	resp.DurationMS = float64(ea.Duration) / float64(time.Millisecond)
	for _, st := range ea.Steps {
		resp.Steps = append(resp.Steps, explainStepJSON{
			Atom:          st.Atom,
			Constraint:    st.Constraint,
			KeyBound:      st.KeyBound,
			OutBound:      st.OutBound,
			EstKeys:       st.EstKeys,
			EstFetched:    st.EstFetched,
			EstRows:       st.EstRows,
			ActualKeys:    st.ActualKeys,
			ActualFetched: st.ActualFetched,
			ActualRows:    st.ActualRows,
			DurationMS:    float64(st.Duration) / float64(time.Millisecond),
		})
	}
	for _, op := range ea.Ops {
		resp.Ops = append(resp.Ops, explainOpJSON{
			Op:         op.Op,
			EstRows:    op.EstRows,
			RowsIn:     op.RowsIn,
			RowsOut:    op.RowsOut,
			DurationMS: float64(op.Duration) / float64(time.Millisecond),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.reg.WritePrometheus(w)
}

// handleTrace serves the retained-trace ring: /trace lists recent
// traces, /trace/<id> renders one span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "tracing disabled (start the server with a tracer)"})
		return
	}
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/trace"), "/")
	if id == "" {
		writeJSON(w, http.StatusOK, s.tracer.Recent())
		return
	}
	tr := s.tracer.Get(id)
	if tr == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no retained trace with id " + id})
		return
	}
	writeJSON(w, http.StatusOK, tr.Tree())
}

// digestsResponse is the GET /digests body: the retained per-fingerprint
// aggregates, heaviest first.
type digestsResponse struct {
	DriftThreshold float64              `json:"driftThreshold"`
	Observations   uint64               `json:"observations"`
	Evictions      uint64               `json:"evictions,omitempty"`
	Digests        []obs.DigestSnapshot `json:"digests"`
}

// handleDigests serves the workload digests: /digests lists every
// retained fingerprint ordered by total execution time, /digests/<id>
// resolves one by its DigestID.
func (s *Server) handleDigests(w http.ResponseWriter, r *http.Request) {
	d := s.db.Digests()
	if d == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "digests disabled (start the server with digests enabled, e.g. beasd -digest-topk 128)"})
		return
	}
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/digests"), "/")
	if id == "" {
		writeJSON(w, http.StatusOK, digestsResponse{
			DriftThreshold: d.DriftThreshold(),
			Observations:   d.Observations(),
			Evictions:      d.Evictions(),
			Digests:        d.Snapshot(),
		})
		return
	}
	snap, ok := d.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no digest with id " + id})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	d := s.db.Durability()
	resp := map[string]any{
		"ok":             true,
		"rows":           s.db.TotalRows(),
		"constraints":    len(s.db.Constraints()),
		"workers":        s.cfg.MaxConcurrent,
		"durable":        d.Durable,
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if d.Durable {
		resp["wal_last_lsn"] = d.LastLSN
		if !d.LastSnapshot.IsZero() {
			resp["last_snapshot_age_seconds"] = time.Since(d.LastSnapshot).Seconds()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
