package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServerThroughput drives the service with concurrent clients
// issuing a realistic admission mix: 3 covered point queries (admitted,
// streamed) to 1 over-budget query (rejected before any fetch). The
// rejected quarter costs only a parse + checker walk, which is the whole
// point of bound-based admission control.
func BenchmarkServerThroughput(b *testing.B) {
	const customers, itemsPer = 64, 50
	db := newOrdersDB(b, customers, itemsPer)
	db.MustCreateTable("heavy", "k INT", "v INT")
	for i := 0; i < 8; i++ {
		db.MustInsert("heavy", 1, i)
	}
	db.MustRegisterConstraint("heavy({k} -> {v}, 1000000)")

	s := New(db, Config{BoundBudget: 1000, MaxConcurrent: 8, QueueDepth: 1024})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	post := func(sql string) (int, error) {
		body, _ := json.Marshal(queryRequest{SQL: sql})
		resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, err
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(rand.Int63()))
		for pb.Next() {
			if rng.Intn(4) == 0 {
				status, err := post("SELECT v FROM heavy WHERE k = 1")
				if err != nil {
					b.Error(err)
					return
				}
				if status != http.StatusUnprocessableEntity {
					b.Errorf("heavy query: status %d, want 422", status)
					return
				}
			} else {
				sql := fmt.Sprintf("SELECT item FROM orders WHERE cust = %d", rng.Intn(customers))
				status, err := post(sql)
				if err != nil {
					b.Error(err)
					return
				}
				if status != http.StatusOK {
					b.Errorf("covered query: status %d, want 200", status)
					return
				}
			}
		}
	})
	b.StopTimer()
	st := s.Stats()
	b.ReportMetric(float64(st.Admitted), "admitted")
	b.ReportMetric(float64(st.RejectedBudget), "rejected")
}
