// Package stats is the data-statistics catalog under the cost-based plan
// optimizer (internal/opt) and the fallback engine's planner: per-table
// row counts, per-constraint distinct-key counts and fan-out
// distributions (mean, p50, p95, max), and per-column NDV plus equi-depth
// histograms for filter selectivity.
//
// The catalog is incrementally maintained through the structures the
// engine already keeps exact under mutation:
//
//   - Per-constraint fan-out distributions read the constraint indices'
//     bucket-cardinality histograms (access.Index.FanoutHist), which the
//     indices update in O(1) on every Insert/Delete — the same observer
//     hooks that maintain the buckets themselves — and which WAL recovery
//     rebuilds by replaying those hooks. They are exact at all times.
//   - Per-table row counts come from the tables' own counters, exact
//     under Insert/Delete/LoadCSV and recovery.
//   - Per-column NDV and histograms are summaries: they are cached
//     against the table's mutation version and recomputed lazily on the
//     first read after any mutation, so a hot mutation path pays nothing
//     and a planner never sees a summary from a stale version.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// histogramBuckets bounds the number of equi-depth buckets per column.
const histogramBuckets = 32

// Fanout is the distribution of distinct Y-values per X-key of one
// access constraint — the actual fan-out, as opposed to the worst-case
// bound N the constraint declares.
type Fanout struct {
	// DistinctKeys is the number of distinct X-values present.
	DistinctKeys int64
	// Tuples is the number of distinct (X, Y) pairs stored.
	Tuples int64
	// Mean is Tuples / DistinctKeys (0 on an empty index).
	Mean float64
	// P50, P95 and Max are quantiles of the bucket-cardinality
	// distribution.
	P50, P95, Max int
}

// Column summarises one column of a table.
type Column struct {
	Name string
	// NDV is the number of distinct non-NULL values.
	NDV int
	// Nulls counts NULL entries.
	Nulls int64
	// Hist is the equi-depth histogram over non-NULL values; nil when the
	// column is empty.
	Hist *Histogram
}

// Table summarises one table.
type Table struct {
	Rows    int
	Columns []Column
}

// Histogram is an equi-depth histogram: Bounds[i] is the inclusive upper
// bound of bucket i, Counts[i] the number of rows in it. Buckets are
// ordered by the engine's total value order (NULLs excluded, NaN last).
type Histogram struct {
	Bounds []value.Value
	Counts []int64
	Total  int64
}

// LessFraction estimates the fraction of non-NULL values v' with
// v' < v (or v' <= v when orEqual). Values inside the boundary bucket
// contribute half of it.
func (h *Histogram) LessFraction(v value.Value, orEqual bool) float64 {
	if h == nil || h.Total == 0 {
		return 1.0 / 3
	}
	var below int64
	for i, bound := range h.Bounds {
		cmp, err := value.Compare(bound, v)
		if err != nil {
			return 1.0 / 3
		}
		if cmp < 0 {
			below += h.Counts[i]
			continue
		}
		// v falls in (or at the edge of) bucket i: count half of it, the
		// textbook intra-bucket interpolation.
		if cmp == 0 && orEqual {
			below += h.Counts[i]
		} else {
			below += h.Counts[i] / 2
		}
		break
	}
	f := float64(below) / float64(h.Total)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Catalog serves statistics over one database instance. It is safe for
// concurrent use; readers of constraint fan-outs never block mutators
// beyond the indices' own shard locks, and a column-summary recompute
// for one table (triggered by its first lookup after a mutation) blocks
// only lookups of that same table — the catalog-wide lock guards the
// entry map alone.
type Catalog struct {
	store *storage.Store
	as    *access.Schema

	mu     sync.Mutex // guards the tables map only
	tables map[string]*tableEntry
}

type tableEntry struct {
	mu      sync.Mutex // guards this table's cached summary
	valid   bool
	version uint64
	t       *Table
}

// NewCatalog creates a catalog over the store and access schema.
func NewCatalog(store *storage.Store, as *access.Schema) *Catalog {
	return &Catalog{store: store, as: as, tables: make(map[string]*tableEntry)}
}

// Rows returns the exact current row count of a table (0 for unknown
// tables).
func (c *Catalog) Rows(table string) int {
	t, ok := c.store.Table(table)
	if !ok {
		return 0
	}
	return t.Len()
}

// Table returns the cached per-column summary of a table, recomputing it
// when the table has mutated since the cached version.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.store.Table(name)
	if !ok {
		return nil, false
	}
	key := strings.ToLower(name)
	c.mu.Lock()
	e, ok := c.tables[key]
	if !ok {
		e = &tableEntry{}
		c.tables[key] = e
	}
	c.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.valid && e.version == t.Version() {
		return e.t, true
	}
	t.WithRows(func(rows []value.Row, version uint64) {
		e.t = summarise(t, rows)
		e.version = version
		e.valid = true
	})
	return e.t, true
}

// summarise builds the per-column summary from a consistent row snapshot.
func summarise(t *storage.Table, rows []value.Row) *Table {
	arity := t.Rel.Arity()
	ts := &Table{Rows: len(rows), Columns: make([]Column, arity)}
	for ci := 0; ci < arity; ci++ {
		col := &ts.Columns[ci]
		col.Name = t.Rel.Attrs[ci].Name
		distinct := make(map[string]value.Value)
		var kb []byte
		for _, r := range rows {
			v := r[ci]
			if v.IsNull() {
				col.Nulls++
				continue
			}
			kb = value.AppendKey(kb[:0], v)
			if _, seen := distinct[string(kb)]; !seen {
				distinct[string(kb)] = v
			}
		}
		col.NDV = len(distinct)
		col.Hist = buildHistogram(rows, ci)
	}
	return ts
}

// buildHistogram sorts the column's non-NULL values and cuts them into
// up to histogramBuckets equi-depth buckets.
func buildHistogram(rows []value.Row, ci int) *Histogram {
	vals := make([]value.Value, 0, len(rows))
	for _, r := range rows {
		if v := r[ci]; !v.IsNull() {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.SliceStable(vals, func(i, j int) bool {
		cmp, err := value.Compare(vals[i], vals[j])
		return err == nil && cmp < 0
	})
	n := histogramBuckets
	if len(vals) < n {
		n = len(vals)
	}
	h := &Histogram{Total: int64(len(vals))}
	per := len(vals) / n
	rem := len(vals) % n
	pos := 0
	for b := 0; b < n && pos < len(vals); b++ {
		size := per
		if b < rem {
			size++
		}
		end := pos + size
		if end > len(vals) {
			end = len(vals)
		}
		// Extend the bucket through equal values so a bound never splits
		// an equal-value run (keeps LessFraction monotone).
		for end < len(vals) {
			cmp, err := value.Compare(vals[end-1], vals[end])
			if err != nil || cmp != 0 {
				break
			}
			end++
		}
		h.Bounds = append(h.Bounds, vals[end-1])
		h.Counts = append(h.Counts, int64(end-pos))
		pos = end
	}
	// Run extension can consume later buckets' shares; fold any remainder
	// into the last bucket so Σ Counts == Total.
	if pos < len(vals) {
		h.Counts[len(h.Counts)-1] += int64(len(vals) - pos)
		h.Bounds[len(h.Bounds)-1] = vals[len(vals)-1]
	}
	return h
}

// NDV returns the number of distinct non-NULL values of a column, or
// (0, false) when the table or column is unknown.
func (c *Catalog) NDV(table, column string) (int, bool) {
	t, ok := c.store.Table(table)
	if !ok {
		return 0, false
	}
	ci, ok := t.Rel.AttrIndex(column)
	if !ok {
		return 0, false
	}
	ts, ok := c.Table(table)
	if !ok || ci >= len(ts.Columns) {
		return 0, false
	}
	return ts.Columns[ci].NDV, true
}

// Constraint returns the live fan-out distribution of a registered
// constraint, derived from its index's incrementally maintained
// bucket-cardinality histogram.
func (c *Catalog) Constraint(con *access.Constraint) (Fanout, bool) {
	idx, ok := c.as.Index(con)
	if !ok || idx == nil {
		return Fanout{}, false
	}
	return fanoutFromHist(idx.FanoutHist()), true
}

// fanoutFromHist folds a bucket-cardinality histogram into the summary
// distribution.
func fanoutFromHist(hist map[int]int64) Fanout {
	var f Fanout
	sizes := make([]int, 0, len(hist))
	for k, n := range hist {
		sizes = append(sizes, k)
		f.DistinctKeys += n
		f.Tuples += int64(k) * n
	}
	if f.DistinctKeys == 0 {
		return f
	}
	f.Mean = float64(f.Tuples) / float64(f.DistinctKeys)
	sort.Ints(sizes)
	f.Max = sizes[len(sizes)-1]
	f.P50 = quantile(sizes, hist, f.DistinctKeys, 0.50)
	f.P95 = quantile(sizes, hist, f.DistinctKeys, 0.95)
	return f
}

// quantile returns the smallest bucket cardinality k such that at least
// ⌈q·total⌉ keys have cardinality <= k.
func quantile(sizes []int, hist map[int]int64, total int64, q float64) int {
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, k := range sizes {
		cum += hist[k]
		if cum >= target {
			return k
		}
	}
	return sizes[len(sizes)-1]
}

// SelectivityEq estimates the fraction of rows with column = const:
// 1/NDV, the textbook uniform estimate over the live distinct count.
func (c *Catalog) SelectivityEq(table, column string) float64 {
	ndv, ok := c.NDV(table, column)
	if !ok || ndv == 0 {
		return 0.1
	}
	return 1 / float64(ndv)
}

// SelectivityCmp estimates the fraction of rows satisfying
// "column op const" from the column's equi-depth histogram.
func (c *Catalog) SelectivityCmp(table, column string, op sqlparser.BinOp, v value.Value) float64 {
	if v.IsNull() {
		return 0 // comparisons with NULL are never true
	}
	switch op {
	case sqlparser.OpEq:
		return c.SelectivityEq(table, column)
	case sqlparser.OpNe:
		return 1 - c.SelectivityEq(table, column)
	}
	h := c.histogram(table, column)
	if h == nil {
		return 1.0 / 3
	}
	switch op {
	case sqlparser.OpLt:
		return h.LessFraction(v, false)
	case sqlparser.OpLe:
		return h.LessFraction(v, true)
	case sqlparser.OpGt:
		return 1 - h.LessFraction(v, true)
	case sqlparser.OpGe:
		return 1 - h.LessFraction(v, false)
	default:
		return 1.0 / 3
	}
}

func (c *Catalog) histogram(table, column string) *Histogram {
	t, ok := c.store.Table(table)
	if !ok {
		return nil
	}
	ci, ok := t.Rel.AttrIndex(column)
	if !ok {
		return nil
	}
	ts, ok := c.Table(table)
	if !ok || ci >= len(ts.Columns) {
		return nil
	}
	return ts.Columns[ci].Hist
}

// ConstraintSummary is one row of the catalog's observability dump.
type ConstraintSummary struct {
	Spec         string
	Bound        int
	DistinctKeys int64
	Tuples       int64
	MeanFanout   float64
	P50, P95     int
	MaxFanout    int
}

// TableSummary is one row of the catalog's observability dump.
type TableSummary struct {
	Name string
	Rows int
}

// Summary dumps the catalog for monitoring (beasd's /stats): exact row
// counts per table and the live fan-out distribution per constraint.
func (c *Catalog) Summary() ([]TableSummary, []ConstraintSummary) {
	var ts []TableSummary
	for _, name := range c.store.Names() {
		t, _ := c.store.Table(name)
		ts = append(ts, TableSummary{Name: name, Rows: t.Len()})
	}
	var cs []ConstraintSummary
	for _, con := range c.as.Constraints() {
		f, ok := c.Constraint(con)
		if !ok {
			continue
		}
		cs = append(cs, ConstraintSummary{
			Spec:         con.String(),
			Bound:        con.N,
			DistinctKeys: f.DistinctKeys,
			Tuples:       f.Tuples,
			MeanFanout:   f.Mean,
			P50:          f.P50,
			P95:          f.P95,
			MaxFanout:    f.Max,
		})
	}
	return ts, cs
}

// String renders the summary for debugging.
func (c *Catalog) String() string {
	ts, cs := c.Summary()
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "table %s: %d rows\n", t.Name, t.Rows)
	}
	for _, s := range cs {
		fmt.Fprintf(&b, "constraint %s: %d keys, %d tuples, fanout mean %.2f p50 %d p95 %d max %d\n",
			s.Spec, s.DistinctKeys, s.Tuples, s.MeanFanout, s.P50, s.P95, s.MaxFanout)
	}
	return b.String()
}
