package stats

import (
	"fmt"
	"testing"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

func testDB(t *testing.T) (*storage.Store, *access.Schema, *Catalog) {
	t.Helper()
	rel, err := schema.NewRelation("r",
		schema.Attribute{Name: "a", Kind: value.Int},
		schema.Attribute{Name: "b", Kind: value.Int},
		schema.Attribute{Name: "c", Kind: value.String},
	)
	if err != nil {
		t.Fatal(err)
	}
	db, err := schema.NewDatabase(rel)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore(db)
	as := access.NewSchema(store)
	return store, as, NewCatalog(store, as)
}

func insert(t *testing.T, store *storage.Store, a, b int64, c string) {
	t.Helper()
	tab, _ := store.Table("r")
	if err := tab.Insert(value.Row{value.NewInt(a), value.NewInt(b), value.NewString(c)}); err != nil {
		t.Fatal(err)
	}
}

func TestTableSummaryAndNDV(t *testing.T) {
	store, _, cat := testDB(t)
	// 100 rows: a in 0..9, b = i, c in c0..c3.
	for i := 0; i < 100; i++ {
		insert(t, store, int64(i%10), int64(i), fmt.Sprintf("c%d", i%4))
	}
	if rows := cat.Rows("r"); rows != 100 {
		t.Fatalf("rows = %d, want 100", rows)
	}
	for col, want := range map[string]int{"a": 10, "b": 100, "c": 4} {
		if ndv, ok := cat.NDV("r", col); !ok || ndv != want {
			t.Errorf("NDV(%s) = %d (%v), want %d", col, ndv, ok, want)
		}
	}
	// Summaries are cached by version and refreshed on mutation.
	insert(t, store, 42, 1000, "c9")
	if ndv, _ := cat.NDV("r", "a"); ndv != 11 {
		t.Errorf("NDV(a) after insert = %d, want 11", ndv)
	}
}

func TestHistogramSelectivity(t *testing.T) {
	store, _, cat := testDB(t)
	// b uniform over 0..99, one row each.
	for i := 0; i < 100; i++ {
		insert(t, store, 0, int64(i), "x")
	}
	lt50 := cat.SelectivityCmp("r", "b", sqlparser.OpLt, value.NewInt(50))
	if lt50 < 0.35 || lt50 > 0.65 {
		t.Errorf("selectivity(b < 50) = %v, want ≈ 0.5", lt50)
	}
	gt90 := cat.SelectivityCmp("r", "b", sqlparser.OpGt, value.NewInt(90))
	if gt90 > 0.2 {
		t.Errorf("selectivity(b > 90) = %v, want small", gt90)
	}
	// Monotone: P(b < x) grows with x.
	prev := -1.0
	for _, x := range []int64{10, 30, 50, 70, 95} {
		f := cat.SelectivityCmp("r", "b", sqlparser.OpLt, value.NewInt(x))
		if f < prev {
			t.Fatalf("LessFraction not monotone at %d: %v < %v", x, f, prev)
		}
		prev = f
	}
	// Comparisons against NULL are never true.
	if s := cat.SelectivityCmp("r", "b", sqlparser.OpLt, value.NewNull()); s != 0 {
		t.Errorf("selectivity(b < NULL) = %v, want 0", s)
	}
}

func TestConstraintFanout(t *testing.T) {
	store, as, cat := testDB(t)
	// Key a=0 has 5 distinct (b,c); keys a=1..4 have 1 each.
	for i := 0; i < 5; i++ {
		insert(t, store, 0, int64(i), "x")
	}
	for a := int64(1); a <= 4; a++ {
		insert(t, store, a, 0, "x")
		insert(t, store, a, 0, "x") // duplicate rows: same (X, Y) pair
	}
	c, err := access.NewConstraint(store.DB, "r", []string{"a"}, []string{"b", "c"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Register(c, true); err != nil {
		t.Fatal(err)
	}
	f, ok := cat.Constraint(c)
	if !ok {
		t.Fatal("no fanout for registered constraint")
	}
	if f.DistinctKeys != 5 || f.Tuples != 9 || f.Max != 5 {
		t.Fatalf("fanout = %+v, want keys=5 tuples=9 max=5", f)
	}
	if f.Mean != 9.0/5 {
		t.Errorf("mean = %v, want 1.8", f.Mean)
	}
	if f.P50 != 1 || f.P95 != 5 {
		t.Errorf("p50=%d p95=%d, want 1 and 5", f.P50, f.P95)
	}
	// Deletion keeps the histogram exact: remove the wide key entirely.
	tab, _ := store.Table("r")
	tab.Delete(func(r value.Row) bool { return r[0].I == 0 })
	f, _ = cat.Constraint(c)
	if f.DistinctKeys != 4 || f.Tuples != 4 || f.Max != 1 {
		t.Fatalf("fanout after delete = %+v, want keys=4 tuples=4 max=1", f)
	}
}

func TestSummaryDump(t *testing.T) {
	store, as, cat := testDB(t)
	insert(t, store, 1, 2, "x")
	c, _ := access.NewConstraint(store.DB, "r", []string{"a"}, []string{"b"}, 1)
	if _, err := as.Register(c, true); err != nil {
		t.Fatal(err)
	}
	tables, cons := cat.Summary()
	if len(tables) != 1 || tables[0].Rows != 1 {
		t.Fatalf("tables = %+v", tables)
	}
	if len(cons) != 1 || cons[0].DistinctKeys != 1 {
		t.Fatalf("constraints = %+v", cons)
	}
	if cat.String() == "" {
		t.Error("String() empty")
	}
}
