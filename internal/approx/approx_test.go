package approx

import (
	"sort"
	"testing"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

type env struct {
	db    *schema.Database
	store *storage.Store
	as    *access.Schema
}

// newEnv builds call(pnum, recnum, region) with 10 pnums × 8 recnums and
// a pnum -> {recnum, region} constraint.
func newEnv(t *testing.T) *env {
	t.Helper()
	db, err := schema.NewDatabase(
		schema.MustRelation("call",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "recnum", Kind: value.Int},
			schema.Attribute{Name: "region", Kind: value.String},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{db: db, store: storage.NewStore(db)}
	tab := e.store.MustTable("call")
	for p := int64(0); p < 10; p++ {
		for r := int64(0); r < 8; r++ {
			_ = tab.Insert(value.Row{value.NewInt(p), value.NewInt(p*10 + r), value.NewString("r")})
		}
	}
	e.as = access.NewSchema(e.store)
	c, err := access.NewConstraint(db, "call", []string{"pnum"}, []string{"recnum", "region"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.as.Register(c, false); err != nil {
		t.Fatal(err)
	}
	return e
}

func (e *env) plan(t *testing.T, sql string) *core.Plan {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, e.db)
	if err != nil {
		t.Fatal(err)
	}
	chk := core.Check(q, e.as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	p, err := core.NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const sql = "SELECT recnum FROM call WHERE pnum IN (1, 2, 3)"

func keys(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.Key(r)
	}
	sort.Strings(out)
	return out
}

func TestExactWhenBudgetSuffices(t *testing.T) {
	e := newEnv(t)
	p := e.plan(t, sql)
	exact, _, err := core.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Coverage != 1 {
		t.Errorf("exact run: %+v", res)
	}
	ek, ak := keys(exact), keys(res.Rows)
	if len(ek) != len(ak) {
		t.Fatalf("exact %d vs approx %d rows", len(ek), len(ak))
	}
	for i := range ek {
		if ek[i] != ak[i] {
			t.Fatal("exact answers differ")
		}
	}
}

func TestSubsetUnderBudget(t *testing.T) {
	e := newEnv(t)
	p := e.plan(t, sql)
	exact, _, err := core.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	exactSet := map[string]bool{}
	for _, r := range exact {
		exactSet[value.Key(r)] = true
	}
	for _, budget := range []int64{1, 4, 8, 12, 16, 23} {
		res, err := Run(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fetched > budget {
			t.Errorf("budget %d exceeded: fetched %d", budget, res.Fetched)
		}
		if res.Exact {
			t.Errorf("budget %d (< 24 needed) cannot be exact", budget)
		}
		if res.Coverage >= 1 {
			t.Errorf("budget %d coverage = %v", budget, res.Coverage)
		}
		for _, r := range res.Rows {
			if !exactSet[value.Key(r)] {
				t.Errorf("budget %d returned a row outside the exact answer: %v", budget, r)
			}
		}
	}
}

func TestCoverageMonotoneInBudget(t *testing.T) {
	e := newEnv(t)
	p := e.plan(t, sql)
	prevCov := -1.0
	prevRows := -1
	for _, budget := range []int64{1, 4, 8, 16, 24, 100} {
		res, err := Run(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < prevCov {
			t.Errorf("coverage decreased at budget %d: %v -> %v", budget, prevCov, res.Coverage)
		}
		if len(res.Rows) < prevRows {
			t.Errorf("row count decreased at budget %d", budget)
		}
		prevCov = res.Coverage
		prevRows = len(res.Rows)
	}
}

func TestDeterminism(t *testing.T) {
	e := newEnv(t)
	p := e.plan(t, sql)
	a, err := Run(p, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, 13)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := keys(a.Rows), keys(b.Rows)
	if len(ka) != len(kb) || a.Coverage != b.Coverage {
		t.Fatal("approximation is not deterministic")
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatal("approximation rows differ across runs")
		}
	}
}

func TestBadBudget(t *testing.T) {
	e := newEnv(t)
	p := e.plan(t, sql)
	if _, err := Run(p, 0); err == nil {
		t.Error("budget 0 should be rejected")
	}
	if _, err := Run(p, -5); err == nil {
		t.Error("negative budget should be rejected")
	}
}

func TestMultiStepCoverageProduct(t *testing.T) {
	// Two-relation plan: coverage multiplies across steps.
	db, err := schema.NewDatabase(
		schema.MustRelation("a",
			schema.Attribute{Name: "k", Kind: value.Int},
			schema.Attribute{Name: "v", Kind: value.Int},
		),
		schema.MustRelation("b",
			schema.Attribute{Name: "v", Kind: value.Int},
			schema.Attribute{Name: "w", Kind: value.Int},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore(db)
	for i := int64(0); i < 4; i++ {
		_ = store.MustTable("a").Insert(value.Row{value.NewInt(1), value.NewInt(i)})
		_ = store.MustTable("b").Insert(value.Row{value.NewInt(i), value.NewInt(i * 7)})
	}
	as := access.NewSchema(store)
	ca, _ := access.NewConstraint(db, "a", []string{"k"}, []string{"v"}, 4)
	cb, _ := access.NewConstraint(db, "b", []string{"v"}, []string{"w"}, 1)
	if _, err := as.Register(ca, false); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Register(cb, false); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sqlparser.Parse("SELECT b.w FROM a, b WHERE a.k = 1 AND b.v = a.v")
	q, err := analyze.Analyze(stmt.Select, db)
	if err != nil {
		t.Fatal(err)
	}
	chk := core.Check(q, as)
	if !chk.Covered {
		t.Fatalf("not covered: %s", chk.Reason)
	}
	p, err := core.NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 6: step 1 fetches all 4 a-tuples, step 2 only 2 of 4 keys.
	res, err := Run(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepCoverage) != 2 {
		t.Fatalf("step coverage = %v", res.StepCoverage)
	}
	if res.StepCoverage[0] != 1 {
		t.Errorf("step 1 coverage = %v, want 1", res.StepCoverage[0])
	}
	if res.StepCoverage[1] >= 1 {
		t.Errorf("step 2 coverage = %v, want < 1", res.StepCoverage[1])
	}
	if res.Coverage != res.StepCoverage[0]*res.StepCoverage[1] {
		t.Errorf("coverage %v != product %v", res.Coverage, res.StepCoverage[0]*res.StepCoverage[1])
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}
