// Package approx implements BEAS's resource-bounded approximation
// (paper §3): when the user can only afford a fetch budget B smaller than
// the deduced bound M, the bounded plan is executed under the budget and
// returns a subset of the exact answer together with a deterministic
// accuracy lower bound.
//
// The paper defers its approximation scheme to a later publication; this
// is a simplified deterministic instantiation with the same interface
// contract (budget in; subset of the exact answer plus a deterministic
// coverage guarantee out). See DESIGN.md §5 (Substitutions).
//
// Scheme: each fetch step consumes the budget tuple by tuple in
// deterministic order; a bucket may be truncated when the budget runs out
// mid-bucket, and keys reached with no budget left are skipped entirely.
// Per step, coverage is (tuples examined) / (tuples relevant), where a
// skipped key is charged its worst case N — so the reported fraction is a
// true lower bound. The result is a subset of the exact answer computed
// from a fraction ≥ Π_i f_i of the relevant data, and Coverage = Π f_i is
// the deterministic accuracy lower bound (η = 1 means the budget sufficed
// and the answer is exact).
package approx

import (
	"context"
	"fmt"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/value"
)

// Result carries the approximate answer and its guarantee.
type Result struct {
	Rows []value.Row
	// Coverage is the deterministic accuracy lower bound η ∈ [0, 1]: the
	// fraction of the relevant data the answer was computed from. 1 means
	// the answer is exact.
	Coverage float64
	// Exact reports whether the budget sufficed (Coverage == 1).
	Exact bool
	// Fetched is the number of tuples actually fetched (≤ budget).
	Fetched int64
	// StepCoverage is the per-fetch-step coverage fraction.
	StepCoverage []float64
	Duration     time.Duration
}

// Run executes the bounded plan p under a budget on the number of tuples
// fetched. A budget ≥ the plan's deduced bound yields the exact answer.
func Run(p *core.Plan, budget int64) (*Result, error) {
	return RunContext(context.Background(), p, budget)
}

// RunContext is Run under a context: cancellation or deadline expiry
// halts the budgeted fetch loop between input rows and returns ctx's
// error.
func RunContext(ctx context.Context, p *core.Plan, budget int64) (*Result, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("approx: budget must be positive, got %d", budget)
	}
	start := time.Now()
	res := &Result{Coverage: 1}
	if p.Check.EmptyGuaranteed {
		res.Exact = true
		res.Duration = time.Since(start)
		return res, nil
	}
	q := p.Query
	layout := p.Layout
	remaining := budget

	rows := []value.Row{make(value.Row, layout.Len())}
	weights := []int64{1}
	type wBucket struct {
		rows   []value.Row
		counts []int64
	}
	for _, step := range p.Steps {
		memo := make(map[string]wBucket)
		skippedKeys := make(map[string]bool)
		var examined, relevant float64
		var next []value.Row
		var nextW []int64

		key := make([]value.Value, len(step.Keys))
		var emitErr error
		var emit func(row value.Row, w int64, comp int)
		emit = func(row value.Row, w int64, comp int) {
			if emitErr != nil {
				return
			}
			if comp < len(step.Keys) {
				src := step.Keys[comp]
				if src.Consts == nil {
					key[comp] = row[src.Slot]
					emit(row, w, comp+1)
					return
				}
				for _, c := range src.Consts {
					key[comp] = c
					emit(row, w, comp+1)
					if emitErr != nil {
						return
					}
				}
				return
			}
			ks := value.Key(key)
			bucket, seen := memo[ks]
			if !seen {
				if skippedKeys[ks] {
					return
				}
				if remaining <= 0 {
					// No budget left: charge the key its worst case N so
					// the reported coverage is a true lower bound.
					skippedKeys[ks] = true
					relevant += float64(step.Constraint.N)
					return
				}
				full, counts, n := step.Index.FetchWeighted(key)
				use := n
				if int64(use) > remaining {
					use = int(remaining) // truncate the bucket mid-way
				}
				bucket = wBucket{rows: full[:use], counts: counts[:use]}
				memo[ks] = bucket
				remaining -= int64(use)
				res.Fetched += int64(use)
				examined += float64(use)
				relevant += float64(n)
			}
			for yi2, y := range bucket.rows {
				out := row.Clone()
				for i, s := range step.XSlots {
					out[s] = key[i]
				}
				for i, yi := range step.YUsed {
					out[step.YSlots[i]] = y[yi]
				}
				keep := true
				for _, f := range step.Filters {
					ok, err := analyze.EvalBool(f.Expr, out, layout)
					if err != nil {
						emitErr = err
						return
					}
					if !ok {
						keep = false
						break
					}
				}
				if keep {
					next = append(next, out)
					nextW = append(nextW, w*bucket.counts[yi2])
				}
			}
		}
		for ri, row := range rows {
			if ri%256 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			emit(row, weights[ri], 0)
			if emitErr != nil {
				return nil, emitErr
			}
		}
		rows, weights = next, nextW
		frac := 1.0
		if relevant > 0 {
			frac = examined / relevant
		}
		res.StepCoverage = append(res.StepCoverage, frac)
		res.Coverage *= frac
		if len(rows) == 0 && frac >= 1 {
			break // nothing skipped and nothing matched: exact empty prefix
		}
		if len(rows) == 0 {
			// Budget exhausted with no surviving rows: later steps see no
			// keys; coverage already reflects the loss.
			break
		}
	}

	out, err := exec.FinishWeighted(q, rows, weights, layout)
	if err != nil {
		return nil, err
	}
	res.Rows = out
	res.Exact = res.Coverage >= 1
	res.Duration = time.Since(start)
	return res, nil
}
