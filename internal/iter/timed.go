package iter

import "time"

// Timed wraps an iterator with a counting-timing decorator: it measures
// the wall time spent inside Open/Next pulls and counts the batches and
// rows produced, reporting once to done when the iterator is closed.
// This is how traced queries time whole pipeline stages (the exec tail,
// the streaming surface) without touching the operators themselves.
func Timed(it Iterator, done func(batches, rows int64, d time.Duration)) Iterator {
	return &timed{it: it, done: done}
}

type timed struct {
	it      Iterator
	done    func(batches, rows int64, d time.Duration)
	batches int64
	rows    int64
	dur     time.Duration
	closed  bool
}

func (t *timed) Open() error {
	t0 := time.Now()
	err := t.it.Open()
	t.dur += time.Since(t0)
	return err
}

func (t *timed) Next(b *Batch) (bool, error) {
	t0 := time.Now()
	ok, err := t.it.Next(b)
	t.dur += time.Since(t0)
	if ok {
		t.batches++
		t.rows += int64(b.Len())
	}
	return ok, err
}

func (t *timed) Close() error {
	err := t.it.Close()
	if !t.closed {
		t.closed = true
		if t.done != nil {
			t.done(t.batches, t.rows, t.dur)
		}
	}
	return err
}

// TimedCol is Timed for columnar iterators.
func TimedCol(it ColIterator, done func(batches, rows int64, d time.Duration)) ColIterator {
	return &timedCol{it: it, done: done}
}

type timedCol struct {
	it      ColIterator
	done    func(batches, rows int64, d time.Duration)
	batches int64
	rows    int64
	dur     time.Duration
	closed  bool
}

func (t *timedCol) Open() error {
	t0 := time.Now()
	err := t.it.Open()
	t.dur += time.Since(t0)
	return err
}

func (t *timedCol) NextCols(b *ColBatch) (bool, error) {
	t0 := time.Now()
	ok, err := t.it.NextCols(b)
	t.dur += time.Since(t0)
	if ok {
		t.batches++
		t.rows += int64(b.Rows())
	}
	return ok, err
}

func (t *timedCol) Close() error {
	err := t.it.Close()
	if !t.closed {
		t.closed = true
		if t.done != nil {
			t.done(t.batches, t.rows, t.dur)
		}
	}
	return err
}
