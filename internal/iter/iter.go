// Package iter defines the streaming execution core shared by every
// executor in BEAS: batches of weighted rows and the pull-based iterator
// (Open / Next / Close) that operators implement.
//
// A batch carries up to a few hundred rows plus an optional parallel
// weight slice. Weights restore SQL bag semantics for the bounded
// executor, whose constraint indices store only distinct partial tuples
// with witness counts; a nil weight slice means every row has weight 1,
// so the conventional engine pays nothing for the generality.
//
// Operators form a pull pipeline: the sink (projection / aggregation /
// LIMIT) asks the root for the next batch, and each operator asks its
// children for just enough input to fill one output batch. A LIMIT k
// query therefore stops pulling — and the scans stop reading — after k
// rows, instead of materializing every intermediate relation.
package iter

import (
	"context"

	"github.com/bounded-eval/beas/internal/value"
)

// BatchSize is the default number of rows per batch. It is small enough
// that a pipeline holds only a few thousand rows at any moment and large
// enough to amortise per-batch overhead.
const BatchSize = 256

// Batch is a block of weighted rows flowing between operators. Weights
// is either nil (all rows have weight 1) or parallel to Rows.
//
// The Rows slice and the row values it points to are only valid until
// the producer's next call to Next; consumers that buffer must copy the
// references out (the rows themselves are immutable).
type Batch struct {
	Rows    []value.Row
	Weights []int64

	// wspare retains the weight slice's backing array across Reset so a
	// weighted pipeline does not allocate a fresh slice every batch.
	wspare []int64
}

// Reset empties the batch, keeping row capacity. Weights revert to nil
// (all-1) until a non-unit weight is appended again; their backing array
// is retained and reused by the next weighted Append.
func (b *Batch) Reset() {
	b.Rows = b.Rows[:0]
	if b.Weights != nil {
		b.wspare = b.Weights[:0]
	}
	b.Weights = nil
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Weight returns row i's bag multiplicity.
func (b *Batch) Weight(i int) int64 {
	if b.Weights == nil {
		return 1
	}
	return b.Weights[i]
}

// Append adds a row with the given weight, materialising the weight
// slice only when a weight other than 1 appears.
func (b *Batch) Append(r value.Row, w int64) {
	if w != 1 && b.Weights == nil {
		ws := b.wspare
		// Need a non-nil slice even for an empty batch: nil Weights means
		// all-1, so the weight about to be appended would be lost.
		if need := max(len(b.Rows)+1, cap(b.Rows)); cap(ws) < need {
			ws = make([]int64, 0, need)
		}
		b.Weights = ws[:len(b.Rows)]
		for i := range b.Weights {
			b.Weights[i] = 1
		}
	}
	b.Rows = append(b.Rows, r)
	if b.Weights != nil {
		b.Weights = append(b.Weights, w)
	}
}

// Iterator is a pull-based stream of row batches.
//
// Next fills b (after resetting it) and reports whether the batch holds
// any data; it returns false exactly once, after which the stream is
// exhausted. Close releases resources and may be called at any point —
// in particular before exhaustion, which is how LIMIT abandons the rest
// of a pipeline. Implementations must tolerate Close without Open (a
// pipeline that failed to open partway is still closed whole).
type Iterator interface {
	Open() error
	Next(b *Batch) (bool, error)
	Close() error
}

// sliceIter streams a pre-materialised slice of weighted rows.
type sliceIter struct {
	rows    []value.Row
	weights []int64
	pos     int
}

// FromRows returns an iterator over materialised rows with optional
// weights (nil = all 1). The slices are not copied.
func FromRows(rows []value.Row, weights []int64) Iterator {
	return &sliceIter{rows: rows, weights: weights}
}

func (s *sliceIter) Open() error { return nil }

func (s *sliceIter) Next(b *Batch) (bool, error) {
	b.Reset()
	if s.pos >= len(s.rows) {
		return false, nil
	}
	end := s.pos + BatchSize
	if end > len(s.rows) {
		end = len(s.rows)
	}
	for i := s.pos; i < end; i++ {
		w := int64(1)
		if s.weights != nil {
			w = s.weights[i]
		}
		b.Append(s.rows[i], w)
	}
	s.pos = end
	return true, nil
}

func (s *sliceIter) Close() error { return nil }

// Empty returns an iterator that yields nothing.
func Empty() Iterator { return &sliceIter{} }

// Collect drains it (opening and closing it) and returns all rows and,
// when any weight differs from 1, the parallel weight slice.
func Collect(it Iterator) ([]value.Row, []int64, error) {
	if err := it.Open(); err != nil {
		it.Close()
		return nil, nil, err
	}
	defer it.Close()
	var rows []value.Row
	var weights []int64
	var b Batch
	for {
		ok, err := it.Next(&b)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return rows, weights, nil
		}
		for i, r := range b.Rows {
			w := b.Weight(i)
			if w != 1 && weights == nil {
				weights = make([]int64, len(rows), len(rows)+b.Len())
				for j := range weights {
					weights[j] = 1
				}
			}
			rows = append(rows, r)
			if weights != nil {
				weights = append(weights, w)
			}
		}
	}
}

// Counted wraps it so that *n accrues the number of rows streamed —
// the row-count probes of the execution statistics.
func Counted(it Iterator, n *int64) Iterator {
	return &counted{it: it, n: n}
}

type counted struct {
	it Iterator
	n  *int64
}

func (c *counted) Open() error  { return c.it.Open() }
func (c *counted) Close() error { return c.it.Close() }

func (c *counted) Next(b *Batch) (bool, error) {
	ok, err := c.it.Next(b)
	*c.n += int64(b.Len())
	return ok, err
}

// WithContext wraps it so that every Open and Next observes ctx: once
// the context is cancelled or its deadline passes, the next pull fails
// with ctx's error instead of producing data. Contexts that can never be
// cancelled add no overhead — the iterator is returned unchanged.
//
// Cancellation propagates through a pull pipeline for free: blocking
// stages (hash-join builds, sort drains, aggregation folds) sit in loops
// pulling from their inputs, so a ctx-checked source terminates them
// mid-flight at the next batch boundary.
func WithContext(ctx context.Context, it Iterator) Iterator {
	if ctx == nil || ctx.Done() == nil {
		return it
	}
	return &ctxIter{ctx: ctx, it: it}
}

type ctxIter struct {
	ctx context.Context
	it  Iterator
}

func (c *ctxIter) Open() error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.it.Open()
}

func (c *ctxIter) Next(b *Batch) (bool, error) {
	if err := c.ctx.Err(); err != nil {
		b.Reset()
		return false, err
	}
	return c.it.Next(b)
}

func (c *ctxIter) Close() error { return c.it.Close() }

// OnClose wraps it so that fn runs exactly once when the stream is
// closed or exhausted — used to finalise execution statistics.
func OnClose(it Iterator, fn func()) Iterator {
	return &onClose{it: it, fn: fn}
}

type onClose struct {
	it   Iterator
	fn   func()
	done bool
}

func (o *onClose) Open() error { return o.it.Open() }

func (o *onClose) Next(b *Batch) (bool, error) {
	ok, err := o.it.Next(b)
	if (!ok || err != nil) && !o.done {
		o.done = true
		o.fn()
	}
	return ok, err
}

func (o *onClose) Close() error {
	err := o.it.Close()
	if !o.done {
		o.done = true
		o.fn()
	}
	return err
}
