package iter

import (
	"context"
	"sync"
	"sync/atomic"
)

// Chunks splits n items into contiguous index ranges [lo, hi), at most
// 4×par of them so a pool of par workers load-balances without losing
// the ordering: parallel operators process chunks concurrently but
// concatenate the per-chunk outputs in chunk order, which keeps results
// bit-identical to a sequential left-to-right pass.
func Chunks(n, par int) [][2]int {
	if n <= 0 {
		return nil
	}
	pieces := 4 * par
	if pieces > n {
		pieces = n
	}
	size := (n + pieces - 1) / pieces
	out := make([][2]int, 0, pieces)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ParallelChunks runs fn over every chunk using min(par, len(chunks))
// worker goroutines pulling chunks in order from a shared counter. Each
// worker checks ctx before starting a chunk; the first error (or the
// context's) is returned after all workers stop. fn receives the chunk
// index and its [lo, hi) range; writes to disjoint per-chunk slots need
// no further synchronisation.
func ParallelChunks(ctx context.Context, chunks [][2]int, par int, fn func(ci, lo, hi int) error) error {
	if len(chunks) == 0 {
		return ctx.Err()
	}
	if par > len(chunks) {
		par = len(chunks)
	}
	if par <= 1 {
		for ci, c := range chunks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ci, c[0], c[1]); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		ferr error
	)
	fail := func(err error) {
		mu.Lock()
		if ferr == nil {
			ferr = err
		}
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return ferr != nil
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= len(chunks) || stopped() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(ci, chunks[ci][0], chunks[ci][1]); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return ferr
}
