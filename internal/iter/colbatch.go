package iter

import "github.com/bounded-eval/beas/internal/value"

// Column is a typed vector: one attribute's values across the rows of a
// ColBatch, stored in a per-kind flat slice plus a null bitmap. The kind
// is discovered dynamically — a column is Null until its first non-NULL
// value lands and adopts that value's kind. If a later value disagrees
// (legal: the schema admits Int values in Float columns) the column
// migrates to a boxed []value.Value representation, which vectorized
// operators treat as a signal to fall back to the scalar evaluator.
type Column struct {
	kind   value.Kind
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	nulls  []uint64 // bitmap; bit i set = row i is NULL (grown lazily)
	box    []value.Value
	boxed  bool
	n      int
}

// Kind returns the column's element kind: Null while every value so far
// is NULL, otherwise the kind of the typed storage. Meaningless when
// Boxed reports true.
func (c *Column) Kind() value.Kind { return c.kind }

// Boxed reports whether the column degraded to boxed values after a kind
// conflict. Vectorized loops must not touch the typed slices then.
func (c *Column) Boxed() bool { return c.boxed }

// Len returns the number of values appended.
func (c *Column) Len() int { return c.n }

// Ints returns the typed storage of an Int column (zero at NULL rows).
func (c *Column) Ints() []int64 { return c.ints }

// Floats returns the typed storage of a Float column (zero at NULL rows).
func (c *Column) Floats() []float64 { return c.floats }

// Strs returns the typed storage of a String column ("" at NULL rows).
func (c *Column) Strs() []string { return c.strs }

// Bools returns the typed storage of a Bool column (false at NULL rows).
func (c *Column) Bools() []bool { return c.bools }

// IsNull reports whether row i holds NULL.
func (c *Column) IsNull(i int) bool {
	w := i >> 6
	return w < len(c.nulls) && c.nulls[w]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any appended value is NULL.
func (c *Column) HasNulls() bool {
	for _, w := range c.nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

func (c *Column) reset() {
	c.kind = value.Null
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.strs = c.strs[:0]
	c.bools = c.bools[:0]
	for i := range c.nulls {
		c.nulls[i] = 0
	}
	c.box = c.box[:0]
	c.boxed = false
	c.n = 0
}

func (c *Column) markNull(i int) {
	w := i >> 6
	for len(c.nulls) <= w {
		c.nulls = append(c.nulls, 0)
	}
	c.nulls[w] |= 1 << (uint(i) & 63)
}

// padTyped appends k zero elements to the typed storage of the current
// kind, keeping it parallel to the row count.
func (c *Column) padTyped(k int) {
	switch c.kind {
	case value.Int:
		for ; k > 0; k-- {
			c.ints = append(c.ints, 0)
		}
	case value.Float:
		for ; k > 0; k-- {
			c.floats = append(c.floats, 0)
		}
	case value.String:
		for ; k > 0; k-- {
			c.strs = append(c.strs, "")
		}
	case value.Bool:
		for ; k > 0; k-- {
			c.bools = append(c.bools, false)
		}
	}
}

// migrate re-materialises the column as boxed values after a kind
// conflict.
func (c *Column) migrate() {
	box := c.box[:0]
	for i := 0; i < c.n; i++ {
		box = append(box, c.Value(i))
	}
	c.box = box
	c.boxed = true
}

// Append adds one value to the column.
func (c *Column) Append(v value.Value) {
	if c.boxed {
		c.box = append(c.box, v)
		c.n++
		return
	}
	if v.K == value.Null {
		c.markNull(c.n)
		c.padTyped(1)
		c.n++
		return
	}
	if c.kind == value.Null {
		c.kind = v.K
		c.padTyped(c.n)
	} else if v.K != c.kind {
		c.migrate()
		c.box = append(c.box, v)
		c.n++
		return
	}
	switch c.kind {
	case value.Int:
		c.ints = append(c.ints, v.I)
	case value.Float:
		c.floats = append(c.floats, v.F)
	case value.String:
		c.strs = append(c.strs, v.S)
	case value.Bool:
		c.bools = append(c.bools, v.I != 0)
	}
	c.n++
}

// Value returns row i as a scalar value.
func (c *Column) Value(i int) value.Value {
	if c.boxed {
		return c.box[i]
	}
	if c.kind == value.Null || c.IsNull(i) {
		return value.Value{}
	}
	switch c.kind {
	case value.Int:
		return value.Value{K: value.Int, I: c.ints[i]}
	case value.Float:
		return value.Value{K: value.Float, F: c.floats[i]}
	case value.String:
		return value.Value{K: value.String, S: c.strs[i]}
	default:
		return value.Value{K: value.Bool, I: boolToI(c.bools[i])}
	}
}

func boolToI(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// AppendKeys extends keys[i] with the injective encoding of row i for
// every appended row, column-at-a-time. The per-row bytes are identical
// to value.AppendKey of the row's value, so interleaving AppendKeys
// calls over several columns reproduces value.AppendRowKey exactly.
func (c *Column) AppendKeys(keys [][]byte) {
	if c.boxed {
		for i := 0; i < c.n; i++ {
			keys[i] = value.AppendKey(keys[i], c.box[i])
		}
		return
	}
	switch c.kind {
	case value.Null:
		for i := 0; i < c.n; i++ {
			keys[i] = value.AppendNullKey(keys[i])
		}
	case value.Int:
		for i, x := range c.ints[:c.n] {
			if c.IsNull(i) {
				keys[i] = value.AppendNullKey(keys[i])
			} else {
				keys[i] = value.AppendIntKey(keys[i], x)
			}
		}
	case value.Float:
		for i, x := range c.floats[:c.n] {
			if c.IsNull(i) {
				keys[i] = value.AppendNullKey(keys[i])
			} else {
				keys[i] = value.AppendFloatKey(keys[i], x)
			}
		}
	case value.String:
		for i, x := range c.strs[:c.n] {
			if c.IsNull(i) {
				keys[i] = value.AppendNullKey(keys[i])
			} else {
				keys[i] = value.AppendStringKey(keys[i], x)
			}
		}
	case value.Bool:
		for i, x := range c.bools[:c.n] {
			if c.IsNull(i) {
				keys[i] = value.AppendNullKey(keys[i])
			} else {
				keys[i] = value.AppendBoolKey(keys[i], x)
			}
		}
	}
}

// ColBatch is the columnar counterpart of Batch: a block of weighted
// rows stored as typed column vectors plus an optional selection vector.
// Weights is either nil (all rows weight 1) or parallel to the physical
// rows. Sel, when non-nil, lists the physical indexes of the live rows
// in order — filters refine Sel instead of compacting the columns.
//
// Like Batch, a ColBatch's contents are only valid until the producer's
// next NextCols call.
type ColBatch struct {
	cols    []Column
	Weights []int64
	Sel     []int

	n        int
	wspare   []int64
	selSpare []int
}

// Reset empties the batch and sets its width, keeping the capacity of
// every column, the weight slice and the selection vector.
func (b *ColBatch) Reset(width int) {
	if cap(b.cols) < width {
		cols := make([]Column, width)
		copy(cols, b.cols)
		b.cols = cols
	}
	b.cols = b.cols[:width]
	for i := range b.cols {
		b.cols[i].reset()
	}
	if b.Weights != nil {
		b.wspare = b.Weights[:0]
	}
	b.Weights = nil
	if b.Sel != nil {
		b.selSpare = b.Sel[:0]
	}
	b.Sel = nil
	b.n = 0
}

// Width returns the number of columns.
func (b *ColBatch) Width() int { return len(b.cols) }

// Col returns column j.
func (b *ColBatch) Col(j int) *Column { return &b.cols[j] }

// Rows returns the physical row count, ignoring the selection vector.
func (b *ColBatch) Rows() int { return b.n }

// Len returns the live row count (the selection vector's length when one
// is set).
func (b *ColBatch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// Index maps logical row i to its physical index.
func (b *ColBatch) Index(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// Weight returns physical row p's bag multiplicity.
func (b *ColBatch) Weight(p int) int64 {
	if b.Weights == nil {
		return 1
	}
	return b.Weights[p]
}

// SelBuf returns an empty, non-nil selection vector reusing retained
// capacity; filters fill it (appending in physical-index order, which
// lets them compact the current Sel in place) and hand it to SetSel.
// It is never nil: an empty selection means zero live rows, whereas a
// nil Sel means all rows live.
func (b *ColBatch) SelBuf() []int {
	if b.Sel != nil {
		return b.Sel[:0]
	}
	if b.selSpare == nil {
		b.selSpare = make([]int, 0, max(b.n, BatchSize))
	}
	return b.selSpare[:0]
}

// SetSel installs sel as the batch's selection vector.
func (b *ColBatch) SetSel(sel []int) { b.Sel = sel }

// AppendRow appends one physical row with the given weight. Appending
// and selection do not mix: producers build a batch with AppendRow, and
// consumers may then refine it with SetSel.
func (b *ColBatch) AppendRow(r value.Row, w int64) {
	for j := range b.cols {
		b.cols[j].Append(r[j])
	}
	if w != 1 && b.Weights == nil {
		ws := b.wspare
		// Non-nil even when the batch is empty — nil Weights means all-1.
		if need := max(b.n+1, BatchSize); cap(ws) < need {
			ws = make([]int64, 0, need)
		}
		b.Weights = ws[:b.n]
		for i := range b.Weights {
			b.Weights[i] = 1
		}
	}
	b.n++
	if b.Weights != nil {
		b.Weights = append(b.Weights, w)
	}
}

// SetRows records the physical row count after a producer appends
// values to the columns directly (bypassing AppendRow); such rows all
// carry weight 1. It also keeps zero-width batches meaningful (a scan
// projecting no columns still has a row count).
func (b *ColBatch) SetRows(n int) { b.n = n }

// ReadRow fills dst (of the batch's width) with physical row p.
func (b *ColBatch) ReadRow(p int, dst value.Row) {
	for j := range b.cols {
		dst[j] = b.cols[j].Value(p)
	}
}

// AppendRowKeys extends keys[p] (for every physical row p) with the
// injective encoding of the row's values at positions pos, processing
// column-at-a-time. The resulting bytes equal value.AppendRowKey of the
// row view.
func (b *ColBatch) AppendRowKeys(pos []int, keys [][]byte) {
	for _, p := range pos {
		b.cols[p].AppendKeys(keys[:b.n])
	}
}

// ColIterator is the columnar pull iterator: NextCols fills b (after the
// producer resets it) and reports whether it holds any live rows. The
// Open/Close contract matches Iterator.
type ColIterator interface {
	Open() error
	NextCols(b *ColBatch) (bool, error)
	Close() error
}

// RowView adapts a columnar stream to the row iterator interface. Every
// emitted row is freshly allocated, so buffering consumers (hash joins,
// sorts) may retain references per the Batch contract.
func RowView(ci ColIterator, width int) Iterator {
	return &rowView{ci: ci, width: width}
}

type rowView struct {
	ci    ColIterator
	width int
	cb    ColBatch
}

func (r *rowView) Open() error  { return r.ci.Open() }
func (r *rowView) Close() error { return r.ci.Close() }

func (r *rowView) Next(b *Batch) (bool, error) {
	b.Reset()
	ok, err := r.ci.NextCols(&r.cb)
	if !ok || err != nil {
		return ok, err
	}
	for i, n := 0, r.cb.Len(); i < n; i++ {
		p := r.cb.Index(i)
		row := make(value.Row, r.width)
		r.cb.ReadRow(p, row)
		b.Append(row, r.cb.Weight(p))
	}
	return true, nil
}

// CountedCols wraps ci so that *n accrues the number of live rows
// streamed, mirroring Counted for row iterators.
func CountedCols(ci ColIterator, n *int64) ColIterator {
	return &countedCols{ci: ci, n: n}
}

type countedCols struct {
	ci ColIterator
	n  *int64
}

func (c *countedCols) Open() error  { return c.ci.Open() }
func (c *countedCols) Close() error { return c.ci.Close() }

func (c *countedCols) NextCols(b *ColBatch) (bool, error) {
	ok, err := c.ci.NextCols(b)
	if ok {
		*c.n += int64(b.Len())
	}
	return ok, err
}

// ColFromRows returns a columnar iterator over materialised weighted
// rows (weights nil = all 1). width names the column count, which
// matters when rows is empty. batch caps rows per ColBatch; 0 means
// BatchSize.
func ColFromRows(rows []value.Row, weights []int64, width, batch int) ColIterator {
	if batch <= 0 {
		batch = BatchSize
	}
	return &colSliceIter{rows: rows, weights: weights, width: width, batch: batch}
}

type colSliceIter struct {
	rows    []value.Row
	weights []int64
	width   int
	batch   int
	pos     int
}

func (s *colSliceIter) Open() error  { return nil }
func (s *colSliceIter) Close() error { return nil }

func (s *colSliceIter) NextCols(b *ColBatch) (bool, error) {
	b.Reset(s.width)
	if s.pos >= len(s.rows) {
		return false, nil
	}
	end := min(s.pos+s.batch, len(s.rows))
	for i := s.pos; i < end; i++ {
		w := int64(1)
		if s.weights != nil {
			w = s.weights[i]
		}
		b.AppendRow(s.rows[i], w)
	}
	s.pos = end
	return true, nil
}
