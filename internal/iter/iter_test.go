package iter

import (
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

func intRow(i int) value.Row { return value.Row{value.NewInt(int64(i))} }

func TestBatchWeightsLazy(t *testing.T) {
	var b Batch
	b.Append(intRow(1), 1)
	b.Append(intRow(2), 1)
	if b.Weights != nil {
		t.Fatalf("all-1 batch must not materialise weights")
	}
	b.Append(intRow(3), 5)
	if len(b.Weights) != 3 || b.Weight(0) != 1 || b.Weight(2) != 5 {
		t.Fatalf("weights = %v", b.Weights)
	}
	b.Reset()
	if b.Len() != 0 || b.Weights != nil {
		t.Fatalf("reset batch = %+v", b)
	}
}

func TestFromRowsAndCollect(t *testing.T) {
	n := 3*BatchSize + 17
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = intRow(i)
	}
	got, weights, err := Collect(FromRows(rows, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n || weights != nil {
		t.Fatalf("collected %d rows, weights=%v", len(got), weights)
	}
	for i, r := range got {
		if r[0].I != int64(i) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestCollectPreservesWeights(t *testing.T) {
	rows := []value.Row{intRow(1), intRow(2), intRow(3)}
	in := []int64{1, 4, 1}
	got, weights, err := Collect(FromRows(rows, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(weights) != 3 || weights[1] != 4 || weights[2] != 1 {
		t.Fatalf("rows=%d weights=%v", len(got), weights)
	}
}

func TestEmpty(t *testing.T) {
	rows, _, err := Collect(Empty())
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestOnCloseRunsOnce(t *testing.T) {
	calls := 0
	it := OnClose(FromRows([]value.Row{intRow(1)}, nil), func() { calls++ })
	if _, _, err := Collect(it); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if calls != 1 {
		t.Fatalf("finalizer ran %d times", calls)
	}
}

func TestOnCloseEarlyClose(t *testing.T) {
	calls := 0
	it := OnClose(FromRows(make([]value.Row, 10*BatchSize), nil), func() { calls++ })
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	var b Batch
	if ok, err := it.Next(&b); !ok || err != nil {
		t.Fatalf("first batch: ok=%v err=%v", ok, err)
	}
	it.Close() // abandon mid-stream, as LIMIT does
	if calls != 1 {
		t.Fatalf("finalizer ran %d times on early close", calls)
	}
}
