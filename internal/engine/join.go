package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/value"
)

// join wires left and right into a streaming join operator using the
// profile's algorithm, applying every conjunct that becomes fully
// contained in the merged unit. The accumulated left chain is the probe
// side and streams batch-at-a-time; only the right side (one base
// relation in a left-deep plan) is materialised by the operator. With
// engine parallelism > 1, equi hash joins run shard-parallel instead
// (parallel.go); ctx bounds their fan-out phases.
func (e *Engine) join(ctx context.Context, q *analyze.Query, left, right *unit, applied []bool, trackers *[]*opTracker) (*unit, error) {
	// Equi-join keys: unapplied a = b conjuncts with one side in each
	// unit.
	var lKeys, rKeys []int // slots
	var keyConjuncts []int
	for ci, c := range q.Conjuncts {
		if applied[ci] || c.Kind != analyze.EqAttrAttr {
			continue
		}
		ls, lok := left.layout.Slot(c.A)
		rs, rok := right.layout.Slot(c.B)
		if lok && rok {
			lKeys = append(lKeys, ls)
			rKeys = append(rKeys, rs)
			keyConjuncts = append(keyConjuncts, ci)
			continue
		}
		ls, lok = left.layout.Slot(c.B)
		rs, rok = right.layout.Slot(c.A)
		if lok && rok {
			lKeys = append(lKeys, ls)
			rKeys = append(rKeys, rs)
			keyConjuncts = append(keyConjuncts, ci)
		}
	}
	for _, ci := range keyConjuncts {
		applied[ci] = true
	}

	// The merged estimate uses the same per-conjunct selectivity model as
	// join ordering (NDV-based with statistics, 0.01 without), so the
	// build-side choice below and the EXPLAIN EstRows agree with the
	// estimates the planner ordered by.
	est := left.est * right.est
	for _, ci := range keyConjuncts {
		est *= e.equiSelectivity(q, q.Conjuncts[ci])
	}
	if est < 1 {
		est = 1
	}
	cols := append(append([]analyze.ColID{}, left.cols...), right.cols...)
	merged := newUnit(left.name+" ⋈ "+right.name, nil, cols, nil, est)
	for a := range left.atoms {
		merged.atoms[a] = true
	}
	for a := range right.atoms {
		merged.atoms[a] = true
	}

	// Post-join filters: conjuncts now fully contained in the merged unit
	// (non-equi cross predicates, opaque predicates, ...).
	var post []analyze.Conjunct
	for ci, c := range q.Conjuncts {
		if applied[ci] {
			continue
		}
		if merged.hasAtoms(c.Refs) {
			post = append(post, c)
			applied[ci] = true
		}
	}

	algo := e.prof.Join
	if len(lKeys) == 0 {
		algo = NestedLoopJoin // cross product
	}
	// Build-side choice: the serial hash join always materialises the
	// right (new) unit. With statistics, build on whichever side is
	// estimated smaller — the output rows still concatenate left-first,
	// so the plan's layout and result bag are unchanged.
	swap := e.stats != nil && algo == HashJoin && left.est < right.est
	opName := fmt.Sprintf("%s %s ⋈ %s", algo, left.name, right.name)
	if swap {
		opName += " (build=left)"
	}
	tr := &opTracker{op: opName, est: est}
	*trackers = append(*trackers, tr)
	base := joinBase{
		probe:  left.it,
		build:  right.it,
		lKeys:  lKeys,
		rKeys:  rKeys,
		post:   post,
		layout: merged.layout,
		tr:     tr,
	}
	if swap {
		base.probe, base.build = right.it, left.it
		base.lKeys, base.rKeys = rKeys, lKeys
		base.swapped = true
	}
	switch algo {
	case HashJoin:
		if e.par > 1 {
			merged.it = &parallelHashJoinOp{joinBase: base, ctx: ctx, par: e.par}
		} else {
			h := &hashJoinOp{joinBase: base}
			if e.vec {
				// Columnar sides, when the units expose them: build keys
				// encode column-at-a-time and probe rows materialise only
				// on a bucket hit. Open/Close stay on the row views, which
				// share the underlying operators.
				pu, bu := left, right
				if swap {
					pu, bu = right, left
				}
				h.cprobe, h.cbuild = pu.cit, bu.cit
			}
			merged.it = h
		}
	case SortMergeJoin:
		merged.it = &sortMergeJoinOp{joinBase: base}
	default:
		merged.it = &nestedLoopJoinOp{joinBase: base}
	}
	return merged, nil
}

// joinBase is what every physical join operator shares: the streamed
// probe input (the accumulated join chain), the build input (the unit
// being joined in), the equi-join key slots on each side, and the
// conjuncts that become evaluable on the concatenated row.
type joinBase struct {
	probe, build iter.Iterator
	lKeys, rKeys []int // key slots in probe rows (lKeys) and build rows (rKeys)
	post         []analyze.Conjunct
	layout       *analyze.Layout
	tr           *opTracker
	// swapped marks a stats-driven build-side swap: probe rows are then
	// the plan's RIGHT side, so emit concatenates build-row first to
	// keep the merged layout (left cols ++ right cols) intact.
	swapped bool

	pbuf  iter.Batch // current probe batch
	ppos  int
	pdone bool
}

func (j *joinBase) Open() error {
	if err := j.probe.Open(); err != nil {
		return err
	}
	return j.build.Open()
}

func (j *joinBase) Close() error {
	err := j.probe.Close()
	if err2 := j.build.Close(); err == nil {
		err = err2
	}
	return err
}

// nextProbe returns the next probe row and its weight, pulling a fresh
// batch when the current one is exhausted; ok=false means the probe side
// is done (idempotently, so operators may keep asking).
func (j *joinBase) nextProbe() (value.Row, int64, bool, error) {
	if j.pdone {
		return nil, 0, false, nil
	}
	for j.ppos >= j.pbuf.Len() {
		ok, err := j.probe.Next(&j.pbuf)
		if err != nil || !ok {
			j.pdone = true
			return nil, 0, false, err
		}
		j.tr.rowsIn += int64(j.pbuf.Len())
		j.ppos = 0
	}
	r, w := j.pbuf.Rows[j.ppos], j.pbuf.Weight(j.ppos)
	j.ppos++
	return r, w, true, nil
}

// emit appends the concatenation of the probe row pr and build row br
// with bag weight w to out, unless a post-join filter rejects it. The
// layout's left part always comes first, whichever side was built.
func (j *joinBase) emit(out *iter.Batch, pr, br value.Row, w int64) error {
	lr, rr := pr, br
	if j.swapped {
		lr, rr = br, pr
	}
	row := make(value.Row, 0, len(lr)+len(rr))
	row = append(row, lr...)
	row = append(row, rr...)
	for _, f := range j.post {
		ok, err := analyze.EvalBool(f.Expr, row, j.layout)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	out.Append(row, w)
	return nil
}

// joinBucket is one equal-key group of build rows with their weights.
type joinBucket struct {
	rows    []value.Row
	weights []int64
}

// hashJoinOp materialises only its build side as a hash table (on the
// first pull, so planning stays free) and streams the probe side through
// it, one batch at a time.
type hashJoinOp struct {
	joinBase
	table map[string]*joinBucket
	built bool
	key   []byte

	// cprobe/cbuild, when non-nil, are columnar views of the same
	// operators as probe/build (Open/Close still go through the row
	// views, which delegate to the shared operator). The build drains
	// batches with column-at-a-time key encoding; the probe materialises
	// a row only when its key hits a bucket.
	cprobe, cbuild iter.ColIterator
	cpb            iter.ColBatch
	cpos           int // next live-row index in cpb
	keyBufs        [][]byte
	pscratch       value.Row
}

func (h *hashJoinOp) buildTable() error {
	h.table = make(map[string]*joinBucket)
	if h.cbuild != nil {
		return h.buildTableCols()
	}
	var b iter.Batch
	for {
		ok, err := h.build.Next(&b)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		h.tr.rowsIn += int64(b.Len())
		for i, r := range b.Rows {
			if rowKeyHasNull(r, h.rKeys) {
				continue // NULL keys never match
			}
			h.key = value.AppendRowKey(h.key[:0], r, h.rKeys)
			bk, ok := h.table[string(h.key)]
			if !ok {
				bk = &joinBucket{}
				h.table[string(h.key)] = bk
			}
			bk.rows = append(bk.rows, r)
			bk.weights = append(bk.weights, b.Weight(i))
		}
	}
}

// buildTableCols drains the columnar build side: join keys for a whole
// batch encode column-at-a-time, and each kept row materialises fresh
// from the vectors (bucket rows outlive the batch).
func (h *hashJoinOp) buildTableCols() error {
	var cb iter.ColBatch
	for {
		ok, err := h.cbuild.NextCols(&cb)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		h.tr.rowsIn += int64(cb.Len())
		h.encodeKeys(&cb, h.rKeys)
		n := cb.Len()
		for i := 0; i < n; i++ {
			p := cb.Index(i)
			if colKeyHasNull(&cb, h.rKeys, p) {
				continue // NULL keys never match
			}
			bk, ok := h.table[string(h.keyBufs[p])]
			if !ok {
				bk = &joinBucket{}
				h.table[string(h.keyBufs[p])] = bk
			}
			row := make(value.Row, cb.Width())
			cb.ReadRow(p, row)
			bk.rows = append(bk.rows, row)
			bk.weights = append(bk.weights, cb.Weight(p))
		}
	}
}

// encodeKeys fills h.keyBufs with the encoded key of every physical row
// of cb, column-at-a-time.
func (h *hashJoinOp) encodeKeys(cb *iter.ColBatch, keys []int) {
	np := cb.Rows()
	for len(h.keyBufs) < np {
		h.keyBufs = append(h.keyBufs, nil)
	}
	for i := 0; i < np; i++ {
		h.keyBufs[i] = h.keyBufs[i][:0]
	}
	cb.AppendRowKeys(keys, h.keyBufs)
}

func (h *hashJoinOp) Next(out *iter.Batch) (bool, error) {
	t0 := time.Now()
	defer func() { h.tr.dur += time.Since(t0) }()
	if !h.built {
		if err := h.buildTable(); err != nil {
			return false, err
		}
		h.built = true
	}
	if h.cprobe != nil {
		return h.nextCols(out)
	}
	out.Reset()
	for out.Len() < iter.BatchSize {
		pr, pw, ok, err := h.nextProbe()
		if err != nil {
			return false, err
		}
		if !ok {
			break
		}
		if rowKeyHasNull(pr, h.lKeys) {
			continue
		}
		h.key = value.AppendRowKey(h.key[:0], pr, h.lKeys)
		bk := h.table[string(h.key)]
		if bk == nil {
			continue
		}
		for i, br := range bk.rows {
			if err := h.emit(out, pr, br, pw*bk.weights[i]); err != nil {
				return false, err
			}
		}
	}
	h.tr.rowsOut += int64(out.Len())
	return out.Len() > 0, nil
}

// nextCols probes with columnar batches: a batch's keys encode in one
// pass and only rows whose key hits a bucket materialise (into a scratch
// row — emit copies into the fresh output row).
func (h *hashJoinOp) nextCols(out *iter.Batch) (bool, error) {
	out.Reset()
	for out.Len() < iter.BatchSize {
		if h.cpos >= h.cpb.Len() {
			if h.pdone {
				break
			}
			ok, err := h.cprobe.NextCols(&h.cpb)
			if err != nil {
				return false, err
			}
			if !ok {
				h.pdone = true
				break
			}
			h.tr.rowsIn += int64(h.cpb.Len())
			h.encodeKeys(&h.cpb, h.lKeys)
			h.cpos = 0
		}
		p := h.cpb.Index(h.cpos)
		h.cpos++
		if colKeyHasNull(&h.cpb, h.lKeys, p) {
			continue
		}
		bk := h.table[string(h.keyBufs[p])]
		if bk == nil {
			continue
		}
		if h.pscratch == nil {
			h.pscratch = make(value.Row, h.cpb.Width())
		}
		h.cpb.ReadRow(p, h.pscratch)
		pw := h.cpb.Weight(p)
		for i, br := range bk.rows {
			if err := h.emit(out, h.pscratch, br, pw*bk.weights[i]); err != nil {
				return false, err
			}
		}
	}
	h.tr.rowsOut += int64(out.Len())
	return out.Len() > 0, nil
}

// keyedRow is a row tagged with its encoded join key and bag weight.
type keyedRow struct {
	key string
	row value.Row
	w   int64
}

// sortMergeJoinOp is inherently blocking on both inputs: it drains and
// sorts them on the encoded key on the first pull, then streams the
// merged equal-key runs batch-at-a-time (the cross product of a run is
// resumable, so one pull never emits more than about a batch).
type sortMergeJoinOp struct {
	joinBase
	ls, rs   []keyedRow
	prepared bool
	li, ri   int // merge positions
	le, re   int // current equal-key run end (valid while inRun)
	la, ra   int // cross-product cursor within the run
	inRun    bool
}

func (s *sortMergeJoinOp) drainKeyed(it iter.Iterator, keys []int) ([]keyedRow, error) {
	var out []keyedRow
	var b iter.Batch
	var kb []byte
	for {
		ok, err := it.Next(&b)
		if err != nil {
			return nil, err
		}
		if !ok {
			sort.SliceStable(out, func(i, j int) bool { return out[i].key < out[j].key })
			return out, nil
		}
		s.tr.rowsIn += int64(b.Len())
		for i, r := range b.Rows {
			if rowKeyHasNull(r, keys) {
				continue
			}
			kb = value.AppendRowKey(kb[:0], r, keys)
			out = append(out, keyedRow{key: string(kb), row: r, w: b.Weight(i)})
		}
	}
}

func (s *sortMergeJoinOp) Next(out *iter.Batch) (bool, error) {
	t0 := time.Now()
	defer func() { s.tr.dur += time.Since(t0) }()
	if !s.prepared {
		var err error
		if s.ls, err = s.drainKeyed(s.probe, s.lKeys); err != nil {
			return false, err
		}
		if s.rs, err = s.drainKeyed(s.build, s.rKeys); err != nil {
			return false, err
		}
		s.prepared = true
	}
	out.Reset()
	for out.Len() < iter.BatchSize {
		if s.inRun {
			if err := s.emit(out, s.ls[s.la].row, s.rs[s.ra].row, s.ls[s.la].w*s.rs[s.ra].w); err != nil {
				return false, err
			}
			s.ra++
			if s.ra >= s.re {
				s.ra = s.ri
				s.la++
			}
			if s.la >= s.le {
				s.inRun = false
				s.li, s.ri = s.le, s.re
			}
			continue
		}
		if s.li >= len(s.ls) || s.ri >= len(s.rs) {
			break
		}
		switch {
		case s.ls[s.li].key < s.rs[s.ri].key:
			s.li++
		case s.ls[s.li].key > s.rs[s.ri].key:
			s.ri++
		default:
			// Found an equal-key run on both sides.
			s.le = s.li
			for s.le < len(s.ls) && s.ls[s.le].key == s.ls[s.li].key {
				s.le++
			}
			s.re = s.ri
			for s.re < len(s.rs) && s.rs[s.re].key == s.rs[s.ri].key {
				s.re++
			}
			s.la, s.ra = s.li, s.ri
			s.inRun = true
		}
	}
	s.tr.rowsOut += int64(out.Len())
	return out.Len() > 0, nil
}

// nestedLoopJoinOp materialises the build side and streams the probe
// side, comparing every pair; it serves cross products and the explicit
// NestedLoopJoin profile algorithm. The inner loop is resumable so one
// pull emits about a batch.
type nestedLoopJoinOp struct {
	joinBase
	brows   []value.Row
	bw      []int64
	built   bool
	cur     value.Row // probe row currently being expanded
	curW    int64
	bi      int // next build row for cur
	haveCur bool
}

func (n *nestedLoopJoinOp) buildSide() error {
	var b iter.Batch
	for {
		ok, err := n.build.Next(&b)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		n.tr.rowsIn += int64(b.Len())
		for i, r := range b.Rows {
			n.brows = append(n.brows, r)
			n.bw = append(n.bw, b.Weight(i))
		}
	}
}

func (n *nestedLoopJoinOp) Next(out *iter.Batch) (bool, error) {
	t0 := time.Now()
	defer func() { n.tr.dur += time.Since(t0) }()
	if !n.built {
		if err := n.buildSide(); err != nil {
			return false, err
		}
		n.built = true
	}
	out.Reset()
	for out.Len() < iter.BatchSize {
		if !n.haveCur {
			pr, pw, ok, err := n.nextProbe()
			if err != nil {
				return false, err
			}
			if !ok {
				break
			}
			n.cur, n.curW, n.bi, n.haveCur = pr, pw, 0, true
		}
		for n.bi < len(n.brows) && out.Len() < iter.BatchSize {
			br, bw := n.brows[n.bi], n.bw[n.bi]
			n.bi++
			match := true
			for k := range n.lKeys {
				lv, rv := n.cur[n.lKeys[k]], br[n.rKeys[k]]
				if lv.IsNull() || rv.IsNull() || !value.Equal(lv, rv) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if err := n.emit(out, n.cur, br, n.curW*bw); err != nil {
				return false, err
			}
		}
		if n.bi >= len(n.brows) {
			n.haveCur = false
		}
	}
	n.tr.rowsOut += int64(out.Len())
	return out.Len() > 0, nil
}

func rowKeyHasNull(r value.Row, keys []int) bool {
	for _, k := range keys {
		if r[k].IsNull() {
			return true
		}
	}
	return false
}

// colKeyHasNull reports whether physical row p of cb has a NULL in any
// key column. It reads through Value, which is correct for boxed columns
// whose null bitmap is stale after a kind migration.
func colKeyHasNull(cb *iter.ColBatch, keys []int, p int) bool {
	for _, k := range keys {
		if cb.Col(k).Value(p).IsNull() {
			return true
		}
	}
	return false
}
