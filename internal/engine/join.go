package engine

import (
	"fmt"
	"sort"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/value"
)

// join combines two units with the profile's join algorithm, applying
// every conjunct that becomes fully contained in the merged unit.
func (e *Engine) join(q *analyze.Query, left, right *unit, applied []bool, st *Stats) (*unit, error) {
	t0 := time.Now()

	// Equi-join keys: unapplied a = b conjuncts with one side in each
	// unit.
	var lKeys, rKeys []int // slots
	var keyConjuncts []int
	for ci, c := range q.Conjuncts {
		if applied[ci] || c.Kind != analyze.EqAttrAttr {
			continue
		}
		ls, lok := left.layout.Slot(c.A)
		rs, rok := right.layout.Slot(c.B)
		if lok && rok {
			lKeys = append(lKeys, ls)
			rKeys = append(rKeys, rs)
			keyConjuncts = append(keyConjuncts, ci)
			continue
		}
		ls, lok = left.layout.Slot(c.B)
		rs, rok = right.layout.Slot(c.A)
		if lok && rok {
			lKeys = append(lKeys, ls)
			rKeys = append(rKeys, rs)
			keyConjuncts = append(keyConjuncts, ci)
		}
	}
	for _, ci := range keyConjuncts {
		applied[ci] = true
	}

	merged := newUnit(left.name+" ⋈ "+right.name, nil, append(append([]analyze.ColID{}, left.cols...), right.cols...), nil)
	for a := range left.atoms {
		merged.atoms[a] = true
	}
	for a := range right.atoms {
		merged.atoms[a] = true
	}

	// Post-join filters: conjuncts now fully contained in the merged unit
	// (non-equi cross predicates, opaque predicates, ...).
	var post []analyze.Conjunct
	for ci, c := range q.Conjuncts {
		if applied[ci] {
			continue
		}
		if merged.hasAtoms(c.Refs) {
			post = append(post, c)
			applied[ci] = true
		}
	}

	algo := e.prof.Join
	if len(lKeys) == 0 {
		algo = NestedLoopJoin // cross product
	}

	emit := func(lr, rr value.Row) error {
		out := make(value.Row, 0, len(lr)+len(rr))
		out = append(out, lr...)
		out = append(out, rr...)
		for _, f := range post {
			ok, err := analyze.EvalBool(f.Expr, out, merged.layout)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		merged.rows = append(merged.rows, out)
		return nil
	}

	var err error
	switch algo {
	case HashJoin:
		err = hashJoin(left, right, lKeys, rKeys, emit)
	case SortMergeJoin:
		err = sortMergeJoin(left, right, lKeys, rKeys, emit)
	default:
		err = nestedLoopJoin(left, right, lKeys, rKeys, emit)
	}
	if err != nil {
		return nil, err
	}
	merged.est = float64(len(merged.rows))
	st.Ops = append(st.Ops, OpStat{
		Op:       fmt.Sprintf("%s %s ⋈ %s", algo, left.name, right.name),
		RowsIn:   int64(len(left.rows) + len(right.rows)),
		RowsOut:  int64(len(merged.rows)),
		Duration: time.Since(t0),
	})
	return merged, nil
}

// hashJoin builds a hash table on the smaller side and probes with the
// larger, preserving left-row ordering in the output where possible.
func hashJoin(left, right *unit, lKeys, rKeys []int, emit func(lr, rr value.Row) error) error {
	buildLeft := len(left.rows) <= len(right.rows)
	var buildRows, probeRows []value.Row
	var buildKeys, probeKeys []int
	if buildLeft {
		buildRows, buildKeys = left.rows, lKeys
		probeRows, probeKeys = right.rows, rKeys
	} else {
		buildRows, buildKeys = right.rows, rKeys
		probeRows, probeKeys = left.rows, lKeys
	}
	table := make(map[string][]value.Row, len(buildRows))
	for _, r := range buildRows {
		if rowKeyHasNull(r, buildKeys) {
			continue // NULL keys never match
		}
		k := value.Key(r.Project(buildKeys))
		table[k] = append(table[k], r)
	}
	for _, pr := range probeRows {
		if rowKeyHasNull(pr, probeKeys) {
			continue
		}
		k := value.Key(pr.Project(probeKeys))
		for _, br := range table[k] {
			var lr, rr value.Row
			if buildLeft {
				lr, rr = br, pr
			} else {
				lr, rr = pr, br
			}
			if err := emit(lr, rr); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortMergeJoin sorts both inputs on the encoded key and merges equal-key
// runs.
func sortMergeJoin(left, right *unit, lKeys, rKeys []int, emit func(lr, rr value.Row) error) error {
	type keyed struct {
		key string
		row value.Row
	}
	prepare := func(rows []value.Row, keys []int) []keyed {
		out := make([]keyed, 0, len(rows))
		for _, r := range rows {
			if rowKeyHasNull(r, keys) {
				continue
			}
			out = append(out, keyed{key: value.Key(r.Project(keys)), row: r})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
		return out
	}
	ls := prepare(left.rows, lKeys)
	rs := prepare(right.rows, rKeys)
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		switch {
		case ls[i].key < rs[j].key:
			i++
		case ls[i].key > rs[j].key:
			j++
		default:
			// Equal-key runs.
			i2 := i
			for i2 < len(ls) && ls[i2].key == ls[i].key {
				i2++
			}
			j2 := j
			for j2 < len(rs) && rs[j2].key == rs[j].key {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if err := emit(ls[a].row, rs[b].row); err != nil {
						return err
					}
				}
			}
			i, j = i2, j2
		}
	}
	return nil
}

// nestedLoopJoin compares every pair; used for cross products and as the
// explicit NestedLoopJoin profile algorithm.
func nestedLoopJoin(left, right *unit, lKeys, rKeys []int, emit func(lr, rr value.Row) error) error {
	for _, lr := range left.rows {
		for _, rr := range right.rows {
			match := true
			for k := range lKeys {
				lv, rv := lr[lKeys[k]], rr[rKeys[k]]
				if lv.IsNull() || rv.IsNull() || !value.Equal(lv, rv) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if err := emit(lr, rr); err != nil {
				return err
			}
		}
	}
	return nil
}

func rowKeyHasNull(r value.Row, keys []int) bool {
	for _, k := range keys {
		if r[k].IsNull() {
			return true
		}
	}
	return false
}
