package engine

import (
	"sort"
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

type env struct {
	db    *schema.Database
	store *storage.Store
}

func newEnv(t *testing.T) *env {
	t.Helper()
	db, err := schema.NewDatabase(
		schema.MustRelation("r",
			schema.Attribute{Name: "a", Kind: value.Int},
			schema.Attribute{Name: "b", Kind: value.Int},
			schema.Attribute{Name: "tag", Kind: value.String},
		),
		schema.MustRelation("s",
			schema.Attribute{Name: "b", Kind: value.Int},
			schema.Attribute{Name: "c", Kind: value.Int},
		),
		schema.MustRelation("u",
			schema.Attribute{Name: "c", Kind: value.Int},
			schema.Attribute{Name: "d", Kind: value.String},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{db: db, store: storage.NewStore(db)}
	// r: (a, b, tag) with a = 1..6, b = a % 3.
	for i := 1; i <= 6; i++ {
		e.insert(t, "r", value.NewInt(int64(i)), value.NewInt(int64(i%3)), value.NewString("t"+string(rune('0'+i%2))))
	}
	// s: (b, c) with b = 0..2, c = 10b.
	for b := 0; b <= 2; b++ {
		e.insert(t, "s", value.NewInt(int64(b)), value.NewInt(int64(10*b)))
	}
	// u: (c, d).
	for c := 0; c <= 20; c += 10 {
		e.insert(t, "u", value.NewInt(int64(c)), value.NewString("d"+string(rune('0'+c/10))))
	}
	return e
}

func (e *env) insert(t *testing.T, table string, vals ...value.Value) {
	t.Helper()
	if err := e.store.MustTable(table).Insert(value.Row(vals)); err != nil {
		t.Fatal(err)
	}
}

func (e *env) analyze(t *testing.T, sql string) *analyze.Query {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, e.db)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func rowsKey(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.Key(r)
	}
	sort.Strings(out)
	return out
}

func equalBags(a, b []value.Row) bool {
	ka, kb := rowsKey(a), rowsKey(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

var profiles = []Profile{ProfilePostgres, ProfileMySQL, ProfileMariaDB,
	{Name: "aswritten-nlj", Join: NestedLoopJoin, Order: OrderAsWritten}}

// TestProfilesAgree runs a battery of queries under every profile and
// demands identical answers: join algorithm, ordering and pushdown are
// performance knobs, never semantics.
func TestProfilesAgree(t *testing.T) {
	e := newEnv(t)
	queries := []string{
		"SELECT a FROM r WHERE b = 1",
		"SELECT r.a, s.c FROM r, s WHERE r.b = s.b",
		"SELECT r.a, u.d FROM r, s, u WHERE r.b = s.b AND s.c = u.c",
		"SELECT r.a FROM r, s WHERE r.b = s.b AND s.c > 5",
		"SELECT tag, COUNT(*) AS n FROM r GROUP BY tag ORDER BY tag",
		"SELECT r.a FROM r, s WHERE r.b = s.b AND (r.a = 1 OR r.a = 4)",
		"SELECT DISTINCT b FROM r ORDER BY b DESC",
		"SELECT a FROM r ORDER BY a LIMIT 2 OFFSET 1",
		"SELECT r1.a, r2.a FROM r r1, r r2 WHERE r1.b = r2.b AND r1.a < r2.a",
	}
	for _, sql := range queries {
		q := e.analyze(t, sql)
		var ref []value.Row
		for i, prof := range profiles {
			rows, _, err := New(e.store, prof).Run(q)
			if err != nil {
				t.Fatalf("%s under %s: %v", sql, prof.Name, err)
			}
			if i == 0 {
				ref = rows
				continue
			}
			if !equalBags(ref, rows) {
				t.Errorf("%s: %s disagrees with %s\n%v\nvs\n%v",
					sql, prof.Name, profiles[0].Name, ref, rows)
			}
		}
	}
}

func TestCrossProductWhenNoJoinKey(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT r.a, u.d FROM r, u")
	rows, _, err := New(e.store, ProfilePostgres).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*3 {
		t.Errorf("cross product size = %d, want 18", len(rows))
	}
}

func TestScanStatsAndPushdown(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT a FROM r WHERE b = 1")
	_, st, err := New(e.store, ProfilePostgres).Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 6 {
		t.Errorf("Scanned = %d, want 6 (full relation)", st.Scanned)
	}
	if len(st.Ops) == 0 || !strings.HasPrefix(st.Ops[0].Op, "scan r") {
		t.Errorf("ops = %+v", st.Ops)
	}
	if st.Ops[0].RowsOut != 2 {
		t.Errorf("filter pushdown rows out = %d, want 2", st.Ops[0].RowsOut)
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	e := newEnv(t)
	e.insert(t, "r", value.NewInt(7), value.NewNull(), value.NewString("x"))
	e.insert(t, "s", value.NewNull(), value.NewInt(99))
	q := e.analyze(t, "SELECT r.a, s.c FROM r, s WHERE r.b = s.b")
	for _, prof := range profiles {
		rows, _, err := New(e.store, prof).Run(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r[0].I == 7 || r[1].I == 99 {
				t.Errorf("%s joined NULL keys: %v", prof.Name, r)
			}
		}
	}
}

func TestNumericCoercionInJoin(t *testing.T) {
	// A float key must join against an equal int key.
	db, err := schema.NewDatabase(
		schema.MustRelation("fi", schema.Attribute{Name: "k", Kind: value.Float}),
		schema.MustRelation("ii", schema.Attribute{Name: "k", Kind: value.Int}),
	)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore(db)
	_ = store.MustTable("fi").Insert(value.Row{value.NewFloat(2.0)})
	_ = store.MustTable("ii").Insert(value.Row{value.NewInt(2)})
	stmt, _ := sqlparser.Parse("SELECT fi.k FROM fi, ii WHERE fi.k = ii.k")
	q, err := analyze.Analyze(stmt.Select, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range profiles {
		rows, _, err := New(store, prof).Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Errorf("%s: 2.0 should join 2, got %v", prof.Name, rows)
		}
	}
}

func TestRunWithSources(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT r.a, s.c FROM r, s WHERE r.b = s.b AND r.a = 2")
	// Pre-materialise atom 0 (r) as if a bounded plan fetched it.
	src := Source{
		Atoms: []int{0},
		Cols:  []analyze.ColID{{Atom: 0, Attr: 0}, {Atom: 0, Attr: 1}},
		Rows:  []value.Row{{value.NewInt(2), value.NewInt(2)}},
		Name:  "bounded(r)",
	}
	rows, st, err := New(e.store, ProfilePostgres).RunWithSources(q, []Source{src})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 2 || rows[0][1].I != 20 {
		t.Errorf("rows = %v", rows)
	}
	// Only s is scanned.
	if st.Scanned != 3 {
		t.Errorf("Scanned = %d, want 3 (s only)", st.Scanned)
	}
}

func TestJoinOrderStrategiesProduceAllUnits(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT r.a FROM r, s, u WHERE r.b = s.b AND s.c = u.c")
	for _, prof := range []Profile{
		{Name: "dp", Join: HashJoin, Order: OrderDP, ProjectionPushdown: true},
		{Name: "greedy", Join: HashJoin, Order: OrderGreedy},
		{Name: "aswritten", Join: HashJoin, Order: OrderAsWritten},
	} {
		rows, _, err := New(e.store, prof).Run(q)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if len(rows) != 6 {
			t.Errorf("%s: rows = %d, want 6", prof.Name, len(rows))
		}
	}
}

func TestSelectivityEstimates(t *testing.T) {
	e := newEnv(t)
	tab := e.store.MustTable("r")
	stats := tab.Stats()
	eq := analyze.Conjunct{Kind: analyze.EqAttrConst, A: analyze.ColID{Atom: 0, Attr: 0}}
	if s := selectivity(eq, stats); s != 1.0/6 {
		t.Errorf("eq selectivity = %v, want 1/6", s)
	}
	in := analyze.Conjunct{Kind: analyze.InConsts, A: analyze.ColID{Atom: 0, Attr: 1},
		Vals: []value.Value{value.NewInt(0), value.NewInt(1)}}
	if s := selectivity(in, stats); s != 2.0/3 {
		t.Errorf("in selectivity = %v, want 2/3", s)
	}
}

func TestDescribe(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT r.a FROM r, s WHERE r.b = s.b")
	desc := New(e.store, ProfileMySQL).Describe(q)
	if !strings.Contains(desc, "mysql") || !strings.Contains(desc, "sort-merge") {
		t.Errorf("Describe = %q", desc)
	}
}

func TestUnknownRelationError(t *testing.T) {
	e := newEnv(t)
	q := e.analyze(t, "SELECT a FROM r")
	// Sabotage: query analysed against a schema whose table is missing in
	// this store.
	otherDB, _ := schema.NewDatabase(schema.MustRelation("r", schema.Attribute{Name: "a", Kind: value.Int}))
	otherStore := storage.NewStore(otherDB)
	_ = otherStore
	// Run against a store lacking the table by building a fresh store
	// with a different relation set.
	empty, _ := schema.NewDatabase()
	if _, _, err := New(storage.NewStore(empty), ProfilePostgres).Run(q); err == nil {
		t.Error("missing table should error")
	}
}
