// Package engine is the conventional query engine under BEAS: a
// cost-based planner (filter pushdown, join ordering) over batched
// streaming scans, with hash, sort-merge and nested-loop joins.
//
// Execution is a pull pipeline of iterator operators (internal/iter):
// scans stream batches of base rows through filters and projections,
// joins materialise only their build side and stream the probe side, and
// the relational tail (internal/exec) pulls from the root. Intermediate
// relations are therefore never materialised wholesale — a LIMIT query
// without ORDER BY stops the scans after enough rows.
//
// The engine plays two roles from the paper:
//
//   - the "underlying DBMS" that executes non-covered (sub-)queries, and
//   - the commercial comparators (PostgreSQL / MySQL / MariaDB) of the
//     demo's evaluation, emulated by three profiles that differ in join
//     algorithm, join-ordering strategy and scan/projection behaviour.
//     The emulation preserves the property under study — conventional
//     plans read Θ(|D|) data, so their cost grows linearly with the
//     database — and the relative ordering of the three systems observed
//     in the paper (PostgreSQL fastest, MySQL slowest).
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/exec"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/obs"
	"github.com/bounded-eval/beas/internal/stats"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// JoinAlgo selects the physical join operator.
type JoinAlgo uint8

// Join algorithms.
const (
	HashJoin JoinAlgo = iota
	SortMergeJoin
	NestedLoopJoin
)

// String names the algorithm.
func (a JoinAlgo) String() string {
	switch a {
	case HashJoin:
		return "hash join"
	case SortMergeJoin:
		return "sort-merge join"
	case NestedLoopJoin:
		return "nested-loop join"
	default:
		return "join"
	}
}

// OrderStrategy selects the join-ordering algorithm.
type OrderStrategy uint8

// Join ordering strategies.
const (
	// OrderDP enumerates left-deep orders by dynamic programming over the
	// estimated cardinalities.
	OrderDP OrderStrategy = iota
	// OrderGreedy starts from the smallest filtered relation and greedily
	// joins the connected relation with the smallest estimated result.
	OrderGreedy
	// OrderAsWritten joins in FROM-clause order.
	OrderAsWritten
)

// Profile configures the engine to emulate a conventional DBMS.
type Profile struct {
	Name string
	Join JoinAlgo
	// Order is the join-ordering strategy.
	Order OrderStrategy
	// ProjectionPushdown, when set, narrows scan output to the attributes
	// the query uses; otherwise scans carry full-width tuples through the
	// plan (the redundancy the paper's feature (2) eliminates).
	ProjectionPushdown bool
	// MaterializeRows, when set, copies each scanned record before
	// evaluating pushed-down filters, emulating engines that unpack the
	// full stored record per row.
	MaterializeRows bool
}

// The three baseline profiles used in the paper's evaluation, plus the
// default profile BEAS itself delegates non-covered queries to.
var (
	// ProfilePostgres emulates the strongest baseline: DP join ordering,
	// hash joins, projection pushdown.
	ProfilePostgres = Profile{Name: "postgresql", Join: HashJoin, Order: OrderDP, ProjectionPushdown: true}
	// ProfileMariaDB emulates MariaDB: greedy ordering, hash joins,
	// full-width tuples.
	ProfileMariaDB = Profile{Name: "mariadb", Join: HashJoin, Order: OrderGreedy, MaterializeRows: true}
	// ProfileMySQL emulates MySQL: greedy ordering, sort-merge joins,
	// full-width tuples.
	ProfileMySQL = Profile{Name: "mysql", Join: SortMergeJoin, Order: OrderGreedy, MaterializeRows: true}
)

// OpStat records one physical operator's work, for the per-operation
// breakdown of the demo's performance analyser (Fig. 3). With streaming
// execution Duration is cumulative time spent in the operator's subtree.
type OpStat struct {
	Op       string
	RowsIn   int64
	RowsOut  int64
	Duration time.Duration
	// EstRows is the planner's cardinality estimate for the operator's
	// output (scans and joins; 0 where no estimate applies), the
	// estimated-vs-actual signal EXPLAIN ANALYZE reports for the
	// conventional part of a plan.
	EstRows float64
}

// Stats aggregates conventional-plan execution statistics. Counters
// accrue while the plan streams; they are final once the result iterator
// is exhausted or closed.
type Stats struct {
	Scanned  int64 // base rows read from storage
	RowsOut  int64
	Ops      []OpStat
	Duration time.Duration
}

// opTracker accumulates one operator's counters during streaming; the
// finaliser turns trackers into OpStats in plan order.
type opTracker struct {
	op      string
	rowsIn  int64
	rowsOut int64
	dur     time.Duration
	est     float64
}

// Engine executes resolved queries against a store under a profile.
type Engine struct {
	store *storage.Store
	prof  Profile
	// par is the intra-query parallelism: with par > 1 hash joins build
	// and probe shard-parallel (see parallel.go). It is fixed at
	// construction, so a shared engine is safe for concurrent queries.
	par int
	// stats, when non-nil, is the data-statistics catalog: scan and join
	// selectivities come from live NDVs and histograms instead of the
	// magic constants, hash joins build on the estimated-smaller side,
	// and OpStats carry the estimates. nil keeps the historical planner
	// byte-for-byte (the baseline profiles always run without it).
	stats *stats.Catalog
	// vec enables columnar scans, vectorized filters and the columnar
	// relational tail / hash-join sides. On by default; WithVectorized
	// (false) forces the scalar row pipeline everywhere. Results are
	// identical either way. Profiles with MaterializeRows stay scalar —
	// they emulate per-row record unpacking by construction.
	vec bool
	// batch is the row capacity of columnar batches (iter.BatchSize by
	// default); the row pipeline keeps the constant.
	batch int
}

// New creates an engine over store with the given profile.
func New(store *storage.Store, prof Profile) *Engine {
	return NewParallel(store, prof, 1)
}

// NewParallel creates an engine whose hash joins use up to par worker
// goroutines. par ≤ 1 is the serial engine; results are identical
// either way.
func NewParallel(store *storage.Store, prof Profile, par int) *Engine {
	if par < 1 {
		par = 1
	}
	return &Engine{store: store, prof: prof, par: par, vec: true, batch: iter.BatchSize}
}

// WithVectorized enables or disables columnar execution and returns the
// engine. Call at construction time only.
func (e *Engine) WithVectorized(on bool) *Engine {
	e.vec = on
	return e
}

// WithBatchSize sets the columnar batch row capacity and returns the
// engine (n ≤ 0 keeps the default). Call at construction time only.
func (e *Engine) WithBatchSize(n int) *Engine {
	if n > 0 {
		e.batch = n
	}
	return e
}

// WithStats attaches a data-statistics catalog and returns the engine.
// Call at construction time only (before the engine is shared): the
// planner then estimates selectivities from live NDVs and equi-depth
// histograms and picks hash-join build sides by estimated cardinality.
func (e *Engine) WithStats(cat *stats.Catalog) *Engine {
	e.stats = cat
	return e
}

// Profile returns the engine's profile.
func (e *Engine) Profile() Profile { return e.prof }

// Parallelism returns the engine's intra-query parallelism.
func (e *Engine) Parallelism() int { return e.par }

// Source is a pre-materialised relation standing in for one or more atoms
// of the query — the partially bounded optimizer materialises covered
// sub-queries this way and hands them to the conventional engine.
type Source struct {
	Atoms []int
	Cols  []analyze.ColID
	Rows  []value.Row
	Name  string
}

// unit is an intermediate relation during join planning: an iterator
// that will produce its rows plus the metadata the planner needs.
type unit struct {
	atoms  map[int]bool
	cols   []analyze.ColID
	layout *analyze.Layout
	it     iter.Iterator
	// cit, when non-nil, is the columnar view of the same operator it
	// wraps (never both consumed: exactly one view of a unit is opened
	// and pulled). Joins and filters that only understand rows clear it.
	cit  iter.ColIterator
	est  float64
	name string
}

func newUnit(name string, atoms []int, cols []analyze.ColID, it iter.Iterator, est float64) *unit {
	u := &unit{atoms: make(map[int]bool), cols: cols, it: it, layout: analyze.NewLayout(), name: name, est: est}
	for _, a := range atoms {
		u.atoms[a] = true
	}
	for _, c := range cols {
		u.layout.Add(c)
	}
	return u
}

func (u *unit) hasAtoms(refs []int) bool {
	for _, a := range refs {
		if !u.atoms[a] {
			return false
		}
	}
	return true
}

// Run plans and executes the query with streaming scans for every atom.
func (e *Engine) Run(q *analyze.Query) ([]value.Row, *Stats, error) {
	return e.RunWithSources(q, nil)
}

// RunWithSources is Run with some atoms replaced by pre-materialised
// sources (partially bounded evaluation).
func (e *Engine) RunWithSources(q *analyze.Query, sources []Source) ([]value.Row, *Stats, error) {
	it, st, err := e.Stream(q, sources)
	if err != nil {
		return nil, st, err
	}
	rows, _, err := iter.Collect(it)
	if err != nil {
		return nil, st, err
	}
	return rows, st, nil
}

// RunContext is Run under a context: cancellation or deadline expiry
// halts the scans — and with them any join build or sort drain pulling
// from them — at the next batch boundary.
func (e *Engine) RunContext(ctx context.Context, q *analyze.Query) ([]value.Row, *Stats, error) {
	it, st, err := e.StreamContext(ctx, q, nil)
	if err != nil {
		return nil, st, err
	}
	rows, _, err := iter.Collect(it)
	if err != nil {
		return nil, st, err
	}
	return rows, st, nil
}

// Stream plans the query and returns a pull iterator over the final
// result rows. Statistics accrue in st while the iterator is consumed
// and are final once it is exhausted or closed; closing early (LIMIT)
// abandons the rest of the pipeline without executing it.
func (e *Engine) Stream(q *analyze.Query, sources []Source) (iter.Iterator, *Stats, error) {
	return e.StreamContext(context.Background(), q, sources)
}

// StreamContext is Stream under a context. Every scan checks the
// context before producing a batch, which propagates cancellation into
// the blocking loops that pull from scans (hash-join builds, sort-merge
// drains, aggregation folds) — a cancelled conventional plan stops
// reading the database mid-join rather than at the next result row.
func (e *Engine) StreamContext(ctx context.Context, q *analyze.Query, sources []Source) (iter.Iterator, *Stats, error) {
	start := time.Now()
	st := &Stats{}
	var trackers []*opTracker

	applied := make([]bool, len(q.Conjuncts))
	covered := make(map[int]bool)
	var units []*unit

	// Pre-materialised sources: their internal conjuncts are already
	// applied by the bounded executor.
	for _, s := range sources {
		u := newUnit(s.Name, s.Atoms, s.Cols, iter.FromRows(s.Rows, nil), float64(len(s.Rows)))
		units = append(units, u)
		for _, a := range s.Atoms {
			covered[a] = true
		}
		for ci, c := range q.Conjuncts {
			if u.hasAtoms(c.Refs) {
				applied[ci] = true
			}
		}
	}

	// Streaming scans for the remaining atoms with filter (and optionally
	// projection) pushdown.
	for ai := range q.Atoms {
		if covered[ai] {
			continue
		}
		u, err := e.scanAtom(ctx, q, ai, applied, st, &trackers)
		if err != nil {
			return nil, st, err
		}
		units = append(units, u)
	}

	// Join ordering, then compose the iterator tree: the accumulated
	// chain streams as the probe side of each join.
	order, err := e.joinOrder(q, units, applied)
	if err != nil {
		return nil, st, err
	}
	cur := units[order[0]]
	for _, idx := range order[1:] {
		cur, err = e.join(ctx, q, cur, units[idx], applied, &trackers)
		if err != nil {
			return nil, st, err
		}
	}

	// Residual conjuncts (anything not yet applied) as streaming filters.
	for ci, ok := range applied {
		if ok {
			continue
		}
		c := q.Conjuncts[ci]
		tr := &opTracker{op: "filter " + c.String()}
		trackers = append(trackers, tr)
		cur.it = &filterOp{in: cur.it, cond: c, layout: cur.layout, tr: tr}
		cur.cit = nil
		applied[ci] = true
	}

	// Relational tail: columnar when the plan root still exposes column
	// vectors (single-unit plans without residual filters), row-based
	// otherwise. Both tails yield identical streams.
	tailName := "project"
	if q.IsAgg {
		tailName = "aggregate"
	}
	tailTr := &opTracker{op: tailName}
	trackers = append(trackers, tailTr)
	var out iter.Iterator
	if cur.cit != nil {
		ctailIn := iter.CountedCols(cur.cit, &tailTr.rowsIn)
		out = iter.Counted(exec.StreamCol(q, ctailIn, cur.layout), &tailTr.rowsOut)
	} else {
		tailIn := iter.Counted(cur.it, &tailTr.rowsIn)
		out = iter.Counted(exec.Stream(q, tailIn, cur.layout), &tailTr.rowsOut)
	}

	final := iter.OnClose(iter.WithContext(ctx, out), func() {
		st.Ops = make([]OpStat, len(trackers))
		for i, tr := range trackers {
			st.Ops[i] = OpStat{Op: tr.op, RowsIn: tr.rowsIn, RowsOut: tr.rowsOut, Duration: tr.dur, EstRows: tr.est}
		}
		st.RowsOut = tailTr.rowsOut
		st.Duration = time.Since(start)
		if trace, parent := obs.FromContext(ctx); trace != nil {
			for _, o := range st.Ops {
				attrs := []obs.Attr{
					{Key: "rowsIn", Val: o.RowsIn},
					{Key: "rowsOut", Val: o.RowsOut},
				}
				if o.EstRows != 0 {
					attrs = append(attrs, obs.Attr{Key: "estRows", Val: o.EstRows})
				}
				trace.AddSpan(parent, "op "+o.Op, start, o.Duration, attrs...)
			}
		}
	})
	return final, st, nil
}

// filterOp streams rows that satisfy one residual conjunct.
type filterOp struct {
	in     iter.Iterator
	cond   analyze.Conjunct
	layout *analyze.Layout
	tr     *opTracker
	buf    iter.Batch
}

func (f *filterOp) Open() error  { return f.in.Open() }
func (f *filterOp) Close() error { return f.in.Close() }

func (f *filterOp) Next(b *iter.Batch) (bool, error) {
	t0 := time.Now()
	defer func() { f.tr.dur += time.Since(t0) }()
	b.Reset()
	for b.Len() == 0 {
		ok, err := f.in.Next(&f.buf)
		if err != nil || !ok {
			f.tr.rowsOut += int64(b.Len())
			return b.Len() > 0, err
		}
		f.tr.rowsIn += int64(f.buf.Len())
		for i, r := range f.buf.Rows {
			pass, err := analyze.EvalBool(f.cond.Expr, r, f.layout)
			if err != nil {
				return false, err
			}
			if pass {
				b.Append(r, f.buf.Weight(i))
			}
		}
	}
	f.tr.rowsOut += int64(b.Len())
	return true, nil
}

// scanAtom produces the unit for one atom: a streaming scan applying
// single-atom conjuncts and projecting according to the profile.
func (e *Engine) scanAtom(ctx context.Context, q *analyze.Query, ai int, applied []bool, st *Stats, trackers *[]*opTracker) (*unit, error) {
	atom := q.Atoms[ai]
	table, ok := e.store.Table(atom.Rel.Name)
	if !ok {
		return nil, fmt.Errorf("engine: no table for relation %q", atom.Rel.Name)
	}

	// Full-relation layout for filter evaluation during the scan.
	fullLayout := analyze.NewLayout()
	for attr := range atom.Rel.Attrs {
		fullLayout.Add(analyze.ColID{Atom: ai, Attr: attr})
	}

	// Single-atom conjuncts push down to the scan.
	var filters []analyze.Conjunct
	for ci, c := range q.Conjuncts {
		if !applied[ci] && len(c.Refs) == 1 && c.Refs[0] == ai {
			filters = append(filters, c)
			applied[ci] = true
		}
	}

	// Output columns: used attributes under projection pushdown, the full
	// relation otherwise.
	var cols []analyze.ColID
	if e.prof.ProjectionPushdown {
		for _, attr := range q.UsedAttrs(ai) {
			cols = append(cols, analyze.ColID{Atom: ai, Attr: attr})
		}
	} else {
		for attr := range atom.Rel.Attrs {
			cols = append(cols, analyze.ColID{Atom: ai, Attr: attr})
		}
	}
	proj := make([]int, len(cols))
	for i, c := range cols {
		proj[i] = c.Attr
	}

	tr := &opTracker{op: fmt.Sprintf("scan %s (%s)", atom.Name, atom.Rel.Name)}
	*trackers = append(*trackers, tr)
	est := e.estimateScan(q, ai, table, filters)
	tr.est = est

	// Columnar scan: the cursor fills typed column vectors directly and
	// pushed-down filters run as vectorized selection loops. Valid under
	// projection pushdown because UsedAttrs includes every WHERE column,
	// so the projected layout materialises everything the filters read.
	// MaterializeRows profiles keep the row scan — their per-row record
	// copy is the behaviour being emulated.
	if e.vec && !e.prof.MaterializeRows {
		colLayout := analyze.NewLayout()
		for _, c := range cols {
			colLayout.Add(c)
		}
		var exprs []analyze.Expr
		for _, f := range filters {
			exprs = append(exprs, f.Expr)
		}
		cop := &colScanOp{
			ctx:     ctx,
			table:   table,
			cols:    proj,
			batch:   e.batch,
			tr:      tr,
			scanned: &st.Scanned,
		}
		if len(exprs) > 0 {
			cop.filter = analyze.CompileFilters(exprs, colLayout)
		}
		u := newUnit(atom.Name, []int{ai}, cols, iter.RowView(cop, len(cols)), est)
		u.cit = cop
		return u, nil
	}

	op := &scanOp{
		ctx:         ctx,
		table:       table,
		filters:     filters,
		layout:      fullLayout,
		proj:        proj,
		materialize: e.prof.MaterializeRows,
		tr:          tr,
		scanned:     &st.Scanned,
	}
	return newUnit(atom.Name, []int{ai}, cols, op, est), nil
}

// colScanOp is the columnar scan: the storage cursor appends projected
// attributes straight into typed column vectors, and pushed-down filters
// run as vectorized comparison loops writing a selection vector (with a
// scalar fallback inside VecFilter for anything exotic). It streams the
// same rows as scanOp.
type colScanOp struct {
	ctx     context.Context
	table   *storage.Table
	filter  *analyze.VecFilter
	cols    []int // attr positions to project, in layout order
	batch   int
	tr      *opTracker
	scanned *int64

	cur *storage.Cursor
}

func (s *colScanOp) Open() error {
	s.cur = s.table.Scan()
	return nil
}

func (s *colScanOp) Close() error { return nil }

func (s *colScanOp) NextCols(cb *iter.ColBatch) (bool, error) {
	t0 := time.Now()
	defer func() { s.tr.dur += time.Since(t0) }()
	if err := s.ctx.Err(); err != nil {
		return false, err
	}
	for {
		cb.Reset(len(s.cols))
		n, err := s.cur.NextCols(cb, s.cols, s.batch)
		if err != nil {
			return false, err
		}
		if n == 0 {
			return false, nil
		}
		s.tr.rowsIn += int64(n)
		*s.scanned += int64(n)
		if s.filter != nil {
			if err := s.filter.Apply(cb); err != nil {
				return false, err
			}
		}
		if cb.Len() > 0 {
			s.tr.rowsOut += int64(cb.Len())
			return true, nil
		}
	}
}

// scanOp streams a table through the pushed-down filters and projection,
// one batch of rows at a time, never holding the whole relation.
type scanOp struct {
	ctx         context.Context
	table       *storage.Table
	filters     []analyze.Conjunct
	layout      *analyze.Layout
	proj        []int
	materialize bool
	tr          *opTracker
	scanned     *int64

	cur *storage.Cursor
	buf []value.Row
}

func (s *scanOp) Open() error {
	s.cur = s.table.Scan()
	s.buf = make([]value.Row, iter.BatchSize)
	return nil
}

func (s *scanOp) Close() error { return nil }

func (s *scanOp) Next(b *iter.Batch) (bool, error) {
	t0 := time.Now()
	defer func() { s.tr.dur += time.Since(t0) }()
	if err := s.ctx.Err(); err != nil {
		return false, err
	}
	b.Reset()
	for b.Len() == 0 {
		n, err := s.cur.Next(s.buf)
		if err != nil {
			return false, err
		}
		if n == 0 {
			return false, nil
		}
		s.tr.rowsIn += int64(n)
		*s.scanned += int64(n)
		for _, r := range s.buf[:n] {
			rr := r
			if s.materialize {
				// Emulate record unpacking: the engine copies the stored
				// record before evaluating predicates.
				rr = r.Clone()
			}
			pass := true
			for _, f := range s.filters {
				ok, err := analyze.EvalBool(f.Expr, rr, s.layout)
				if err != nil {
					return false, err
				}
				if !ok {
					pass = false
					break
				}
			}
			if !pass {
				continue
			}
			b.Append(rr.Project(s.proj), 1)
		}
	}
	s.tr.rowsOut += int64(b.Len())
	return true, nil
}

// estimateScan estimates the filtered cardinality of an atom using the
// table statistics and textbook selectivities; with a statistics catalog
// attached, equality selectivities use live NDVs and range predicates
// use the column's equi-depth histogram instead of the 1/3 constant.
func (e *Engine) estimateScan(q *analyze.Query, ai int, table *storage.Table, filters []analyze.Conjunct) float64 {
	ts := table.Stats()
	est := float64(ts.RowCount)
	for _, f := range filters {
		if e.stats != nil {
			est *= e.catalogSelectivity(q, f)
		} else {
			est *= selectivity(f, ts)
		}
	}
	if est < 1 {
		est = 1
	}
	return est
}

func selectivity(c analyze.Conjunct, stats *storage.TableStats) float64 {
	distinct := func(id analyze.ColID) float64 {
		if id.Attr < len(stats.Distinct) && stats.Distinct[id.Attr] > 0 {
			return float64(stats.Distinct[id.Attr])
		}
		return 10
	}
	switch c.Kind {
	case analyze.EqAttrConst:
		return 1 / distinct(c.A)
	case analyze.InConsts:
		return float64(len(c.Vals)) / distinct(c.A)
	case analyze.CmpConst:
		return 1.0 / 3
	case analyze.EqAttrAttr, analyze.CmpAttrAttr:
		return 1.0 / 3
	default:
		return 1.0 / 2
	}
}

// catalogSelectivity estimates one conjunct from the statistics catalog.
func (e *Engine) catalogSelectivity(q *analyze.Query, c analyze.Conjunct) float64 {
	name := func(id analyze.ColID) (string, string) {
		rel := q.Atoms[id.Atom].Rel
		return rel.Name, rel.Attrs[id.Attr].Name
	}
	switch c.Kind {
	case analyze.EqAttrConst:
		t, col := name(c.A)
		return e.stats.SelectivityEq(t, col)
	case analyze.InConsts:
		t, col := name(c.A)
		s := float64(len(c.Vals)) * e.stats.SelectivityEq(t, col)
		if s > 1 {
			s = 1
		}
		return s
	case analyze.CmpConst:
		t, col := name(c.A)
		return e.stats.SelectivityCmp(t, col, c.Op, c.Val)
	case analyze.EqAttrAttr, analyze.CmpAttrAttr:
		return 1.0 / 3
	default:
		return 1.0 / 2
	}
}

// joinOrder returns the order in which units are joined (indices into
// units); the first element is the streaming probe chain's start.
func (e *Engine) joinOrder(q *analyze.Query, units []*unit, applied []bool) ([]int, error) {
	n := len(units)
	if n == 0 {
		return nil, fmt.Errorf("engine: no relations to join")
	}
	if n == 1 {
		return []int{0}, nil
	}
	switch e.prof.Order {
	case OrderAsWritten:
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	case OrderGreedy:
		return e.greedyOrder(q, units, applied), nil
	default:
		return e.dpOrder(q, units, applied), nil
	}
}

// joinSelectivity reports whether an unapplied equi-join conjunct links a
// unit set with unit right, and returns the estimated join selectivity.
// With a statistics catalog the selectivity of each linking equality is
// 1/max(NDV) over its two columns; without, the historical 0.01.
func (e *Engine) joinSelectivity(q *analyze.Query, units []*unit, leftAtoms map[int]bool, right *unit) (float64, bool) {
	sel := 1.0
	linked := false
	for _, c := range q.Conjuncts {
		if c.Kind != analyze.EqAttrAttr {
			continue
		}
		aLeft, bLeft := leftAtoms[c.A.Atom], leftAtoms[c.B.Atom]
		aRight, bRight := right.atoms[c.A.Atom], right.atoms[c.B.Atom]
		if (aLeft && bRight) || (bLeft && aRight) {
			linked = true
			sel *= e.equiSelectivity(q, c)
		}
	}
	return sel, linked
}

// equiSelectivity estimates one linking equality conjunct.
func (e *Engine) equiSelectivity(q *analyze.Query, c analyze.Conjunct) float64 {
	if e.stats == nil {
		return 0.01 // generic equi-join selectivity against the FK side
	}
	n := 0
	for _, id := range []analyze.ColID{c.A, c.B} {
		rel := q.Atoms[id.Atom].Rel
		if ndv, ok := e.stats.NDV(rel.Name, rel.Attrs[id.Attr].Name); ok && ndv > n {
			n = ndv
		}
	}
	if n <= 0 {
		return 0.01
	}
	return 1 / float64(n)
}

// greedyOrder: start with the smallest unit; repeatedly append the
// connected unit minimising the estimated intermediate size.
func (e *Engine) greedyOrder(q *analyze.Query, units []*unit, applied []bool) []int {
	n := len(units)
	used := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if units[i].est < units[start].est {
			start = i
		}
	}
	order := []int{start}
	used[start] = true
	curAtoms := copyAtomSet(units[start].atoms)
	curEst := units[start].est
	for len(order) < n {
		best, bestEst := -1, 0.0
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			sel, linked := e.joinSelectivity(q, units, curAtoms, units[j])
			est := curEst * units[j].est * sel
			if !linked {
				est = curEst * units[j].est // cross product
			}
			if best < 0 || est < bestEst {
				best, bestEst = j, est
			}
		}
		order = append(order, best)
		used[best] = true
		for a := range units[best].atoms {
			curAtoms[a] = true
		}
		curEst = bestEst
		if curEst < 1 {
			curEst = 1
		}
	}
	return order
}

// dpOrder enumerates left-deep join orders by DP over unit subsets,
// minimising the sum of estimated intermediate cardinalities.
func (e *Engine) dpOrder(q *analyze.Query, units []*unit, applied []bool) []int {
	n := len(units)
	if n > 14 {
		return e.greedyOrder(q, units, applied) // cap DP blow-up
	}
	type state struct {
		cost float64 // Σ intermediate sizes
		rows float64 // estimated rows of the subset join
		last int
		prev int // previous subset mask
	}
	states := make(map[int]state)
	for i := 0; i < n; i++ {
		states[1<<i] = state{cost: 0, rows: units[i].est, last: i, prev: 0}
	}
	full := (1 << n) - 1
	for mask := 1; mask <= full; mask++ {
		s, ok := states[mask]
		if !ok {
			continue
		}
		atoms := make(map[int]bool)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				for a := range units[i].atoms {
					atoms[a] = true
				}
			}
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			sel, linked := e.joinSelectivity(q, units, atoms, units[j])
			rows := s.rows * units[j].est * sel
			if !linked {
				rows = s.rows * units[j].est
			}
			if rows < 1 {
				rows = 1
			}
			next := mask | 1<<j
			cost := s.cost + rows
			if old, ok := states[next]; !ok || cost < old.cost {
				states[next] = state{cost: cost, rows: rows, last: j, prev: mask}
			}
		}
	}
	// Reconstruct.
	order := make([]int, 0, n)
	mask := full
	for mask != 0 {
		s := states[mask]
		order = append(order, s.last)
		mask = s.prev
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

func copyAtomSet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Describe renders the plan the engine would choose, for EXPLAIN output.
func (e *Engine) Describe(q *analyze.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "conventional plan (%s profile):\n", e.prof.Name)
	names := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		names[i] = a.Name
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "  scan %s; %s; %v ordering\n",
		strings.Join(names, ", "), e.prof.Join, orderName(e.prof.Order))
	return b.String()
}

func orderName(o OrderStrategy) string {
	switch o {
	case OrderDP:
		return "dynamic-programming"
	case OrderGreedy:
		return "greedy"
	default:
		return "as-written"
	}
}
