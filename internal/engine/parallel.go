// Shard-parallel hash join. With parallelism > 1 the engine's hash join
// materialises its build side — exactly like the serial operator — but
// partitions it into hash shards built concurrently, no two workers
// ever touching the same shard. The probe side is NOT materialised: it
// streams in windows of a few thousand rows, each window probed
// chunk-parallel against the read-only shard tables with the chunk
// outputs concatenated in order. Memory stays O(build + window), a
// LIMIT that closes the pipeline stops the probe after the current
// window, and — bucket insertion order equalling build input order,
// window/chunk order equalling probe input order — the output bag and
// order are bit-identical to the streaming serial operator's.
package engine

import (
	"context"
	"time"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/value"
)

// joinShards is the number of hash-table partitions of a parallel join
// build (power of two; mirrors the access-index sharding).
const joinShards = 16

// parallelHashJoinOp is the parallel twin of hashJoinOp.
type parallelHashJoinOp struct {
	joinBase
	ctx context.Context
	par int

	built  bool
	tables [joinShards]map[string]*joinBucket

	// Emission buffer holding the current probe window's join results.
	out       []value.Row
	outW      []int64
	pos       int
	probeDone bool
}

func (h *parallelHashJoinOp) Next(out *iter.Batch) (bool, error) {
	t0 := time.Now()
	defer func() { h.tr.dur += time.Since(t0) }()
	if !h.built {
		if err := h.buildTables(); err != nil {
			return false, err
		}
		h.built = true
	}
	out.Reset()
	for out.Len() < iter.BatchSize {
		if h.pos >= len(h.out) {
			if h.probeDone {
				break
			}
			if err := h.probeWindow(); err != nil {
				return false, err
			}
			continue
		}
		out.Append(h.out[h.pos], h.outW[h.pos])
		h.pos++
	}
	h.tr.rowsOut += int64(out.Len())
	return out.Len() > 0, nil
}

// buildTables drains the build side (the one side the serial hash join
// materialises too) and builds the shard tables: phase one encodes every
// row's key chunk-parallel, phase two routes rows to their shards in
// input order, phase three builds whole shards concurrently.
func (h *parallelHashJoinOp) buildTables() error {
	var brows []value.Row
	var bw []int64
	var b iter.Batch
	for {
		ok, err := h.build.Next(&b)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h.tr.rowsIn += int64(b.Len())
		for i, r := range b.Rows {
			brows = append(brows, r)
			bw = append(bw, b.Weight(i))
		}
	}

	const nullShard = 0xFF // NULL join keys never match; rows drop here
	bkeys := make([]string, len(brows))
	bshard := make([]uint8, len(brows))
	err := iter.ParallelChunks(h.ctx, iter.Chunks(len(brows), h.par), h.par, func(_, lo, hi int) error {
		var kb []byte
		for i := lo; i < hi; i++ {
			if rowKeyHasNull(brows[i], h.rKeys) {
				bshard[i] = nullShard
				continue
			}
			kb = value.AppendRowKey(kb[:0], brows[i], h.rKeys)
			bkeys[i] = string(kb)
			bshard[i] = uint8(value.HashKey(bkeys[i]) & (joinShards - 1))
		}
		return nil
	})
	if err != nil {
		return err
	}
	var byShard [joinShards][]int32
	for i := range brows {
		if s := bshard[i]; s != nullShard {
			byShard[s] = append(byShard[s], int32(i))
		}
	}
	return iter.ParallelChunks(h.ctx, iter.Chunks(joinShards, h.par), h.par, func(_, lo, hi int) error {
		for s := lo; s < hi; s++ {
			table := make(map[string]*joinBucket, len(byShard[s]))
			for _, i := range byShard[s] {
				bk, ok := table[bkeys[i]]
				if !ok {
					bk = &joinBucket{}
					table[bkeys[i]] = bk
				}
				bk.rows = append(bk.rows, brows[i])
				bk.weights = append(bk.weights, bw[i])
			}
			h.tables[s] = table
		}
		return nil
	})
}

// probeWindow pulls the next window of probe rows and joins it
// chunk-parallel into the emission buffer. An empty pull marks the
// probe side done.
func (h *parallelHashJoinOp) probeWindow() error {
	windowRows := h.par * iter.BatchSize * 4
	prows := make([]value.Row, 0, windowRows)
	var pw []int64
	for len(prows) < windowRows {
		pr, w, ok, err := h.nextProbe()
		if err != nil {
			return err
		}
		if !ok {
			h.probeDone = true
			break
		}
		prows = append(prows, pr)
		pw = append(pw, w)
	}
	h.out, h.outW, h.pos = nil, nil, 0
	if len(prows) == 0 {
		return nil
	}

	type chunkOut struct {
		rows []value.Row
		w    []int64
	}
	chunks := iter.Chunks(len(prows), h.par)
	outs := make([]chunkOut, len(chunks))
	err := iter.ParallelChunks(h.ctx, chunks, h.par, func(ci, lo, hi int) error {
		var kb []byte
		var co chunkOut
		for i := lo; i < hi; i++ {
			pr := prows[i]
			if rowKeyHasNull(pr, h.lKeys) {
				continue
			}
			kb = value.AppendRowKey(kb[:0], pr, h.lKeys)
			bk := h.tables[value.HashKey(string(kb))&(joinShards-1)][string(kb)]
			if bk == nil {
				continue
			}
			for bi, br := range bk.rows {
				lr, rr := pr, br
				if h.swapped {
					lr, rr = br, pr
				}
				row := make(value.Row, 0, len(lr)+len(rr))
				row = append(row, lr...)
				row = append(row, rr...)
				keep := true
				for _, f := range h.post {
					ok, err := analyze.EvalBool(f.Expr, row, h.layout)
					if err != nil {
						return err
					}
					if !ok {
						keep = false
						break
					}
				}
				if keep {
					co.rows = append(co.rows, row)
					co.w = append(co.w, pw[i]*bk.weights[bi])
				}
			}
		}
		outs[ci] = co
		return nil
	})
	if err != nil {
		return err
	}
	total := 0
	for _, co := range outs {
		total += len(co.rows)
	}
	h.out = make([]value.Row, 0, total)
	h.outW = make([]int64, 0, total)
	for _, co := range outs {
		h.out = append(h.out, co.rows...)
		h.outW = append(h.outW, co.w...)
	}
	return nil
}
