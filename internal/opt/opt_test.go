package opt

import (
	"fmt"
	"testing"

	"github.com/bounded-eval/beas/internal/access"
	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/stats"
	"github.com/bounded-eval/beas/internal/storage"
	"github.com/bounded-eval/beas/internal/value"
)

// fixture builds seed(k) ⟕ wide(k) ⟕ narrow(k): seed is const-keyed and
// tiny; wide has a large declared bound but a selective filter column;
// narrow a small declared bound and no filter. Worst-case greedy fetches
// narrow before wide; on the actual data wide's filter prunes almost
// every key, so the cost-based order is wide first.
type fixture struct {
	store *storage.Store
	as    *access.Schema
	cat   *stats.Catalog
	opt   *Optimizer
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	mk := func(name string, cols ...string) *schema.Relation {
		attrs := make([]schema.Attribute, len(cols))
		for i, c := range cols {
			attrs[i] = schema.Attribute{Name: c, Kind: value.Int}
		}
		rel, err := schema.NewRelation(name, attrs...)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	db, err := schema.NewDatabase(
		mk("seed", "s", "k"),
		mk("wide", "k", "f", "v"),
		mk("narrow", "k", "w"),
	)
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore(db)
	ins := func(table string, vals ...int64) {
		tab, _ := store.Table(table)
		row := make(value.Row, len(vals))
		for i, v := range vals {
			row[i] = value.NewInt(v)
		}
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	// seed: 8 keys under s=1.
	for k := int64(0); k < 8; k++ {
		ins("seed", 1, k)
	}
	// wide: every key has 4 rows, but only key 0 has f=7 (the filter).
	for k := int64(0); k < 8; k++ {
		for j := int64(0); j < 4; j++ {
			f := int64(0)
			if k == 0 && j == 0 {
				f = 7
			}
			ins("wide", k, f, j)
		}
	}
	// narrow: every key has 2 rows.
	for k := int64(0); k < 8; k++ {
		ins("narrow", k, 0)
		ins("narrow", k, 1)
	}
	as := access.NewSchema(store)
	reg := func(rel string, x, y []string, n int) {
		c, err := access.NewConstraint(db, rel, x, y, n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := as.Register(c, true); err != nil {
			t.Fatal(err)
		}
	}
	reg("seed", []string{"s"}, []string{"k"}, 1)
	reg("wide", []string{"k"}, []string{"f", "v"}, 1)
	reg("narrow", []string{"k"}, []string{"w"}, 1)
	cat := stats.NewCatalog(store, as)
	return &fixture{store: store, as: as, cat: cat, opt: New(cat)}
}

func (fx *fixture) check(t *testing.T, sql string) (*analyze.Query, *core.CheckResult) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := analyze.Analyze(stmt.Select, fx.store.DB)
	if err != nil {
		t.Fatal(err)
	}
	return q, core.Check(q, fx.as)
}

// The f > 5 range filter matches a single wide row; the column's
// equi-depth histogram sees that skew (a uniform 1/NDV estimate would
// not), so the cost model knows fetching wide first prunes the keys.
const fixtureSQL = `
SELECT wide.v, narrow.w FROM seed, wide, narrow
WHERE seed.s = 1 AND wide.k = seed.k AND wide.f > 5 AND narrow.k = seed.k`

func TestRewriteReordersBySelectivity(t *testing.T) {
	fx := newFixture(t)
	q, chk := fx.check(t, fixtureSQL)
	if !chk.Covered {
		t.Fatalf("fixture query not covered: %s", chk.Reason)
	}
	// Greedy order: seed, then narrow (smaller worst-case N), then wide.
	greedy := stepAtoms(q, chk.Steps)
	if fmt.Sprint(greedy) != "[seed narrow wide]" {
		t.Fatalf("unexpected greedy order %v (fixture drifted)", greedy)
	}
	out := fx.opt.Rewrite(q, chk, fx.as)
	opt := stepAtoms(q, out.Steps)
	if fmt.Sprint(opt) != "[seed wide narrow]" {
		t.Fatalf("optimizer order = %v, want [seed wide narrow]", opt)
	}
	// Admission bounds unchanged; steps annotated.
	if out.TotalBound != chk.TotalBound || out.OutputBound != chk.OutputBound {
		t.Fatalf("bounds changed: %d/%d vs %d/%d", out.TotalBound, out.OutputBound, chk.TotalBound, chk.OutputBound)
	}
	for i, s := range out.Steps {
		if s.EstKeys <= 0 {
			t.Errorf("step %d not annotated", i)
		}
	}
	// The rewritten result must still build an executable plan whose
	// execution matches the greedy plan's bag.
	wantRows := runPlan(t, q, chk)
	gotRows := runPlan(t, q, out)
	if fmt.Sprint(bag(wantRows)) != fmt.Sprint(bag(gotRows)) {
		t.Fatalf("rewritten plan bag differs:\n%v\n%v", bag(gotRows), bag(wantRows))
	}
}

func TestRewritePassesThroughUncoveredAndEmpty(t *testing.T) {
	fx := newFixture(t)
	// Uncovered: narrow.w is not a key and no constraint covers seed.s
	// as output... use a filter on an unkeyed column of seed.
	q, chk := fx.check(t, `SELECT k FROM seed WHERE k = 3 AND s > 0`)
	if chk.Covered {
		t.Skip("fixture query unexpectedly covered")
	}
	if out := fx.opt.Rewrite(q, chk, fx.as); out != chk {
		t.Error("uncovered verdict must pass through unchanged")
	}
	q2, chk2 := fx.check(t, `SELECT k FROM seed WHERE s = 1 AND s = 2`)
	if !chk2.EmptyGuaranteed {
		t.Fatal("expected contradiction")
	}
	if out := fx.opt.Rewrite(q2, chk2, fx.as); out != chk2 {
		t.Error("empty-guaranteed verdict must pass through unchanged")
	}
}

func stepAtoms(q *analyze.Query, steps []core.FetchStep) []string {
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = q.Atoms[s.Atom].Name
	}
	return out
}

func runPlan(t *testing.T, q *analyze.Query, chk *core.CheckResult) []value.Row {
	t.Helper()
	plan, err := core.NewPlan(q, chk)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := core.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func bag(rows []value.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.Key(r)
	}
	return out
}
