// Package opt is the cost-based bounded-plan optimizer. The BE Checker
// picks fetch steps greedily by their worst-case bounds (KeyBound · N);
// on real data the actual fan-out per key is usually far below N, so the
// cheapest worst-case derivation is often not the fastest plan. This
// package enumerates the alternative coverage derivations — every
// ordering of fetchable (atom, constraint) pairs the checker's coverage
// discipline admits — by branch-and-bound, and costs each with the
// statistics catalog's estimated fetched rows and key-set expansion
// instead of worst-case N.
//
// Two invariants make the rewrite safe:
//
//   - Equivalence: every derivation reachable through
//     core.CoverState.Fetchable/Apply fetches each atom via one
//     constraint spanning all its used attributes and applies every
//     filter exactly once, so all derivations return the same bag
//     (cf. Chirkova & Genesereth on equivalence under embedded
//     dependencies); only the work differs.
//   - Admission: the search prunes any derivation whose accumulated
//     worst-case bound exceeds the greedy derivation's, and the rewritten
//     CheckResult keeps the greedy TotalBound — so admission control sees
//     the unchanged a-priori bound M and the executor still provably
//     fetches at most M tuples.
package opt

import (
	"math"
	"sort"

	"github.com/bounded-eval/beas/internal/analyze"
	"github.com/bounded-eval/beas/internal/core"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/stats"
	"github.com/bounded-eval/beas/internal/value"
)

// defaultMaxNodes bounds the branch-and-bound search; queries have few
// atoms and few constraints per relation, so real searches explore far
// fewer nodes. On exhaustion the best derivation found so far wins
// (never worse than greedy, which seeds the incumbent).
const defaultMaxNodes = 4096

// Optimizer rewrites covered-query fetch derivations using the
// statistics catalog. The zero value is unusable; construct with New.
type Optimizer struct {
	cat      *stats.Catalog
	maxNodes int
}

// New creates an optimizer over the catalog.
func New(cat *stats.Catalog) *Optimizer {
	return &Optimizer{cat: cat, maxNodes: defaultMaxNodes}
}

// Rewrite returns chk with its fetch derivation re-ordered (and each
// step annotated with estimated keys/fetches) when the cost model finds
// a cheaper valid derivation; otherwise it returns chk with the greedy
// steps annotated. Non-covered and empty-guaranteed verdicts pass
// through untouched. The returned result always reports chk's worst-case
// bounds for admission control.
func (o *Optimizer) Rewrite(q *analyze.Query, chk *core.CheckResult, as core.Provider) *core.CheckResult {
	if o == nil || chk == nil || !chk.Covered || chk.EmptyGuaranteed || len(chk.Steps) == 0 {
		return chk
	}
	st, contradiction := core.NewCoverState(q)
	if contradiction {
		return chk
	}

	// Seed the incumbent with the greedy derivation, costed by the same
	// model, so the search can only improve on it.
	base := newEstimator(o.cat, q, st.Clone())
	greedySteps := make([]core.FetchStep, len(chk.Steps))
	copy(greedySteps, chk.Steps)
	for i := range greedySteps {
		// Fresh ordinal arrays: the replay must not overwrite the class
		// ordinals Check assigned on the original steps.
		greedySteps[i].XClasses = make([]int, len(chk.Steps[i].XClasses))
		base.apply(&greedySteps[i])
	}
	best := &candidate{steps: greedySteps, cost: base.cost, state: base.state}

	if len(chk.Steps) > 1 {
		nodes := 0
		o.search(q, as, newEstimator(o.cat, q, st), nil, chk.TotalBound, best, &nodes)
	}

	out := best.state.Finalize(chk, best.steps)
	return out
}

// candidate is the incumbent best complete derivation.
type candidate struct {
	steps []core.FetchStep
	cost  float64
	state *core.CoverState
}

// search extends the derivation prefix held by est with every fetchable
// step, depth-first with cost and worst-case pruning.
func (o *Optimizer) search(q *analyze.Query, as core.Provider, est *estimator, prefix []core.FetchStep, worstBudget uint64, best *candidate, nodes *int) {
	if est.state.Done() {
		if est.cost < best.cost {
			best.steps = append([]core.FetchStep(nil), prefix...)
			best.cost = est.cost
			best.state = est.state
		}
		return
	}
	if *nodes >= o.maxNodes {
		return
	}
	*nodes++
	cands := est.state.Fetchable(as)
	// Deterministic, promising-first exploration: cheaper estimated
	// fetches first tightens the incumbent early and prunes more.
	scored := make([]scoredStep, len(cands))
	for i, s := range cands {
		scored[i] = scoredStep{step: s, est: est.peek(s)}
	}
	sort.SliceStable(scored, func(i, j int) bool {
		return value.CompareFloat64(scored[i].est, scored[j].est) < 0
	})
	for _, sc := range scored {
		step := sc.step
		// Admission pruning: never explore a derivation whose worst case
		// exceeds the greedy bound M that admission control was told.
		if worstBudget != core.Unbounded && addSat(est.worst, step.OutBound) > worstBudget {
			continue
		}
		next := est.clone()
		next.apply(&step)
		if next.cost >= best.cost {
			continue
		}
		o.search(q, as, next, append(prefix, step), worstBudget, best, nodes)
	}
}

type scoredStep struct {
	step core.FetchStep
	est  float64
}

// estimator accumulates the cost model's state along one derivation
// prefix: estimated intermediate rows, estimated distinct values per
// equivalence class, filter scheduling, and the running cost and
// worst-case totals.
type estimator struct {
	cat   *stats.Catalog
	q     *analyze.Query
	state *core.CoverState

	rows    float64         // estimated intermediate rows
	classDV map[int]float64 // class ordinal → estimated distinct values
	matz    map[analyze.ColID]bool
	applied []bool

	cost  float64
	worst uint64
}

func newEstimator(cat *stats.Catalog, q *analyze.Query, st *core.CoverState) *estimator {
	return &estimator{
		cat:     cat,
		q:       q,
		state:   st,
		rows:    1,
		classDV: make(map[int]float64),
		matz:    make(map[analyze.ColID]bool),
		applied: make([]bool, len(q.Conjuncts)),
	}
}

func (e *estimator) clone() *estimator {
	out := &estimator{
		cat:     e.cat,
		q:       e.q,
		state:   e.state.Clone(),
		rows:    e.rows,
		classDV: make(map[int]float64, len(e.classDV)),
		matz:    make(map[analyze.ColID]bool, len(e.matz)),
		applied: append([]bool(nil), e.applied...),
		cost:    e.cost,
		worst:   e.worst,
	}
	for k, v := range e.classDV {
		out.classDV[k] = v
	}
	for k, v := range e.matz {
		out.matz[k] = v
	}
	return out
}

// stepEstimates computes (estKeys, estFetched, estRows) for executing
// step next, without mutating the estimator.
func (e *estimator) stepEstimates(step core.FetchStep) (keys, fetched, rowsOut float64) {
	atom := e.q.Atoms[step.Atom]

	// Distinct keys: product over the step's distinct X classes of the
	// class's constant-candidate count or its estimated distinct values
	// in the current intermediate relation, capped by the worst case.
	keys = 1
	constProduct := 1.0
	for _, kc := range e.state.StepKeyClasses(step) {
		var dv float64
		switch {
		case kc.Consts > 0:
			dv = float64(kc.Consts)
			constProduct *= dv
		default:
			dv = e.classDV[kc.Class]
			if dv <= 0 {
				dv = boundF(kc.Bound)
			}
			if dv > e.rows {
				dv = e.rows // no more distinct values than rows
			}
		}
		keys *= dv
	}
	keys = clampF(keys, 1, boundF(step.KeyBound))

	// Expected bucket size per probe: the constraint's stored tuples over
	// its key space (distinct combinations the X columns admit), which
	// folds the miss rate and the mean fan-out into one density. Falls
	// back to the declared worst-case N without statistics.
	density := float64(step.Constraint.N)
	if f, ok := e.cat.Constraint(step.Constraint); ok && f.DistinctKeys > 0 {
		space := 1.0
		for _, x := range step.Constraint.X {
			if ndv, ok := e.cat.NDV(atom.Rel.Name, x); ok && ndv > 0 {
				space *= float64(ndv)
			}
		}
		if space < float64(f.DistinctKeys) {
			space = float64(f.DistinctKeys)
		}
		density = float64(f.Tuples) / space
	}
	fetched = keys * density

	// Rows out: every intermediate row expands by the per-probe density
	// (times the constant fan-out of const-driven key components), then
	// the filters that become evaluable at this step cut it down.
	rowsOut = e.rows * constProduct * density
	sel := e.pendingSelectivity(step)
	rowsOut *= sel
	if rowsOut < 0.01 {
		rowsOut = 0.01
	}
	return keys, fetched, rowsOut
}

// peek returns the step's cost contribution without mutating state, for
// candidate ordering.
func (e *estimator) peek(step core.FetchStep) float64 {
	keys, fetched, rowsOut := e.stepEstimates(step)
	return keys + fetched + rowsOut
}

// apply executes step in the model: annotates it with the estimates,
// advances the coverage state, schedules its filters, updates class
// distinct-value estimates and accumulates cost and worst-case totals.
func (e *estimator) apply(step *core.FetchStep) {
	keys, fetched, rowsOut := e.stepEstimates(*step)
	step.EstKeys, step.EstFetched, step.EstRows = keys, fetched, rowsOut

	// Mark the step's filters applied (same readiness rule as NewPlan).
	atom := step.Atom
	for _, attr := range e.q.UsedAttrs(atom) {
		e.matz[analyze.ColID{Atom: atom, Attr: attr}] = true
	}
	for ci, c := range e.q.Conjuncts {
		if e.applied[ci] {
			continue
		}
		ready := true
		for _, id := range analyze.Cols(c.Expr) {
			if !e.matz[id] {
				ready = false
				break
			}
		}
		if ready {
			e.applied[ci] = true
		}
	}

	e.state.Apply(step)
	e.rows = rowsOut
	// Newly materialised attributes bound their classes' distinct values
	// by the base column's NDV and the rows that survived.
	rel := e.q.Atoms[atom].Rel
	for _, attr := range e.q.UsedAttrs(atom) {
		cls := e.state.ClassOf(analyze.ColID{Atom: atom, Attr: attr})
		dv := rowsOut
		if ndv, ok := e.cat.NDV(rel.Name, rel.Attrs[attr].Name); ok && ndv > 0 && float64(ndv) < dv {
			dv = float64(ndv)
		}
		if old, ok := e.classDV[cls]; !ok || dv < old {
			e.classDV[cls] = dv
		}
	}
	e.cost += keys + fetched + rowsOut
	e.worst = addSat(e.worst, step.OutBound)
}

// pendingSelectivity multiplies the estimated selectivities of every
// conjunct that becomes evaluable once step's attributes materialise.
// Conjuncts the fetch enforces by construction — equalities on the
// step's X attributes, whose values the key enumeration already fixes —
// contribute nothing: the plan still evaluates them (trivially true),
// but their effect is in the key set, not the bucket contents.
func (e *estimator) pendingSelectivity(step core.FetchStep) float64 {
	atom := step.Atom
	xattr := make(map[analyze.ColID]bool, len(step.XAttrs))
	for _, xa := range step.XAttrs {
		xattr[analyze.ColID{Atom: atom, Attr: xa}] = true
	}
	newly := make(map[analyze.ColID]bool)
	for _, attr := range e.q.UsedAttrs(atom) {
		newly[analyze.ColID{Atom: atom, Attr: attr}] = true
	}
	sel := 1.0
	for ci, c := range e.q.Conjuncts {
		if e.applied[ci] {
			continue
		}
		ready, usesNew := true, false
		for _, id := range analyze.Cols(c.Expr) {
			if newly[id] {
				usesNew = true
				continue
			}
			if !e.matz[id] {
				ready = false
				break
			}
		}
		if !ready || !usesNew {
			continue
		}
		switch c.Kind {
		case analyze.EqAttrConst, analyze.InConsts:
			if xattr[c.A] {
				continue // the key enumeration probes exactly these constants
			}
		case analyze.EqAttrAttr:
			if xattr[c.A] || xattr[c.B] {
				continue // the key is read from the other side's slot
			}
		}
		sel *= e.conjunctSelectivity(c)
	}
	return sel
}

// conjunctSelectivity estimates one conjunct from the catalog, mirroring
// the textbook shapes the fallback engine uses but against live NDVs and
// histograms.
func (e *estimator) conjunctSelectivity(c analyze.Conjunct) float64 {
	colName := func(id analyze.ColID) (table, col string) {
		rel := e.q.Atoms[id.Atom].Rel
		return rel.Name, rel.Attrs[id.Attr].Name
	}
	switch c.Kind {
	case analyze.EqAttrConst:
		t, col := colName(c.A)
		// Key components consumed by the fetch itself (the class carries
		// the constant) still show up here; their effect is already in
		// the key enumeration, but the constraint bucket may hold rows
		// for other values only when the column is a Y attribute — the
		// uniform estimate stays the right shape either way.
		return e.cat.SelectivityEq(t, col)
	case analyze.InConsts:
		t, col := colName(c.A)
		return clampF(float64(len(c.Vals))*e.cat.SelectivityEq(t, col), 0, 1)
	case analyze.CmpConst:
		t, col := colName(c.A)
		return e.cat.SelectivityCmp(t, col, c.Op, c.Val)
	case analyze.EqAttrAttr:
		ta, ca := colName(c.A)
		tb, cb := colName(c.B)
		na, _ := e.cat.NDV(ta, ca)
		nb, _ := e.cat.NDV(tb, cb)
		n := na
		if nb > n {
			n = nb
		}
		if n <= 0 {
			return 0.01
		}
		return 1 / float64(n)
	case analyze.CmpAttrAttr:
		if c.Op == sqlparser.OpNe {
			return 0.9
		}
		return 1.0 / 3
	default:
		return 0.5
	}
}

func boundF(b uint64) float64 {
	if b == core.Unbounded {
		return math.MaxFloat64 / 4
	}
	return float64(b)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func addSat(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return core.Unbounded
	}
	return a + b
}
