package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Digest outcome labels. Cancellation (context canceled or deadline
// exceeded) is tracked apart from real errors: a workload whose clients
// hang up looks very different from one whose statements fail.
const (
	OutcomeOK       = "ok"
	OutcomeCanceled = "canceled"
	OutcomeError    = "error"
)

// TextFingerprint is the fallback canonical identity for statements the
// analyzer cannot normalize: a stable hash of the literal text. It
// still groups repeated executions of the same statement.
func TextFingerprint(sql string) string {
	h := fnv.New64a()
	h.Write([]byte(sql))
	return fmt.Sprintf("text:%016x", h.Sum64())
}

// DigestID is the URL-safe identifier of a fingerprint (fingerprints
// embed separator bytes and raw SQL fragments, so they cannot appear in
// a path). /digests/<id> and snapshot JSON use it.
func DigestID(fp string) string {
	h := fnv.New64a()
	h.Write([]byte(fp))
	return fmt.Sprintf("%016x", h.Sum64())
}

// DigestObservation is one finished statement execution as seen by the
// digest layer. Estimate fields are zero when the cost-based optimizer
// produced no estimates for the statement.
type DigestObservation struct {
	Fingerprint string
	SQL         string
	Outcome     string // OutcomeOK | OutcomeCanceled | OutcomeError
	Mode        string
	CacheHit    bool
	Duration    time.Duration
	Rows        int64
	Bound       uint64
	Fetched     int64
	Scanned     int64
	EstKeys     float64
	EstFetched  float64
	ActualKeys  int64
}

// digestEntry is the rolling aggregate for one fingerprint. Latency is
// kept as counts over LatencyBuckets so quantiles come for free and the
// entry stays fixed-size no matter how many calls it absorbs.
type digestEntry struct {
	fp        string
	sql       string // first-seen example text
	calls     uint64
	errors    uint64
	cancels   uint64
	cacheHits uint64
	rows      int64
	bound     uint64 // saturating sum of deduced bounds
	fetched   int64
	scanned   int64
	totalDur  time.Duration
	maxDur    time.Duration
	lat       []int64 // LatencyBuckets counts + one +Inf overflow slot
	modes     map[string]uint64

	// Estimate honesty: actuals are accumulated only for calls that
	// carried estimates, so the ratio compares like with like.
	estCalls   uint64
	estKeys    float64
	estFetched float64
	actKeys    int64
	actFetched int64
}

// DigestSnapshot is the JSON-ready view of one fingerprint's aggregate.
type DigestSnapshot struct {
	ID          string            `json:"id"`
	Fingerprint string            `json:"fingerprint"`
	ExampleSQL  string            `json:"exampleSql"`
	Calls       uint64            `json:"calls"`
	Errors      uint64            `json:"errors,omitempty"`
	Cancels     uint64            `json:"cancels,omitempty"`
	CacheHits   uint64            `json:"cacheHits,omitempty"`
	Rows        int64             `json:"rows"`
	BoundSum    uint64            `json:"boundSum,omitempty"`
	Fetched     int64             `json:"tuplesFetched"`
	Scanned     int64             `json:"tuplesScanned,omitempty"`
	TotalMS     float64           `json:"totalMs"`
	MeanMS      float64           `json:"meanMs"`
	P50MS       float64           `json:"p50Ms"`
	P95MS       float64           `json:"p95Ms"`
	MaxMS       float64           `json:"maxMs"`
	Modes       map[string]uint64 `json:"modes,omitempty"`

	// BoundUtilization is fetched/boundSum — how much of the deduced
	// worst case the workload actually pays.
	BoundUtilization float64 `json:"boundUtilization,omitempty"`

	// Estimate drift. DriftRatio is actual/estimated tuples fetched over
	// the calls that carried optimizer estimates; Drifting flags ratios
	// past the set's threshold in either direction.
	EstCalls   uint64  `json:"estCalls,omitempty"`
	EstFetched float64 `json:"estFetched,omitempty"`
	ActFetched int64   `json:"actualFetched,omitempty"`
	DriftRatio float64 `json:"driftRatio,omitempty"`
	Drifting   bool    `json:"drifting,omitempty"`
}

// DefaultDriftThreshold flags fingerprints whose actual fetch volume
// departs from the optimizer's estimate by 2× in either direction.
const DefaultDriftThreshold = 2.0

// DigestSet keeps per-fingerprint rolling aggregates for the top-K
// statements by total execution time. Eviction is deterministic: when a
// new fingerprint would exceed K, the entry with the least accumulated
// time goes (ties broken by larger fingerprint), so two runs observing
// the same sequence keep the same set. All methods are safe on a nil
// receiver and for concurrent use.
type DigestSet struct {
	mu           sync.Mutex
	topK         int
	drift        float64
	entries      map[string]*digestEntry
	observations uint64
	evictions    uint64
}

// DefaultDigestTopK is the top-K retention used when NewDigestSet is
// given a non-positive K.
const DefaultDigestTopK = 128

// NewDigestSet creates a digest set retaining the top topK fingerprints
// by total execution time (topK <= 0 selects DefaultDigestTopK).
func NewDigestSet(topK int) *DigestSet {
	if topK <= 0 {
		topK = DefaultDigestTopK
	}
	return &DigestSet{
		topK:    topK,
		drift:   DefaultDriftThreshold,
		entries: make(map[string]*digestEntry),
	}
}

// SetDriftThreshold replaces the est/actual ratio past which a
// fingerprint is flagged as drifting (r <= 1 restores the default).
func (d *DigestSet) SetDriftThreshold(r float64) {
	if d == nil {
		return
	}
	if r <= 1 {
		r = DefaultDriftThreshold
	}
	d.mu.Lock()
	d.drift = r
	d.mu.Unlock()
}

// DriftThreshold returns the current drift flag threshold.
func (d *DigestSet) DriftThreshold() float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drift
}

// Observe folds one finished execution into its fingerprint's
// aggregate, creating (and possibly evicting) as needed.
func (d *DigestSet) Observe(o DigestObservation) {
	if d == nil {
		return
	}
	if o.Fingerprint == "" {
		o.Fingerprint = TextFingerprint(o.SQL)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.observations++
	e := d.entries[o.Fingerprint]
	if e == nil {
		e = &digestEntry{
			fp:    o.Fingerprint,
			sql:   o.SQL,
			lat:   make([]int64, len(LatencyBuckets)+1),
			modes: make(map[string]uint64),
		}
		d.entries[o.Fingerprint] = e
	}
	e.calls++
	switch o.Outcome {
	case OutcomeCanceled:
		e.cancels++
	case OutcomeError:
		e.errors++
	}
	if o.CacheHit {
		e.cacheHits++
	}
	if o.Mode != "" {
		e.modes[o.Mode]++
	}
	e.rows += o.Rows
	if s := e.bound + o.Bound; s >= e.bound {
		e.bound = s
	} else {
		e.bound = ^uint64(0)
	}
	e.fetched += o.Fetched
	e.scanned += o.Scanned
	e.totalDur += o.Duration
	if o.Duration > e.maxDur {
		e.maxDur = o.Duration
	}
	e.lat[bucketIndex(LatencyBuckets, o.Duration.Seconds())]++
	if o.EstFetched > 0 || o.EstKeys > 0 {
		e.estCalls++
		e.estKeys += o.EstKeys
		e.estFetched += o.EstFetched
		e.actKeys += o.ActualKeys
		e.actFetched += o.Fetched
	}
	// Evict only after the newcomer absorbed its observation, so a
	// first call heavier than an incumbent's total wins its slot.
	if len(d.entries) > d.topK {
		d.evictLocked()
	}
}

// bucketIndex returns the index of the first edge >= v, or len(edges)
// for the +Inf overflow slot.
func bucketIndex(edges []float64, v float64) int {
	for i, e := range edges {
		if v <= e {
			return i
		}
	}
	return len(edges)
}

// evictLocked removes the entry with the least total time; ties evict
// the lexicographically larger fingerprint so the outcome never depends
// on map iteration order.
func (d *DigestSet) evictLocked() {
	fps := make([]string, 0, len(d.entries))
	for fp := range d.entries {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	victim := ""
	var victimDur time.Duration
	for _, fp := range fps {
		e := d.entries[fp]
		if victim == "" || e.totalDur < victimDur || (e.totalDur == victimDur && fp > victim) {
			victim, victimDur = fp, e.totalDur
		}
	}
	if victim != "" {
		delete(d.entries, victim)
		d.evictions++
	}
}

// snapshotLocked renders one entry.
func (d *DigestSet) snapshotLocked(e *digestEntry) DigestSnapshot {
	s := DigestSnapshot{
		ID:          DigestID(e.fp),
		Fingerprint: e.fp,
		ExampleSQL:  e.sql,
		Calls:       e.calls,
		Errors:      e.errors,
		Cancels:     e.cancels,
		CacheHits:   e.cacheHits,
		Rows:        e.rows,
		BoundSum:    e.bound,
		Fetched:     e.fetched,
		Scanned:     e.scanned,
		TotalMS:     float64(e.totalDur) / float64(time.Millisecond),
		MaxMS:       float64(e.maxDur) / float64(time.Millisecond),
		P50MS:       e.quantileMS(0.50),
		P95MS:       e.quantileMS(0.95),
		EstCalls:    e.estCalls,
		EstFetched:  e.estFetched,
		ActFetched:  e.actFetched,
	}
	if e.calls > 0 {
		s.MeanMS = s.TotalMS / float64(e.calls)
	}
	if e.bound > 0 {
		s.BoundUtilization = float64(e.fetched) / float64(e.bound)
	}
	if len(e.modes) > 0 {
		s.Modes = make(map[string]uint64, len(e.modes))
		for m, n := range e.modes {
			s.Modes[m] = n
		}
	}
	if r, ok := e.driftRatio(); ok {
		s.DriftRatio = r
		s.Drifting = r >= d.drift || r <= 1/d.drift
	}
	return s
}

// driftRatio is actual/estimated tuples fetched over estimated calls.
func (e *digestEntry) driftRatio() (float64, bool) {
	if e.estCalls == 0 || e.estFetched <= 0 {
		return 0, false
	}
	return float64(e.actFetched) / e.estFetched, true
}

// quantileMS reads the q-quantile (0 < q <= 1) off the latency bucket
// counts: the upper edge of the bucket holding the q-th observation, or
// the observed maximum for the overflow slot.
func (e *digestEntry) quantileMS(q float64) float64 {
	var total int64
	for _, n := range e.lat {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range e.lat {
		cum += n
		if cum >= target {
			if i < len(LatencyBuckets) {
				return LatencyBuckets[i] * 1000
			}
			return float64(e.maxDur) / float64(time.Millisecond)
		}
	}
	return float64(e.maxDur) / float64(time.Millisecond)
}

// Snapshot returns every retained digest ordered by total execution
// time, descending (fingerprint ascending on ties).
func (d *DigestSet) Snapshot() []DigestSnapshot {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	entries := make([]*digestEntry, 0, len(d.entries))
	for _, e := range d.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].totalDur != entries[j].totalDur {
			return entries[i].totalDur > entries[j].totalDur
		}
		return entries[i].fp < entries[j].fp
	})
	out := make([]DigestSnapshot, len(entries))
	for i, e := range entries {
		out[i] = d.snapshotLocked(e)
	}
	return out
}

// Get resolves one digest by DigestID or by raw fingerprint.
func (d *DigestSet) Get(id string) (DigestSnapshot, bool) {
	if d == nil {
		return DigestSnapshot{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.entries[id]; ok {
		return d.snapshotLocked(e), true
	}
	fps := make([]string, 0, len(d.entries))
	for fp := range d.entries {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		if DigestID(fp) == id {
			return d.snapshotLocked(d.entries[fp]), true
		}
	}
	return DigestSnapshot{}, false
}

// Drift returns the currently flagged digests (worst ratio first).
func (d *DigestSet) Drift() []DigestSnapshot {
	var out []DigestSnapshot
	for _, s := range d.Snapshot() {
		if s.Drifting {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := driftSeverity(out[i].DriftRatio), driftSeverity(out[j].DriftRatio)
		if wi != wj {
			return wi > wj
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// driftSeverity folds over- and under-estimates onto one scale: how
// many × off the estimate is, whichever direction.
func driftSeverity(r float64) float64 {
	if r <= 0 {
		return 0
	}
	if r < 1 {
		return 1 / r
	}
	return r
}

// DriftCount returns how many retained fingerprints are flagged.
func (d *DigestSet) DriftCount() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, e := range d.entries {
		if r, ok := e.driftRatio(); ok && (r >= d.drift || r <= 1/d.drift) {
			n++
		}
	}
	return n
}

// WorstDriftRatio returns the largest drift severity over retained
// fingerprints with estimates (1 = perfectly honest, 0 = no estimates).
func (d *DigestSet) WorstDriftRatio() float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	worst := 0.0
	for _, e := range d.entries {
		if r, ok := e.driftRatio(); ok {
			if s := driftSeverity(r); s > worst {
				worst = s
			}
		}
	}
	return worst
}

// Len returns how many fingerprints are retained.
func (d *DigestSet) Len() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Observations returns the total number of executions folded in,
// including ones whose entry was since evicted.
func (d *DigestSet) Observations() uint64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.observations
}

// Evictions returns how many fingerprints were evicted.
func (d *DigestSet) Evictions() uint64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.evictions
}
