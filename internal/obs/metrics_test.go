package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "h.", []float64{0, 1, 10}, nil)
	// SearchFloat64s semantics: a value lands in the first bucket whose
	// edge is >= v (Prometheus le = inclusive upper edge).
	for _, v := range []float64{0, 0.5, 1, 1.0000001, 10, 11, 1e9} {
		h.Observe(v)
	}
	got := h.Buckets()
	want := []int64{1, 2, 2, 2} // le=0: {0}; le=1: {0.5,1}; le=10: {1.0000001,10}; +Inf: {11,1e9}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-(0+0.5+1+1.0000001+10+11+1e9)) > 1e-3 {
		t.Errorf("Sum = %v", sum)
	}
}

func TestHistogramSumConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_sum", "h.", []float64{1}, nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := h.Sum(); math.Abs(got-2000) > 1e-9 {
		t.Errorf("Sum = %v, want 2000 (CAS loop lost updates)", got)
	}
	if h.Count() != 4000 {
		t.Errorf("Count = %d, want 4000", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-9 {
			t.Errorf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "c.", Labels{"k": "v"})
	b := r.Counter("c_total", "c.", Labels{"k": "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("c_total", "c.", Labels{"k": "w"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
}

// TestPrometheusGolden pins the exposition format byte-for-byte for a
// small registry — the contract promtext and external scrapers parse.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("beas_test_total", "Things counted.", nil)
	c.Add(3)
	r.Counter("beas_labeled_total", "Labeled things.", Labels{"outcome": "ok"}).Add(2)
	r.Counter("beas_labeled_total", "Labeled things.", Labels{"outcome": "failed"}).Inc()
	g := r.Gauge("beas_test_gauge", "A level.", nil)
	g.Set(2.5)
	h := r.Histogram("beas_test_seconds", "A latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP beas_test_total Things counted.
# TYPE beas_test_total counter
beas_test_total 3
# HELP beas_labeled_total Labeled things.
# TYPE beas_labeled_total counter
beas_labeled_total{outcome="ok"} 2
beas_labeled_total{outcome="failed"} 1
# HELP beas_test_gauge A level.
# TYPE beas_test_gauge gauge
beas_test_gauge 2.5
# HELP beas_test_seconds A latency.
# TYPE beas_test_seconds histogram
beas_test_seconds_bucket{le="0.1"} 1
beas_test_seconds_bucket{le="1"} 2
beas_test_seconds_bucket{le="+Inf"} 3
beas_test_seconds_sum 5.55
beas_test_seconds_count 3
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestExpositionLintRoundTrip: everything the registry writes must pass
// its own linter — including the Go runtime gauges.
func TestExpositionLintRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.RegisterGoRuntime()
	r.Counter("beas_things_total", "Things.", Labels{"mode": "bounded"}).Add(7)
	h := r.Histogram("beas_lat_seconds", "Latency.", LatencyBuckets, nil)
	h.Observe(0.003)
	h.Observe(120)
	r.Histogram("beas_ratio", "Ratio.", RatioBuckets, nil).Observe(0.42)
	r.GaugeFunc("beas_live", "Live level.", nil, func() float64 { return 4 })
	r.CounterFunc("beas_external_total", "External counter.", nil, func() int64 { return 9 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing own exposition: %v\n%s", err, sb.String())
	}
	if err := Lint(exp); err != nil {
		t.Fatalf("linting own exposition: %v\n%s", err, sb.String())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5 (negative deltas must be ignored)", c.Value())
	}
}
