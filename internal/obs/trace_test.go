package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceTreeShape(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleRate: 1})
	tr := tc.StartTrace("query", Attr{Key: "sql", Val: "SELECT 1"})
	ctx := With(context.Background(), tr, tr.Root())

	cctx, check := StartSpan(ctx, "check")
	_, inner := StartSpan(cctx, "optimize") // child of check
	inner.Set("rewritten", true)
	inner.End()
	check.End()
	tr.AddSpan(tr.Root(), "fetch R1", time.Now(), 3*time.Millisecond, Attr{Key: "keys", Val: int64(7)})
	tc.Finish(tr)

	tree := tr.Tree()
	if tree.Root == nil || tree.Root.Name != "query" {
		t.Fatalf("root = %+v", tree.Root)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (check, fetch)", len(tree.Root.Children))
	}
	var checkNode *SpanNode
	for _, c := range tree.Root.Children {
		if c.Name == "check" {
			checkNode = c
		}
	}
	if checkNode == nil || len(checkNode.Children) != 1 || checkNode.Children[0].Name != "optimize" {
		t.Fatalf("check subtree wrong: %+v", checkNode)
	}
	if checkNode.Children[0].Attrs["rewritten"] != true {
		t.Errorf("optimize attrs = %v", checkNode.Children[0].Attrs)
	}
}

func TestTracerSampling(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleRate: 0.25, RingSize: 64})
	for i := 0; i < 16; i++ {
		tc.Finish(tc.StartTrace("q"))
	}
	if got := len(tc.Recent()); got != 4 {
		t.Errorf("retained %d of 16 at rate 0.25, want 4 (deterministic sampling)", got)
	}
}

func TestTracerForceKeepAndSlow(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleRate: 0, SlowThreshold: time.Hour})
	tr := tc.StartTrace("fast")
	tc.Finish(tr)
	if len(tc.Recent()) != 0 {
		t.Fatal("unsampled fast trace retained")
	}
	tr = tc.StartTrace("rejected")
	tr.ForceKeep()
	tc.Finish(tr)
	rec := tc.Recent()
	if len(rec) != 1 {
		t.Fatalf("force-kept trace not retained: %d", len(rec))
	}
	if got := tc.Get(rec[0].ID); got != tr {
		t.Error("Get(id) did not return the retained trace")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleRate: 1, RingSize: 4})
	var first *Trace
	for i := 0; i < 6; i++ {
		tr := tc.StartTrace("q")
		if i == 0 {
			first = tr
		}
		tc.Finish(tr)
	}
	if len(tc.Recent()) != 4 {
		t.Errorf("ring holds %d, want 4", len(tc.Recent()))
	}
	if tc.Get(first.ID) != nil {
		t.Error("evicted trace still resolvable by ID")
	}
}

func TestNilTracerIsFree(t *testing.T) {
	var tc *Tracer
	tr := tc.StartTrace("q")
	if tr != nil {
		t.Fatal("nil tracer started a trace")
	}
	// Every downstream call must tolerate the nils.
	tr.ForceKeep()
	tr.AddSpan(1, "x", time.Now(), 0)
	sp := tr.StartSpan(1, "y")
	sp.Set("k", 1).End()
	tc.Finish(tr)
	if tc.Get("nope") != nil || tc.Recent() != nil || tc.Enabled() {
		t.Fatal("nil tracer leaked state")
	}
	ctx, sp2 := StartSpan(context.Background(), "z")
	if sp2 != nil {
		t.Fatal("untraced context produced a span")
	}
	if gotTr, _ := FromContext(ctx); gotTr != nil {
		t.Fatal("untraced context carries a trace")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleRate: 1})
	tr := tc.StartTrace("q")
	tc.Finish(tr)
	tc.Finish(tr)
	if len(tc.Recent()) != 1 {
		t.Errorf("double Finish retained %d copies", len(tc.Recent()))
	}
}
