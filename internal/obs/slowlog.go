package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowStep is one fetch step of a slow-query log entry: the deduced
// bounds, the optimizer's estimates and the actual counters, so a log
// line alone is enough to see whether the a-priori bound M was honest
// for the query it describes.
type SlowStep struct {
	Atom       string  `json:"atom"`
	Constraint string  `json:"constraint"`
	KeyBound   uint64  `json:"keyBound,omitempty"`
	OutBound   uint64  `json:"outBound,omitempty"`
	EstKeys    float64 `json:"estKeys,omitempty"`
	EstFetched float64 `json:"estFetched,omitempty"`
	Keys       int64   `json:"keys"`
	Fetched    int64   `json:"fetched"`
	Rows       int64   `json:"rows"`
	DurationMS float64 `json:"durationMs"`
}

// SlowEntry is one JSON line of the slow-query log. Fingerprint is the
// statement's canonical identity and CacheHit marks answers served from
// the result cache, so slow-log lines join against the workload digests
// and a cached serve is distinguishable from a real execution.
type SlowEntry struct {
	Time        time.Time  `json:"ts"`
	TraceID     string     `json:"traceId,omitempty"`
	SQL         string     `json:"sql"`
	Fingerprint string     `json:"fingerprint,omitempty"`
	Mode        string     `json:"mode"`
	Outcome     string     `json:"outcome"` // ok | canceled | failed | disconnected
	CacheHit    bool       `json:"cacheHit,omitempty"`
	Bound       uint64     `json:"bound,omitempty"`
	Fetched     int64      `json:"tuplesFetched"`
	Scanned     int64      `json:"tuplesScanned,omitempty"`
	Rows        int64      `json:"rows"`
	DurationMS  float64    `json:"durationMs"`
	Steps       []SlowStep `json:"steps,omitempty"`
}

// SlowLog writes structured slow-query entries as JSON lines. A query
// qualifies when its latency reaches MinDuration or its fetched-tuple
// count reaches MinFetched (either threshold ≤ 0 disables that test; a
// nil *SlowLog, or one with no writer, logs nothing).
type SlowLog struct {
	mu          sync.Mutex
	w           io.Writer
	minDur      time.Duration
	minFetch    int64
	logged      *Counter // optional: counts emitted entries
	writeErrs   *Counter // optional: counts failed writes
	dropped     uint64   // failed writes, counted even without a Counter
	nowOverride func() time.Time
}

// NewSlowLog creates a slow-query log writing to w. logged, when
// non-nil, is incremented per emitted entry (wire it to the metrics
// registry).
func NewSlowLog(w io.Writer, minDur time.Duration, minFetch int64, logged *Counter) *SlowLog {
	return &SlowLog{w: w, minDur: minDur, minFetch: minFetch, logged: logged}
}

// SetLogged wires (or replaces) the emitted-entry counter after
// construction — servers use it to point an externally built log at
// their metrics registry. Safe on a nil log.
func (l *SlowLog) SetLogged(c *Counter) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.logged = c
	l.mu.Unlock()
}

// SetWriteErrors wires a counter incremented per failed log write — a
// full disk or closed pipe silently swallowing slow queries is itself
// an observability incident. Safe on a nil log.
func (l *SlowLog) SetWriteErrors(c *Counter) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.writeErrs = c
	l.mu.Unlock()
}

// WriteErrors returns how many entries failed to write.
func (l *SlowLog) WriteErrors() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Qualifies reports whether a query with this latency and fetch volume
// would be logged.
func (l *SlowLog) Qualifies(d time.Duration, fetched int64) bool {
	if l == nil || l.w == nil {
		return false
	}
	if l.minDur > 0 && d >= l.minDur {
		return true
	}
	return l.minFetch > 0 && fetched >= l.minFetch
}

// Observe logs e when it qualifies. Timestamps default to now.
func (l *SlowLog) Observe(e SlowEntry) {
	if !l.Qualifies(time.Duration(e.DurationMS*float64(time.Millisecond)), e.Fetched) {
		return
	}
	if e.Time.IsZero() {
		if l.nowOverride != nil {
			e.Time = l.nowOverride()
		} else {
			e.Time = time.Now()
		}
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, werr := l.w.Write(line)
	if werr != nil {
		l.dropped++
	}
	logged := l.logged
	writeErrs := l.writeErrs
	l.mu.Unlock()
	if logged != nil {
		logged.Inc()
	}
	if werr != nil && writeErrs != nil {
		writeErrs.Inc()
	}
}
