package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSlowLogThresholds(t *testing.T) {
	var buf bytes.Buffer
	var logged Counter
	l := NewSlowLog(&buf, 100*time.Millisecond, 1000, &logged)

	l.Observe(SlowEntry{SQL: "fast", DurationMS: 5, Fetched: 10})                  // neither threshold
	l.Observe(SlowEntry{SQL: "slow", DurationMS: 250, Fetched: 10, Outcome: "ok"}) // latency
	l.Observe(SlowEntry{SQL: "fat", DurationMS: 5, Fetched: 5000, Outcome: "ok"})  // volume

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("logged %d entries, want 2:\n%s", len(lines), buf.String())
	}
	if logged.Value() != 2 {
		t.Errorf("logged counter = %d, want 2", logged.Value())
	}
	var e SlowEntry
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("entry is not valid JSON: %v", err)
	}
	if e.SQL != "slow" || e.Time.IsZero() {
		t.Errorf("first entry = %+v", e)
	}
}

func TestSlowLogDisabled(t *testing.T) {
	var nilLog *SlowLog
	if nilLog.Qualifies(time.Hour, 1<<40) {
		t.Error("nil log qualifies")
	}
	nilLog.Observe(SlowEntry{})  // must not panic
	nilLog.SetLogged(&Counter{}) // must not panic
	l := NewSlowLog(nil, time.Millisecond, 1, nil)
	if l.Qualifies(time.Hour, 1<<40) {
		t.Error("writerless log qualifies")
	}
	zero := NewSlowLog(&bytes.Buffer{}, 0, 0, nil)
	if zero.Qualifies(time.Hour, 1<<40) {
		t.Error("both thresholds disabled but log qualifies")
	}
}
