// Package obs is BEAS's zero-dependency observability layer: a
// lightweight span tracer for the query lifecycle, a generic metrics
// registry with Prometheus text exposition, a structured slow-query
// log, and a linter for the exposition format.
//
// Everything here is built from the standard library only and is safe
// for concurrent use. The guiding constraint is that observability off
// must cost (almost) nothing: a nil *Tracer records nothing, StartSpan
// on an untraced context is a single allocation-free Value lookup, and
// metrics are lock-free atomics on the hot path.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are kept as native
// Go types and converted only when a trace is rendered.
type Attr struct {
	Key string
	Val any
}

// Span is one timed operation inside a trace: a node of the span tree.
// Spans are created by Trace.StartSpan (live timing) or Trace.AddSpan
// (after-the-fact, from already-measured statistics); both are safe for
// concurrent use on the owning trace.
type Span struct {
	ID       uint64
	Parent   uint64 // 0 = root
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr

	ended atomic.Bool
}

// End stamps the span's duration. Safe on a nil span (untraced
// context) and idempotent.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.Duration = time.Since(s.Start)
}

// Set adds an attribute. Safe on a nil span.
func (s *Span) Set(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
	return s
}

// Trace is one query's span tree under construction. The root span is
// created with the trace; all other spans hang off it.
type Trace struct {
	ID    string
	Start time.Time

	mu    sync.Mutex
	spans []*Span
	next  uint64

	Duration time.Duration
	sampled  bool
	kept     atomic.Bool
	force    atomic.Bool
}

// Root returns the root span's ID (always 1).
func (tr *Trace) Root() uint64 { return 1 }

// StartSpan opens a live child span under parent. Safe on a nil trace
// (returns nil, which every Span method tolerates).
func (tr *Trace) StartSpan(parent uint64, name string) *Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.next++
	sp := &Span{ID: tr.next, Parent: parent, Name: name, Start: time.Now()}
	tr.spans = append(tr.spans, sp)
	return sp
}

// AddSpan records an already-measured span — how executors report
// per-step and per-operator timings that were accumulated in their own
// statistics structures. Safe on a nil trace.
func (tr *Trace) AddSpan(parent uint64, name string, start time.Time, d time.Duration, attrs ...Attr) *Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.next++
	sp := &Span{ID: tr.next, Parent: parent, Name: name, Start: start, Duration: d, Attrs: attrs}
	sp.ended.Store(true)
	tr.spans = append(tr.spans, sp)
	return sp
}

// ForceKeep marks the trace for retention regardless of sampling —
// rejected and slow queries use it so they are always inspectable.
// Safe on a nil trace.
func (tr *Trace) ForceKeep() {
	if tr != nil {
		tr.force.Store(true)
	}
}

// Spans snapshots the recorded spans in creation order.
func (tr *Trace) Spans() []*Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Span, len(tr.spans))
	copy(out, tr.spans)
	return out
}

// SpanNode is one node of the rendered span tree (the /trace/<id> JSON
// shape).
type SpanNode struct {
	Name       string         `json:"name"`
	StartUS    int64          `json:"startUs"` // offset from trace start
	DurationUS int64          `json:"durationUs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
}

// TraceJSON is the /trace/<id> response shape.
type TraceJSON struct {
	ID         string    `json:"id"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"durationMs"`
	Root       *SpanNode `json:"root"`
}

// Tree renders the span tree. Orphan spans (parent never recorded) hang
// off the root so nothing recorded is ever dropped.
func (tr *Trace) Tree() *TraceJSON {
	spans := tr.Spans()
	nodes := make(map[uint64]*SpanNode, len(spans))
	for _, s := range spans {
		n := &SpanNode{
			Name:       s.Name,
			StartUS:    s.Start.Sub(tr.Start).Microseconds(),
			DurationUS: s.Duration.Microseconds(),
		}
		if len(s.Attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				n.Attrs[a.Key] = a.Val
			}
		}
		nodes[s.ID] = n
	}
	var root *SpanNode
	for _, s := range spans {
		if s.Parent == 0 {
			root = nodes[s.ID]
			continue
		}
		p, ok := nodes[s.Parent]
		if !ok || s.Parent == s.ID {
			p = nodes[1] // orphan: attach to the root span
		}
		if p != nil && p != nodes[s.ID] {
			p.Children = append(p.Children, nodes[s.ID])
		}
	}
	if root == nil && len(spans) > 0 {
		root = nodes[spans[0].ID]
	}
	return &TraceJSON{ID: tr.ID, Start: tr.Start, DurationMS: float64(tr.Duration) / float64(time.Millisecond), Root: root}
}

// MarshalJSON renders the trace as its span tree.
func (tr *Trace) MarshalJSON() ([]byte, error) { return json.Marshal(tr.Tree()) }

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// SampleRate is the fraction of queries whose traces are retained in
	// the ring buffer (0 keeps only slow/forced traces, 1 keeps all).
	// Every query still records spans while a tracer is installed; the
	// rate only decides retention, so a query that turns out slow or
	// rejected can be kept after the fact.
	SampleRate float64
	// SlowThreshold retains any trace at least this slow regardless of
	// sampling (0 disables the slow path).
	SlowThreshold time.Duration
	// RingSize is the number of recent traces retained (default 256).
	RingSize int
}

// Tracer samples and retains query traces in a fixed-size ring. A nil
// *Tracer is a valid "tracing off" tracer: StartTrace returns nil and
// every downstream span call no-ops.
type Tracer struct {
	opts TracerOptions
	ctr  atomic.Uint64
	idhi uint64

	mu   sync.Mutex
	ring []*Trace
	pos  int
	byID map[string]*Trace
}

// NewTracer creates a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	return &Tracer{
		opts: opts,
		idhi: rand.Uint64(),
		ring: make([]*Trace, 0, opts.RingSize),
		byID: make(map[string]*Trace),
	}
}

// Enabled reports whether the tracer records anything. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil }

// StartTrace begins a new trace whose root span is name, annotated with
// attrs. Returns nil on a nil tracer.
func (t *Tracer) StartTrace(name string, attrs ...Attr) *Trace {
	if t == nil {
		return nil
	}
	n := t.ctr.Add(1)
	tr := &Trace{
		ID:      fmt.Sprintf("%016x%08x", t.idhi^(n*0x9e3779b97f4a7c15), uint32(n)),
		Start:   time.Now(),
		sampled: t.sampled(n),
	}
	tr.next = 1
	root := &Span{ID: 1, Name: name, Start: tr.Start, Attrs: attrs}
	tr.spans = append(tr.spans, root)
	return tr
}

// sampled decides retention deterministically: rate 1/k keeps every
// k-th trace, avoiding any RNG on the per-query path.
func (t *Tracer) sampled(n uint64) bool {
	r := t.opts.SampleRate
	if r >= 1 {
		return true
	}
	if r <= 0 {
		return false
	}
	every := uint64(1/r + 0.5)
	if every < 1 {
		every = 1
	}
	return n%every == 0
}

// Finish stamps the trace's (and its root span's) duration and retains
// it when sampled, slower than the slow threshold, or force-kept. Safe
// on a nil tracer or nil trace; idempotent per trace.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil || !tr.kept.CompareAndSwap(false, true) {
		return
	}
	tr.Duration = time.Since(tr.Start)
	tr.mu.Lock()
	if len(tr.spans) > 0 && !tr.spans[0].ended.Swap(true) {
		tr.spans[0].Duration = tr.Duration
	}
	tr.mu.Unlock()
	slow := t.opts.SlowThreshold > 0 && tr.Duration >= t.opts.SlowThreshold
	if !tr.sampled && !slow && !tr.force.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		delete(t.byID, t.ring[t.pos].ID)
		t.ring[t.pos] = tr
		t.pos = (t.pos + 1) % cap(t.ring)
	}
	t.byID[tr.ID] = tr
}

// Get returns a retained trace by ID, or nil.
func (t *Tracer) Get(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// TraceSummary is one line of the retained-trace listing.
type TraceSummary struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"durationMs"`
	Spans      int       `json:"spans"`
}

// Recent lists the retained traces, newest first.
func (t *Tracer) Recent() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*Trace, len(t.ring))
	copy(traces, t.ring)
	t.mu.Unlock()
	sort.Slice(traces, func(i, j int) bool { return traces[i].Start.After(traces[j].Start) })
	out := make([]TraceSummary, len(traces))
	for i, tr := range traces {
		name := ""
		spans := tr.Spans()
		if len(spans) > 0 {
			name = spans[0].Name
		}
		out[i] = TraceSummary{
			ID:         tr.ID,
			Name:       name,
			Start:      tr.Start,
			DurationMS: float64(tr.Duration) / float64(time.Millisecond),
			Spans:      len(spans),
		}
	}
	return out
}

// ctxKey carries the active trace + span through a context.
type ctxKey struct{}

type ctxVal struct {
	tr   *Trace
	span uint64
}

// With returns ctx carrying tr with span as the current parent.
func With(ctx context.Context, tr *Trace, span uint64) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr: tr, span: span})
}

// FromContext returns the active trace and current span ID, or (nil, 0)
// on an untraced context.
func FromContext(ctx context.Context) (*Trace, uint64) {
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.tr, v.span
	}
	return nil, 0
}

// StartSpan opens a live span under the context's current span and
// returns a child context with the new span as parent. On an untraced
// context it returns (ctx, nil) without allocating; the nil span's End
// and Set no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr, parent := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := tr.StartSpan(parent, name)
	return context.WithValue(ctx, ctxKey{}, ctxVal{tr: tr, span: sp.ID}), sp
}
