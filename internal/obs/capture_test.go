package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func rec(sql string) CaptureRecord {
	return CaptureRecord{SQL: sql, Outcome: OutcomeOK, Rows: 1, RowsHash: "deadbeef"}
}

func TestRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Record(rec(fmt.Sprintf("SELECT %d", i)))
	}
	st := r.Stats()
	if st.Records != 10 || st.Segments != 1 || st.WriteErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r.Record(rec("after close")) // dropped silently

	recs, err := LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("loaded %d records, want 10", len(recs))
	}
	for i, rc := range recs {
		if rc.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rc.Seq)
		}
		if rc.V != CaptureFormatVersion {
			t.Fatalf("record %d has version %d", i, rc.V)
		}
		if rc.SQL != fmt.Sprintf("SELECT %d", i) {
			t.Fatalf("record %d sql = %q", i, rc.SQL)
		}
		if rc.Time.IsZero() {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
}

func TestRecorderRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every few records; retention keeps 3.
	r, err := NewRecorder(dir, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r.Record(rec(fmt.Sprintf("SELECT %03d FROM somewhere_long_enough_to_rotate", i)))
	}
	st := r.Stats()
	if st.Rotations == 0 {
		t.Fatal("no rotations at 512-byte segments")
	}
	if st.Segments > 3 {
		t.Fatalf("%d segments survive retention of 3", st.Segments)
	}
	r.Close()

	segs, err := captureSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		first := strings.SplitN(string(data), "\n", 2)[0]
		var hdr captureHeader
		if err := json.Unmarshal([]byte(first), &hdr); err != nil || hdr.Format != captureFormatName || hdr.V != CaptureFormatVersion {
			t.Fatalf("%s header = %q", seg, first)
		}
	}

	// The retained tail is still loadable and strictly ordered.
	recs, err := LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= 50 {
		t.Fatalf("loaded %d records after pruning", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("gap in sequence: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// TestRecorderReopenStartsFreshSegment proves a restart never appends
// into a possibly-torn tail: the new recorder writes a new segment after
// the old ones, and both generations load in order.
func TestRecorderReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	r1, err := NewRecorder(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1.Record(rec("gen1"))
	r1.Close()

	r2, err := NewRecorder(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2.Record(rec("gen2"))
	r2.Close()

	segs, _ := captureSegments(dir)
	if len(segs) != 2 {
		t.Fatalf("segments = %v, want 2 (reopen must not reuse the tail)", segs)
	}
	recs, err := LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].SQL != "gen1" || recs[1].SQL != "gen2" {
		t.Fatalf("recs = %+v", recs)
	}
}

// TestLoadCaptureTornTail: a partial final line — the signature of
// kill -9 mid-write — is tolerated; the same corruption anywhere else
// is an error.
func TestLoadCaptureTornTail(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Record(rec("one"))
	r.Record(rec("two"))
	r.Close()
	segs, _ := captureSegments(dir)
	seg := segs[0]

	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":1,"seq":3,"sql":"torn`) // no closing brace, no newline
	f.Close()

	recs, err := LoadCapture(dir)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2 (torn tail dropped)", len(recs))
	}

	// The same torn line mid-file is corruption, not a crash signature.
	data, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(string(data), "\n")
	corrupted := lines[0] + `{"v":1,"broken` + "\n" + strings.Join(lines[1:], "")
	if err := os.WriteFile(seg, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCapture(dir); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
}

func TestLoadCaptureVersionRejection(t *testing.T) {
	dir := t.TempDir()

	newer := filepath.Join(dir, "capture-000001.jsonl")
	hdr := fmt.Sprintf(`{"format":%q,"v":%d}`+"\n", captureFormatName, CaptureFormatVersion+1)
	if err := os.WriteFile(newer, []byte(hdr), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCapture(dir); err == nil {
		t.Fatal("newer-versioned header accepted")
	}

	body := fmt.Sprintf(`{"format":%q,"v":%d}`+"\n"+`{"v":%d,"seq":1,"sql":"x","outcome":"ok","rows":0,"tuplesFetched":0,"durationMs":0,"ts":"2026-01-01T00:00:00Z"}`+"\n",
		captureFormatName, CaptureFormatVersion, CaptureFormatVersion+1)
	if err := os.WriteFile(newer, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCapture(dir); err == nil {
		t.Fatal("newer-versioned record accepted")
	}
}

func TestLoadCaptureSingleFile(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Record(rec("only"))
	r.Close()
	segs, _ := captureSegments(dir)
	recs, err := LoadCapture(segs[0])
	if err != nil || len(recs) != 1 || recs[0].SQL != "only" {
		t.Fatalf("recs=%+v err=%v", recs, err)
	}
	if _, err := LoadCapture(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file loaded")
	}
	if _, err := LoadCapture(t.TempDir()); err == nil {
		t.Fatal("empty dir loaded")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRecorder(dir, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Record(rec(fmt.Sprintf("SELECT %d_%d", g, i)))
				if i%10 == 0 {
					r.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := r.Stats(); st.Records != 200 || st.WriteErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	r.Close()
	recs, err := LoadCapture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("loaded %d, want 200", len(recs))
	}
	seen := make(map[uint64]bool)
	for _, rc := range recs {
		if seen[rc.Seq] {
			t.Fatalf("duplicate seq %d", rc.Seq)
		}
		seen[rc.Seq] = true
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(rec("x"))
	if r.Stats() != (RecorderStats{}) || r.Dir() != "" || r.Close() != nil {
		t.Fatal("nil recorder misbehaved")
	}
}

func TestRowHash(t *testing.T) {
	empty := NewRowHash()
	if empty.Sum() == "" {
		t.Fatal("empty hash is empty string")
	}

	a, b := NewRowHash(), NewRowHash()
	a.Add([]any{int64(1), "x", 2.5, true, nil})
	a.Add([]any{int64(2), "y", 0.0, false, nil})
	b.Add([]any{int64(1), "x", 2.5, true, nil})
	b.Add([]any{int64(2), "y", 0.0, false, nil})
	if a.Sum() != b.Sum() {
		t.Fatal("identical rows hash differently")
	}
	if a.Sum() == empty.Sum() {
		t.Fatal("rows hash equals empty hash")
	}

	// Order matters: a replay returning the same rows reordered must
	// hash differently.
	c := NewRowHash()
	c.Add([]any{int64(2), "y", 0.0, false, nil})
	c.Add([]any{int64(1), "x", 2.5, true, nil})
	if c.Sum() == a.Sum() {
		t.Fatal("row order did not affect the hash")
	}

	// json.Number round-trips to the same bytes as the native value, so
	// an HTTP replayer and the recording server agree.
	d := NewRowHash()
	d.Add([]any{json.Number("1"), "x", json.Number("2.5"), true, nil})
	d.Add([]any{json.Number("2"), "y", json.Number("0"), false, nil})
	if d.Sum() != a.Sum() {
		t.Fatal("json.Number encoding diverged from native values")
	}

	bad := NewRowHash()
	bad.Add([]any{make(chan int)})
	if bad.Sum() != "!unhashable" {
		t.Fatalf("unmarshalable row hashed to %q", bad.Sum())
	}
}
