package obs

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, text string) *Exposition {
	t.Helper()
	exp, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return exp
}

func TestLintAcceptsValidExposition(t *testing.T) {
	exp := parseOK(t, `# HELP a_total Things.
# TYPE a_total counter
a_total{x="1"} 5
a_total{x="2"} 3
# HELP h_seconds Latency.
# TYPE h_seconds histogram
h_seconds_bucket{le="0.1"} 1
h_seconds_bucket{le="+Inf"} 2
h_seconds_sum 1.5
h_seconds_count 2
`)
	if err := Lint(exp); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLintFailures(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"no type", "a_total 1\n", "no TYPE"},
		{"duplicate series", "# TYPE a_total counter\na_total 1\na_total 2\n", "duplicate series"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n", "no +Inf"},
		{"inf vs count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n", "!= _count"},
		{"non-monotone", "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n", "decrease"},
		{"suffix on counter", "# TYPE x_bucket counter\n# TYPE x counter\nx_bucket{le=\"1\"} 1\n", "histogram suffix"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			exp, err := ParsePrometheus(strings.NewReader(c.text))
			if err != nil {
				t.Fatalf("parse should succeed (lint's job to fail): %v", err)
			}
			err = Lint(exp)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Lint = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestParseFailures(t *testing.T) {
	for _, text := range []string{
		"a_total oops\n",                            // non-numeric value
		"9bad_name 1\n",                             // invalid metric name
		"a{k=unquoted} 1\n",                         // unquoted label value
		"# TYPE a wat\na 1\n",                       // unknown type
		"# TYPE a counter\n# TYPE a counter\na 1\n", // duplicate TYPE
	} {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("ParsePrometheus(%q) succeeded, want error", text)
		}
	}
}

func TestParseNormalizesLabelOrder(t *testing.T) {
	a := parseOK(t, "# TYPE m counter\nm{b=\"2\",a=\"1\"} 1\n")
	b := parseOK(t, "# TYPE m counter\nm{a=\"1\",b=\"2\"} 1\n")
	if a.Samples[0].Key() != b.Samples[0].Key() {
		t.Errorf("label order changed identity: %q vs %q", a.Samples[0].Key(), b.Samples[0].Key())
	}
}

func TestCompareCounters(t *testing.T) {
	before := parseOK(t, "# TYPE a_total counter\na_total 5\n# TYPE g gauge\ng 100\n")
	regressed := parseOK(t, "# TYPE a_total counter\na_total 3\n# TYPE g gauge\ng 1\n")
	grown := parseOK(t, "# TYPE a_total counter\na_total 9\n# TYPE g gauge\ng 1\n")
	reset := parseOK(t, "# TYPE a_total counter\na_total 0\n")

	if err := CompareCounters(before, grown, false); err != nil {
		t.Errorf("grown counter flagged: %v", err)
	}
	if err := CompareCounters(before, regressed, false); err == nil || !strings.Contains(err.Error(), "a_total") {
		t.Errorf("regressed counter not flagged: %v", err)
	}
	// Gauges may move freely — only a_total should ever be reported.
	if err := CompareCounters(before, reset, false); err == nil {
		t.Error("reset flagged as OK without -allow-reset")
	}
	if err := CompareCounters(before, reset, true); err != nil {
		t.Errorf("full reset rejected with allowReset: %v", err)
	}
	// A restarted process may have re-grown the counter by scrape time:
	// any decrease reads as a reset when allowed.
	if err := CompareCounters(before, regressed, true); err != nil {
		t.Errorf("partial re-growth after restart rejected with allowReset: %v", err)
	}
}
