package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func obsFor(fp string, dur time.Duration) DigestObservation {
	return DigestObservation{
		Fingerprint: fp,
		SQL:         "SELECT * FROM t WHERE k = " + fp,
		Outcome:     OutcomeOK,
		Mode:        "bounded",
		Duration:    dur,
		Rows:        3,
		Bound:       100,
		Fetched:     10,
	}
}

func TestDigestAggregation(t *testing.T) {
	d := NewDigestSet(8)
	d.Observe(obsFor("q1", 2*time.Millisecond))
	d.Observe(obsFor("q1", 4*time.Millisecond))
	o := obsFor("q1", time.Millisecond)
	o.Outcome = OutcomeError
	d.Observe(o)
	o = obsFor("q1", time.Millisecond)
	o.Outcome = OutcomeCanceled
	o.CacheHit = true
	d.Observe(o)

	snaps := d.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d digests, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Calls != 4 || s.Errors != 1 || s.Cancels != 1 || s.CacheHits != 1 {
		t.Fatalf("calls/errors/cancels/cacheHits = %d/%d/%d/%d, want 4/1/1/1",
			s.Calls, s.Errors, s.Cancels, s.CacheHits)
	}
	if s.Rows != 12 || s.Fetched != 40 || s.BoundSum != 400 {
		t.Fatalf("rows/fetched/boundSum = %d/%d/%d, want 12/40/400", s.Rows, s.Fetched, s.BoundSum)
	}
	if s.Modes["bounded"] != 4 {
		t.Fatalf("modes = %v, want bounded:4", s.Modes)
	}
	if s.TotalMS != 8 {
		t.Fatalf("totalMs = %v, want 8", s.TotalMS)
	}
	if s.MeanMS != 2 {
		t.Fatalf("meanMs = %v, want 2", s.MeanMS)
	}
	if s.MaxMS != 4 {
		t.Fatalf("maxMs = %v, want 4", s.MaxMS)
	}
	if s.P50MS <= 0 || s.P95MS < s.P50MS {
		t.Fatalf("quantiles p50=%v p95=%v", s.P50MS, s.P95MS)
	}
	if s.BoundUtilization != 0.1 {
		t.Fatalf("boundUtilization = %v, want 0.1", s.BoundUtilization)
	}
	if d.Observations() != 4 {
		t.Fatalf("observations = %d, want 4", d.Observations())
	}
}

func TestDigestTextFingerprintFallback(t *testing.T) {
	d := NewDigestSet(8)
	d.Observe(DigestObservation{SQL: "oops", Outcome: OutcomeError, Duration: time.Millisecond})
	d.Observe(DigestObservation{SQL: "oops", Outcome: OutcomeError, Duration: time.Millisecond})
	snaps := d.Snapshot()
	if len(snaps) != 1 || snaps[0].Calls != 2 {
		t.Fatalf("text fallback did not group: %+v", snaps)
	}
	if snaps[0].Fingerprint != TextFingerprint("oops") {
		t.Fatalf("fingerprint = %q", snaps[0].Fingerprint)
	}
}

func TestDigestGetByIDAndFingerprint(t *testing.T) {
	d := NewDigestSet(8)
	d.Observe(obsFor("q1", time.Millisecond))
	if _, ok := d.Get("q1"); !ok {
		t.Fatal("Get by fingerprint failed")
	}
	if _, ok := d.Get(DigestID("q1")); !ok {
		t.Fatal("Get by digest id failed")
	}
	if _, ok := d.Get("nope"); ok {
		t.Fatal("Get on unknown id succeeded")
	}
}

// TestDigestTopKEvictionDeterministic proves eviction never depends on
// map iteration order: two sets fed the same observation sequence (one
// of them twice, interleaved with snapshots) retain identical entries,
// and the victim is always the entry with the least total time, larger
// fingerprint on ties.
func TestDigestTopKEvictionDeterministic(t *testing.T) {
	seq := make([]DigestObservation, 0, 64)
	for i := 0; i < 16; i++ {
		// Durations collide on purpose (i%4) so ties are common.
		seq = append(seq, obsFor(fmt.Sprintf("q%02d", i), time.Duration(1+i%4)*time.Millisecond))
	}
	for i := 0; i < 16; i++ {
		seq = append(seq, obsFor(fmt.Sprintf("q%02d", (i*7)%16), time.Duration(1+i%3)*time.Millisecond))
	}

	retained := func(d *DigestSet) []string {
		var fps []string
		for _, s := range d.Snapshot() {
			fps = append(fps, s.Fingerprint)
		}
		return fps
	}

	a, b := NewDigestSet(5), NewDigestSet(5)
	for _, o := range seq {
		a.Observe(o)
	}
	for i, o := range seq {
		b.Observe(o)
		if i%5 == 0 {
			b.Snapshot() // must not perturb retention
		}
	}
	fa, fb := retained(a), retained(b)
	if fmt.Sprint(fa) != fmt.Sprint(fb) {
		t.Fatalf("same sequence, different retention:\n  a=%v\n  b=%v", fa, fb)
	}
	if len(fa) != 5 {
		t.Fatalf("retained %d entries, want 5", len(fa))
	}
	if a.Evictions() != b.Evictions() || a.Evictions() == 0 {
		t.Fatalf("evictions a=%d b=%d", a.Evictions(), b.Evictions())
	}
}

// TestDigestEvictionTieBreak pins the tie rule: equal total time evicts
// the lexicographically larger fingerprint.
func TestDigestEvictionTieBreak(t *testing.T) {
	d := NewDigestSet(2)
	d.Observe(obsFor("aa", time.Millisecond))
	d.Observe(obsFor("bb", time.Millisecond))
	d.Observe(obsFor("cc", 5*time.Millisecond)) // ties aa/bb at 1ms; bb must go
	var fps []string
	for _, s := range d.Snapshot() {
		fps = append(fps, s.Fingerprint)
	}
	if fmt.Sprint(fps) != "[cc aa]" {
		t.Fatalf("retained %v, want [cc aa]", fps)
	}
}

// TestDigestNewcomerCanWin proves the newcomer's first observation is
// accumulated before eviction runs, so a heavy first call displaces a
// lighter incumbent instead of evicting itself.
func TestDigestNewcomerCanWin(t *testing.T) {
	d := NewDigestSet(2)
	d.Observe(obsFor("aa", 10*time.Millisecond))
	d.Observe(obsFor("bb", time.Millisecond))
	d.Observe(obsFor("cc", 5*time.Millisecond))
	if _, ok := d.Get("cc"); !ok {
		t.Fatal("heavy newcomer was evicted in favour of a lighter incumbent")
	}
	if _, ok := d.Get("bb"); ok {
		t.Fatal("lightest incumbent survived")
	}
}

func TestDigestDriftFlagging(t *testing.T) {
	d := NewDigestSet(8)
	honest := obsFor("honest", time.Millisecond)
	honest.EstFetched = 10 // actual Fetched is 10 → ratio 1
	d.Observe(honest)
	over := obsFor("underestimated", time.Millisecond)
	over.EstFetched = 4 // actual 10 → ratio 2.5 past the default 2×
	d.Observe(over)
	under := obsFor("overestimated", time.Millisecond)
	under.EstFetched = 30 // actual 10 → ratio 1/3 below 1/2
	d.Observe(under)
	none := obsFor("noestimates", time.Millisecond)
	d.Observe(none)

	if n := d.DriftCount(); n != 2 {
		t.Fatalf("DriftCount = %d, want 2", n)
	}
	drifting := d.Drift()
	if len(drifting) != 2 {
		t.Fatalf("Drift() = %d entries, want 2", len(drifting))
	}
	// Worst first: 1/3 off (severity 3) beats 2.5.
	if drifting[0].Fingerprint != "overestimated" {
		t.Fatalf("worst drift = %q, want overestimated", drifting[0].Fingerprint)
	}
	if w := d.WorstDriftRatio(); w != 3 {
		t.Fatalf("WorstDriftRatio = %v, want 3", w)
	}
	s, _ := d.Get("honest")
	if s.Drifting || s.DriftRatio != 1 {
		t.Fatalf("honest entry flagged: %+v", s)
	}
	s, _ = d.Get("noestimates")
	if s.Drifting || s.EstCalls != 0 {
		t.Fatalf("estimate-free entry flagged: %+v", s)
	}

	d.SetDriftThreshold(4)
	if n := d.DriftCount(); n != 0 {
		t.Fatalf("DriftCount at 4x threshold = %d, want 0", n)
	}
}

// TestDigestConcurrent hammers one set from many goroutines; run with
// -race -cpu 1,4. Totals must balance exactly afterwards.
func TestDigestConcurrent(t *testing.T) {
	const (
		workers = 8
		perG    = 500
	)
	d := NewDigestSet(16)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				o := obsFor(fmt.Sprintf("q%02d", (g*perG+i)%32), time.Duration(1+i%7)*time.Millisecond)
				if i%16 == 0 {
					o.Outcome = OutcomeError
				}
				d.Observe(o)
				if i%64 == 0 {
					d.Snapshot()
					d.DriftCount()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := d.Observations(); got != workers*perG {
		t.Fatalf("observations = %d, want %d", got, workers*perG)
	}
	if d.Len() != 16 {
		t.Fatalf("retained %d, want 16 (topK)", d.Len())
	}
	var calls uint64
	for _, s := range d.Snapshot() {
		calls += s.Calls
	}
	if calls == 0 || calls > workers*perG {
		t.Fatalf("retained calls = %d out of %d observations", calls, workers*perG)
	}
}

func TestDigestNilSafe(t *testing.T) {
	var d *DigestSet
	d.Observe(obsFor("x", time.Millisecond))
	d.SetDriftThreshold(3)
	if d.Snapshot() != nil || d.Drift() != nil {
		t.Fatal("nil set returned snapshots")
	}
	if _, ok := d.Get("x"); ok {
		t.Fatal("nil set resolved an id")
	}
	if d.Len() != 0 || d.Observations() != 0 || d.Evictions() != 0 ||
		d.DriftCount() != 0 || d.WorstDriftRatio() != 0 || d.DriftThreshold() != 0 {
		t.Fatal("nil set returned nonzero counters")
	}
}

func TestBucketIndex(t *testing.T) {
	edges := []float64{0.1, 1, 10}
	cases := []struct {
		v    float64
		want int
	}{{0.05, 0}, {0.1, 0}, {0.5, 1}, {1, 1}, {2, 2}, {10, 2}, {11, 3}}
	for _, c := range cases {
		if got := bucketIndex(edges, c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}
