package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is a small validator for the Prometheus text exposition
// format (the promtext lint of cmd/promtext and the restart CI job):
// it checks structural validity — TYPE/HELP placement, sample syntax,
// histogram completeness and bucket monotonicity — and can diff two
// scrapes to detect counters that went backwards (e.g. state lost
// across a crash-recovery cycle that should have been monotone).

// Sample is one parsed exposition sample.
type Sample struct {
	Name   string // full series name including _bucket/_sum/_count
	Labels string // normalized sorted label string ("" when none)
	Value  float64
}

// Exposition is one parsed scrape.
type Exposition struct {
	Types   map[string]string // family -> counter|gauge|histogram|...
	Samples []Sample
}

// Key returns the sample's identity (name + labels).
func (s Sample) Key() string { return s.Name + s.Labels }

// ParsePrometheus parses text exposition format, failing on the first
// structural error.
func ParsePrometheus(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	helped := make(map[string]bool)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
					return nil, fmt.Errorf("line %d: malformed %s comment", lineNo, fields[1])
				}
				continue // free-form comment
			}
			name := fields[2]
			if fields[1] == "HELP" {
				if helped[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				helped[name] = true
				continue
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
			}
			if _, dup := exp.Types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			exp.Types[name] = typ
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced label braces in %q", line)
		}
		var err error
		s.Labels, err = normalizeLabels(rest[i+1 : j])
		if err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("sample %q needs a name and a value", line)
		}
		s.Name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q needs a value (and at most a timestamp)", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(v, 64)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// normalizeLabels validates k="v" pairs and re-renders them sorted, so
// two scrapes compare by identity regardless of label order.
func normalizeLabels(body string) (string, error) {
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	if body == "" {
		return "", nil
	}
	var pairs []string
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("label pair %q has no '='", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validMetricName(key) || strings.Contains(key, ":") {
			return "", fmt.Errorf("invalid label name %q", key)
		}
		rest = strings.TrimSpace(rest[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return "", fmt.Errorf("label %q value is not quoted", key)
		}
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", fmt.Errorf("label %q value has no closing quote", key)
		}
		val := rest[1:end]
		pairs = append(pairs, fmt.Sprintf("%s=%q", key, val))
		rest = strings.TrimSpace(rest[end+1:])
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}", nil
}

// baseFamily strips a histogram sample suffix down to its family name.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// Lint checks semantic validity beyond parsing: every sample belongs to
// a declared family, histograms have +Inf buckets with cumulative
// (non-decreasing) counts matching _count, and no series is duplicated.
func Lint(exp *Exposition) error {
	seen := make(map[string]bool)
	// histogram family+labels(-le) -> cumulative bucket values in order
	type histState struct {
		last    float64
		infSeen bool
		inf     float64
	}
	hists := make(map[string]*histState)
	counts := make(map[string]float64)
	for _, s := range exp.Samples {
		if seen[s.Key()] {
			return fmt.Errorf("duplicate series %s%s", s.Name, s.Labels)
		}
		seen[s.Key()] = true
		fam := baseFamily(s.Name)
		typ, ok := exp.Types[fam]
		if !ok {
			if typ, ok = exp.Types[s.Name]; !ok {
				return fmt.Errorf("series %s has no TYPE declaration", s.Name)
			}
			fam = s.Name
		}
		if typ != "histogram" && typ != "summary" && fam != s.Name {
			return fmt.Errorf("series %s uses a histogram suffix but %s is a %s", s.Name, fam, typ)
		}
		if typ == "histogram" {
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				le, rest, err := extractLE(s.Labels)
				if err != nil {
					return fmt.Errorf("series %s%s: %w", s.Name, s.Labels, err)
				}
				key := fam + rest
				st := hists[key]
				if st == nil {
					st = &histState{}
					hists[key] = st
				}
				if le == "+Inf" {
					st.infSeen = true
					st.inf = s.Value
				}
				if s.Value < st.last {
					return fmt.Errorf("histogram %s%s: bucket counts decrease at le=%s", fam, rest, le)
				}
				st.last = s.Value
			case strings.HasSuffix(s.Name, "_count"):
				counts[fam+s.Labels] = s.Value
			}
		}
	}
	for key, st := range hists {
		if !st.infSeen {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if c, ok := counts[key]; ok && c != st.inf {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", key, st.inf, c)
		}
	}
	return nil
}

// extractLE pulls the le label out of a normalized label string,
// returning the remaining labels as identity.
func extractLE(labels string) (le, rest string, err error) {
	if labels == "" {
		return "", "", fmt.Errorf("bucket sample has no le label")
	}
	body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, pair := range splitPairs(body) {
		if strings.HasPrefix(pair, "le=") {
			le, err = strconv.Unquote(strings.TrimPrefix(pair, "le="))
			if err != nil {
				return "", "", fmt.Errorf("bad le value: %w", err)
			}
			continue
		}
		kept = append(kept, pair)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample has no le label")
	}
	if len(kept) == 0 {
		return le, "", nil
	}
	return le, "{" + strings.Join(kept, ",") + "}", nil
}

// splitPairs splits normalized (already-quoted, comma-joined) label
// pairs.
func splitPairs(body string) []string {
	var out []string
	rest := body
	for rest != "" {
		// Pairs are k="v"; values may contain escaped quotes or commas.
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			out = append(out, rest)
			break
		}
		end := eq + 1
		if end < len(rest) && rest[end] == '"' {
			for i := end + 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
		}
		stop := end + 1
		out = append(out, rest[:stop])
		rest = strings.TrimPrefix(rest[stop:], ",")
	}
	return out
}

// CompareCounters diffs two scrapes and returns an error listing every
// counter series present in both whose value decreased — the regression
// signal for the restart/soak job. Within one process lifetime
// (allowReset false) counters must be monotonic, full stop. Across a
// restart (allowReset true) any decrease is read as a process reset —
// the Prometheus convention, since a restarted server may have re-grown
// its counters by scrape time. Series present only on one side are
// ignored.
func CompareCounters(before, after *Exposition, allowReset bool) error {
	bv := make(map[string]float64)
	for _, s := range before.Samples {
		if before.Types[baseFamily(s.Name)] == "counter" || before.Types[s.Name] == "counter" {
			bv[s.Key()] = s.Value
		}
	}
	var regressed []string
	for _, s := range after.Samples {
		if after.Types[baseFamily(s.Name)] != "counter" && after.Types[s.Name] != "counter" {
			continue
		}
		b, ok := bv[s.Key()]
		if !ok {
			continue
		}
		if s.Value < b {
			if allowReset {
				continue
			}
			regressed = append(regressed, fmt.Sprintf("%s%s: %v -> %v", s.Name, s.Labels, b, s.Value))
		}
	}
	if len(regressed) > 0 {
		sort.Strings(regressed)
		return fmt.Errorf("counter(s) regressed:\n  %s", strings.Join(regressed, "\n  "))
	}
	return nil
}
