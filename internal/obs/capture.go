package obs

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// CaptureFormatVersion is the on-disk capture format. Readers reject
// records stamped with a newer version; the header line of every
// segment carries it too, so a capture directory is self-describing.
const CaptureFormatVersion = 1

// captureFormatName identifies a segment header line.
const captureFormatName = "beas-capture"

// Recorder defaults: segments rotate at 8 MiB and the newest 8 are
// retained, bounding a capture directory to ~64 MiB.
const (
	DefaultCaptureSegmentBytes = 8 << 20
	DefaultCaptureSegments     = 8
)

// CaptureRecord is one executed statement in the flight recorder: the
// replayable input (sql, parameter vector) plus the recorded baseline a
// replay diffs against (row count, row hash, bound, mode). Records with
// Outcome != "ok" are context, not baselines — a replay skips them.
type CaptureRecord struct {
	V           int       `json:"v"`
	Seq         uint64    `json:"seq"`
	Time        time.Time `json:"ts"`
	SQL         string    `json:"sql"`
	Fingerprint string    `json:"fp,omitempty"`
	Params      []any     `json:"params,omitempty"`
	Admission   string    `json:"admission,omitempty"`
	Mode        string    `json:"mode,omitempty"`
	Outcome     string    `json:"outcome"`
	Bound       uint64    `json:"bound,omitempty"`
	Rows        int64     `json:"rows"`
	RowsHash    string    `json:"rowsHash,omitempty"`
	Fetched     int64     `json:"tuplesFetched"`
	Scanned     int64     `json:"tuplesScanned,omitempty"`
	EstFetched  float64   `json:"estFetched,omitempty"`
	Constraints []string  `json:"constraints,omitempty"`
	Coverage    float64   `json:"coverage,omitempty"`
	CacheHit    bool      `json:"cacheHit,omitempty"`
	DurationMS  float64   `json:"durationMs"`
	TraceID     string    `json:"traceId,omitempty"`
}

// captureHeader is the first line of every segment.
type captureHeader struct {
	Format string `json:"format"`
	V      int    `json:"v"`
}

// RecorderStats is a point-in-time view of a recorder.
type RecorderStats struct {
	Dir         string `json:"dir"`
	Records     uint64 `json:"records"`
	Bytes       int64  `json:"bytes"`
	Segments    int    `json:"segments"`
	Rotations   uint64 `json:"rotations"`
	WriteErrors uint64 `json:"writeErrors"`
}

// Recorder appends capture records as JSON lines to size-rotated
// segment files (capture-NNNNNN.jsonl) in one directory. Writes are
// synchronous and unbuffered so a kill -9 loses at most the line being
// written — readers tolerate exactly one torn final line. A write
// failure is counted, never fatal: capture is observability, not
// correctness. Safe for concurrent use; methods are no-ops on a nil
// receiver.
type Recorder struct {
	mu        sync.Mutex
	dir       string
	segBytes  int64
	maxSegs   int
	f         *os.File
	segSize   int64
	segIndex  int
	seq       uint64
	records   uint64
	rotations uint64
	writeErrs uint64
	totalSize int64
	closed    bool

	nowOverride func() time.Time
}

// NewRecorder opens (creating if needed) a capture directory and starts
// a fresh segment after any existing ones — restarts never append into
// a possibly-torn tail. segBytes/maxSegments <= 0 select the defaults.
func NewRecorder(dir string, segBytes int64, maxSegments int) (*Recorder, error) {
	if segBytes <= 0 {
		segBytes = DefaultCaptureSegmentBytes
	}
	if maxSegments <= 0 {
		maxSegments = DefaultCaptureSegments
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating capture dir: %w", err)
	}
	r := &Recorder{dir: dir, segBytes: segBytes, maxSegs: maxSegments}
	segs, err := captureSegments(dir)
	if err != nil {
		return nil, err
	}
	if n := len(segs); n > 0 {
		last := segs[n-1]
		fmt.Sscanf(filepath.Base(last), "capture-%06d.jsonl", &r.segIndex)
	}
	if err := r.openSegmentLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// captureSegments lists a directory's segment files in index order.
func captureSegments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "capture-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

func (r *Recorder) openSegmentLocked() error {
	r.segIndex++
	name := filepath.Join(r.dir, fmt.Sprintf("capture-%06d.jsonl", r.segIndex))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: opening capture segment: %w", err)
	}
	hdr, _ := json.Marshal(captureHeader{Format: captureFormatName, V: CaptureFormatVersion})
	hdr = append(hdr, '\n')
	n, err := f.Write(hdr)
	if err != nil {
		r.writeErrs++
	}
	r.f = f
	r.segSize = int64(n)
	r.totalSize += int64(n)
	return nil
}

// rotateLocked closes the current segment, opens the next and prunes
// the oldest segments past the retention cap.
func (r *Recorder) rotateLocked() {
	if r.f != nil {
		r.f.Close()
	}
	if err := r.openSegmentLocked(); err != nil {
		r.f = nil
		r.writeErrs++
		return
	}
	r.rotations++
	segs, err := captureSegments(r.dir)
	if err != nil {
		return
	}
	for len(segs) > r.maxSegs {
		if info, err := os.Stat(segs[0]); err == nil {
			r.totalSize -= info.Size()
		}
		os.Remove(segs[0])
		segs = segs[1:]
	}
}

// Record appends one record, stamping version, sequence number and (if
// unset) timestamp.
func (r *Recorder) Record(rec CaptureRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.f == nil {
		return
	}
	r.seq++
	rec.Seq = r.seq
	rec.V = CaptureFormatVersion
	if rec.Time.IsZero() {
		if r.nowOverride != nil {
			rec.Time = r.nowOverride()
		} else {
			rec.Time = time.Now()
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		r.writeErrs++
		return
	}
	line = append(line, '\n')
	if r.segSize > 0 && r.segSize+int64(len(line)) > r.segBytes {
		r.rotateLocked()
		if r.f == nil {
			return
		}
	}
	n, err := r.f.Write(line)
	r.segSize += int64(n)
	r.totalSize += int64(n)
	if err != nil {
		r.writeErrs++
		return
	}
	r.records++
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	segs, _ := captureSegments(r.dir)
	return RecorderStats{
		Dir:         r.dir,
		Records:     r.records,
		Bytes:       r.totalSize,
		Segments:    len(segs),
		Rotations:   r.rotations,
		WriteErrors: r.writeErrs,
	}
}

// Dir returns the capture directory.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Close flushes and closes the current segment. Further Records are
// dropped silently.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// LoadCapture reads capture records from a single segment file or a
// capture directory (segments in index order). Exactly one torn final
// line — the signature of a crash mid-write — is tolerated; corruption
// anywhere else is an error, as is any record stamped with a newer
// format version.
func LoadCapture(path string) ([]CaptureRecord, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	files := []string{path}
	if info.IsDir() {
		if files, err = captureSegments(path); err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("obs: no capture-*.jsonl segments in %s", path)
		}
	}
	var out []CaptureRecord
	for fi, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		lines := splitLines(data)
		for li, line := range lines {
			if len(line) == 0 {
				continue
			}
			var hdr captureHeader
			if err := json.Unmarshal(line, &hdr); err == nil && hdr.Format != "" {
				if hdr.Format != captureFormatName || hdr.V > CaptureFormatVersion {
					return nil, fmt.Errorf("obs: %s: unsupported capture format %s v%d", file, hdr.Format, hdr.V)
				}
				continue
			}
			var rec CaptureRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				if fi == len(files)-1 && li == len(lines)-1 {
					break // torn tail from a crash mid-write
				}
				return nil, fmt.Errorf("obs: %s line %d: %w", file, li+1, err)
			}
			if rec.V > CaptureFormatVersion {
				return nil, fmt.Errorf("obs: %s line %d: capture record v%d is newer than supported v%d", file, li+1, rec.V, CaptureFormatVersion)
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// splitLines splits on '\n' without dropping a trailing unterminated
// fragment (needed to detect torn tails).
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}

// RowHash folds result rows into an order-sensitive 64-bit hash over
// their canonical JSON encoding. Both sides of a capture/replay diff —
// the server streaming native values and a replayer re-reading the wire
// with json.Number — produce identical bytes for identical rows, so
// equal hashes mean bit-identical answers.
type RowHash struct {
	h      hash.Hash64
	failed bool
}

// NewRowHash creates an empty row hash (the hash of zero rows is the
// FNV-64a offset basis).
func NewRowHash() *RowHash {
	return &RowHash{h: fnv.New64a()}
}

// Add folds one row in.
func (r *RowHash) Add(row []any) {
	b, err := json.Marshal(row)
	if err != nil {
		r.failed = true
		return
	}
	r.h.Write(b)
	r.h.Write([]byte{'\n'})
}

// Sum returns the hex digest, or "!unhashable" if any row failed to
// encode.
func (r *RowHash) Sum() string {
	if r.failed {
		return "!unhashable"
	}
	return fmt.Sprintf("%016x", r.h.Sum64())
}
