package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels are a metric's constant label set. BEAS metrics are
// pre-registered per label combination (no dynamic label churn), so a
// metric instance is identified by name + sorted labels.
type Labels map[string]string

// metricKind selects the Prometheus TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: counts per upper edge plus an
// implicit +Inf bucket, a sum and a total count. Observation is
// lock-free.
type Histogram struct {
	edges   []float64 // sorted upper edges, +Inf excluded
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	n       atomic.Int64
}

// Observe files v into its bucket.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.edges, v)
	if idx < len(h.edges) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the non-cumulative per-bucket counts; the final entry
// is the +Inf overflow bucket. Edges returns the matching upper edges
// (without +Inf).
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.counts)+1)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	out[len(h.counts)] = h.inf.Load()
	return out
}

// Edges returns the bucket upper edges (exclusive of +Inf).
func (h *Histogram) Edges() []float64 { return h.edges }

// ExpBuckets returns n upper edges start, start*factor, ... — the
// log-spaced buckets every latency and size histogram here uses.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 100µs..~100s in half-decades, in seconds.
var LatencyBuckets = ExpBuckets(1e-4, math.Sqrt(10), 13)

// RatioBuckets bucket a [0,1] ratio — the deduced-bound accuracy signal
// (actual fetched / bound M). Anything above 1 (the bound was violated)
// lands in the +Inf bucket.
var RatioBuckets = []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}

// metric is one registered time series family member.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels Labels

	counter  *Counter
	gauge    *Gauge
	gaugeFn  func() float64
	counterF func() int64
	hist     *Histogram
}

// labelString renders {k="v",...} with sorted keys ("" for no labels).
func labelString(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds metrics and renders them in the Prometheus text
// exposition format. Registration is get-or-create: registering the
// same name + label set twice returns the same instance, so independent
// components can share a registry without coordination.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	order []*metric
	start time.Time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric), start: time.Now()}
}

// StartTime is when the registry was created (process-uptime anchor).
func (r *Registry) StartTime() time.Time { return r.start }

func (r *Registry) get(name string, labels Labels, mk func() *metric) *metric {
	key := name + labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		return m
	}
	m := mk()
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.get(name, labels, func() *metric {
		return &metric{name: name, help: help, kind: kindCounter, labels: labels, counter: &Counter{}}
	})
	return m.counter
}

// Gauge registers (or returns) a settable gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.get(name, labels, func() *metric {
		return &metric{name: name, help: help, kind: kindGauge, labels: labels, gauge: &Gauge{}}
	})
	return m.gauge
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	m := r.get(name, labels, func() *metric {
		return &metric{name: name, help: help, kind: kindGauge, labels: labels}
	})
	m.gaugeFn = fn
}

// CounterFunc registers a counter whose value is read at scrape time
// (for counters another subsystem already maintains, e.g. plan-cache
// hits).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	m := r.get(name, labels, func() *metric {
		return &metric{name: name, help: help, kind: kindCounter, labels: labels}
	})
	m.counterF = fn
}

// Histogram registers (or returns) a histogram over the given upper
// edges (+Inf is implicit). Edges must be sorted ascending.
func (r *Registry) Histogram(name, help string, edges []float64, labels Labels) *Histogram {
	m := r.get(name, labels, func() *metric {
		h := &Histogram{edges: append([]float64(nil), edges...), counts: make([]atomic.Int64, len(edges))}
		return &metric{name: name, help: help, kind: kindHistogram, labels: labels, hist: h}
	})
	return m.hist
}

// RegisterGoRuntime adds Go runtime and process gauges (goroutines,
// heap, GC, uptime).
func (r *Registry) RegisterGoRuntime() {
	r.GaugeFunc("go_goroutines", "Number of goroutines.", nil, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.", nil, func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapObjects)
	})
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil, func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.NumGC)
	})
	r.GaugeFunc("process_uptime_seconds", "Seconds since the metrics registry was created.", nil, func() float64 {
		return time.Since(r.start).Seconds()
	})
}

// fmtFloat renders a sample value: integral values without a mantissa,
// everything else in shortest-round-trip form (what Prometheus parsers
// expect).
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// withLabel renders labels plus one extra pair (for histogram le).
func withLabel(l Labels, k, v string) string {
	merged := make(Labels, len(l)+1)
	for lk, lv := range l {
		merged[lk] = lv
	}
	merged[k] = v
	return labelString(merged)
}

// WritePrometheus renders every registered metric in the text
// exposition format (version 0.0.4): # HELP / # TYPE headers grouped
// per family, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()

	// Group by family name, keeping families in registration order so
	// the exposition is stable across scrapes.
	seen := make(map[string]bool)
	var families []string
	byName := make(map[string][]*metric)
	for _, m := range metrics {
		if !seen[m.name] {
			seen[m.name] = true
			families = append(families, m.name)
		}
		byName[m.name] = append(byName[m.name], m)
	}
	for _, name := range families {
		group := byName[name]
		first := group[0]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, first.help, name, typeName(first.kind)); err != nil {
			return err
		}
		for _, m := range group {
			ls := labelString(m.labels)
			switch m.kind {
			case kindCounter:
				v := int64(0)
				if m.counter != nil {
					v = m.counter.Value()
				} else if m.counterF != nil {
					v = m.counterF()
				}
				fmt.Fprintf(w, "%s%s %d\n", m.name, ls, v)
			case kindGauge:
				v := 0.0
				if m.gaugeFn != nil {
					v = m.gaugeFn()
				} else if m.gauge != nil {
					v = m.gauge.Value()
				}
				fmt.Fprintf(w, "%s%s %s\n", m.name, ls, fmtFloat(v))
			case kindHistogram:
				h := m.hist
				buckets := h.Buckets()
				cum := int64(0)
				for i, edge := range h.edges {
					cum += buckets[i]
					fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", fmtFloat(edge)), cum)
				}
				cum += buckets[len(buckets)-1]
				fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", m.name, ls, fmtFloat(h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", m.name, ls, h.Count())
			}
		}
	}
	return nil
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}
