package wal

import (
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

func benchRecord(i int) *Record {
	return &Record{Type: RecInsert, Table: "call", Row: value.Row{
		value.NewInt(int64(i)), value.NewInt(int64(i % 97)), value.NewString("region-x"), value.NewFloat(1.5),
	}}
}

// BenchmarkWALAppend measures the framed append path. The sync variant
// is bounded by the device's fsync latency; nosync isolates the codec
// and write-path overhead.
func BenchmarkWALAppend(b *testing.B) {
	for _, bench := range []struct {
		name string
		opts Options
	}{
		{"nosync", Options{NoSync: true}},
		{"sync", Options{}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			l, _, err := Open(b.TempDir(), bench.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(benchRecord(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoveryScan measures raw log scanning + decoding: reading
// back a 10k-record segment. Recovery of a full database additionally
// replays these records through the store (see BenchmarkRecovery in the
// root package).
func BenchmarkRecoveryScan(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	const n = 10_000
	for i := 0; i < n; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, rec, err := Open(dir, Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != n {
			b.Fatalf("recovered %d records", len(rec.Records))
		}
		l2.Close()
	}
}
