package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

func testRecords() []*Record {
	return []*Record{
		{Type: RecCreateTable, Table: "call", Cols: []Column{
			{Name: "pnum", Kind: value.Int},
			{Name: "region", Kind: value.String},
			{Name: "rate", Kind: value.Float},
			{Name: "roaming", Kind: value.Bool},
		}},
		{Type: RecInsert, Table: "call", Row: value.Row{
			value.NewInt(42), value.NewString("café"), value.NewFloat(1.25), value.NewBool(true),
		}},
		{Type: RecInsert, Table: "call", Row: value.Row{
			value.NewInt(-7), value.NewNull(), value.NewFloat(-0.5), value.NewBool(false),
		}},
		{Type: RecDelete, Table: "call", Where: []Cond{
			{Col: "pnum", Val: value.NewInt(42)},
			{Col: "region", Val: value.NewString("café")},
		}},
		{Type: RecRegisterConstraint, Spec: "call({pnum} -> {region}, 10)", AutoWiden: true},
		{Type: RecDropConstraint, Spec: "call({pnum} -> {region}, 10)"},
		{Type: RecRetighten},
	}
}

// appendAll appends the test records and returns the opened log.
func appendAll(t *testing.T, dir string, recs []*Record) *Log {
	t.Helper()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return l
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testRecords()
	l := appendAll(t, dir, want)
	if got := l.LastLSN(); got != uint64(len(want)) {
		t.Fatalf("LastLSN = %d, want %d", got, len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Errorf("record %d has LSN %d", i, r.LSN)
		}
		want[i].LSN = uint64(i + 1)
		if !reflect.DeepEqual(r, want[i]) {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	// The reopened log continues the LSN sequence.
	extra := &Record{Type: RecRetighten}
	if err := l2.Append(extra); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if extra.LSN != uint64(len(want)+1) {
		t.Errorf("append after reopen got LSN %d, want %d", extra.LSN, len(want)+1)
	}
}

// lastSegment returns the path of the highest-LSN segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	starts, err := listSegments(dir)
	if err != nil || len(starts) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, segmentName(starts[len(starts)-1]))
}

func TestTornTailTruncated(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		// A crash can tear the final frame anywhere: inside the header,
		// inside the payload, or by corrupting bytes that were never
		// fully flushed.
		"header":       func(b []byte) []byte { return b[:len(b)-3] },
		"payload":      func(b []byte) []byte { return b[:len(b)-1] },
		"flipped-byte": func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"garbage":      func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe) },
		// A zero-filled tail (filesystem extended the file without the
		// data reaching disk) passes the CRC of an empty payload — it
		// must still be recognised as torn, not as corruption.
		"zero-fill": func(b []byte) []byte { return append(b, make([]byte, 4096)...) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			recs := testRecords()
			l := appendAll(t, dir, recs)
			l.Close()

			seg := lastSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, rec, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer l2.Close()
			wantDropped := 1
			if name == "garbage" || name == "zero-fill" {
				wantDropped = 0 // all records intact, only trailing junk dropped
			}
			if len(rec.Records) != len(recs)-wantDropped {
				t.Fatalf("recovered %d records, want %d", len(rec.Records), len(recs)-wantDropped)
			}
			if rec.TruncatedTail == 0 {
				t.Fatalf("TruncatedTail = 0, want > 0")
			}
			// The torn bytes are gone from disk: appending and reopening
			// yields a clean log.
			if err := l2.Append(&Record{Type: RecRetighten}); err != nil {
				t.Fatalf("append after truncation: %v", err)
			}
			l2.Close()
			_, rec3, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after truncation: %v", err)
			}
			if rec3.TruncatedTail != 0 {
				t.Errorf("second recovery still truncating (%d bytes)", rec3.TruncatedTail)
			}
			if len(rec3.Records) != len(recs)-wantDropped+1 {
				t.Errorf("second recovery found %d records, want %d", len(rec3.Records), len(recs)-wantDropped+1)
			}
		})
	}
}

func TestMidLogCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	l := appendAll(t, dir, testRecords())
	l.Close()

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first record's payload: a hole in the middle of
	// the log is lost history, not a torn tail — recovery must refuse
	// rather than silently drop every record after it.
	data[frameHeaderSize] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded on mid-log corruption")
	}

	// Same story when the corruption is in a sealed (non-final) segment.
	dir2 := t.TempDir()
	l2 := appendAll(t, dir2, testRecords())
	if err := l2.Rotate(0); err != nil { // rotate without pruning anything
		t.Fatal(err)
	}
	if err := l2.Append(&Record{Type: RecRetighten}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	starts, _ := listSegments(dir2)
	if len(starts) != 2 {
		t.Fatalf("expected 2 segments, got %d", len(starts))
	}
	sealed := filepath.Join(dir2, segmentName(starts[0]))
	data, err = os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(sealed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir2, Options{}); err == nil {
		t.Fatal("Open succeeded on corruption in a sealed segment")
	}

	// A zero frame followed by non-zero bytes is not a zero-filled tail:
	// something after the hole claims to be data, so recovery must not
	// silently drop it.
	dir3 := t.TempDir()
	l3 := appendAll(t, dir3, testRecords())
	l3.Close()
	seg3 := lastSegment(t, dir3)
	data, err = os.ReadFile(seg3)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, make([]byte, frameHeaderSize)...)
	data = append(data, 0x5a)
	if err := os.WriteFile(seg3, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir3, Options{}); err == nil {
		t.Fatal("Open succeeded on a zero frame with trailing data")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{
		LSN: 7,
		Tables: []TableDump{
			{
				Name: "call",
				Cols: []Column{{Name: "pnum", Kind: value.Int}, {Name: "region", Kind: value.String}},
				Rows: []value.Row{
					{value.NewInt(1), value.NewString("EDI")},
					{value.NewInt(2), value.NewNull()},
				},
			},
			{Name: "empty", Cols: []Column{{Name: "x", Kind: value.Float}}},
		},
		Constraints: []ConstraintDump{
			{Spec: "call({pnum} -> {region}, 5)", AutoWiden: true},
		},
	}
	if err := WriteSnapshot(dir, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	got, mtime, err := loadNewestSnapshot(dir)
	if err != nil {
		t.Fatalf("loadNewestSnapshot: %v", err)
	}
	if mtime.IsZero() {
		t.Error("snapshot mtime is zero")
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("snapshot round trip:\n got %+v\nwant %+v", got, snap)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	old := &Snapshot{LSN: 3, Tables: []TableDump{{Name: "t", Cols: []Column{{Name: "a", Kind: value.Int}}}}}
	if err := WriteSnapshot(dir, old); err != nil {
		t.Fatal(err)
	}
	newer := &Snapshot{LSN: 9, Tables: []TableDump{{Name: "t", Cols: []Column{{Name: "a", Kind: value.Int}}}}}
	if err := WriteSnapshot(dir, newer); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newer snapshot; recovery must fall back to the older.
	path := filepath.Join(dir, snapshotName(9))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := loadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.LSN != 3 {
		t.Fatalf("fallback snapshot = %+v, want LSN 3", got)
	}
}

func TestRotatePrunes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append(&Record{Type: RecInsert, Table: "t", Row: value.Row{value.NewInt(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	snapLSN := l.LastLSN()
	if err := WriteSnapshot(dir, &Snapshot{LSN: snapLSN}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(snapLSN); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(&Record{Type: RecInsert, Table: "t", Row: value.Row{value.NewInt(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	// Second snapshot covers everything: the first segment and the first
	// snapshot must be pruned.
	snapLSN2 := l.LastLSN()
	if err := WriteSnapshot(dir, &Snapshot{LSN: snapLSN2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(snapLSN2); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Errorf("segments after compaction: %v, want 1", segs)
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 || snaps[0] != snapLSN2 {
		t.Errorf("snapshots after compaction: %v, want [%d]", snaps, snapLSN2)
	}
	// A double rotate with no records in between must not fail.
	if err := l.Rotate(snapLSN2); err != nil {
		t.Fatalf("idempotent rotate: %v", err)
	}

	l.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	if rec.Snapshot == nil || rec.Snapshot.LSN != snapLSN2 {
		t.Fatalf("recovered snapshot %+v, want LSN %d", rec.Snapshot, snapLSN2)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records past the snapshot, want 0", len(rec.Records))
	}
}

func TestLogGapDetected(t *testing.T) {
	dir := t.TempDir()
	l := appendAll(t, dir, testRecords())
	if err := l.Rotate(0); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(&Record{Type: RecRetighten}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Delete the first segment without a covering snapshot: records 1..7
	// are gone and recovery must notice the gap, not silently start at 8.
	starts, _ := listSegments(dir)
	if err := os.Remove(filepath.Join(dir, segmentName(starts[0]))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded over a log gap")
	}
}

func TestIsStoreDir(t *testing.T) {
	dir := t.TempDir()
	if IsStoreDir(dir) {
		t.Error("empty dir reported as store")
	}
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if !IsStoreDir(dir) {
		t.Error("dir with a segment not reported as store")
	}
}
