package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/bounded-eval/beas/internal/value"
)

// snapshotMagic opens every snapshot file; a version byte follows it.
var snapshotMagic = []byte("BEASSNAP")

const snapshotVersion = 1

// TableDump is one relation's schema and rows in a snapshot.
type TableDump struct {
	Name string
	Cols []Column
	Rows []value.Row
}

// ConstraintDump is one access constraint in a snapshot. The spec
// carries the current (possibly widened or retightened) bound N;
// AutoWiden restores the index's maintenance policy.
type ConstraintDump struct {
	Spec      string
	AutoWiden bool
}

// Snapshot is a full dump of the database as of log record LSN: every
// record with LSN ≤ Snapshot.LSN is reflected, every later record must
// be replayed on top.
type Snapshot struct {
	LSN         uint64
	Tables      []TableDump
	Constraints []ConstraintDump
}

func snapshotName(lsn uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lsn)
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[5:len(name)-5], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSnapshots returns the LSNs of the snap-*.snap files in dir, sorted
// ascending.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if n, ok := parseSnapshotName(e.Name()); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// encode serialises the snapshot: magic, version, LSN, tables,
// constraints, and a trailing CRC32C over everything before it.
func (s *Snapshot) encode() []byte {
	buf := append([]byte(nil), snapshotMagic...)
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, s.LSN)
	buf = binary.AppendUvarint(buf, uint64(len(s.Tables)))
	for _, t := range s.Tables {
		buf = appendString(buf, t.Name)
		buf = binary.AppendUvarint(buf, uint64(len(t.Cols)))
		for _, c := range t.Cols {
			buf = appendString(buf, c.Name)
			buf = append(buf, byte(c.Kind))
		}
		buf = binary.AppendUvarint(buf, uint64(len(t.Rows)))
		for _, r := range t.Rows {
			for _, v := range r { // arity is fixed by Cols
				buf = appendValue(buf, v)
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Constraints)))
	for _, c := range s.Constraints {
		buf = appendString(buf, c.Spec)
		widen := byte(0)
		if c.AutoWiden {
			widen = 1
		}
		buf = append(buf, widen)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeSnapshot parses and checksum-verifies a snapshot file's bytes.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+1+4 {
		return nil, fmt.Errorf("wal: snapshot too short")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	if string(body[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, fmt.Errorf("wal: bad snapshot magic")
	}
	body = body[len(snapshotMagic):]
	if body[0] != snapshotVersion {
		return nil, fmt.Errorf("wal: unsupported snapshot version %d", body[0])
	}
	body = body[1:]
	s := &Snapshot{}
	var n int
	s.LSN, n = binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("wal: truncated snapshot LSN")
	}
	body = body[n:]
	nt, n := binary.Uvarint(body)
	if n <= 0 || nt > uint64(len(body)) {
		return nil, fmt.Errorf("wal: truncated table count")
	}
	body = body[n:]
	s.Tables = make([]TableDump, nt)
	var err error
	for i := range s.Tables {
		t := &s.Tables[i]
		if t.Name, body, err = readString(body); err != nil {
			return nil, err
		}
		nc, n := binary.Uvarint(body)
		if n <= 0 || nc > uint64(len(body)) {
			return nil, fmt.Errorf("wal: truncated column count")
		}
		body = body[n:]
		t.Cols = make([]Column, nc)
		for j := range t.Cols {
			if t.Cols[j].Name, body, err = readString(body); err != nil {
				return nil, err
			}
			if len(body) < 1 {
				return nil, fmt.Errorf("wal: truncated column kind")
			}
			t.Cols[j].Kind = value.Kind(body[0])
			body = body[1:]
		}
		nr, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("wal: truncated row count")
		}
		body = body[n:]
		if nr == 0 {
			continue
		}
		t.Rows = make([]value.Row, nr)
		for j := range t.Rows {
			row := make(value.Row, nc)
			for k := range row {
				if row[k], body, err = readValue(body); err != nil {
					return nil, err
				}
			}
			t.Rows[j] = row
		}
	}
	ncons, n := binary.Uvarint(body)
	if n <= 0 || ncons > uint64(len(body)) {
		return nil, fmt.Errorf("wal: truncated constraint count")
	}
	body = body[n:]
	s.Constraints = make([]ConstraintDump, ncons)
	for i := range s.Constraints {
		if s.Constraints[i].Spec, body, err = readString(body); err != nil {
			return nil, err
		}
		if len(body) < 1 {
			return nil, fmt.Errorf("wal: truncated widen flag")
		}
		s.Constraints[i].AutoWiden = body[0] != 0
		body = body[1:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes in snapshot", len(body))
	}
	return s, nil
}

// WriteSnapshot writes s to dir atomically: the file appears under its
// final name snap-<LSN>.snap only after its contents are fsync'd, so a
// crash mid-write leaves at worst an ignored temp file. Compaction of
// older snapshots and covered segments is the caller's next step
// (Log.Rotate).
func WriteSnapshot(dir string, s *Snapshot) error {
	data := s.encode()
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	final := filepath.Join(dir, snapshotName(s.LSN))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// loadNewestSnapshot reads the newest snapshot in dir that passes its
// checksum, falling back to older ones (the log still holds their
// suffix until compaction). It returns nil when dir has no usable
// snapshot; the time is the chosen file's modification time.
func loadNewestSnapshot(dir string) (*Snapshot, time.Time, error) {
	lsns, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, time.Time{}, nil
		}
		return nil, time.Time{}, err
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snapshotName(lsns[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		s, err := decodeSnapshot(data)
		if err != nil {
			// A snapshot that fails its checksum is ignored; recovery
			// falls back to an older snapshot plus more log replay, and
			// the LSN-contiguity check in Open catches the case where
			// the needed log suffix was already compacted away.
			continue
		}
		var mtime time.Time
		if info, err := os.Stat(path); err == nil {
			mtime = info.ModTime()
		}
		return s, mtime, nil
	}
	return nil, time.Time{}, nil
}
