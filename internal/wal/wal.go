package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Frame layout: a 4-byte little-endian payload length, a 4-byte CRC32C
// of the payload, then the payload itself. A frame whose length field,
// payload bytes or checksum are incomplete or wrong is torn.
const frameHeaderSize = 8

// maxRecordSize rejects absurd length fields when scanning, so a
// corrupted length cannot make recovery allocate gigabytes.
const maxRecordSize = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentName returns the file name of the segment whose first record
// has the given LSN.
func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Options tunes the log.
type Options struct {
	// NoSync skips the fsync after each append. Throughput rises by
	// orders of magnitude, but a crash (or power loss) can lose the most
	// recent acknowledged records — recovery still truncates any torn
	// tail and restores a consistent prefix of the history.
	NoSync bool
}

// Log is the append side of the write-ahead log. Appends are serialised
// internally; one Log owns its directory's wal-*.log files.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // current segment
	size    int64    // bytes written to the current segment
	lastLSN uint64   // LSN of the most recently appended (or recovered) record
	buf     []byte   // reused frame buffer
	obs     Observer
}

// Observer receives one event per appended record: the framed byte size
// and the fsync latency (zero when the append did not fsync — deferred
// appends and NoSync logs). It is called with the log's mutex held, so
// it must be fast and must not call back into the log; metrics counters
// and histograms qualify.
type Observer func(bytes int, syncDur time.Duration)

// SetObserver installs (or, with nil, removes) the append observer.
func (l *Log) SetObserver(fn Observer) {
	l.mu.Lock()
	l.obs = fn
	l.mu.Unlock()
}

// Append assigns the next LSN to rec, frames it and writes it to the
// current segment, fsyncing unless Options.NoSync. On return the record
// is durable (or, under NoSync, handed to the OS).
func (l *Log) Append(rec *Record) error {
	return l.append(rec, !l.opts.NoSync)
}

// AppendDeferred is Append without the per-record fsync, for bulk loads
// that issue one Sync at the end: the records are handed to the OS
// immediately (a process crash loses nothing) but are only
// power-loss-durable after Sync returns.
func (l *Log) AppendDeferred(rec *Record) error {
	return l.append(rec, false)
}

// Sync flushes the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if l.opts.NoSync {
		return nil
	}
	return l.f.Sync()
}

func (l *Log) append(rec *Record, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	rec.LSN = l.lastLSN + 1
	if cap(l.buf) < frameHeaderSize {
		l.buf = make([]byte, frameHeaderSize, 256)
	}
	l.buf = l.buf[:frameHeaderSize]
	l.buf = rec.encode(l.buf)
	payload := l.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: appending record %d: %w", rec.LSN, err)
	}
	var syncDur time.Duration
	if sync {
		t0 := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing record %d: %w", rec.LSN, err)
		}
		syncDur = time.Since(t0)
	}
	l.size += int64(len(l.buf))
	l.lastLSN = rec.LSN
	if l.obs != nil {
		l.obs(len(l.buf), syncDur)
	}
	return nil
}

// LastLSN returns the LSN of the most recent record (0 if none ever).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// TailSize returns the byte size of the current segment — the portion of
// the log a snapshot has not yet made redundant, once Rotate has pruned
// the older segments.
func (l *Log) TailSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Size returns the total byte size of all live wal-*.log segments.
func (l *Log) Size() int64 {
	l.mu.Lock()
	dir := l.dir
	l.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); !ok {
			continue
		}
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// Rotate starts a new segment after a snapshot at snapLSN and prunes
// segments and snapshots the snapshot made redundant: a segment is
// deleted when every record in it has LSN ≤ snapLSN, a snapshot file
// when its LSN is older than snapLSN. Called with the database mutation
// lock held, so no record lands in the old segment after the snapshot.
func (l *Log) Rotate(snapLSN uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	// An empty current segment (snapshot with no mutations since the
	// last rotation) is reused; creating wal-<lastLSN+1> again would
	// collide with it.
	if l.size > 0 {
		if err := l.startSegmentLocked(l.lastLSN + 1); err != nil {
			return err
		}
	}
	return l.pruneLocked(snapLSN)
}

// startSegmentLocked syncs and closes the current segment (if any) and
// creates the segment whose first record will be firstLSN.
func (l *Log) startSegmentLocked(firstLSN uint64) error {
	if l.f != nil {
		if !l.opts.NoSync {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("wal: syncing segment before rotation: %w", err)
			}
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f = f
	l.size = 0
	return syncDir(l.dir)
}

// pruneLocked deletes segments fully covered by the snapshot at snapLSN
// and snapshot files older than it. The current segment always survives.
func (l *Log) pruneLocked(snapLSN uint64) error {
	starts, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	current := l.f.Name()
	for i, start := range starts {
		path := filepath.Join(l.dir, segmentName(start))
		if path == current {
			continue
		}
		// The segment's records span [start, nextStart); all ≤ snapLSN
		// exactly when the next segment starts at or before snapLSN+1.
		if i+1 < len(starts) && starts[i+1] <= snapLSN+1 {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: pruning segment: %w", err)
			}
		}
	}
	snaps, err := listSnapshots(l.dir)
	if err != nil {
		return err
	}
	for _, lsn := range snaps {
		if lsn < snapLSN {
			if err := os.Remove(filepath.Join(l.dir, snapshotName(lsn))); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: pruning snapshot: %w", err)
			}
		}
	}
	return syncDir(l.dir)
}

// Close syncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			l.f = nil
			return fmt.Errorf("wal: syncing on close: %w", err)
		}
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// listSegments returns the first-LSNs of the wal-*.log files in dir,
// sorted ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if n, ok := parseSegmentName(e.Name()); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// IsStoreDir reports whether dir looks like a WAL store directory: it
// contains at least one log segment or snapshot file.
func IsStoreDir(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			return true
		}
		if _, ok := parseSnapshotName(e.Name()); ok {
			return true
		}
	}
	return false
}

// Recovery is what Open reconstructed from disk.
type Recovery struct {
	// Snapshot is the newest valid snapshot, nil when recovering from
	// the log alone.
	Snapshot *Snapshot
	// SnapshotTime is the snapshot file's modification time — when it
	// was written (zero when Snapshot is nil).
	SnapshotTime time.Time
	// Records are the log records with LSN past the snapshot, in order.
	Records []*Record
	// TruncatedTail is the number of bytes of torn final record dropped
	// (0 on a clean open).
	TruncatedTail int64
}

// Open opens (creating if necessary) the WAL store in dir and recovers
// its state: the newest valid snapshot plus the log records past its
// LSN, with a torn tail truncated off the final segment. The returned
// Log continues appending after the last recovered record.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{}
	snap, snapTime, err := loadNewestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	rec.Snapshot = snap
	rec.SnapshotTime = snapTime
	var snapLSN uint64
	if snap != nil {
		snapLSN = snap.LSN
	}

	starts, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, lastLSN: snapLSN}
	for i, start := range starts {
		path := filepath.Join(dir, segmentName(start))
		last := i == len(starts)-1
		recs, truncated, err := scanSegment(path, last)
		if err != nil {
			return nil, nil, err
		}
		rec.TruncatedTail += truncated
		for _, r := range recs {
			if r.LSN <= snapLSN {
				continue
			}
			// LSNs are contiguous; a gap means a pruned or lost segment
			// whose records the snapshot does not cover.
			if want := l.lastLSN + 1; r.LSN != want {
				return nil, nil, fmt.Errorf("wal: log gap: expected record %d, found %d in %s", want, r.LSN, filepath.Base(path))
			}
			rec.Records = append(rec.Records, r)
			l.lastLSN = r.LSN
		}
	}

	// Reopen the final segment for appending, or create the first one.
	if len(starts) == 0 {
		if err := l.startSegmentLocked(l.lastLSN + 1); err != nil {
			return nil, nil, err
		}
	} else {
		path := filepath.Join(dir, segmentName(starts[len(starts)-1]))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f = f
		l.size = info.Size()
	}
	return l, rec, nil
}

// scanSegment reads every whole record frame in the file. In the final
// segment (tail=true) an incomplete or checksum-failing frame is treated
// as the torn tail of a crashed append: the file is truncated at the
// last whole record and the tail's byte count returned. Anywhere else
// the same condition is corruption and fails the scan.
func scanSegment(path string, tail bool) ([]*Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var out []*Record
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return out, 0, nil
		}
		// A frame error is a torn append — droppable — only in the final
		// segment and only when the bad frame reaches the physical end of
		// the file: appends are sequential, so nothing durable can follow
		// a write that never completed. A bad frame with valid data after
		// it is lost acknowledged history and must fail recovery.
		badFrame := func(msg string, reachesEOF bool) ([]*Record, int64, error) {
			if tail && reachesEOF {
				torn := int64(len(data)) - off
				if err := os.Truncate(path, off); err != nil {
					return nil, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), err)
				}
				return out, torn, nil
			}
			return nil, 0, fmt.Errorf("wal: %s at offset %d of %s", msg, off, filepath.Base(path))
		}
		if len(rest) < frameHeaderSize {
			return badFrame("truncated frame header", true)
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n == 0 {
			// No real frame is empty (every record payload carries at
			// least a type and an LSN), but a zero length with a zero
			// CRC *passes* the checksum (CRC32C of nothing is 0). This
			// is the signature of a zero-filled tail — a filesystem that
			// extended the file without writing the data — which is a
			// torn append exactly when everything to EOF is zeros.
			return badFrame("empty frame", allZero(rest))
		}
		frameEnd := off + frameHeaderSize + int64(n)
		if n > maxRecordSize {
			return badFrame("implausible record length", frameEnd >= int64(len(data)))
		}
		if uint32(len(rest)-frameHeaderSize) < n {
			return badFrame("truncated record payload", true)
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return badFrame("checksum mismatch", frameEnd == int64(len(data)))
		}
		r, err := decodeRecord(payload)
		if err != nil {
			// The checksum passed, so the bytes are what was written —
			// this is a format error, not a torn append.
			return nil, 0, fmt.Errorf("wal: decoding record at offset %d of %s: %w", off, filepath.Base(path), err)
		}
		out = append(out, r)
		off += frameHeaderSize + int64(n)
	}
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// syncDir fsyncs a directory so that file creations, renames and
// deletions inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, io.EOF) {
		// Some filesystems reject fsync on directories; the rename/create
		// is then as durable as the platform allows.
		if errors.Is(err, os.ErrInvalid) {
			return nil
		}
		return err
	}
	return nil
}
