// Package wal is BEAS's crash-safe storage engine: an append-only,
// CRC-checksummed, fsync'd write-ahead log of logical database records
// plus periodic full snapshots with log truncation.
//
// The design follows the classic log-then-snapshot recovery discipline:
// every mutation is serialised as a logical record and appended (and by
// default fsync'd) to the log before it is applied to the in-memory
// store; a snapshot captures the full store and access-schema state as
// of a log sequence number (LSN), after which older log segments can be
// deleted. Recovery loads the newest valid snapshot and replays the log
// records past its LSN. A torn final record — the signature of a crash
// mid-append — is detected by its checksum or truncated frame and
// dropped; any earlier corruption fails recovery loudly, because silent
// holes in the middle of the log mean lost acknowledged writes.
//
// Records are logical, not physical: an Insert record carries the row,
// a RegisterConstraint record carries the constraint spec. Replaying a
// record runs the same code path as the original mutation, so constraint
// indices are rebuilt exactly — including incremental maintenance
// (inserts and deletes interleaved with registrations replay in their
// original order through the index observers).
package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/bounded-eval/beas/internal/value"
)

// RecType enumerates the logical record types in the log.
type RecType uint8

// Logical record types. The zero value is invalid so that a zeroed
// payload can never decode as a record.
const (
	RecCreateTable RecType = iota + 1
	RecInsert
	RecDelete
	RecRegisterConstraint
	RecDropConstraint
	RecRetighten
)

// String names the record type for diagnostics.
func (t RecType) String() string {
	switch t {
	case RecCreateTable:
		return "CreateTable"
	case RecInsert:
		return "Insert"
	case RecDelete:
		return "Delete"
	case RecRegisterConstraint:
		return "RegisterConstraint"
	case RecDropConstraint:
		return "DropConstraint"
	case RecRetighten:
		return "Retighten"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Column is one attribute of a CreateTable record.
type Column struct {
	Name string
	Kind value.Kind
}

// Cond is one column = value conjunct of a Delete record.
type Cond struct {
	Col string
	Val value.Value
}

// Record is one logical WAL record. LSN is assigned by Log.Append;
// LSNs are contiguous starting at 1, which lets recovery detect missing
// log segments as gaps.
type Record struct {
	LSN  uint64
	Type RecType

	// Table names the relation for CreateTable, Insert and Delete.
	Table string
	// Cols holds the attributes of a CreateTable.
	Cols []Column
	// Row is the inserted row of an Insert.
	Row value.Row
	// Where holds the equality conjuncts of a Delete.
	Where []Cond
	// Spec is the constraint in the paper's notation for
	// RegisterConstraint and DropConstraint.
	Spec string
	// AutoWiden is RegisterConstraint's widening policy: replay must
	// register the constraint under the same policy so that violations
	// and bound adjustments reproduce exactly.
	AutoWiden bool
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || uint64(len(b)-k) < n {
		return "", nil, fmt.Errorf("wal: truncated string")
	}
	return string(b[k : k+int(n)]), b[k+int(n):], nil
}

// appendValue appends one scalar: a kind byte followed by the payload.
func appendValue(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case value.Int:
		return binary.AppendVarint(dst, v.I)
	case value.Float:
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
	case value.String:
		return appendString(dst, v.S)
	case value.Bool:
		return append(dst, byte(v.I))
	default: // Null
		return dst
	}
}

func readValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Value{}, nil, fmt.Errorf("wal: truncated value")
	}
	k := value.Kind(b[0])
	b = b[1:]
	switch k {
	case value.Null:
		return value.NewNull(), b, nil
	case value.Int:
		i, n := binary.Varint(b)
		if n <= 0 {
			return value.Value{}, nil, fmt.Errorf("wal: truncated int")
		}
		return value.NewInt(i), b[n:], nil
	case value.Float:
		if len(b) < 8 {
			return value.Value{}, nil, fmt.Errorf("wal: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b))
		return value.NewFloat(f), b[8:], nil
	case value.String:
		s, rest, err := readString(b)
		if err != nil {
			return value.Value{}, nil, err
		}
		return value.NewString(s), rest, nil
	case value.Bool:
		if len(b) < 1 {
			return value.Value{}, nil, fmt.Errorf("wal: truncated bool")
		}
		return value.NewBool(b[0] != 0), b[1:], nil
	default:
		return value.Value{}, nil, fmt.Errorf("wal: unknown value kind %d", uint8(k))
	}
}

// appendRow appends a count-prefixed row.
func appendRow(dst []byte, r value.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = appendValue(dst, v)
	}
	return dst
}

func readRow(b []byte) (value.Row, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wal: truncated row")
	}
	b = b[k:]
	row := make(value.Row, n)
	var err error
	for i := range row {
		if row[i], b, err = readValue(b); err != nil {
			return nil, nil, err
		}
	}
	return row, b, nil
}

// encode appends the record's payload (everything the frame checksums)
// to dst.
func (r *Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.AppendUvarint(dst, r.LSN)
	switch r.Type {
	case RecCreateTable:
		dst = appendString(dst, r.Table)
		dst = binary.AppendUvarint(dst, uint64(len(r.Cols)))
		for _, c := range r.Cols {
			dst = appendString(dst, c.Name)
			dst = append(dst, byte(c.Kind))
		}
	case RecInsert:
		dst = appendString(dst, r.Table)
		dst = appendRow(dst, r.Row)
	case RecDelete:
		dst = appendString(dst, r.Table)
		dst = binary.AppendUvarint(dst, uint64(len(r.Where)))
		for _, c := range r.Where {
			dst = appendString(dst, c.Col)
			dst = appendValue(dst, c.Val)
		}
	case RecRegisterConstraint:
		dst = appendString(dst, r.Spec)
		widen := byte(0)
		if r.AutoWiden {
			widen = 1
		}
		dst = append(dst, widen)
	case RecDropConstraint:
		dst = appendString(dst, r.Spec)
	case RecRetighten:
		// no body
	}
	return dst
}

// decodeRecord parses one payload produced by encode.
func decodeRecord(b []byte) (*Record, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	r := &Record{Type: RecType(b[0])}
	b = b[1:]
	lsn, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("wal: truncated LSN")
	}
	r.LSN = lsn
	b = b[n:]
	var err error
	switch r.Type {
	case RecCreateTable:
		if r.Table, b, err = readString(b); err != nil {
			return nil, err
		}
		cnt, n := binary.Uvarint(b)
		if n <= 0 || cnt > uint64(len(b)) {
			return nil, fmt.Errorf("wal: truncated column list")
		}
		b = b[n:]
		r.Cols = make([]Column, cnt)
		for i := range r.Cols {
			if r.Cols[i].Name, b, err = readString(b); err != nil {
				return nil, err
			}
			if len(b) < 1 {
				return nil, fmt.Errorf("wal: truncated column kind")
			}
			r.Cols[i].Kind = value.Kind(b[0])
			b = b[1:]
		}
	case RecInsert:
		if r.Table, b, err = readString(b); err != nil {
			return nil, err
		}
		if r.Row, b, err = readRow(b); err != nil {
			return nil, err
		}
	case RecDelete:
		if r.Table, b, err = readString(b); err != nil {
			return nil, err
		}
		cnt, n := binary.Uvarint(b)
		if n <= 0 || cnt > uint64(len(b)) {
			return nil, fmt.Errorf("wal: truncated condition list")
		}
		b = b[n:]
		r.Where = make([]Cond, cnt)
		for i := range r.Where {
			if r.Where[i].Col, b, err = readString(b); err != nil {
				return nil, err
			}
			if r.Where[i].Val, b, err = readValue(b); err != nil {
				return nil, err
			}
		}
	case RecRegisterConstraint:
		if r.Spec, b, err = readString(b); err != nil {
			return nil, err
		}
		if len(b) < 1 {
			return nil, fmt.Errorf("wal: truncated widen flag")
		}
		r.AutoWiden = b[0] != 0
		b = b[1:]
	case RecDropConstraint:
		if r.Spec, b, err = readString(b); err != nil {
			return nil, err
		}
	case RecRetighten:
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", uint8(r.Type))
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after %s record", len(b), r.Type)
	}
	return r, nil
}
