// Package value defines the typed scalar values that flow through BEAS:
// table cells, query constants, index keys and query results. Values are
// small immutable structs; rows are flat slices of values.
//
// The package also provides an injective binary key codec used by the
// access-constraint hash indices and by hash-based physical operators
// (grouping, distinct, hash join).
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

// Supported kinds. Null is the zero value so that a zero Value is NULL.
const (
	Null Kind = iota
	Int
	Float
	String
	Bool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "NULL"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	case Bool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a type name (as used in schema files and CREATE-style
// declarations) to a Kind. It accepts common SQL aliases.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "DATE":
		return Int, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return Float, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return String, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	default:
		return Null, fmt.Errorf("value: unknown type %q", s)
	}
}

// Value is a dynamically typed scalar. Exactly one of the payload fields
// is meaningful, selected by K. The zero Value is NULL.
type Value struct {
	K Kind
	I int64   // payload for Int and Bool (0/1)
	F float64 // payload for Float
	S string  // payload for String
}

// NewInt returns an Int value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a Float value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewString returns a String value.
func NewString(s string) Value { return Value{K: String, S: s} }

// NewBool returns a Bool value.
func NewBool(b bool) Value {
	if b {
		return Value{K: Bool, I: 1}
	}
	return Value{K: Bool}
}

// NewNull returns the NULL value.
func NewNull() Value { return Value{} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == Null }

// Bool returns the boolean payload. It is only meaningful for Bool values.
func (v Value) Bool() bool { return v.K == Bool && v.I != 0 }

// AsFloat converts a numeric value to float64 for mixed-type arithmetic.
func (v Value) AsFloat() (float64, bool) {
	switch v.K {
	case Int:
		return float64(v.I), true
	case Float:
		return v.F, true
	default:
		return 0, false
	}
}

// String renders the value for display and CSV output. NULL renders as the
// empty string, matching the CSV loader's convention.
func (v Value) String() string {
	switch v.K {
	case Null:
		return ""
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case String:
		return v.S
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.K))
	}
}

// Parse converts a textual cell to a value of kind k. The empty string
// parses as NULL for every kind.
func Parse(s string, k Kind) (Value, error) {
	if s == "" {
		return NewNull(), nil
	}
	switch k {
	case Int:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as INT: %w", s, err)
		}
		return NewInt(i), nil
	case Float:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as FLOAT: %w", s, err)
		}
		return NewFloat(f), nil
	case String:
		return NewString(s), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as BOOL: %w", s, err)
		}
		return NewBool(b), nil
	case Null:
		return NewNull(), nil
	default:
		return Value{}, fmt.Errorf("value: cannot parse into kind %v", k)
	}
}

// Comparable reports whether values of kinds a and b may be ordered
// against each other. Numeric kinds are mutually comparable.
func Comparable(a, b Kind) bool {
	if a == b {
		return true
	}
	return isNumeric(a) && isNumeric(b)
}

func isNumeric(k Kind) bool { return k == Int || k == Float }

// Compare orders a before b (-1), equal (0) or after (1). NULL orders
// before every non-NULL value and equal to NULL, which gives sorting a
// total order; equality predicates treat NULL separately (SQL three-valued
// logic is approximated: NULL = NULL is false in predicate evaluation).
// NaN orders after every non-NaN number and equal to itself (the
// PostgreSQL convention), so ORDER BY / MIN / MAX / DISTINCT over NaN
// floats are order-independent and consistent with AppendKey's canonical
// NaN encoding. Comparing incomparable kinds returns an error.
func Compare(a, b Value) (int, error) {
	if a.K == Null || b.K == Null {
		switch {
		case a.K == Null && b.K == Null:
			return 0, nil
		case a.K == Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if isNumeric(a.K) && isNumeric(b.K) {
		if a.K == Int && b.K == Int {
			return cmpInt(a.I, b.I), nil
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return cmpFloat(af, bf), nil
	}
	if a.K != b.K {
		return 0, fmt.Errorf("value: cannot compare %v with %v", a.K, b.K)
	}
	switch a.K {
	case String:
		return strings.Compare(a.S, b.S), nil
	case Bool:
		return cmpInt(a.I, b.I), nil
	default:
		return 0, fmt.Errorf("value: cannot compare kind %v", a.K)
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpFloat is a total order over float64: -Inf < ... < +Inf < NaN, with
// NaN equal to NaN. Plain < / > comparisons would return 0 ("equal") for
// NaN against anything, which poisons sorting, MIN/MAX and DISTINCT with
// order-dependent results.
func cmpFloat(a, b float64) int {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return 1
	case bNaN:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// AddInt64 adds without wrapping; ok is false on int64 overflow. It is
// shared by aggregate SUM and expression arithmetic, which both promote
// to float64 instead of silently wrapping.
func AddInt64(a, b int64) (int64, bool) {
	s := a + b
	// Overflow iff the operands share a sign the sum does not.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	return s, true
}

// SubInt64 subtracts without wrapping; ok is false on int64 overflow.
func SubInt64(a, b int64) (int64, bool) {
	d := a - b
	// Overflow iff the operands differ in sign and the result flips away
	// from a's sign.
	if (a >= 0) != (b >= 0) && (d >= 0) != (a >= 0) {
		return 0, false
	}
	return d, true
}

// MulInt64 multiplies without wrapping; ok is false on int64 overflow.
func MulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 && b == -1 || b == math.MinInt64 && a == -1 {
		return 0, false // a*b wraps and MinInt64 / -1 would trap
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Equal reports value equality with numeric coercion (1 == 1.0). NULLs are
// equal to each other for the purposes of hashing and dedup; predicate
// evaluation filters NULLs before calling Equal.
func Equal(a, b Value) bool {
	if a.K == Null || b.K == Null {
		return a.K == Null && b.K == Null
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Row is a tuple of values. Rows are positional; the schema that gives
// positions meaning lives in internal/schema.
type Row []Value

// Clone returns a copy of the row sharing string payloads.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Project returns the sub-row at the given positions.
func (r Row) Project(idx []int) Row {
	out := make(Row, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}

// AppendKey appends an injective binary encoding of v to dst and returns
// the extended slice. Distinct values always produce distinct encodings;
// equal values (under Equal, i.e. with numeric coercion) produce equal
// encodings because integral floats are canonicalised to the Int encoding.
func AppendKey(dst []byte, v Value) []byte {
	switch v.K {
	case Null:
		return AppendNullKey(dst)
	case Int:
		return AppendIntKey(dst, v.I)
	case Float:
		return AppendFloatKey(dst, v.F)
	case String:
		return AppendStringKey(dst, v.S)
	case Bool:
		return append(dst, 4, byte(v.I))
	default:
		return append(dst, 255)
	}
}

// AppendNullKey appends the encoding of NULL. The per-kind Append*Key
// helpers expose AppendKey's cases individually so columnar operators
// can encode a whole column with one kind dispatch; each produces
// byte-identical output to AppendKey of the equivalent value.
func AppendNullKey(dst []byte) []byte { return append(dst, 0) }

// AppendIntKey appends the encoding of an Int value.
func AppendIntKey(dst []byte, i int64) []byte {
	dst = append(dst, 1)
	return appendU64(dst, uint64(i))
}

// AppendFloatKey appends the encoding of a Float value. Integral floats
// canonicalise to the Int encoding so that 1 and 1.0 hash identically,
// matching Equal's numeric coercion; all NaN payloads encode
// identically, matching Compare's NaN == NaN so hashing, grouping and
// DISTINCT agree with the total order.
func AppendFloatKey(dst []byte, f float64) []byte {
	if i := int64(f); float64(i) == f {
		return AppendIntKey(dst, i)
	}
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		bits = math.Float64bits(math.NaN())
	}
	dst = append(dst, 2)
	return appendU64(dst, bits)
}

// AppendStringKey appends the encoding of a String value.
func AppendStringKey(dst []byte, s string) []byte {
	dst = append(dst, 3)
	dst = appendU64(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBoolKey appends the encoding of a Bool value.
func AppendBoolKey(dst []byte, b bool) []byte {
	if b {
		return append(dst, 4, 1)
	}
	return append(dst, 4, 0)
}

// CompareInt64 is the engine's total order over Int payloads.
func CompareInt64(a, b int64) int { return cmpInt(a, b) }

// CompareFloat64 is the engine's total order over float64:
// -Inf < ... < +Inf < NaN, NaN equal to NaN (see cmpFloat).
func CompareFloat64(a, b float64) int { return cmpFloat(a, b) }

func appendU64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// HashKey hashes an encoded key (as produced by Key / AppendKey /
// AppendRowKey) for shard routing — FNV-1a folded to 32 bits. The
// access-constraint indices and the parallel hash join both mask it
// down to their shard counts; the hash only spreads keys, results never
// depend on it.
func HashKey(key string) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return uint32(h)
}

// Key returns an injective string encoding of the row, suitable as a map
// key for hashing, grouping and index buckets.
func Key(vals []Value) string {
	var buf [48]byte
	dst := buf[:0]
	for _, v := range vals {
		dst = AppendKey(dst, v)
	}
	return string(dst)
}

// AppendRowKey appends the injective encoding of the row's values at
// positions pos (all positions when pos is nil) to dst and returns the
// extended slice. It is the allocation-free form of Key(r.Project(pos))
// used by the hash join, grouping/DISTINCT and index-probe hot paths:
// callers reuse dst across rows and look up maps with string(dst), which
// the compiler does not materialise.
func AppendRowKey(dst []byte, r Row, pos []int) []byte {
	if pos == nil {
		for _, v := range r {
			dst = AppendKey(dst, v)
		}
		return dst
	}
	for _, p := range pos {
		dst = AppendKey(dst, r[p])
	}
	return dst
}
