package value

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Null: "NULL", Int: "INT", Float: "FLOAT", String: "STRING", Bool: "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"INT": Int, "integer": Int, "BIGINT": Int, "date": Int,
		"FLOAT": Float, "double": Float, "NUMERIC": Float,
		"STRING": String, "text": String, "VARCHAR": String,
		"BOOL": Bool, "boolean": Bool,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{NewInt(42), Int, "42"},
		{NewInt(-7), Int, "-7"},
		{NewFloat(2.5), Float, "2.5"},
		{NewString("hi"), String, "hi"},
		{NewBool(true), Bool, "true"},
		{NewBool(false), Bool, "false"},
		{NewNull(), Null, ""},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.K, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		s    string
		k    Kind
		want Value
	}{
		{"42", Int, NewInt(42)},
		{"-3", Int, NewInt(-3)},
		{"2.25", Float, NewFloat(2.25)},
		{"x y", String, NewString("x y")},
		{"true", Bool, NewBool(true)},
		{"", Int, NewNull()},
		{"", String, NewNull()},
	}
	for _, c := range cases {
		got, err := Parse(c.s, c.k)
		if err != nil {
			t.Errorf("Parse(%q, %v): %v", c.s, c.k, err)
			continue
		}
		if !Equal(got, c.want) || got.K != c.want.K {
			t.Errorf("Parse(%q, %v) = %+v, want %+v", c.s, c.k, got, c.want)
		}
	}
	if _, err := Parse("abc", Int); err == nil {
		t.Error("Parse(abc, Int) should fail")
	}
	if _, err := Parse("abc", Bool); err == nil {
		t.Error("Parse(abc, Bool) should fail")
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	c, err := Compare(NewInt(2), NewFloat(2.0))
	if err != nil || c != 0 {
		t.Errorf("Compare(2, 2.0) = %d, %v; want 0", c, err)
	}
	c, err = Compare(NewInt(2), NewFloat(2.5))
	if err != nil || c != -1 {
		t.Errorf("Compare(2, 2.5) = %d, %v; want -1", c, err)
	}
	c, err = Compare(NewFloat(3.5), NewInt(3))
	if err != nil || c != 1 {
		t.Errorf("Compare(3.5, 3) = %d, %v; want 1", c, err)
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if c, _ := Compare(NewNull(), NewInt(0)); c != -1 {
		t.Errorf("NULL should order before any value, got %d", c)
	}
	if c, _ := Compare(NewString("a"), NewNull()); c != 1 {
		t.Errorf("value should order after NULL, got %d", c)
	}
	if c, _ := Compare(NewNull(), NewNull()); c != 0 {
		t.Errorf("NULL vs NULL should be 0, got %d", c)
	}
}

func TestCompareIncomparable(t *testing.T) {
	if _, err := Compare(NewInt(1), NewString("1")); err == nil {
		t.Error("comparing INT with STRING should fail")
	}
	if _, err := Compare(NewBool(true), NewString("true")); err == nil {
		t.Error("comparing BOOL with STRING should fail")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if c, _ := Compare(NewString("a"), NewString("b")); c != -1 {
		t.Errorf("a < b expected, got %d", c)
	}
	if c, _ := Compare(NewBool(false), NewBool(true)); c != -1 {
		t.Errorf("false < true expected, got %d", c)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt(1), NewFloat(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if Equal(NewInt(1), NewInt(2)) {
		t.Error("1 should not equal 2")
	}
	if !Equal(NewNull(), NewNull()) {
		t.Error("NULL should hash-equal NULL")
	}
	if Equal(NewNull(), NewInt(0)) {
		t.Error("NULL should not equal 0")
	}
}

func TestRowCloneAndProject(t *testing.T) {
	r := Row{NewInt(1), NewString("x"), NewFloat(2.5)}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].I != 1 {
		t.Error("Clone must not share storage")
	}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].F != 2.5 || p[1].I != 1 {
		t.Errorf("Project = %v", p)
	}
}

// Key injectivity: distinct value slices encode to distinct keys; equal
// (with numeric coercion) slices encode identically.
func TestKeyInjectivityCorners(t *testing.T) {
	pairs := [][2][]Value{
		// Concatenation attacks: ("ab", "c") vs ("a", "bc").
		{{NewString("ab"), NewString("c")}, {NewString("a"), NewString("bc")}},
		// Empty string vs NULL.
		{{NewString("")}, {NewNull()}},
		// Int 0 vs Bool false.
		{{NewInt(0)}, {NewBool(false)}},
		// Int vs String of same digits.
		{{NewInt(12)}, {NewString("12")}},
	}
	for _, p := range pairs {
		if Key(p[0]) == Key(p[1]) {
			t.Errorf("Key collision between %v and %v", p[0], p[1])
		}
	}
	// Numeric coercion: 1 and 1.0 must agree (hash-join correctness).
	if Key([]Value{NewInt(1)}) != Key([]Value{NewFloat(1.0)}) {
		t.Error("Key(1) must equal Key(1.0) to match Equal semantics")
	}
	// Non-integral floats stand alone.
	if Key([]Value{NewFloat(1.5)}) == Key([]Value{NewInt(1)}) {
		t.Error("Key(1.5) must differ from Key(1)")
	}
}

func TestKeyQuickInjectivity(t *testing.T) {
	// Property: Key agreement coincides with element-wise Equal.
	f := func(a1, a2 int64, s1, s2 string) bool {
		k1 := Key([]Value{NewInt(a1), NewString(s1)})
		k2 := Key([]Value{NewInt(a2), NewString(s2)})
		same := a1 == a2 && s1 == s2
		return (k1 == k2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyFloatCanonicalisation(t *testing.T) {
	f := func(x int32) bool {
		// Every int32 is exactly representable as float64.
		return Key([]Value{NewInt(int64(x))}) == Key([]Value{NewFloat(float64(x))})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTotalOrderOnInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := NewInt(a), NewInt(b), NewInt(c)
		ab, _ := Compare(va, vb)
		ba, _ := Compare(vb, va)
		if ab != -ba {
			return false
		}
		// Transitivity spot check.
		bc, _ := Compare(vb, vc)
		ac, _ := Compare(va, vc)
		if ab < 0 && bc < 0 && ac >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Errorf("AsFloat(3) = %v, %v", f, ok)
	}
	if f, ok := NewFloat(2.5).AsFloat(); !ok || f != 2.5 {
		t.Errorf("AsFloat(2.5) = %v, %v", f, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat on string should fail")
	}
	if _, ok := NewNull().AsFloat(); ok {
		t.Error("AsFloat on NULL should fail")
	}
}

func TestKeyLargeFloats(t *testing.T) {
	// Floats beyond int64 precision must still be injective.
	vals := []float64{math.MaxFloat64, -math.MaxFloat64, 1e300, -1e300, 0.1, -0.1}
	seen := map[string]float64{}
	for _, f := range vals {
		k := Key([]Value{NewFloat(f)})
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %g and %g", prev, f)
		}
		seen[k] = f
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Error("zero Value must be NULL")
	}
	if !reflect.DeepEqual(v, NewNull()) {
		t.Error("NewNull must equal the zero Value")
	}
}
