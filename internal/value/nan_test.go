package value

// Regression tests for the NaN total order and the overflow-safe int64
// helpers. The pre-fix Compare returned 0 for NaN against any number,
// which made Equal call NaN equal to everything and left ORDER BY /
// MIN / MAX / DISTINCT order-dependent.

import (
	"math"
	"testing"
)

func TestCompareNaNTotalOrder(t *testing.T) {
	nan := NewFloat(math.NaN())
	one := NewFloat(1.0)
	inf := NewFloat(math.Inf(1))

	if c, err := Compare(nan, nan); err != nil || c != 0 {
		t.Errorf("Compare(NaN, NaN) = %d, %v; want 0", c, err)
	}
	if c, err := Compare(nan, one); err != nil || c != 1 {
		t.Errorf("Compare(NaN, 1.0) = %d, %v; want 1 (NaN sorts after non-NaN)", c, err)
	}
	if c, err := Compare(one, nan); err != nil || c != -1 {
		t.Errorf("Compare(1.0, NaN) = %d, %v; want -1", c, err)
	}
	if c, err := Compare(nan, inf); err != nil || c != 1 {
		t.Errorf("Compare(NaN, +Inf) = %d, %v; want 1", c, err)
	}
	// Mixed Int/Float comparison goes through the same total order.
	if c, err := Compare(NewInt(7), nan); err != nil || c != -1 {
		t.Errorf("Compare(7, NaN) = %d, %v; want -1", c, err)
	}
	if Equal(nan, one) {
		t.Error("Equal(NaN, 1.0) must be false")
	}
	if !Equal(nan, nan) {
		t.Error("Equal(NaN, NaN) must be true (consistent with the key encoding)")
	}
}

func TestAppendKeyCanonicalNaN(t *testing.T) {
	// Different NaN payloads must encode identically, so hashing and
	// DISTINCT agree with Compare's NaN == NaN.
	a := NewFloat(math.NaN())
	b := NewFloat(math.Float64frombits(0x7FF8_0000_0000_0002)) // distinct payload
	if !math.IsNaN(b.F) {
		t.Fatal("test payload is not a NaN")
	}
	if Key([]Value{a}) != Key([]Value{b}) {
		t.Error("NaN payloads encode to different keys")
	}
	// And the NaN key stays distinct from every ordinary float.
	if Key([]Value{a}) == Key([]Value{NewFloat(1.5)}) {
		t.Error("NaN key collides with 1.5")
	}
}

func TestSubInt64(t *testing.T) {
	const max, min = int64(math.MaxInt64), int64(math.MinInt64)
	for _, c := range []struct {
		a, b int64
		ok   bool
	}{
		{5, 3, true}, {min, 1, false}, {max, -1, false},
		{min, -1, true}, {max, 1, true}, {0, min, false}, {-1, min, true},
	} {
		got, ok := SubInt64(c.a, c.b)
		if ok != c.ok {
			t.Errorf("SubInt64(%d, %d) ok = %v, want %v", c.a, c.b, ok, c.ok)
		}
		if ok && got != c.a-c.b {
			t.Errorf("SubInt64(%d, %d) = %d", c.a, c.b, got)
		}
	}
}
