// Package cliutil holds helpers shared by the BEAS command-line tools
// (cmd/beas, cmd/beasd).
package cliutil

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"

	beas "github.com/bounded-eval/beas"
	"github.com/bounded-eval/beas/internal/wal"
)

// OpenDB opens the database a CLI tool serves.
//
// With no dataDir it generates an in-memory TLC instance at tlcScale
// (scale 1 when tlcScale is 0). With a dataDir it distinguishes three
// layouts:
//
//   - a WAL store (wal-*.log / snap-*.snap): opened durably with
//     beas.Open — crash recovery on boot, every mutation logged;
//   - a legacy CSV directory (as written by cmd/tlcgen): loaded into an
//     in-memory database, preserving the old behaviour;
//   - an empty or missing directory: created as a fresh durable store,
//     bootstrapped with TLC data at tlcScale when tlcScale > 0.
//
// logf receives progress messages (without trailing newlines).
func OpenDB(tlcScale int, dataDir string, opts *beas.Options, logf func(format string, args ...any)) (*beas.DB, error) {
	if dataDir == "" {
		if tlcScale <= 0 {
			tlcScale = 1
			logf("no -tlc or -data given; generating TLC at scale 1 (in-memory)")
		} else {
			logf("generating TLC benchmark at scale %d (in-memory)...", tlcScale)
		}
		return beas.NewTLCDB(tlcScale)
	}
	if !wal.IsStoreDir(dataDir) && hasCSVs(dataDir) {
		return openLegacyCSV(dataDir, logf)
	}
	db, err := beas.Open(dataDir, opts)
	if err != nil {
		return nil, err
	}
	st := db.Durability()
	logf("recovered %s: snapshot@%d + %d log records in %s (%d torn bytes dropped)",
		dataDir, st.Recovery.SnapshotLSN, st.Recovery.ReplayedRecords,
		st.Recovery.Duration.Round(0), st.Recovery.TruncatedBytes)
	if !st.Recovery.Conforms {
		logf("WARNING: recovered database does not conform to its access schema")
	}
	if db.TotalRows() == 0 && len(db.Constraints()) == 0 && tlcScale > 0 {
		logf("empty store; generating TLC benchmark at scale %d...", tlcScale)
		if err := db.LoadTLC(tlcScale); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// hasCSVs reports whether dir holds at least one .csv file (the layout
// cmd/tlcgen writes).
func hasCSVs(dir string) bool {
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	return err == nil && len(matches) > 0
}

// openLegacyCSV loads a tlcgen-style directory of CSVs plus an optional
// access_schema.txt into an in-memory database.
func openLegacyCSV(dataDir string, logf func(format string, args ...any)) (*beas.DB, error) {
	db := beas.NewTLCSchemaDB()
	for _, table := range db.TableNames() {
		path := filepath.Join(dataDir, table+".csv")
		if _, err := os.Stat(path); err != nil {
			logf("  (skipping %s: %v)", table, err)
			continue
		}
		if err := db.LoadCSV(table, path); err != nil {
			return nil, err
		}
		n, _ := db.RowCount(table)
		logf("  loaded %-14s %8d rows", table, n)
	}
	f, err := os.Open(filepath.Join(dataDir, "access_schema.txt"))
	if err != nil {
		return db, nil
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := db.RegisterConstraint(line); err != nil {
			logf("  (constraint %s: %v)", line, err)
		}
	}
	return db, sc.Err()
}
