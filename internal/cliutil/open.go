// Package cliutil holds helpers shared by the BEAS command-line tools
// (cmd/beas, cmd/beasd).
package cliutil

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"

	beas "github.com/bounded-eval/beas"
)

// OpenDB opens the database a CLI tool serves: a freshly generated TLC
// instance at tlcScale, or — when tlcScale is 0 and dataDir is set —
// CSVs plus an access_schema.txt from dataDir (as written by
// cmd/tlcgen). With neither, it generates TLC at scale 1. logf receives
// progress messages (without trailing newlines).
func OpenDB(tlcScale int, dataDir string, logf func(format string, args ...any)) (*beas.DB, error) {
	if tlcScale > 0 {
		logf("generating TLC benchmark at scale %d...", tlcScale)
		return beas.NewTLCDB(tlcScale)
	}
	if dataDir == "" {
		logf("no -tlc or -data given; generating TLC at scale 1")
		return beas.NewTLCDB(1)
	}
	db := beas.NewTLCSchemaDB()
	for _, table := range db.TableNames() {
		path := filepath.Join(dataDir, table+".csv")
		if _, err := os.Stat(path); err != nil {
			logf("  (skipping %s: %v)", table, err)
			continue
		}
		if err := db.LoadCSV(table, path); err != nil {
			return nil, err
		}
		n, _ := db.RowCount(table)
		logf("  loaded %-14s %8d rows", table, n)
	}
	f, err := os.Open(filepath.Join(dataDir, "access_schema.txt"))
	if err != nil {
		return db, nil
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := db.RegisterConstraint(line); err != nil {
			logf("  (constraint %s: %v)", line, err)
		}
	}
	return db, sc.Err()
}
