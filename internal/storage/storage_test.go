package storage

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/value"
)

func testRel() *schema.Relation {
	return schema.MustRelation("t",
		schema.Attribute{Name: "a", Kind: value.Int},
		schema.Attribute{Name: "b", Kind: value.String},
		schema.Attribute{Name: "c", Kind: value.Float},
	)
}

func row(a int64, b string, c float64) value.Row {
	return value.Row{value.NewInt(a), value.NewString(b), value.NewFloat(c)}
}

func TestInsertAndLen(t *testing.T) {
	tab := NewTable(testRel())
	if err := tab.Insert(row(1, "x", 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(value.Row{value.NewInt(1)}); err == nil {
		t.Error("short row must be rejected")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestDelete(t *testing.T) {
	tab := NewTable(testRel())
	for i := 0; i < 10; i++ {
		if err := tab.Insert(row(int64(i%3), "x", 1)); err != nil {
			t.Fatal(err)
		}
	}
	n := tab.Delete(func(r value.Row) bool { return r[0].I == 1 })
	if n != 3 {
		t.Errorf("Delete removed %d rows, want 3", n)
	}
	if tab.Len() != 7 {
		t.Errorf("Len = %d after delete", tab.Len())
	}
}

type recorder struct {
	ins, del int
}

func (r *recorder) OnInsert(value.Row) { r.ins++ }
func (r *recorder) OnDelete(value.Row) { r.del++ }

func TestObservers(t *testing.T) {
	tab := NewTable(testRel())
	rec := &recorder{}
	tab.Observe(rec)
	_ = tab.Insert(row(1, "x", 1))
	_ = tab.Insert(row(2, "y", 2))
	tab.Delete(func(r value.Row) bool { return r[0].I == 1 })
	if rec.ins != 2 || rec.del != 1 {
		t.Errorf("observer saw ins=%d del=%d, want 2, 1", rec.ins, rec.del)
	}
	tab.Unobserve(rec)
	_ = tab.Insert(row(3, "z", 3))
	if rec.ins != 2 {
		t.Error("unobserved table still notifies")
	}
}

func TestStatsAndInvalidation(t *testing.T) {
	tab := NewTable(testRel())
	_ = tab.Insert(row(1, "x", 1))
	_ = tab.Insert(row(2, "x", 2))
	_ = tab.Insert(row(2, "y", 2))
	st := tab.Stats()
	if st.RowCount != 3 {
		t.Errorf("RowCount = %d", st.RowCount)
	}
	if st.Distinct[0] != 2 || st.Distinct[1] != 2 || st.Distinct[2] != 2 {
		t.Errorf("Distinct = %v", st.Distinct)
	}
	if st.Min[0].I != 1 || st.Max[0].I != 2 {
		t.Errorf("Min/Max = %v / %v", st.Min[0], st.Max[0])
	}
	// Cached pointer until mutation.
	if tab.Stats() != st {
		t.Error("Stats should be cached")
	}
	_ = tab.Insert(row(5, "z", 9))
	st2 := tab.Stats()
	if st2 == st || st2.RowCount != 4 {
		t.Error("Stats must be invalidated by Insert")
	}
}

func TestStatsNulls(t *testing.T) {
	tab := NewTable(testRel())
	_ = tab.Insert(value.Row{value.NewNull(), value.NewNull(), value.NewNull()})
	_ = tab.Insert(row(7, "x", 1))
	st := tab.Stats()
	if st.Distinct[0] != 1 {
		t.Errorf("NULLs must not count as distinct values, got %d", st.Distinct[0])
	}
	if st.Min[0].I != 7 || st.Max[0].I != 7 {
		t.Errorf("Min/Max should skip NULLs: %v %v", st.Min[0], st.Max[0])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := NewTable(testRel())
	_ = tab.Insert(row(1, "hello, world", 2.5))
	_ = tab.Insert(value.Row{value.NewInt(2), value.NewNull(), value.NewFloat(0)})
	_ = tab.Insert(row(3, `quote"inside`, -1))

	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back := NewTable(testRel())
	if err := back.ReadCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("round trip lost rows: %d", back.Len())
	}
	r := back.Row(0)
	if r[0].I != 1 || r[1].S != "hello, world" || r[2].F != 2.5 {
		t.Errorf("row 0 = %v", r)
	}
	if !back.Row(1)[1].IsNull() {
		t.Error("empty CSV cell should load as NULL")
	}
	if back.Row(2)[1].S != `quote"inside` {
		t.Errorf("quoted cell mangled: %v", back.Row(2)[1])
	}
}

func TestReadCSVColumnSubsetAndPermutation(t *testing.T) {
	tab := NewTable(testRel())
	in := "b,a\nhi,5\n"
	if err := tab.ReadCSV(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	r := tab.Row(0)
	if r[0].I != 5 || r[1].S != "hi" || !r[2].IsNull() {
		t.Errorf("row = %v", r)
	}
	bad := NewTable(testRel())
	if err := bad.ReadCSV(strings.NewReader("z\n1\n")); err == nil {
		t.Error("unknown CSV column should fail")
	}
	bad2 := NewTable(testRel())
	if err := bad2.ReadCSV(strings.NewReader("a\nnotanint\n")); err == nil {
		t.Error("unparsable cell should fail")
	}
}

func TestStore(t *testing.T) {
	db, err := schema.NewDatabase(testRel())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(db)
	if _, ok := s.Table("T"); !ok {
		t.Error("case-insensitive table lookup failed")
	}
	tab := s.MustTable("t")
	_ = tab.Insert(row(1, "x", 1))
	if s.TotalRows() != 1 {
		t.Errorf("TotalRows = %d", s.TotalRows())
	}
	if got := s.Names(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Names = %v", got)
	}
	other := schema.MustRelation("u", schema.Attribute{Name: "x", Kind: value.Int})
	if _, err := s.AddTable(other); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddTable(other); err == nil {
		t.Error("duplicate AddTable should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable on missing table should panic")
		}
	}()
	s.MustTable("ghost")
}
