// Package storage provides the in-memory row store under BEAS: typed
// tables, a store grouping the tables of a database, CSV import/export and
// the basic table statistics the planners consume.
//
// The store plays the role of the "underlying DBMS" storage layer of the
// paper: both the conventional engine (internal/engine) and the constraint
// indices (internal/access) read from it.
package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/value"
)

// Table is an in-memory relation instance: a schema plus a slice of rows.
// Rows are append-only through Insert; Delete removes by predicate and is
// used by the maintenance tests and the CLI.
type Table struct {
	Rel  *schema.Relation
	rows []value.Row

	mu      sync.RWMutex
	stats   *TableStats
	version uint64 // bumped on every mutation; invalidates stats

	// observers are notified of every mutation; the access-constraint
	// indices register here so that maintenance is incremental.
	observers []Observer
	// vobservers receive version-stamped mutation batches, after the
	// plain observers; the query-result cache registers here so it can
	// order events against the versions cached entries were read at.
	vobservers []VersionedObserver
}

// Observer receives table mutations. Implemented by access.Index.
type Observer interface {
	OnInsert(row value.Row)
	OnDelete(row value.Row)
}

// VersionedObserver receives version-stamped mutation batches. Every
// version bump produces exactly one OnMutation call, outside the table
// lock and after all plain observers saw the mutation, carrying the
// post-mutation version: an insert delivers the inserted row, a delete
// delivers every row removed by that one (single-bump) Delete call.
// Calls for concurrent mutations may arrive out of version order;
// consumers that need ordering must buffer on the version.
type VersionedObserver interface {
	OnMutation(version uint64, inserted value.Row, deleted []value.Row)
}

// NewTable creates an empty table with the given schema.
func NewTable(rel *schema.Relation) *Table {
	return &Table{Rel: rel}
}

// Observe registers an observer for subsequent mutations.
//
// The observer list is copied on write: mutators snapshot it under the
// lock and notify outside it, so editing the backing array in place
// would race with a notification in flight.
func (t *Table) Observe(o Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = appendObservers(t.observers, o)
}

// ObserveBuild builds derived state from a consistent snapshot of the
// current rows and registers o for subsequent mutations, atomically: no
// concurrent mutation can fall between the snapshot and the
// registration, so o sees every row exactly once — in the snapshot or
// as a notification, never both, never neither. The rows slice passed
// to build is the table's own storage and must not be retained or
// mutated.
func (t *Table) ObserveBuild(o Observer, build func(rows []value.Row) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	//beas:nolint lockorder -- the snapshot+register atomicity documented above requires build to run under t.mu; build must not call back into the table
	if err := build(t.rows); err != nil {
		return err
	}
	t.observers = appendObservers(t.observers, o)
	return nil
}

// Unobserve removes a previously registered observer (copy-on-write,
// like Observe).
func (t *Table) Unobserve(o Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, x := range t.observers {
		if x == o {
			obs := make([]Observer, 0, len(t.observers)-1)
			obs = append(obs, t.observers[:i]...)
			obs = append(obs, t.observers[i+1:]...)
			t.observers = obs
			return
		}
	}
}

// ObserveVersioned registers vo and returns the table version as of
// registration, atomically: every later version bump produces exactly
// one OnMutation with a version strictly greater than the returned one,
// and no bump at or below it is delivered to vo.
func (t *Table) ObserveVersioned(vo VersionedObserver) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]VersionedObserver, len(t.vobservers), len(t.vobservers)+1)
	copy(out, t.vobservers)
	t.vobservers = append(out, vo)
	return t.version
}

// UnobserveVersioned removes a previously registered versioned observer
// (copy-on-write, like Observe). A notification already in flight may
// still be delivered after removal; consumers discard by identity.
func (t *Table) UnobserveVersioned(vo VersionedObserver) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, x := range t.vobservers {
		if x == vo {
			obs := make([]VersionedObserver, 0, len(t.vobservers)-1)
			obs = append(obs, t.vobservers[:i]...)
			obs = append(obs, t.vobservers[i+1:]...)
			t.vobservers = obs
			return
		}
	}
}

func appendObservers(obs []Observer, o Observer) []Observer {
	out := make([]Observer, len(obs), len(obs)+1)
	copy(out, obs)
	return append(out, o)
}

// Insert validates and appends a row.
func (t *Table) Insert(row value.Row) error {
	if err := t.Rel.ValidateRow(row); err != nil {
		return err
	}
	t.mu.Lock()
	t.rows = append(t.rows, row)
	t.version++
	v := t.version
	t.stats = nil
	obs := t.observers
	vobs := t.vobservers
	t.mu.Unlock()
	for _, o := range obs {
		o.OnInsert(row)
	}
	// Versioned observers run after the plain ones, so when an event is
	// processed at its own version the constraint indices already
	// reflect it.
	for _, vo := range vobs {
		vo.OnMutation(v, row, nil)
	}
	return nil
}

// InsertBulk appends rows without copying; it validates each row.
func (t *Table) InsertBulk(rows []value.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes all rows for which match returns true and reports how
// many were removed. match must be a pure row predicate and must not
// call back into the table: it runs under the write lock so the
// decide-and-compact step is atomic against concurrent inserts.
func (t *Table) Delete(match func(value.Row) bool) int {
	t.mu.Lock()
	kept := t.rows[:0]
	var removed []value.Row
	for _, r := range t.rows {
		//beas:nolint lockorder -- match is a pure predicate by documented contract; deciding outside t.mu would let concurrent inserts slip between decision and compaction
		if match(r) {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	if len(removed) > 0 {
		t.version++
		t.stats = nil
	}
	v := t.version
	obs := t.observers
	vobs := t.vobservers
	t.mu.Unlock()
	for _, r := range removed {
		for _, o := range obs {
			o.OnDelete(r)
		}
	}
	// One batched versioned notification per version bump, after the
	// plain observers so indices already reflect the removals.
	if len(removed) > 0 {
		for _, vo := range vobs {
			vo.OnMutation(v, nil, removed)
		}
	}
	return len(removed)
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Rows returns the underlying row slice. Callers must treat it as
// read-only; it is only valid until the next mutation.
func (t *Table) Rows() []value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Row returns row i.
func (t *Table) Row(i int) value.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[i]
}

// Version returns the table's mutation counter. Derived structures (the
// statistics catalog's per-column summaries) cache against it: equal
// versions guarantee identical rows.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// WithRows calls fn with the table's rows and current version under the
// read lock, so fn observes a consistent snapshot even against an
// in-place Delete compaction. fn must not retain or mutate the slice and
// must not call back into the table.
func (t *Table) WithRows(fn func(rows []value.Row, version uint64)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	//beas:nolint lockorder -- fn is documented above as must-not-call-back-into-the-table; the point of WithRows is a snapshot under the read lock
	fn(t.rows, t.version)
}

// Cursor is a batched scan over a table. Each Next call copies at most
// one batch of row references out under the read lock, so a scan never
// holds the lock for the whole relation and never forces the caller to
// materialise it. The cursor pins the table version it first reads; a
// mutation during the scan fails the cursor instead of tearing it.
type Cursor struct {
	t       *Table
	pos     int
	version uint64
	started bool
}

// Scan returns a cursor positioned before the first row.
func (t *Table) Scan() *Cursor {
	return &Cursor{t: t}
}

// Next fills buf with up to len(buf) row references starting at the
// cursor position and returns how many it wrote; 0 means the scan is
// done. It fails if the table was mutated since the cursor started.
func (c *Cursor) Next(buf []value.Row) (int, error) {
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	if !c.started {
		c.started = true
		c.version = c.t.version
	} else if c.version != c.t.version {
		return 0, fmt.Errorf("storage: table %s mutated during scan", c.t.Rel.Name)
	}
	n := copy(buf, c.t.rows[c.pos:])
	c.pos += n
	return n, nil
}

// NextCols advances the cursor by up to maxRows rows, filling the
// columns of cb (already Reset to len(cols)) directly from table
// storage: cb column j receives attribute cols[j] of every row. It
// returns how many rows it wrote; 0 means the scan is done. The version
// and locking semantics match Next.
func (c *Cursor) NextCols(cb *iter.ColBatch, cols []int, maxRows int) (int, error) {
	c.t.mu.RLock()
	defer c.t.mu.RUnlock()
	if !c.started {
		c.started = true
		c.version = c.t.version
	} else if c.version != c.t.version {
		return 0, fmt.Errorf("storage: table %s mutated during scan", c.t.Rel.Name)
	}
	rows := c.t.rows[c.pos:]
	n := min(len(rows), maxRows)
	for j, a := range cols {
		col := cb.Col(j)
		for _, r := range rows[:n] {
			col.Append(r[a])
		}
	}
	cb.SetRows(cb.Rows() + n)
	c.pos += n
	return n, nil
}

// TableStats summarises a table for the cost-based planner.
type TableStats struct {
	RowCount int
	// Distinct holds the number of distinct non-NULL values per column.
	Distinct []int
	// Min and Max hold per-column extrema (NULL when the column is empty).
	Min, Max []value.Value
}

// Stats computes (and caches) table statistics. The cache is invalidated
// by any mutation.
func (t *Table) Stats() *TableStats {
	t.mu.RLock()
	if t.stats != nil {
		s := t.stats
		t.mu.RUnlock()
		return s
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats != nil {
		return t.stats
	}
	n := t.Rel.Arity()
	st := &TableStats{
		RowCount: len(t.rows),
		Distinct: make([]int, n),
		Min:      make([]value.Value, n),
		Max:      make([]value.Value, n),
	}
	for c := 0; c < n; c++ {
		seen := make(map[string]struct{})
		var minV, maxV value.Value
		first := true
		for _, r := range t.rows {
			v := r[c]
			if v.IsNull() {
				continue
			}
			seen[value.Key([]value.Value{v})] = struct{}{}
			if first {
				minV, maxV = v, v
				first = false
				continue
			}
			if cmp, err := value.Compare(v, minV); err == nil && cmp < 0 {
				minV = v
			}
			if cmp, err := value.Compare(v, maxV); err == nil && cmp > 0 {
				maxV = v
			}
		}
		st.Distinct[c] = len(seen)
		st.Min[c], st.Max[c] = minV, maxV
	}
	t.stats = st
	return st
}

// Store groups the tables of one database instance.
type Store struct {
	DB     *schema.Database
	tables map[string]*Table
}

// NewStore creates a store with one empty table per relation in db.
func NewStore(db *schema.Database) *Store {
	s := &Store{DB: db, tables: make(map[string]*Table)}
	for _, name := range db.Names() {
		rel, _ := db.Relation(name)
		s.tables[strings.ToLower(name)] = NewTable(rel)
	}
	return s
}

// AddTable creates an empty table for a relation added to the database
// schema after the store was created.
func (s *Store) AddTable(rel *schema.Relation) (*Table, error) {
	key := strings.ToLower(rel.Name)
	if _, dup := s.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", rel.Name)
	}
	t := NewTable(rel)
	s.tables[key] = t
	return t, nil
}

// Table returns the table for a relation (case-insensitive).
func (s *Store) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable is Table that panics when the relation does not exist; for
// internal callers that already validated the name.
func (s *Store) MustTable(name string) *Table {
	t, ok := s.Table(name)
	if !ok {
		panic(fmt.Sprintf("storage: no table %q", name))
	}
	return t
}

// TotalRows returns the number of rows across all tables.
func (s *Store) TotalRows() int {
	total := 0
	for _, t := range s.tables {
		total += t.Len()
	}
	return total
}

// Names returns the table names in sorted order.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Rel.AttrNames()); err != nil {
		return err
	}
	rec := make([]string, t.Rel.Arity())
	for _, row := range t.Rows() {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads rows from CSV data whose header names a subset or
// permutation of the relation's attributes. Missing attributes load as
// NULL; empty cells load as NULL.
func (t *Table) ReadCSV(r io.Reader) error {
	return t.ReadCSVFunc(r, t.Insert)
}

// ReadCSVFunc parses CSV data against the relation's schema and hands
// each decoded row to insert instead of inserting directly. The durable
// database uses it to route bulk loads through its write-ahead log.
func (t *Table) ReadCSVFunc(r io.Reader, insert func(value.Row) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("storage: reading CSV header for %s: %w", t.Rel.Name, err)
	}
	cols := make([]int, len(header))
	for i, h := range header {
		j, ok := t.Rel.AttrIndex(strings.TrimSpace(h))
		if !ok {
			return fmt.Errorf("storage: CSV column %q not in relation %s", h, t.Rel.Name)
		}
		cols[i] = j
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("storage: reading CSV for %s: %w", t.Rel.Name, err)
		}
		row := make(value.Row, t.Rel.Arity())
		for i, cell := range rec {
			j := cols[i]
			v, err := value.Parse(cell, t.Rel.Attrs[j].Kind)
			if err != nil {
				return fmt.Errorf("storage: %s line %d column %s: %w", t.Rel.Name, line, t.Rel.Attrs[j].Name, err)
			}
			row[j] = v
		}
		if err := insert(row); err != nil {
			return fmt.Errorf("storage: %s line %d: %w", t.Rel.Name, line, err)
		}
	}
}

// LoadCSVFile loads path into the named table.
func (s *Store) LoadCSVFile(table, path string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("storage: no table %q", table)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.ReadCSV(f)
}

// SaveCSVFile writes the named table to path.
func (s *Store) SaveCSVFile(table, path string) error {
	t, ok := s.Table(table)
	if !ok {
		return fmt.Errorf("storage: no table %q", table)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
