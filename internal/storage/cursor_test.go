package storage

import (
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/value"
)

func cursorTable(t *testing.T, n int) *Table {
	t.Helper()
	rel := schema.MustRelation("nums", schema.Attribute{Name: "i", Kind: value.Int})
	tab := NewTable(rel)
	for i := 0; i < n; i++ {
		if err := tab.Insert(value.Row{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// TestCursorBatches scans a table in fixed-size batches and checks every
// row arrives exactly once, in order, with no batch exceeding the buffer.
func TestCursorBatches(t *testing.T) {
	const n, batch = 1000, 64
	tab := cursorTable(t, n)
	cur := tab.Scan()
	buf := make([]value.Row, batch)
	seen := 0
	for {
		k, err := cur.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			break
		}
		if k > batch {
			t.Fatalf("batch of %d exceeds buffer %d", k, batch)
		}
		for i := 0; i < k; i++ {
			if buf[i][0].I != int64(seen+i) {
				t.Fatalf("row %d = %v", seen+i, buf[i])
			}
		}
		seen += k
	}
	if seen != n {
		t.Fatalf("scanned %d rows, want %d", seen, n)
	}
}

// TestCursorFailsOnMutation: a cursor pins the table version it first
// read; a mutation mid-scan must fail the cursor rather than tear it.
func TestCursorFailsOnMutation(t *testing.T) {
	tab := cursorTable(t, 10)
	cur := tab.Scan()
	buf := make([]value.Row, 4)
	if _, err := cur.Next(buf); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(value.Row{value.NewInt(99)}); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(buf); err == nil || !strings.Contains(err.Error(), "mutated during scan") {
		t.Fatalf("expected mutation error, got %v", err)
	}
}
