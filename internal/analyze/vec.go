package analyze

import (
	"strings"

	"github.com/bounded-eval/beas/internal/iter"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// VecFilter is a conjunction of predicates compiled for columnar
// evaluation. Apply refines a ColBatch's selection vector one predicate
// at a time: simple comparisons (column vs constant, column vs column)
// and IS [NOT] NULL tests run as tight per-column loops, everything else
// — and any batch whose column kinds the fast loops do not cover — falls
// back to the scalar row evaluator, so three-valued logic, overflow
// promotion, NaN ordering and error behaviour stay identical to the row
// pipeline.
//
// The compiled filter assumes the batch's column j holds the value of
// layout slot j (the scan layout convention).
type VecFilter struct {
	preds   []vecPred
	layout  *Layout
	scratch value.Row
}

type vecPred struct {
	expr   Expr // scalar fallback; authoritative for semantics and errors
	cmp    *cmpPred
	isNull *nullPred
}

// cmpPred is a comparison with a column on the left: col OP const
// (rslot < 0) or col OP col.
type cmpPred struct {
	op    sqlparser.BinOp
	lslot int
	rslot int
	c     value.Value
}

type nullPred struct {
	slot int
	not  bool
}

// CompileFilters compiles a conjunction of predicate expressions against
// the given layout. Expressions no fast loop covers keep their scalar
// evaluator; compilation never fails.
func CompileFilters(exprs []Expr, l *Layout) *VecFilter {
	f := &VecFilter{layout: l}
	for _, e := range exprs {
		f.preds = append(f.preds, compilePred(e, l))
	}
	return f
}

// Preds returns the number of compiled predicates.
func (f *VecFilter) Preds() int { return len(f.preds) }

func compilePred(e Expr, l *Layout) vecPred {
	p := vecPred{expr: e}
	switch x := e.(type) {
	case *IsNullExpr:
		if c, ok := x.E.(*ColRef); ok {
			if s, ok := l.Slot(c.ID); ok {
				p.isNull = &nullPred{slot: s, not: x.Not}
			}
		}
	case *Bin:
		if !x.Op.IsComparison() {
			break
		}
		switch lx := x.L.(type) {
		case *ColRef:
			ls, ok := l.Slot(lx.ID)
			if !ok {
				break
			}
			switch rx := x.R.(type) {
			case *Const:
				p.cmp = &cmpPred{op: x.Op, lslot: ls, rslot: -1, c: rx.Val}
			case *ColRef:
				if rs, ok := l.Slot(rx.ID); ok {
					p.cmp = &cmpPred{op: x.Op, lslot: ls, rslot: rs}
				}
			}
		case *Const:
			if rx, ok := x.R.(*ColRef); ok {
				if rs, ok := l.Slot(rx.ID); ok {
					// c OP col ⇔ col flip(OP) c; Compare's total order makes
					// the flip exact for every comparable kind pair.
					p.cmp = &cmpPred{op: flipCmp(x.Op), lslot: rs, rslot: -1, c: lx.Val}
				}
			}
		}
	}
	return p
}

func flipCmp(op sqlparser.BinOp) sqlparser.BinOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

func cmpPass(op sqlparser.BinOp, cmp int) bool {
	switch op {
	case sqlparser.OpEq:
		return cmp == 0
	case sqlparser.OpNe:
		return cmp != 0
	case sqlparser.OpLt:
		return cmp < 0
	case sqlparser.OpLe:
		return cmp <= 0
	case sqlparser.OpGt:
		return cmp > 0
	default: // OpGe
		return cmp >= 0
	}
}

// Apply refines cb's selection vector to the rows passing every
// predicate, in predicate order (a row failing predicate k is never
// evaluated under predicate k+1, matching the row pipeline's
// short-circuit).
func (f *VecFilter) Apply(cb *iter.ColBatch) error {
	for i := range f.preds {
		if cb.Len() == 0 {
			return nil
		}
		if err := f.applyPred(&f.preds[i], cb); err != nil {
			return err
		}
	}
	return nil
}

func (f *VecFilter) applyPred(p *vecPred, cb *iter.ColBatch) error {
	if p.isNull != nil {
		applyIsNull(p.isNull, cb)
		return nil
	}
	if p.cmp != nil && applyCmp(p.cmp, cb) {
		return nil
	}
	return f.applyScalar(p.expr, cb)
}

func applyIsNull(p *nullPred, cb *iter.ColBatch) {
	col := cb.Col(p.slot)
	n := cb.Len()
	sel := cb.SelBuf()
	if col.Boxed() {
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if col.Value(q).IsNull() != p.not {
				sel = append(sel, q)
			}
		}
	} else {
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if col.IsNull(q) != p.not {
				sel = append(sel, q)
			}
		}
	}
	cb.SetSel(sel)
}

// applyCmp runs the comparison as a typed loop when the batch's column
// kinds allow it; it reports false (untouched batch) otherwise.
func applyCmp(p *cmpPred, cb *iter.ColBatch) bool {
	lc := cb.Col(p.lslot)
	if lc.Boxed() {
		return false
	}
	if p.rslot < 0 {
		return applyCmpConst(p, cb, lc)
	}
	rc := cb.Col(p.rslot)
	if rc.Boxed() {
		return false
	}
	return applyCmpCols(p, cb, lc, rc)
}

func applyCmpConst(p *cmpPred, cb *iter.ColBatch, lc *iter.Column) bool {
	// NULL on either side makes the comparison UNKNOWN for every row —
	// no row passes, no error, whatever the other side's kind.
	if p.c.IsNull() || lc.Kind() == value.Null {
		cb.SetSel(cb.SelBuf())
		return true
	}
	op, n := p.op, cb.Len()
	switch {
	case lc.Kind() == value.Int && p.c.K == value.Int:
		xs, c, sel := lc.Ints(), p.c.I, cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && cmpPass(op, value.CompareInt64(xs[q], c)) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	case lc.Kind() == value.Int && p.c.K == value.Float:
		xs, c, sel := lc.Ints(), p.c.F, cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && cmpPass(op, value.CompareFloat64(float64(xs[q]), c)) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	case lc.Kind() == value.Float && (p.c.K == value.Int || p.c.K == value.Float):
		c := p.c.F
		if p.c.K == value.Int {
			c = float64(p.c.I)
		}
		xs, sel := lc.Floats(), cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && cmpPass(op, value.CompareFloat64(xs[q], c)) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	case lc.Kind() == value.String && p.c.K == value.String:
		xs, c, sel := lc.Strs(), p.c.S, cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && cmpPass(op, strings.Compare(xs[q], c)) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	case lc.Kind() == value.Bool && p.c.K == value.Bool:
		xs, c, sel := lc.Bools(), p.c.I, cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && cmpPass(op, value.CompareInt64(boolI(xs[q]), c)) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	default:
		// Incomparable kinds: the scalar evaluator owns the error (raised
		// at the first row where both sides are non-NULL, in row order).
		return false
	}
	return true
}

func applyCmpCols(p *cmpPred, cb *iter.ColBatch, lc, rc *iter.Column) bool {
	if lc.Kind() == value.Null || rc.Kind() == value.Null {
		cb.SetSel(cb.SelBuf())
		return true
	}
	op, n := p.op, cb.Len()
	lk, rk := lc.Kind(), rc.Kind()
	switch {
	case lk == value.Int && rk == value.Int:
		ls, rs, sel := lc.Ints(), rc.Ints(), cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && !rc.IsNull(q) && cmpPass(op, value.CompareInt64(ls[q], rs[q])) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	case (lk == value.Int || lk == value.Float) && (rk == value.Int || rk == value.Float):
		sel := cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if lc.IsNull(q) || rc.IsNull(q) {
				continue
			}
			var lf, rf float64
			if lk == value.Int {
				lf = float64(lc.Ints()[q])
			} else {
				lf = lc.Floats()[q]
			}
			if rk == value.Int {
				rf = float64(rc.Ints()[q])
			} else {
				rf = rc.Floats()[q]
			}
			if cmpPass(op, value.CompareFloat64(lf, rf)) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	case lk == value.String && rk == value.String:
		ls, rs, sel := lc.Strs(), rc.Strs(), cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && !rc.IsNull(q) && cmpPass(op, strings.Compare(ls[q], rs[q])) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	case lk == value.Bool && rk == value.Bool:
		ls, rs, sel := lc.Bools(), rc.Bools(), cb.SelBuf()
		for i := 0; i < n; i++ {
			q := cb.Index(i)
			if !lc.IsNull(q) && !rc.IsNull(q) && cmpPass(op, value.CompareInt64(boolI(ls[q]), boolI(rs[q]))) {
				sel = append(sel, q)
			}
		}
		cb.SetSel(sel)
	default:
		return false
	}
	return true
}

func (f *VecFilter) applyScalar(e Expr, cb *iter.ColBatch) error {
	w := cb.Width()
	if cap(f.scratch) < w {
		f.scratch = make(value.Row, w)
	}
	row := f.scratch[:w]
	n := cb.Len()
	sel := cb.SelBuf()
	for i := 0; i < n; i++ {
		q := cb.Index(i)
		cb.ReadRow(q, row)
		ok, err := EvalBool(e, row, f.layout)
		if err != nil {
			return err
		}
		if ok {
			sel = append(sel, q)
		}
	}
	cb.SetSel(sel)
	return nil
}

func boolI(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
