package analyze

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// Atom is a relation occurrence in FROM. The same relation may occur
// several times under different aliases; each occurrence is a separate
// atom.
type Atom struct {
	Rel  *schema.Relation
	Name string // alias if given, else the relation name
}

// ConjunctKind classifies normalised WHERE conjuncts. The BE Checker uses
// the structured kinds; Opaque conjuncts (disjunctions, LIKE, arithmetic
// predicates, ...) are evaluated as residual filters and contribute
// nothing to coverage.
type ConjunctKind uint8

// Conjunct kinds.
const (
	EqAttrAttr  ConjunctKind = iota // a = b across (or within) atoms
	EqAttrConst                     // a = c
	InConsts                        // a IN (c1..ck)
	CmpConst                        // a op c, op ∈ {<, <=, >, >=, <>}
	CmpAttrAttr                     // a op b, op ∈ {<, <=, >, >=, <>}
	Opaque                          // anything else
)

// Conjunct is one conjunct of the normalised WHERE clause.
type Conjunct struct {
	Kind ConjunctKind
	A, B ColID           // A for all structured kinds; B for attr-attr kinds
	Op   sqlparser.BinOp // for Cmp kinds
	Val  value.Value     // for EqAttrConst / CmpConst
	Vals []value.Value   // for InConsts
	Expr Expr            // resolved expression, always set (used for evaluation)
	Refs []int           // sorted distinct atom indices referenced
}

// String renders the conjunct.
func (c Conjunct) String() string { return c.Expr.String() }

// AggSpec is one aggregate computed by the query.
type AggSpec struct {
	Func     sqlparser.AggFunc
	Arg      Expr // nil for COUNT(*)
	Star     bool
	Distinct bool
}

// String renders the aggregate call.
func (a AggSpec) String() string {
	if a.Star {
		return "COUNT(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Func, d, a.Arg)
}

// OutputCol is one result column.
type OutputCol struct {
	Name string
	// Expr is evaluated against the base layout for scalar queries, or
	// against the post-aggregation row (PostRef leaves) for aggregate
	// queries.
	Expr Expr
}

// OrderSpec sorts by an output column.
type OrderSpec struct {
	Col  int // index into Outputs
	Desc bool
}

// Query is the resolved intermediate representation of one SELECT block.
type Query struct {
	Atoms     []Atom
	Conjuncts []Conjunct

	Outputs []OutputCol
	// IsAgg marks aggregate queries (any aggregate or GROUP BY present).
	IsAgg bool
	// GroupBy are the grouping expressions over the base layout.
	GroupBy []Expr
	// Aggs are the distinct aggregates; PostRef slot i ≥ len(GroupBy)
	// refers to Aggs[i-len(GroupBy)].
	Aggs []AggSpec
	// Having is evaluated against the post-aggregation row; nil if absent.
	Having Expr

	Distinct bool
	OrderBy  []OrderSpec
	Limit    *int
	Offset   *int
}

// UsedAttrs returns the attribute positions of atom i referenced anywhere
// in the query (conjuncts, outputs, grouping, aggregate arguments),
// sorted. This is used(i) in the coverage check.
func (q *Query) UsedAttrs(atom int) []int {
	seen := make(map[int]bool)
	collect := func(e Expr) {
		for _, id := range Cols(e) {
			if id.Atom == atom {
				seen[id.Attr] = true
			}
		}
	}
	for _, c := range q.Conjuncts {
		collect(c.Expr)
	}
	for _, o := range q.Outputs {
		collect(o.Expr)
	}
	for _, g := range q.GroupBy {
		collect(g)
	}
	for _, a := range q.Aggs {
		if a.Arg != nil {
			collect(a.Arg)
		}
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// OutputNames returns the result column names.
func (q *Query) OutputNames() []string {
	out := make([]string, len(q.Outputs))
	for i, o := range q.Outputs {
		out[i] = o.Name
	}
	return out
}

// resolver carries the naming context during analysis.
type resolver struct {
	db    *schema.Database
	atoms []Atom
	// byName maps lower-cased alias/name to atom index; ambiguous base
	// names map to -1.
	byName map[string]int
}

// Analyze resolves one SELECT block against the database schema.
func Analyze(sel *sqlparser.Select, db *schema.Database) (*Query, error) {
	r := &resolver{db: db, byName: make(map[string]int)}
	for _, ref := range sel.From {
		rel, ok := db.Relation(ref.Name)
		if !ok {
			return nil, fmt.Errorf("analyze: unknown relation %q", ref.Name)
		}
		idx := len(r.atoms)
		r.atoms = append(r.atoms, Atom{Rel: rel, Name: ref.DisplayName()})
		key := strings.ToLower(ref.DisplayName())
		if _, dup := r.byName[key]; dup {
			return nil, fmt.Errorf("analyze: duplicate table name or alias %q", ref.DisplayName())
		}
		r.byName[key] = idx
		// The bare relation name also resolves, unless ambiguous.
		if base := strings.ToLower(ref.Name); base != key {
			if _, exists := r.byName[base]; exists {
				r.byName[base] = -1
			} else {
				r.byName[base] = idx
			}
		}
	}
	if len(r.atoms) == 0 {
		return nil, fmt.Errorf("analyze: query has no FROM clause")
	}

	q := &Query{Atoms: r.atoms, Distinct: sel.Distinct, Limit: sel.Limit, Offset: sel.Offset}

	// WHERE → conjuncts.
	if sel.Where != nil {
		where, err := r.resolve(sel.Where)
		if err != nil {
			return nil, err
		}
		for _, e := range flattenAnd(where) {
			q.Conjuncts = append(q.Conjuncts, classify(e))
		}
	}

	// GROUP BY (base expressions).
	for _, g := range sel.GroupBy {
		e, err := r.resolve(g)
		if err != nil {
			return nil, fmt.Errorf("analyze: GROUP BY: %w", err)
		}
		q.GroupBy = append(q.GroupBy, e)
	}

	// Detect aggregate query.
	hasAgg := sel.Having != nil || len(sel.GroupBy) > 0
	for _, it := range sel.Items {
		sqlparser.Walk(it.Expr, func(e sqlparser.Expr) {
			if _, ok := e.(*sqlparser.Agg); ok {
				hasAgg = true
			}
		})
	}
	q.IsAgg = hasAgg

	// Outputs.
	if sel.Star {
		if hasAgg {
			return nil, fmt.Errorf("analyze: SELECT * cannot be combined with aggregation")
		}
		for ai, a := range r.atoms {
			for attr, at := range a.Rel.Attrs {
				name := at.Name
				if len(r.atoms) > 1 {
					name = a.Name + "." + at.Name
				}
				q.Outputs = append(q.Outputs, OutputCol{
					Name: name,
					Expr: &ColRef{ID: ColID{Atom: ai, Attr: attr}, Name: a.Name + "." + at.Name},
				})
			}
		}
	} else {
		for i, it := range sel.Items {
			var e Expr
			var err error
			if hasAgg {
				e, err = r.resolvePost(it.Expr, q)
			} else {
				e, err = r.resolve(it.Expr)
			}
			if err != nil {
				return nil, fmt.Errorf("analyze: select item %d: %w", i+1, err)
			}
			name := it.Alias
			if name == "" {
				name = outputName(it.Expr)
			}
			q.Outputs = append(q.Outputs, OutputCol{Name: name, Expr: e})
		}
	}

	// HAVING (post-aggregation).
	if sel.Having != nil {
		if !hasAgg {
			return nil, fmt.Errorf("analyze: HAVING without aggregation")
		}
		h, err := r.resolvePost(sel.Having, q)
		if err != nil {
			return nil, fmt.Errorf("analyze: HAVING: %w", err)
		}
		q.Having = h
	}

	// ORDER BY resolves to output columns.
	for _, o := range sel.OrderBy {
		col, err := r.resolveOrderKey(o.Expr, sel, q)
		if err != nil {
			return nil, err
		}
		q.OrderBy = append(q.OrderBy, OrderSpec{Col: col, Desc: o.Desc})
	}
	return q, nil
}

// outputName derives a column name from an expression.
func outputName(e sqlparser.Expr) string {
	switch x := e.(type) {
	case *sqlparser.Column:
		return x.Name
	default:
		return strings.ToLower(e.String())
	}
}

// resolveColumn resolves [table.]name to a ColID.
func (r *resolver) resolveColumn(c *sqlparser.Column) (ColID, string, error) {
	if c.Table != "" {
		idx, ok := r.byName[strings.ToLower(c.Table)]
		if !ok {
			return ColID{}, "", fmt.Errorf("unknown table or alias %q", c.Table)
		}
		if idx < 0 {
			return ColID{}, "", fmt.Errorf("ambiguous table name %q (aliased more than once)", c.Table)
		}
		attr, ok := r.atoms[idx].Rel.AttrIndex(c.Name)
		if !ok {
			return ColID{}, "", fmt.Errorf("relation %s has no attribute %q", r.atoms[idx].Rel.Name, c.Name)
		}
		return ColID{Atom: idx, Attr: attr}, r.atoms[idx].Name + "." + r.atoms[idx].Rel.Attrs[attr].Name, nil
	}
	found := -1
	attrIdx := -1
	for i, a := range r.atoms {
		if j, ok := a.Rel.AttrIndex(c.Name); ok {
			if found >= 0 {
				return ColID{}, "", fmt.Errorf("ambiguous column %q (in %s and %s)", c.Name, r.atoms[found].Name, a.Name)
			}
			found, attrIdx = i, j
		}
	}
	if found < 0 {
		return ColID{}, "", fmt.Errorf("unknown column %q", c.Name)
	}
	return ColID{Atom: found, Attr: attrIdx},
		r.atoms[found].Name + "." + r.atoms[found].Rel.Attrs[attrIdx].Name, nil
}

// resolve resolves an expression in base (non-aggregate) context.
// Aggregates are rejected; BETWEEN is expanded into comparisons.
func (r *resolver) resolve(e sqlparser.Expr) (Expr, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return &Const{Val: x.Val}, nil
	case *sqlparser.Column:
		id, name, err := r.resolveColumn(x)
		if err != nil {
			return nil, err
		}
		return &ColRef{ID: id, Name: name}, nil
	case *sqlparser.Binary:
		l, err := r.resolve(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.resolve(x.R)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: x.Op, L: l, R: rr}, nil
	case *sqlparser.Not:
		inner, err := r.resolve(x.E)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *sqlparser.Neg:
		inner, err := r.resolve(x.E)
		if err != nil {
			return nil, err
		}
		return &Neg{E: inner}, nil
	case *sqlparser.In:
		inner, err := r.resolve(x.E)
		if err != nil {
			return nil, err
		}
		vals := make([]value.Value, len(x.List))
		for i, le := range x.List {
			lit, ok := le.(*sqlparser.Literal)
			if !ok {
				return nil, fmt.Errorf("IN list elements must be literals, got %s", le)
			}
			vals[i] = lit.Val
		}
		return &InList{E: inner, Vals: vals, Not: x.Not}, nil
	case *sqlparser.Between:
		inner, err := r.resolve(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := r.resolve(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := r.resolve(x.Hi)
		if err != nil {
			return nil, err
		}
		ge := &Bin{Op: sqlparser.OpGe, L: inner, R: lo}
		le := &Bin{Op: sqlparser.OpLe, L: inner, R: hi}
		if x.Not {
			return &Bin{Op: sqlparser.OpOr,
				L: &Bin{Op: sqlparser.OpLt, L: inner, R: lo},
				R: &Bin{Op: sqlparser.OpGt, L: inner, R: hi}}, nil
		}
		return &Bin{Op: sqlparser.OpAnd, L: ge, R: le}, nil
	case *sqlparser.Like:
		inner, err := r.resolve(x.E)
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: inner, Pattern: x.Pattern, Not: x.Not}, nil
	case *sqlparser.IsNull:
		inner, err := r.resolve(x.E)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{E: inner, Not: x.Not}, nil
	case *sqlparser.Agg:
		return nil, fmt.Errorf("aggregate %s not allowed here", x)
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

// resolvePost resolves an expression in post-aggregation context: group-by
// expressions become PostRef slots [0, len(GroupBy)), aggregates become
// PostRef slots [len(GroupBy), ...); any other base column reference is an
// error.
func (r *resolver) resolvePost(e sqlparser.Expr, q *Query) (Expr, error) {
	// Aggregate call: register (deduplicated) and reference.
	if agg, ok := e.(*sqlparser.Agg); ok {
		spec := AggSpec{Func: agg.Func, Star: agg.Star, Distinct: agg.Distinct}
		if agg.Arg != nil {
			arg, err := r.resolve(agg.Arg)
			if err != nil {
				return nil, err
			}
			spec.Arg = arg
		}
		key := spec.String()
		for i, existing := range q.Aggs {
			if existing.String() == key {
				return &PostRef{Slot: len(q.GroupBy) + i, Name: key}, nil
			}
		}
		q.Aggs = append(q.Aggs, spec)
		return &PostRef{Slot: len(q.GroupBy) + len(q.Aggs) - 1, Name: key}, nil
	}

	// A subtree that resolves to a group-by expression becomes a PostRef.
	if base, err := r.resolve(e); err == nil {
		key := base.String()
		for i, g := range q.GroupBy {
			if g.String() == key {
				return &PostRef{Slot: i, Name: key}, nil
			}
		}
		if _, isCol := base.(*ColRef); isCol {
			return nil, fmt.Errorf("column %s must appear in GROUP BY or inside an aggregate", key)
		}
		if c, isConst := base.(*Const); isConst {
			return c, nil
		}
	}

	// Otherwise recurse structurally.
	switch x := e.(type) {
	case *sqlparser.Binary:
		l, err := r.resolvePost(x.L, q)
		if err != nil {
			return nil, err
		}
		rr, err := r.resolvePost(x.R, q)
		if err != nil {
			return nil, err
		}
		return &Bin{Op: x.Op, L: l, R: rr}, nil
	case *sqlparser.Not:
		inner, err := r.resolvePost(x.E, q)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *sqlparser.Neg:
		inner, err := r.resolvePost(x.E, q)
		if err != nil {
			return nil, err
		}
		return &Neg{E: inner}, nil
	case *sqlparser.Between:
		inner, err := r.resolvePost(x.E, q)
		if err != nil {
			return nil, err
		}
		lo, err := r.resolvePost(x.Lo, q)
		if err != nil {
			return nil, err
		}
		hi, err := r.resolvePost(x.Hi, q)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return &Bin{Op: sqlparser.OpOr,
				L: &Bin{Op: sqlparser.OpLt, L: inner, R: lo},
				R: &Bin{Op: sqlparser.OpGt, L: inner, R: hi}}, nil
		}
		return &Bin{Op: sqlparser.OpAnd,
			L: &Bin{Op: sqlparser.OpGe, L: inner, R: lo},
			R: &Bin{Op: sqlparser.OpLe, L: inner, R: hi}}, nil
	case *sqlparser.In:
		inner, err := r.resolvePost(x.E, q)
		if err != nil {
			return nil, err
		}
		vals := make([]value.Value, len(x.List))
		for i, le := range x.List {
			lit, ok := le.(*sqlparser.Literal)
			if !ok {
				return nil, fmt.Errorf("IN list elements must be literals, got %s", le)
			}
			vals[i] = lit.Val
		}
		return &InList{E: inner, Vals: vals, Not: x.Not}, nil
	case *sqlparser.Literal:
		return &Const{Val: x.Val}, nil
	default:
		return nil, fmt.Errorf("expression %s is not available after aggregation", e)
	}
}

// resolveOrderKey maps an ORDER BY expression to an output column index:
// a 1-based ordinal, an output alias, or an expression structurally equal
// to an output expression.
func (r *resolver) resolveOrderKey(e sqlparser.Expr, sel *sqlparser.Select, q *Query) (int, error) {
	if lit, ok := e.(*sqlparser.Literal); ok && lit.Val.K == value.Int {
		n := int(lit.Val.I)
		if n < 1 || n > len(q.Outputs) {
			return 0, fmt.Errorf("analyze: ORDER BY position %d out of range", n)
		}
		return n - 1, nil
	}
	if col, ok := e.(*sqlparser.Column); ok && col.Table == "" {
		for i, o := range q.Outputs {
			if strings.EqualFold(o.Name, col.Name) {
				return i, nil
			}
		}
	}
	var resolved Expr
	var err error
	if q.IsAgg {
		resolved, err = r.resolvePost(e, q)
	} else {
		resolved, err = r.resolve(e)
	}
	if err != nil {
		return 0, fmt.Errorf("analyze: ORDER BY: %w", err)
	}
	key := resolved.String()
	for i, o := range q.Outputs {
		if o.Expr.String() == key {
			return i, nil
		}
	}
	return 0, fmt.Errorf("analyze: ORDER BY expression %s must appear in the select list", e)
}

// flattenAnd splits a resolved expression into its AND-conjuncts.
func flattenAnd(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == sqlparser.OpAnd {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Expr{e}
}

// classify builds a Conjunct from a resolved conjunct expression,
// recognising the structured forms the BE Checker exploits.
func classify(e Expr) Conjunct {
	c := Conjunct{Kind: Opaque, Expr: e}
	switch x := e.(type) {
	case *Bin:
		if !x.Op.IsComparison() {
			break
		}
		lc, lIsCol := x.L.(*ColRef)
		rc, rIsCol := x.R.(*ColRef)
		lk, lIsConst := x.L.(*Const)
		rk, rIsConst := x.R.(*Const)
		switch {
		case lIsCol && rIsCol:
			if x.Op == sqlparser.OpEq {
				c.Kind = EqAttrAttr
			} else {
				c.Kind = CmpAttrAttr
			}
			c.A, c.B, c.Op = lc.ID, rc.ID, x.Op
		case lIsCol && rIsConst:
			if x.Op == sqlparser.OpEq {
				c.Kind = EqAttrConst
			} else {
				c.Kind = CmpConst
			}
			c.A, c.Op, c.Val = lc.ID, x.Op, rk.Val
		case lIsConst && rIsCol:
			if x.Op == sqlparser.OpEq {
				c.Kind = EqAttrConst
			} else {
				c.Kind = CmpConst
			}
			c.A, c.Op, c.Val = rc.ID, flipOp(x.Op), lk.Val
		}
	case *InList:
		if col, ok := x.E.(*ColRef); ok && !x.Not && len(x.Vals) > 0 {
			// NULL list elements can never match (x = NULL is not true for
			// any x), so they are no candidate constants: the checker must
			// not seed the class with a NULL key — and the bounded plan
			// must not probe one — or bounded and conventional plans could
			// disagree. An all-NULL list stays Opaque and is evaluated as
			// a residual (always-false) filter.
			vals := make([]value.Value, 0, len(x.Vals))
			for _, v := range x.Vals {
				if !v.IsNull() {
					vals = append(vals, v)
				}
			}
			if len(vals) > 0 {
				c.Kind = InConsts
				c.A = col.ID
				c.Vals = vals
			}
		}
	}
	refs := make(map[int]bool)
	for _, id := range Cols(e) {
		refs[id.Atom] = true
	}
	for a := range refs {
		c.Refs = append(c.Refs, a)
	}
	sort.Ints(c.Refs)
	return c
}

// flipOp mirrors a comparison when operands are swapped.
func flipOp(op sqlparser.BinOp) sqlparser.BinOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLe:
		return sqlparser.OpGe
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGe:
		return sqlparser.OpLe
	default:
		return op
	}
}
