// Package analyze performs semantic analysis: it resolves a parsed SELECT
// against a database schema into a conjunctive intermediate representation
// (atoms + conjuncts + outputs) shared by the BE Checker, the bounded-plan
// executor and the conventional engine, and provides evaluation of
// resolved expressions over physical rows.
package analyze

import (
	"fmt"
	"math"
	"strings"

	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

// ColID identifies an attribute of an atom (a table occurrence): Atom is
// the index into Query.Atoms, Attr the attribute position in the
// relation's schema.
type ColID struct {
	Atom int
	Attr int
}

// Layout assigns physical row slots to ColIDs. Both executors materialise
// intermediate results as flat rows; the layout says where each (atom,
// attribute) lives.
type Layout struct {
	slots map[ColID]int
	ids   []ColID
}

// NewLayout returns an empty layout.
func NewLayout() *Layout {
	return &Layout{slots: make(map[ColID]int)}
}

// Add assigns the next free slot to id (or returns the existing one).
func (l *Layout) Add(id ColID) int {
	if s, ok := l.slots[id]; ok {
		return s
	}
	s := len(l.ids)
	l.slots[id] = s
	l.ids = append(l.ids, id)
	return s
}

// Slot returns the slot for id.
func (l *Layout) Slot(id ColID) (int, bool) {
	s, ok := l.slots[id]
	return s, ok
}

// Len returns the number of slots.
func (l *Layout) Len() int { return len(l.ids) }

// IDs returns the ColIDs in slot order.
func (l *Layout) IDs() []ColID { return l.ids }

// Expr is a resolved expression. Leaves are column references (ColRef),
// constants (Const) and post-aggregation slot references (PostRef).
type Expr interface {
	fmt.Stringer
	resolvedExpr()
}

// ColRef references a base column.
type ColRef struct {
	ID   ColID
	Name string // qualified display name, e.g. "call.region"
}

func (*ColRef) resolvedExpr() {}

// String returns the display name.
func (c *ColRef) String() string { return c.Name }

// Const is a constant.
type Const struct{ Val value.Value }

func (*Const) resolvedExpr() {}

// String renders the constant.
func (c *Const) String() string {
	if c.Val.K == value.String {
		return "'" + c.Val.S + "'"
	}
	if c.Val.IsNull() {
		return "NULL"
	}
	return c.Val.String()
}

// PostRef references a slot of the post-aggregation row
// [group keys..., aggregate values...]. It appears only in outputs,
// HAVING and ORDER BY of aggregate queries after rewriting.
type PostRef struct {
	Slot int
	Name string
}

func (*PostRef) resolvedExpr() {}

// String returns the display name.
func (p *PostRef) String() string { return p.Name }

// Bin is a binary operation over resolved operands.
type Bin struct {
	Op   sqlparser.BinOp
	L, R Expr
}

func (*Bin) resolvedExpr() {}

// String renders the operation.
func (b *Bin) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Not is logical negation.
type Not struct{ E Expr }

func (*Not) resolvedExpr() {}

// String renders NOT (e).
func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

func (*Neg) resolvedExpr() {}

// String renders -(e).
func (n *Neg) String() string { return fmt.Sprintf("-(%s)", n.E) }

// InList is e [NOT] IN (constants...).
type InList struct {
	E    Expr
	Vals []value.Value
	Not  bool
}

func (*InList) resolvedExpr() {}

// String renders the predicate.
func (in *InList) String() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		parts[i] = v.String()
	}
	not := ""
	if in.Not {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s IN (%s)", in.E, not, strings.Join(parts, ", "))
}

// LikeExpr is e [NOT] LIKE pattern.
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
}

func (*LikeExpr) resolvedExpr() {}

// String renders the predicate.
func (l *LikeExpr) String() string {
	not := ""
	if l.Not {
		not = " NOT"
	}
	return fmt.Sprintf("%s%s LIKE '%s'", l.E, not, l.Pattern)
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*IsNullExpr) resolvedExpr() {}

// String renders the predicate.
func (i *IsNullExpr) String() string {
	if i.Not {
		return fmt.Sprintf("%s IS NOT NULL", i.E)
	}
	return fmt.Sprintf("%s IS NULL", i.E)
}

// WalkExpr calls fn on e and all sub-expressions, pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Bin:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Not:
		WalkExpr(x.E, fn)
	case *Neg:
		WalkExpr(x.E, fn)
	case *InList:
		WalkExpr(x.E, fn)
	case *LikeExpr:
		WalkExpr(x.E, fn)
	case *IsNullExpr:
		WalkExpr(x.E, fn)
	}
}

// Cols returns the distinct ColIDs referenced by e.
func Cols(e Expr) []ColID {
	var out []ColID
	seen := make(map[ColID]bool)
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(*ColRef); ok && !seen[c.ID] {
			seen[c.ID] = true
			out = append(out, c.ID)
		}
	})
	return out
}

// Eval evaluates e against a physical row using the layout. SQL
// three-valued logic propagates through the expression tree — a
// comparison, IN or LIKE over NULL operands is UNKNOWN (returned as
// NULL), and NOT/AND/OR follow the Kleene truth tables — and collapses
// to false only at predicate positions (EvalBool). IS NULL tests
// nullness explicitly.
func Eval(e Expr, row value.Row, l *Layout) (value.Value, error) {
	switch x := e.(type) {
	case *Const:
		return x.Val, nil
	case *ColRef:
		s, ok := l.Slot(x.ID)
		if !ok {
			return value.Value{}, fmt.Errorf("analyze: column %s not materialised", x.Name)
		}
		return row[s], nil
	case *PostRef:
		if x.Slot >= len(row) {
			return value.Value{}, fmt.Errorf("analyze: post-aggregation slot %d out of range", x.Slot)
		}
		return row[x.Slot], nil
	case *Bin:
		return evalBin(x, row, l)
	case *Not:
		v, err := Eval(x.E, row, l)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			// NOT(UNKNOWN) is UNKNOWN: propagate the NULL so the predicate
			// position collapses it to false — inverting a collapsed false
			// to true would disagree with NOT IN's three-valued handling
			// (NOT (x IN (..NULL..)) must match x NOT IN (..NULL..)).
			return v, nil
		}
		if v.K != value.Bool {
			return value.Value{}, fmt.Errorf("analyze: NOT operand is %v, want BOOL", v.K)
		}
		return value.NewBool(!v.Bool()), nil
	case *Neg:
		v, err := Eval(x.E, row, l)
		if err != nil {
			return value.Value{}, err
		}
		switch v.K {
		case value.Int:
			if v.I == math.MinInt64 { // -MinInt64 wraps to itself
				return value.NewFloat(-float64(math.MinInt64)), nil
			}
			return value.NewInt(-v.I), nil
		case value.Float:
			return value.NewFloat(-v.F), nil
		case value.Null:
			return v, nil
		default:
			return value.Value{}, fmt.Errorf("analyze: negating %v", v.K)
		}
	case *InList:
		v, err := Eval(x.E, row, l)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return value.NewNull(), nil // NULL [NOT] IN (...) is UNKNOWN
		}
		listHasNull := false
		for _, c := range x.Vals {
			if c.IsNull() {
				listHasNull = true
				continue
			}
			if value.Equal(v, c) {
				return value.NewBool(!x.Not), nil
			}
		}
		if listHasNull {
			// x [NOT] IN (c1, ..., NULL) with x matching none of the
			// constants is UNKNOWN under three-valued logic (x = NULL is
			// never true, x <> NULL never true either); predicate
			// positions collapse it to false — in particular,
			// x NOT IN (1, NULL) must not come out true.
			return value.NewNull(), nil
		}
		return value.NewBool(x.Not), nil
	case *LikeExpr:
		v, err := Eval(x.E, row, l)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return value.NewNull(), nil // NULL [NOT] LIKE p is UNKNOWN
		}
		if v.K != value.String {
			return value.Value{}, fmt.Errorf("analyze: LIKE applied to %v", v.K)
		}
		return value.NewBool(MatchLike(x.Pattern, v.S) != x.Not), nil
	case *IsNullExpr:
		v, err := Eval(x.E, row, l)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(v.IsNull() != x.Not), nil
	default:
		return value.Value{}, fmt.Errorf("analyze: cannot evaluate %T", e)
	}
}

// checkBoolOperand verifies a NOT / AND / OR operand is BOOL or NULL
// (UNKNOWN); any other kind fails. NULL operands flow through the Kleene
// truth tables instead of failing the whole query.
func checkBoolOperand(v value.Value, op string) error {
	if v.K != value.Bool && v.K != value.Null {
		return fmt.Errorf("analyze: %s operand is %v, want BOOL", op, v.K)
	}
	return nil
}

func evalBin(b *Bin, row value.Row, l *Layout) (value.Value, error) {
	switch b.Op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		lv, err := Eval(b.L, row, l)
		if err != nil {
			return value.Value{}, err
		}
		if err := checkBoolOperand(lv, b.Op.String()); err != nil {
			return value.Value{}, err
		}
		// Short-circuit on the dominant value (false for AND, true for
		// OR); a NULL operand cannot short-circuit — UNKNOWN AND false is
		// false, UNKNOWN OR true is true.
		if b.Op == sqlparser.OpAnd && lv.K == value.Bool && !lv.Bool() {
			return value.NewBool(false), nil
		}
		if b.Op == sqlparser.OpOr && lv.K == value.Bool && lv.Bool() {
			return value.NewBool(true), nil
		}
		rv, err := Eval(b.R, row, l)
		if err != nil {
			return value.Value{}, err
		}
		if err := checkBoolOperand(rv, b.Op.String()); err != nil {
			return value.Value{}, err
		}
		// Kleene three-valued AND/OR over the remaining cases.
		if b.Op == sqlparser.OpAnd {
			if rv.K == value.Bool && !rv.Bool() {
				return value.NewBool(false), nil
			}
			if lv.K == value.Null || rv.K == value.Null {
				return value.NewNull(), nil
			}
			return value.NewBool(true), nil
		}
		if rv.K == value.Bool && rv.Bool() {
			return value.NewBool(true), nil
		}
		if lv.K == value.Null || rv.K == value.Null {
			return value.NewNull(), nil
		}
		return value.NewBool(false), nil
	}

	lv, err := Eval(b.L, row, l)
	if err != nil {
		return value.Value{}, err
	}
	rv, err := Eval(b.R, row, l)
	if err != nil {
		return value.Value{}, err
	}

	if b.Op.IsComparison() {
		if lv.IsNull() || rv.IsNull() {
			return value.NewNull(), nil // UNKNOWN; EvalBool collapses it
		}
		cmp, err := value.Compare(lv, rv)
		if err != nil {
			return value.Value{}, err
		}
		var res bool
		switch b.Op {
		case sqlparser.OpEq:
			res = cmp == 0
		case sqlparser.OpNe:
			res = cmp != 0
		case sqlparser.OpLt:
			res = cmp < 0
		case sqlparser.OpLe:
			res = cmp <= 0
		case sqlparser.OpGt:
			res = cmp > 0
		case sqlparser.OpGe:
			res = cmp >= 0
		}
		return value.NewBool(res), nil
	}

	// Arithmetic.
	if lv.IsNull() || rv.IsNull() {
		return value.NewNull(), nil
	}
	if lv.K == value.Int && rv.K == value.Int {
		// Integer arithmetic stays exact int64 while it fits and promotes
		// to float64 on overflow instead of silently wrapping — the same
		// policy aggregate SUM applies (value.AddInt64 / value.MulInt64).
		switch b.Op {
		case sqlparser.OpAdd:
			if s, ok := value.AddInt64(lv.I, rv.I); ok {
				return value.NewInt(s), nil
			}
			return value.NewFloat(float64(lv.I) + float64(rv.I)), nil
		case sqlparser.OpSub:
			if d, ok := value.SubInt64(lv.I, rv.I); ok {
				return value.NewInt(d), nil
			}
			return value.NewFloat(float64(lv.I) - float64(rv.I)), nil
		case sqlparser.OpMul:
			if p, ok := value.MulInt64(lv.I, rv.I); ok {
				return value.NewInt(p), nil
			}
			return value.NewFloat(float64(lv.I) * float64(rv.I)), nil
		case sqlparser.OpDiv:
			if rv.I == 0 {
				return value.Value{}, fmt.Errorf("analyze: division by zero")
			}
			if lv.I == math.MinInt64 && rv.I == -1 {
				return value.NewFloat(-float64(math.MinInt64)), nil
			}
			return value.NewInt(lv.I / rv.I), nil
		}
	}
	lf, lok := lv.AsFloat()
	rf, rok := rv.AsFloat()
	if !lok || !rok {
		return value.Value{}, fmt.Errorf("analyze: arithmetic %s on %v and %v", b.Op, lv.K, rv.K)
	}
	switch b.Op {
	case sqlparser.OpAdd:
		return value.NewFloat(lf + rf), nil
	case sqlparser.OpSub:
		return value.NewFloat(lf - rf), nil
	case sqlparser.OpMul:
		return value.NewFloat(lf * rf), nil
	case sqlparser.OpDiv:
		if rf == 0 {
			return value.Value{}, fmt.Errorf("analyze: division by zero")
		}
		return value.NewFloat(lf / rf), nil
	}
	return value.Value{}, fmt.Errorf("analyze: unsupported operator %s", b.Op)
}

// EvalBool evaluates a predicate expression; NULL results count as false.
func EvalBool(e Expr, row value.Row, l *Layout) (bool, error) {
	v, err := Eval(e, row, l)
	if err != nil {
		return false, err
	}
	switch v.K {
	case value.Bool:
		return v.Bool(), nil
	case value.Null:
		return false, nil
	default:
		return false, fmt.Errorf("analyze: predicate evaluated to %v, want BOOL", v.K)
	}
}

// MatchLike implements SQL LIKE with % (any run) and _ (any single
// character) wildcards. Matching is over runes, not bytes, so _
// matches exactly one character even when it is encoded as multiple
// UTF-8 bytes ('café' LIKE 'caf_' is true).
func MatchLike(pattern, s string) bool {
	p, r := []rune(pattern), []rune(s)
	// Iterative two-pointer algorithm with backtracking on the last %.
	pi, si := 0, 0
	star, match := -1, 0
	for si < len(r) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == r[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
