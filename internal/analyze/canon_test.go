package analyze

import (
	"testing"

	"github.com/bounded-eval/beas/internal/value"
)

func canonOf(t *testing.T, sql string) (string, []value.Value, bool) {
	t.Helper()
	return Canonical(analyzeSQL(t, sql))
}

func paramsKey(ps []value.Value) string { return value.Key(ps) }

// TestCanonicalVariantsShare verifies that syntactic variants — case
// changes, aliases, reordered conjuncts, duplicated predicates, flipped
// comparisons — collapse to one fingerprint and parameter vector.
func TestCanonicalVariantsShare(t *testing.T) {
	groups := [][]string{
		{
			"SELECT recnum FROM call WHERE pnum = 3 AND date = 5",
			"select C.recnum from call AS C where C.date = 5 and C.pnum = 3",
			"SELECT  call.recnum  FROM  call  WHERE  call.pnum = 3  AND  call.date = 5",
		},
		{
			"SELECT recnum FROM call, business WHERE call.pnum = business.pnum AND call.pnum = business.pnum",
			"SELECT recnum FROM call, business WHERE business.pnum = call.pnum",
		},
		{
			"SELECT recnum FROM call, business WHERE call.pnum < business.pnum",
			"SELECT recnum FROM call, business WHERE business.pnum > call.pnum",
		},
	}
	for gi, group := range groups {
		fp0, ps0, ok0 := canonOf(t, group[0])
		if !ok0 {
			t.Fatalf("group %d: base statement not shareable", gi)
		}
		for vi, sql := range group[1:] {
			fp, ps, ok := canonOf(t, sql)
			if !ok {
				t.Fatalf("group %d variant %d not shareable: %s", gi, vi+1, sql)
			}
			if fp != fp0 {
				t.Fatalf("group %d variant %d fingerprint diverges:\n%s\nvs\n%s", gi, vi+1, fp, fp0)
			}
			if paramsKey(ps) != paramsKey(ps0) {
				t.Fatalf("group %d variant %d params diverge: %v vs %v", gi, vi+1, ps, ps0)
			}
		}
	}
}

// TestCanonicalParamExtraction verifies that probe constants leave the
// fingerprint: statements differing only in constants share a template
// and differ only in the parameter vector.
func TestCanonicalParamExtraction(t *testing.T) {
	fp3, ps3, _ := canonOf(t, "SELECT recnum FROM call WHERE pnum = 3")
	fp7, ps7, _ := canonOf(t, "SELECT recnum FROM call WHERE pnum = 7")
	if fp3 != fp7 {
		t.Fatalf("constant-only difference changed the fingerprint:\n%s\nvs\n%s", fp3, fp7)
	}
	if paramsKey(ps3) == paramsKey(ps7) {
		t.Fatal("different constants must yield different parameter vectors")
	}
	if len(ps3) != 1 || ps3[0].I != 3 {
		t.Fatalf("params = %v, want [3]", ps3)
	}
}

// TestCanonicalInListOrderPreserved pins a deliberate asymmetry: IN-list
// constants are parameters (IN (1,4) and IN (2,9) share a template), but
// their order is part of the answer identity — serial execution probes
// candidates in textual order, so a permuted list returns the same bag
// in a different row order and must not share a result key.
func TestCanonicalInListOrderPreserved(t *testing.T) {
	fpA, psA, okA := canonOf(t, "SELECT recnum FROM call WHERE pnum IN (1, 4)")
	fpB, psB, okB := canonOf(t, "SELECT recnum FROM call WHERE pnum IN (4, 1)")
	if !okA || !okB {
		t.Fatal("single IN conjunct must be shareable")
	}
	if fpA != fpB {
		t.Fatalf("IN lists of equal length must share a fingerprint:\n%s\nvs\n%s", fpA, fpB)
	}
	if paramsKey(psA) == paramsKey(psB) {
		t.Fatal("permuted IN lists must differ in the parameter vector: probe order is answer order")
	}
	fpC, _, _ := canonOf(t, "SELECT recnum FROM call WHERE pnum IN (1, 4, 6)")
	if fpC == fpA {
		t.Fatal("IN lists of different lengths must not share a fingerprint")
	}
}

// TestCanonicalMultiConstClassNotShareable: two constant-bearing
// conjuncts on one equality class probe the intersection in conjunct
// order; sorting could reorder the probe, so such statements fall back
// to per-text identity.
func TestCanonicalMultiConstClassNotShareable(t *testing.T) {
	for _, sql := range []string{
		"SELECT recnum FROM call WHERE pnum = 3 AND pnum IN (3, 4)",
		"SELECT recnum FROM call WHERE pnum IN (1, 2) AND pnum IN (2, 3)",
		"SELECT recnum FROM call, business WHERE call.pnum = business.pnum AND call.pnum = 1 AND business.pnum IN (1, 2)",
	} {
		if _, _, ok := canonOf(t, sql); ok {
			t.Fatalf("multi-constant equality class must not be shareable: %s", sql)
		}
	}
}

// TestCanonicalShapeDistinguished: anything that changes the answer —
// outputs, DISTINCT, ORDER BY, LIMIT, grouping, aggregates, non-probe
// constants — must change the fingerprint.
func TestCanonicalShapeDistinguished(t *testing.T) {
	base := "SELECT recnum FROM call WHERE pnum = 3"
	fps := map[string]string{}
	for _, sql := range []string{
		base,
		"SELECT date FROM call WHERE pnum = 3",
		"SELECT DISTINCT recnum FROM call WHERE pnum = 3",
		"SELECT recnum FROM call WHERE pnum = 3 ORDER BY 1",
		"SELECT recnum FROM call WHERE pnum = 3 ORDER BY 1 DESC",
		"SELECT recnum FROM call WHERE pnum = 3 LIMIT 2",
		"SELECT COUNT(*) FROM call WHERE pnum = 3",
		"SELECT region, COUNT(*) FROM call WHERE pnum = 3 GROUP BY region",
		"SELECT recnum + 1 FROM call WHERE pnum = 3",
	} {
		fp, _, _ := canonOf(t, sql)
		if prev, dup := fps[fp]; dup {
			t.Fatalf("distinct shapes share a fingerprint:\n%s\nand\n%s", prev, sql)
		}
		fps[fp] = sql
	}
}
