package analyze

// Regression tests for the SQL-semantics fixes of the expression
// evaluator: NOT IN with NULL list elements, NULL boolean operands of
// NOT / AND / OR, and silent int64 wraparound in arithmetic. Each of
// these fails against the pre-fix evaluator.

import (
	"math"
	"testing"

	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

func TestNotInWithNullInList(t *testing.T) {
	l := NewLayout()
	l.Add(ColID{Atom: 0, Attr: 0})
	col := &ColRef{ID: ColID{0, 0}, Name: "a"}
	nullList := []value.Value{value.NewInt(1), value.NewNull()}

	// x NOT IN (1, NULL) with x = 2: UNKNOWN under three-valued logic
	// (2 <> NULL is never true), collapsed to false — not true.
	row := value.Row{value.NewInt(2)}
	if got := evalStr(t, &InList{E: col, Vals: nullList, Not: true}, row, l); got.Bool() {
		t.Error("2 NOT IN (1, NULL) must be false (UNKNOWN collapsed), got true")
	}
	// x NOT IN (1, NULL) with x = 1 is definitely false.
	row = value.Row{value.NewInt(1)}
	if got := evalStr(t, &InList{E: col, Vals: nullList, Not: true}, row, l); got.Bool() {
		t.Error("1 NOT IN (1, NULL) must be false")
	}
	// Positive IN keeps working: matches stay true, non-matches false.
	if got := evalStr(t, &InList{E: col, Vals: nullList}, row, l); !got.Bool() {
		t.Error("1 IN (1, NULL) must be true")
	}
	row = value.Row{value.NewInt(2)}
	if got := evalStr(t, &InList{E: col, Vals: nullList}, row, l); got.Bool() {
		t.Error("2 IN (1, NULL) must be false")
	}
	// NOT IN without NULLs is unaffected.
	row = value.Row{value.NewInt(2)}
	if got := evalStr(t, &InList{E: col, Vals: []value.Value{value.NewInt(1)}, Not: true}, row, l); !got.Bool() {
		t.Error("2 NOT IN (1) must be true")
	}
	// NOT (x IN (...)) must agree with x NOT IN (...): the UNKNOWN
	// propagates through NOT instead of a collapsed false being flipped
	// to true.
	row = value.Row{value.NewInt(2)}
	inExpr := &InList{E: col, Vals: nullList}
	notIn, err := EvalBool(&Not{E: inExpr}, row, l)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EvalBool(&InList{E: col, Vals: nullList, Not: true}, row, l)
	if err != nil {
		t.Fatal(err)
	}
	if notIn != direct || notIn {
		t.Errorf("NOT (2 IN (1, NULL)) = %v, 2 NOT IN (1, NULL) = %v; both must be false", notIn, direct)
	}
}

func TestInConstsSeedingDropsNulls(t *testing.T) {
	// The checker's constant-candidate seeding must mirror the evaluator:
	// NULL list elements are no candidates (x = NULL matches nothing).
	q := analyzeSQL(t, "SELECT recnum FROM call WHERE pnum IN (1, NULL, 2)")
	var in *Conjunct
	for i := range q.Conjuncts {
		if q.Conjuncts[i].Kind == InConsts {
			in = &q.Conjuncts[i]
		}
	}
	if in == nil {
		t.Fatal("IN (1, NULL, 2) did not classify as InConsts")
	}
	if len(in.Vals) != 2 || in.Vals[0].I != 1 || in.Vals[1].I != 2 {
		t.Fatalf("InConsts candidates = %v, want [1 2]", in.Vals)
	}

	// All-NULL lists can never match: no candidates, stays Opaque and is
	// evaluated as a residual filter.
	q = analyzeSQL(t, "SELECT recnum FROM call WHERE pnum IN (NULL)")
	for _, c := range q.Conjuncts {
		if c.Kind == InConsts {
			t.Fatalf("IN (NULL) must not seed constant candidates, got %v", c.Vals)
		}
	}
}

func TestNullBooleanOperandsCollapse(t *testing.T) {
	l := NewLayout()
	l.Add(ColID{Atom: 0, Attr: 0})
	row := value.Row{value.NewNull()} // a NULL boolean column
	col := &ColRef{ID: ColID{0, 0}, Name: "b"}
	tru := &Const{Val: value.NewBool(true)}
	fals := &Const{Val: value.NewBool(false)}

	cases := []struct {
		e    Expr
		want bool // predicate outcome after EvalBool's UNKNOWN → false collapse
	}{
		{&Not{E: col}, false}, // NOT(UNKNOWN) = UNKNOWN → false
		{&Bin{Op: sqlparser.OpAnd, L: col, R: tru}, false},
		{&Bin{Op: sqlparser.OpAnd, L: tru, R: col}, false},
		{&Bin{Op: sqlparser.OpAnd, L: col, R: fals}, false}, // UNKNOWN AND false = false
		{&Bin{Op: sqlparser.OpOr, L: col, R: tru}, true},    // UNKNOWN OR true = true
		{&Bin{Op: sqlparser.OpOr, L: tru, R: col}, true},
		{&Bin{Op: sqlparser.OpOr, L: col, R: fals}, false},
	}
	for _, c := range cases {
		got, err := EvalBool(c.e, row, l)
		if err != nil {
			t.Fatalf("EvalBool(%v) failed: %v (NULL boolean operand must not error)", c.e, err)
		}
		if got != c.want {
			t.Errorf("EvalBool(%v) = %v, want %v", c.e, got, c.want)
		}
	}
	// Non-boolean operands still error.
	if _, err := Eval(&Not{E: &Const{Val: value.NewString("x")}}, row, l); err == nil {
		t.Error("NOT 'x' should fail")
	}
}

func TestArithmeticOverflowPromotesToFloat(t *testing.T) {
	l := NewLayout()
	row := value.Row{}
	c := func(i int64) Expr { return &Const{Val: value.NewInt(i)} }
	const max, min = int64(math.MaxInt64), int64(math.MinInt64)

	cases := []struct {
		e    Expr
		want float64
	}{
		{&Bin{Op: sqlparser.OpAdd, L: c(max), R: c(1)}, float64(max) + 1},
		{&Bin{Op: sqlparser.OpAdd, L: c(min), R: c(-1)}, float64(min) - 1},
		{&Bin{Op: sqlparser.OpSub, L: c(min), R: c(1)}, float64(min) - 1},
		{&Bin{Op: sqlparser.OpSub, L: c(max), R: c(-1)}, float64(max) + 1},
		{&Bin{Op: sqlparser.OpMul, L: c(max), R: c(2)}, 2 * float64(max)},
		{&Bin{Op: sqlparser.OpMul, L: c(min), R: c(-1)}, -float64(min)},
		{&Bin{Op: sqlparser.OpDiv, L: c(min), R: c(-1)}, -float64(min)},
		{&Neg{E: c(min)}, -float64(min)},
	}
	for _, tc := range cases {
		got, err := Eval(tc.e, row, l)
		if err != nil {
			t.Fatalf("Eval(%v): %v", tc.e, err)
		}
		if got.K != value.Float || got.F != tc.want {
			t.Errorf("Eval(%v) = %v (%v), want FLOAT %g (no silent wraparound)", tc.e, got, got.K, tc.want)
		}
	}
	// In-range arithmetic stays exact int64.
	got, err := Eval(&Bin{Op: sqlparser.OpAdd, L: c(max - 1), R: c(1)}, row, l)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != value.Int || got.I != max {
		t.Errorf("(max-1)+1 = %v (%v), want INT %d", got, got.K, max)
	}
}
