package analyze

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bounded-eval/beas/internal/value"
)

// Canonical reduces a resolved query to a normalized fingerprint plus an
// extracted parameter vector, so that syntactically different statements
// that are bag-equivalent modulo constants share one cache template.
//
// Normalizations applied:
//   - tables by relation name and position, columns by (atom, attr) — all
//     alias and case differences disappear;
//   - WHERE conjuncts sorted by a canonical rendering, with exact
//     duplicates removed for kinds where a duplicate cannot change the
//     bounded plan (attr/attr predicates, comparisons, opaque residuals);
//   - constants of equality/IN/comparison conjuncts extracted into the
//     parameter vector (in sorted-conjunct order) and replaced by `?`
//     placeholders, so a=3 and a=7 share a template;
//   - attr/attr predicates ordered by column position, flipping the
//     comparison operator when the operands swap.
//
// Constants embedded anywhere else (outputs, GROUP BY, HAVING, opaque
// conjuncts) stay inline: they can change result values, not just probe
// keys, so they are part of the template identity.
//
// shareable reports whether the fingerprint may be used as a cross-text
// cache key. It is false when some equality class carries two or more
// constant-bearing conjuncts (a = 3 AND a IN (4, 5)): the bounded plan
// probes the intersection of candidate constants in conjunct order, so
// reordering conjuncts could reorder result rows. Callers must then fall
// back to a per-text key. The caveat that remains even when shareable:
// AND is treated as order-insensitive, so two texts whose filters error
// asymmetrically under reordering (e.g. short-circuited division by
// zero) may surface the error from either order.
func Canonical(q *Query) (fp string, params []value.Value, shareable bool) {
	c := &canonizer{ok: true}

	var b strings.Builder
	b.WriteString("v1|from:")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strings.ToLower(a.Rel.Name))
	}

	// WHERE: render, sort, dedup, extract parameters.
	rendered := make([]renderedConjunct, len(q.Conjuncts))
	for i, cj := range q.Conjuncts {
		rendered[i] = c.conjunct(cj)
	}
	sort.SliceStable(rendered, func(i, j int) bool { return rendered[i].key < rendered[j].key })
	b.WriteString("|where:")
	prevKey, prevParams := "", ""
	emitted := false
	for _, r := range rendered {
		pk := value.Key(r.params)
		if r.dedupable && r.key == prevKey && pk == prevParams {
			continue
		}
		prevKey, prevParams = r.key, pk
		if emitted {
			b.WriteByte(';')
		}
		emitted = true
		b.WriteString(r.key)
		params = append(params, r.params...)
	}

	b.WriteString("|out:")
	for i, o := range q.Outputs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q=%s", o.Name, c.expr(o.Expr))
	}

	if q.IsAgg {
		b.WriteString("|group:")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.expr(g))
		}
		b.WriteString("|aggs:")
		for i, a := range q.Aggs {
			if i > 0 {
				b.WriteByte(',')
			}
			star, distinct := "", ""
			if a.Star {
				star = "*"
			}
			if a.Distinct {
				distinct = "D"
			}
			fmt.Fprintf(&b, "%s%s%s(%s)", a.Func, star, distinct, c.expr(a.Arg))
		}
		if q.Having != nil {
			b.WriteString("|having:")
			b.WriteString(c.expr(q.Having))
		}
	}

	if q.Distinct {
		b.WriteString("|distinct")
	}
	if len(q.OrderBy) > 0 {
		b.WriteString("|order:")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d.%t", o.Col, o.Desc)
		}
	}
	if q.Limit != nil {
		fmt.Fprintf(&b, "|limit:%d", *q.Limit)
	}
	if q.Offset != nil {
		fmt.Fprintf(&b, "|offset:%d", *q.Offset)
	}

	return b.String(), params, c.ok && constShareable(q)
}

// renderedConjunct is one conjunct reduced to a sortable canonical key
// plus the constants it contributed to the parameter vector.
type renderedConjunct struct {
	key       string
	params    []value.Value
	dedupable bool
}

// canonizer tracks whether every expression form encountered had a
// canonical rendering; an unknown form poisons shareability.
type canonizer struct {
	ok bool
}

func (c *canonizer) conjunct(cj Conjunct) renderedConjunct {
	switch cj.Kind {
	case EqAttrAttr:
		a, b := cj.A, cj.B
		if colLess(b, a) {
			a, b = b, a
		}
		return renderedConjunct{key: "eq(" + colKey(a) + "," + colKey(b) + ")", dedupable: true}
	case EqAttrConst:
		return renderedConjunct{key: "eqc(" + colKey(cj.A) + ",?)", params: []value.Value{cj.Val}}
	case InConsts:
		return renderedConjunct{
			key:    fmt.Sprintf("in(%s,?%d)", colKey(cj.A), len(cj.Vals)),
			params: cj.Vals,
		}
	case CmpConst:
		return renderedConjunct{
			key:       fmt.Sprintf("cmp(%s,%s,?)", colKey(cj.A), cj.Op),
			params:    []value.Value{cj.Val},
			dedupable: true,
		}
	case CmpAttrAttr:
		a, b, op := cj.A, cj.B, cj.Op
		if colLess(b, a) {
			a, b, op = b, a, flipOp(op)
		}
		return renderedConjunct{
			key:       fmt.Sprintf("cmpa(%s,%s,%s)", colKey(a), op, colKey(b)),
			dedupable: true,
		}
	default:
		return renderedConjunct{key: "res:" + c.expr(cj.Expr), dedupable: true}
	}
}

// expr renders a resolved expression with constants inline, columns
// positional and aggregation slots numeric.
func (c *canonizer) expr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *ColRef:
		return colKey(x.ID)
	case *Const:
		return constKey(x.Val)
	case *PostRef:
		return fmt.Sprintf("P%d", x.Slot)
	case *Bin:
		return "(" + c.expr(x.L) + " " + x.Op.String() + " " + c.expr(x.R) + ")"
	case *Not:
		return "not(" + c.expr(x.E) + ")"
	case *Neg:
		return "neg(" + c.expr(x.E) + ")"
	case *InList:
		parts := make([]string, len(x.Vals))
		for i, v := range x.Vals {
			parts[i] = constKey(v)
		}
		return fmt.Sprintf("in%s(%s;%s)", notTag(x.Not), c.expr(x.E), strings.Join(parts, ","))
	case *LikeExpr:
		return fmt.Sprintf("like%s(%s;%q)", notTag(x.Not), c.expr(x.E), x.Pattern)
	case *IsNullExpr:
		return fmt.Sprintf("isnull%s(%s)", notTag(x.Not), c.expr(x.E))
	default:
		c.ok = false
		return fmt.Sprintf("unknown:%T", e)
	}
}

func notTag(not bool) string {
	if not {
		return "!"
	}
	return ""
}

func colKey(id ColID) string { return fmt.Sprintf("C%d.%d", id.Atom, id.Attr) }

// constKey renders a constant through the injective key encoding, so two
// constants collide exactly when the engine treats them as the same value
// (canonical NaN, no Int/Float cross-kind collisions).
func constKey(v value.Value) string {
	return fmt.Sprintf("K%q", value.AppendKey(nil, v))
}

func colLess(a, b ColID) bool {
	if a.Atom != b.Atom {
		return a.Atom < b.Atom
	}
	return a.Attr < b.Attr
}

// constShareable reports false when any attribute equality class holds
// two or more constant-bearing conjuncts (EqAttrConst / InConsts): the
// checker seeds such a class with the *intersection* of candidate
// constants in conjunct order, so sorting the conjuncts could change the
// probe — and therefore the result-row — order between texts.
func constShareable(q *Query) bool {
	parent := make(map[ColID]ColID)
	var find func(ColID) ColID
	find = func(x ColID) ColID {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b ColID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, cj := range q.Conjuncts {
		if cj.Kind == EqAttrAttr {
			union(cj.A, cj.B)
		}
	}
	counts := make(map[ColID]int)
	for _, cj := range q.Conjuncts {
		if cj.Kind == EqAttrConst || cj.Kind == InConsts {
			r := find(cj.A)
			counts[r]++
			if counts[r] >= 2 {
				return false
			}
		}
	}
	return true
}
