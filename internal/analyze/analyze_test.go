package analyze

import (
	"strings"
	"testing"

	"github.com/bounded-eval/beas/internal/schema"
	"github.com/bounded-eval/beas/internal/sqlparser"
	"github.com/bounded-eval/beas/internal/value"
)

func testDB(t *testing.T) *schema.Database {
	t.Helper()
	db, err := schema.NewDatabase(
		schema.MustRelation("call",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "recnum", Kind: value.Int},
			schema.Attribute{Name: "date", Kind: value.Int},
			schema.Attribute{Name: "region", Kind: value.String},
			schema.Attribute{Name: "charge", Kind: value.Float},
		),
		schema.MustRelation("business",
			schema.Attribute{Name: "pnum", Kind: value.Int},
			schema.Attribute{Name: "type", Kind: value.String},
			schema.Attribute{Name: "region", Kind: value.String},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func analyzeSQL(t *testing.T, sql string) *Query {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(stmt.Select, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func analyzeErr(t *testing.T, sql string) error {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(stmt.Select, testDB(t))
	return err
}

func TestResolveQualifiedAndUnqualified(t *testing.T) {
	q := analyzeSQL(t, "SELECT call.recnum, type FROM call, business WHERE call.pnum = business.pnum")
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
	// recnum is qualified; type resolves uniquely to business.
	out0 := q.Outputs[0].Expr.(*ColRef)
	if out0.ID.Atom != 0 {
		t.Errorf("call.recnum resolved to atom %d", out0.ID.Atom)
	}
	out1 := q.Outputs[1].Expr.(*ColRef)
	if out1.ID.Atom != 1 {
		t.Errorf("type resolved to atom %d", out1.ID.Atom)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []string{
		"SELECT x FROM call",                                                // unknown column
		"SELECT region FROM call, business",                                 // ambiguous column
		"SELECT a FROM nosuch",                                              // unknown relation
		"SELECT b.ghost FROM business b",                                    // unknown attribute
		"SELECT nope.pnum FROM call",                                        // unknown alias
		"SELECT call.pnum FROM call c1, call c2",                            // ambiguous base name
		"SELECT pnum FROM call c1, call c1",                                 // duplicate alias
		"SELECT pnum, COUNT(*) FROM call",                                   // bare col with aggregate
		"SELECT * FROM call GROUP BY region",                                // * with grouping
		"SELECT pnum FROM call HAVING COUNT(*) > 1",                         // HAVING without agg? actually valid SQL-ish; we expect error because pnum not grouped
		"SELECT pnum FROM call WHERE pnum IN (recnum)",                      // non-literal IN
		"SELECT region, COUNT(*) FROM call GROUP BY region ORDER BY charge", // order key not in output
	}
	for _, sql := range cases {
		if err := analyzeErr(t, sql); err == nil {
			t.Errorf("Analyze(%q) should fail", sql)
		}
	}
}

func TestConjunctClassification(t *testing.T) {
	q := analyzeSQL(t, `SELECT call.region FROM call, business
		WHERE call.pnum = business.pnum AND business.type = 'bank'
		  AND call.date IN (1, 2) AND call.charge > 0.5
		  AND call.recnum <> call.pnum
		  AND (call.region = 'a' OR call.region = 'b')`)
	kinds := map[ConjunctKind]int{}
	for _, c := range q.Conjuncts {
		kinds[c.Kind]++
	}
	want := map[ConjunctKind]int{
		EqAttrAttr:  1,
		EqAttrConst: 1,
		InConsts:    1,
		CmpConst:    1,
		CmpAttrAttr: 1,
		Opaque:      1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("kind %d count = %d, want %d (all: %v)", k, kinds[k], n, kinds)
		}
	}
}

func TestConstOnLeftNormalised(t *testing.T) {
	q := analyzeSQL(t, "SELECT region FROM call WHERE 5 = pnum AND 3 < date")
	if q.Conjuncts[0].Kind != EqAttrConst || q.Conjuncts[0].Val.I != 5 {
		t.Errorf("const-left equality not normalised: %+v", q.Conjuncts[0])
	}
	c := q.Conjuncts[1]
	if c.Kind != CmpConst || c.Op != sqlparser.OpGt {
		t.Errorf("3 < date should normalise to date > 3: %+v", c)
	}
}

func TestBetweenExpansion(t *testing.T) {
	q := analyzeSQL(t, "SELECT region FROM call WHERE date BETWEEN 3 AND 7")
	if len(q.Conjuncts) != 2 {
		t.Fatalf("BETWEEN should expand to two conjuncts, got %d", len(q.Conjuncts))
	}
	for _, c := range q.Conjuncts {
		if c.Kind != CmpConst {
			t.Errorf("conjunct %v kind = %d", c, c.Kind)
		}
	}
}

func TestUsedAttrs(t *testing.T) {
	q := analyzeSQL(t, `SELECT call.region FROM call, business
		WHERE call.pnum = business.pnum AND business.type = 'bank'`)
	// call uses pnum(0) and region(3).
	used := q.UsedAttrs(0)
	if len(used) != 2 || used[0] != 0 || used[1] != 3 {
		t.Errorf("call used = %v", used)
	}
	// business uses pnum(0) and type(1).
	used = q.UsedAttrs(1)
	if len(used) != 2 || used[0] != 0 || used[1] != 1 {
		t.Errorf("business used = %v", used)
	}
}

func TestAggregateRewriting(t *testing.T) {
	q := analyzeSQL(t, `SELECT region, COUNT(*) AS n, SUM(charge) FROM call
		GROUP BY region HAVING COUNT(*) > 1 ORDER BY n DESC`)
	if !q.IsAgg || len(q.GroupBy) != 1 || len(q.Aggs) != 2 {
		t.Fatalf("agg shape: isAgg=%v groups=%d aggs=%d", q.IsAgg, len(q.GroupBy), len(q.Aggs))
	}
	// Outputs: region -> PostRef(0); COUNT(*) -> PostRef(1); SUM -> PostRef(2).
	if p, ok := q.Outputs[0].Expr.(*PostRef); !ok || p.Slot != 0 {
		t.Errorf("output 0 = %v", q.Outputs[0].Expr)
	}
	if p, ok := q.Outputs[1].Expr.(*PostRef); !ok || p.Slot != 1 {
		t.Errorf("output 1 = %v", q.Outputs[1].Expr)
	}
	// HAVING references the deduplicated COUNT(*) aggregate.
	h := q.Having.(*Bin)
	if p, ok := h.L.(*PostRef); !ok || p.Slot != 1 {
		t.Errorf("having = %v", q.Having)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Col != 1 || !q.OrderBy[0].Desc {
		t.Errorf("orderby = %+v", q.OrderBy)
	}
}

func TestAggregateDedup(t *testing.T) {
	q := analyzeSQL(t, "SELECT COUNT(*), COUNT(*) FROM call")
	if len(q.Aggs) != 1 {
		t.Errorf("identical aggregates should deduplicate: %d", len(q.Aggs))
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	q := analyzeSQL(t, "SELECT pnum AS p, recnum FROM call ORDER BY 2, p DESC")
	if q.OrderBy[0].Col != 1 || q.OrderBy[1].Col != 0 || !q.OrderBy[1].Desc {
		t.Errorf("orderby = %+v", q.OrderBy)
	}
	if err := analyzeErr(t, "SELECT pnum FROM call ORDER BY 5"); err == nil {
		t.Error("out-of-range ordinal should fail")
	}
}

func TestSelectStarExpansion(t *testing.T) {
	q := analyzeSQL(t, "SELECT * FROM call")
	if len(q.Outputs) != 5 {
		t.Fatalf("star expanded to %d outputs", len(q.Outputs))
	}
	if q.Outputs[0].Name != "pnum" {
		t.Errorf("output 0 name = %q", q.Outputs[0].Name)
	}
	q2 := analyzeSQL(t, "SELECT * FROM call, business")
	if len(q2.Outputs) != 8 {
		t.Fatalf("two-table star expanded to %d", len(q2.Outputs))
	}
	if !strings.Contains(q2.Outputs[0].Name, ".") {
		t.Errorf("multi-table star names should be qualified: %q", q2.Outputs[0].Name)
	}
}

func evalStr(t *testing.T, e Expr, row value.Row, l *Layout) value.Value {
	t.Helper()
	v, err := Eval(e, row, l)
	if err != nil {
		t.Fatalf("Eval(%v): %v", e, err)
	}
	return v
}

func TestEvalArithmeticAndComparison(t *testing.T) {
	l := NewLayout()
	a := l.Add(ColID{Atom: 0, Attr: 0})
	b := l.Add(ColID{Atom: 0, Attr: 1})
	row := value.Row{value.NewInt(6), value.NewFloat(1.5)}
	ra := &ColRef{ID: ColID{0, 0}, Name: "a"}
	rb := &ColRef{ID: ColID{0, 1}, Name: "b"}
	_ = a
	_ = b

	cases := []struct {
		e    Expr
		want value.Value
	}{
		{&Bin{Op: sqlparser.OpAdd, L: ra, R: &Const{Val: value.NewInt(2)}}, value.NewInt(8)},
		{&Bin{Op: sqlparser.OpMul, L: ra, R: rb}, value.NewFloat(9)},
		{&Bin{Op: sqlparser.OpDiv, L: ra, R: &Const{Val: value.NewInt(4)}}, value.NewInt(1)},
		{&Bin{Op: sqlparser.OpSub, L: rb, R: rb}, value.NewFloat(0)},
		{&Bin{Op: sqlparser.OpLt, L: ra, R: &Const{Val: value.NewInt(7)}}, value.NewBool(true)},
		{&Bin{Op: sqlparser.OpGe, L: ra, R: rb}, value.NewBool(true)},
		{&Neg{E: ra}, value.NewInt(-6)},
	}
	for _, c := range cases {
		got := evalStr(t, c.e, row, l)
		if !value.Equal(got, c.want) {
			t.Errorf("Eval(%v) = %v, want %v", c.e, got, c.want)
		}
	}
	// Division by zero errors.
	if _, err := Eval(&Bin{Op: sqlparser.OpDiv, L: ra, R: &Const{Val: value.NewInt(0)}}, row, l); err == nil {
		t.Error("division by zero should fail")
	}
}

func TestEvalNullSemantics(t *testing.T) {
	l := NewLayout()
	l.Add(ColID{Atom: 0, Attr: 0})
	row := value.Row{value.NewNull()}
	col := &ColRef{ID: ColID{0, 0}, Name: "a"}

	// Comparisons with NULL are false.
	got := evalStr(t, &Bin{Op: sqlparser.OpEq, L: col, R: &Const{Val: value.NewNull()}}, row, l)
	if got.Bool() {
		t.Error("NULL = NULL must evaluate to false in predicates")
	}
	// IS NULL sees it.
	got = evalStr(t, &IsNullExpr{E: col}, row, l)
	if !got.Bool() {
		t.Error("IS NULL failed")
	}
	got = evalStr(t, &IsNullExpr{E: col, Not: true}, row, l)
	if got.Bool() {
		t.Error("IS NOT NULL failed")
	}
	// Arithmetic with NULL is NULL.
	got = evalStr(t, &Bin{Op: sqlparser.OpAdd, L: col, R: &Const{Val: value.NewInt(1)}}, row, l)
	if !got.IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
	// IN with NULL subject is false.
	got = evalStr(t, &InList{E: col, Vals: []value.Value{value.NewInt(1)}}, row, l)
	if got.Bool() {
		t.Error("NULL IN (...) should be false")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	l := NewLayout()
	l.Add(ColID{Atom: 0, Attr: 0})
	row := value.Row{value.NewInt(1)}
	col := &ColRef{ID: ColID{0, 0}, Name: "a"}
	bad := &Bin{Op: sqlparser.OpDiv, L: col, R: &Const{Val: value.NewInt(0)}} // would error

	// false AND (err) short-circuits.
	e := &Bin{Op: sqlparser.OpAnd,
		L: &Bin{Op: sqlparser.OpEq, L: col, R: &Const{Val: value.NewInt(2)}},
		R: &Bin{Op: sqlparser.OpEq, L: bad, R: &Const{Val: value.NewInt(0)}}}
	if got := evalStr(t, e, row, l); got.Bool() {
		t.Error("false AND x = false")
	}
	// true OR (err) short-circuits.
	e2 := &Bin{Op: sqlparser.OpOr,
		L: &Bin{Op: sqlparser.OpEq, L: col, R: &Const{Val: value.NewInt(1)}},
		R: &Bin{Op: sqlparser.OpEq, L: bad, R: &Const{Val: value.NewInt(0)}}}
	if got := evalStr(t, e2, row, l); !got.Bool() {
		t.Error("true OR x = true")
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"_", "", false},
		{"a%b%c", "axxbyyc", true},
		{"a%b%c", "axxcyyb", false},
		{"%%", "x", true},
		{"", "", true},
		{"", "x", false},
		// _ matches one character, not one byte: é is 2 bytes, 日 is 3.
		{"caf_", "café", true},
		{"caf__", "café", false},
		{"_afé", "café", true},
		{"日_語", "日本語", true},
		{"日__語", "日本語", false},
		{"%é", "café", true},
		{"é%", "été", true},
		{"_", "é", true},
		{"日%", "日本語", true},
		{"café", "café", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.pattern, c.s); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestLayout(t *testing.T) {
	l := NewLayout()
	s0 := l.Add(ColID{Atom: 0, Attr: 3})
	s1 := l.Add(ColID{Atom: 1, Attr: 0})
	if s0 != 0 || s1 != 1 || l.Len() != 2 {
		t.Errorf("slots = %d, %d len=%d", s0, s1, l.Len())
	}
	if again := l.Add(ColID{Atom: 0, Attr: 3}); again != 0 {
		t.Errorf("re-Add should return existing slot, got %d", again)
	}
	if _, ok := l.Slot(ColID{Atom: 9, Attr: 9}); ok {
		t.Error("missing slot lookup should report !ok")
	}
	ids := l.IDs()
	if len(ids) != 2 || ids[0] != (ColID{0, 3}) {
		t.Errorf("IDs = %v", ids)
	}
}

func TestDuplicateTableNeedsAlias(t *testing.T) {
	// Self-join with distinct aliases is fine.
	q := analyzeSQL(t, "SELECT c1.pnum FROM call c1, call c2 WHERE c1.pnum = c2.recnum")
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
}
